#!/usr/bin/env python3
"""Validate BENCH_solver.json (schema cs-bench-solver-v1) and optionally
compare it against a committed baseline.

Usage: check_bench.py <BENCH_solver.json> [--baseline <baseline.json>]

Schema checks (stdlib json only; exit 2 on failure — the emitter broke):
  * top-level "schema" equals "cs-bench-solver-v1", "runs" is a
    non-empty array;
  * every run carries workload/pb_mode/phase plus numeric points,
    wall_seconds, conflicts, propagations, conflicts_per_sec,
    propagations_per_sec, peak_rss_bytes;
  * pb_mode is watched|counter, phase is cold|warm, counts are
    non-negative, and (workload, pb_mode, phase) keys are unique;
  * the stated rates agree with conflicts/wall and propagations/wall.

Baseline comparison (exit 1 on regression — machine-speed dependent, so
callers treat it as a warning, not a gate):
  * runs are matched to baseline runs by (workload, pb_mode, phase);
  * a matched run whose conflicts_per_sec falls below baseline/1.5 is
    flagged, likewise propagations_per_sec. Runs with fewer than 1000
    conflicts (resp. 100000 propagations) are skipped — the rate of a
    near-idle run is noise, not throughput;
  * runs missing from the baseline (new workloads) are reported but not
    flagged.

Exit code 0 when the schema is valid and no regression was flagged.
"""
import json
import sys

SCHEMA = "cs-bench-solver-v1"
REGRESSION_FACTOR = 1.5
MIN_CONFLICTS = 1000
MIN_PROPAGATIONS = 100_000

REQUIRED_STR = ("workload", "pb_mode", "phase")
REQUIRED_NUM = ("points", "wall_seconds", "conflicts", "propagations",
                "conflicts_per_sec", "propagations_per_sec",
                "peak_rss_bytes")


def schema_fail(msg):
    print(f"check_bench: SCHEMA FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        schema_fail(f"{path}: {e}")


def validate(doc, path):
    if doc.get("schema") != SCHEMA:
        schema_fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        schema_fail(f"{path}: 'runs' must be a non-empty array")
    keyed = {}
    for i, run in enumerate(runs):
        where = f"{path}: runs[{i}]"
        if not isinstance(run, dict):
            schema_fail(f"{where}: not an object")
        for field in REQUIRED_STR:
            if not isinstance(run.get(field), str) or not run[field]:
                schema_fail(f"{where}: missing string field {field!r}")
        for field in REQUIRED_NUM:
            if not isinstance(run.get(field), (int, float)):
                schema_fail(f"{where}: missing numeric field {field!r}")
            if run[field] < 0:
                schema_fail(f"{where}: negative {field}")
        if run["pb_mode"] not in ("watched", "counter"):
            schema_fail(f"{where}: pb_mode {run['pb_mode']!r}")
        if run["phase"] not in ("cold", "warm"):
            schema_fail(f"{where}: phase {run['phase']!r}")
        key = (run["workload"], run["pb_mode"], run["phase"])
        if key in keyed:
            schema_fail(f"{where}: duplicate run key {key}")
        keyed[key] = run
        # The stated rates must agree with the raw counts.
        if run["wall_seconds"] > 0:
            for count, rate in (("conflicts", "conflicts_per_sec"),
                                ("propagations", "propagations_per_sec")):
                stated = run[rate]
                actual = run[count] / run["wall_seconds"]
                if abs(stated - actual) > max(1.0, 0.01 * actual):
                    schema_fail(f"{where}: {rate} {stated} != {count}/wall "
                                f"{actual:.1f}")
    return keyed


def main():
    args = sys.argv[1:]
    if not args or len(args) not in (1, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    baseline_path = None
    if len(args) == 3:
        if args[1] != "--baseline":
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        baseline_path = args[2]

    current = validate(load(path), path)
    print(f"check_bench: {path}: schema OK ({len(current)} runs)")
    if baseline_path is None:
        return

    baseline = validate(load(baseline_path), baseline_path)
    regressions = []
    for key, run in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            print(f"check_bench: note: {key} not in baseline (new workload)")
            continue
        for count, rate, floor in (
                ("conflicts", "conflicts_per_sec", MIN_CONFLICTS),
                ("propagations", "propagations_per_sec", MIN_PROPAGATIONS)):
            if run[count] < floor or base[count] < floor:
                continue
            if run[rate] * REGRESSION_FACTOR < base[rate]:
                regressions.append(
                    f"{key}: {rate} {run[rate]:.0f} < baseline "
                    f"{base[rate]:.0f}/{REGRESSION_FACTOR}")
    if regressions:
        for r in regressions:
            print(f"check_bench: REGRESSION: {r}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench: no >{REGRESSION_FACTOR}x throughput regression "
          f"vs {baseline_path}")


if __name__ == "__main__":
    main()
