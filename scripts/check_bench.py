#!/usr/bin/env python3
"""Validate a bench JSON artifact and optionally compare it against a
committed baseline. The artifact's top-level "schema" field selects the
validator:

  cs-bench-solver-v2  (BENCH_solver.json, bench_solver_core)
  cs-bench-load-v1    (BENCH_load.json, bench_load)
  cs-bench-scale-v1   (BENCH_scale.json, bench_fig6_scale)
  cs-bench-churn-v1   (BENCH_churn.json, bench_fig7_churn)

Usage: check_bench.py <bench.json> [--baseline <baseline.json>]

Schema checks (stdlib json only; exit 2 on failure — the emitter broke):

cs-bench-solver-v2:
  * "runs" is a non-empty array; every run carries
    workload/backend/pb_mode/restart_mode/minimize_mode/rephase/phase
    plus numeric points, wall_seconds, conflicts, propagations,
    conflicts_per_sec, propagations_per_sec, rephases,
    minimized_literals, peak_rss_bytes;
  * backend is minipb|race, pb_mode is watched|counter, restart_mode is
    glucose|luby, minimize_mode is recursive|local, rephase is on|off,
    phase is cold|warm, counts are non-negative, (workload, backend,
    pb_mode, restart_mode, minimize_mode, rephase, phase) keys are
    unique;
  * the stated rates agree with conflicts/wall and propagations/wall;
  * when the artifact has the fig3a_grid headline pair (the seed
    configuration vs the portfolio racer), the wall-clock speedup is
    printed as an advisory.

cs-bench-load-v1:
  * "runs" is a non-empty array; every run carries backend/mode strings
    plus numeric dup_pct, connections, requests, rejected, errors,
    wall_seconds, req_per_sec, p50_ms, p99_ms, hit_rate_pct;
  * mode is closed|open, dup_pct and hit_rate_pct lie in [0, 100],
    p50_ms <= p99_ms, errors == 0 (rejected may be positive: open-loop
    bursts past the admission queue are turned away by design),
    (backend, dup_pct, mode) keys are unique;
  * req_per_sec agrees with requests/wall_seconds.

cs-bench-scale-v1:
  * "runs" is a non-empty array; every run carries topology/mode/status
    strings plus numeric hosts, routers, flows, regions, cut_links,
    fallback, wall_seconds, hosts_per_sec;
  * mode is mono|sharded, status is sat|unsat|capped, fallback is 0|1,
    (topology, hosts, mode) keys are unique;
  * hosts_per_sec agrees with hosts/wall_seconds.

cs-bench-churn-v1:
  * "runs" is a non-empty array; every run carries topology/op_class
    strings plus numeric hosts, steps, inc_median_seconds,
    cold_median_seconds, speedup_median, capped, verdict_mismatches,
    invalid_designs, design_comparisons, design_matches, warm, retract,
    replay, full;
  * op_class is retune|uic|flow|link|host|all, path counts sum to steps,
    capped <= steps, (topology, hosts, op_class) keys are unique;
  * correctness certification is a hard gate, not a regression warning:
    verdict_mismatches == 0, invalid_designs == 0 and design_matches ==
    design_comparisons — the apply_delta contract (docs/DELTAS.md) says
    incremental verdicts equal cold solves on decided checks, so any
    decided-vs-decided mismatch means the emitter (not the machine) is
    broken (capped steps — either side kUnknown — are excluded from
    certification by the bench and counted in `capped`);
  * speedup_median agrees with cold_median/inc_median.

Baseline comparison (exit 1 on regression — machine-speed dependent, so
callers treat it as a warning, not a gate):
  * runs are matched to baseline runs by their key;
  * solver: a matched run whose conflicts_per_sec (propagations_per_sec)
    falls below baseline/1.5 is flagged; runs under 1000 conflicts
    (100000 propagations) are skipped — near-idle rates are noise;
  * load: a matched run whose req_per_sec falls below baseline/1.5 is
    flagged; runs under 50 requests are skipped;
  * scale: a matched run whose hosts_per_sec falls below baseline/1.5 is
    flagged; runs under 50 hosts are skipped, and so are capped runs on
    either side (a capped wall clock measures the effort cap, not the
    machine);
  * churn: a matched run whose speedup_median falls below baseline/1.5
    is flagged; cells under 10 steps are skipped — per-class medians
    over a few draws are noise — and so are cells with capped steps on
    either side (a capped probe's wall is its effort cap);
  * runs missing from the baseline are reported but not flagged.

Exit code 0 when the schema is valid and no regression was flagged.
"""
import json
import sys

REGRESSION_FACTOR = 1.5
MIN_CONFLICTS = 1000
MIN_PROPAGATIONS = 100_000
MIN_REQUESTS = 50
MIN_HOSTS = 50
MIN_STEPS = 10

SOLVER_SCHEMA = "cs-bench-solver-v2"
LOAD_SCHEMA = "cs-bench-load-v1"
SCALE_SCHEMA = "cs-bench-scale-v1"
CHURN_SCHEMA = "cs-bench-churn-v1"

SOLVER_STR = ("workload", "backend", "pb_mode", "restart_mode",
              "minimize_mode", "rephase", "phase")
SOLVER_NUM = ("points", "wall_seconds", "conflicts", "propagations",
              "conflicts_per_sec", "propagations_per_sec", "rephases",
              "minimized_literals", "peak_rss_bytes")
LOAD_STR = ("backend", "mode")
LOAD_NUM = ("dup_pct", "connections", "requests", "rejected", "errors",
            "wall_seconds", "req_per_sec", "p50_ms", "p99_ms",
            "hit_rate_pct")
SCALE_STR = ("topology", "mode", "status")
SCALE_NUM = ("hosts", "routers", "flows", "regions", "cut_links",
             "fallback", "wall_seconds", "hosts_per_sec")
CHURN_STR = ("topology", "op_class")
CHURN_NUM = ("hosts", "steps", "inc_median_seconds", "cold_median_seconds",
             "speedup_median", "capped", "verdict_mismatches",
             "invalid_designs", "design_comparisons", "design_matches",
             "warm", "retract", "replay", "full")
CHURN_CLASSES = ("retune", "uic", "flow", "link", "host", "all")


def schema_fail(msg):
    print(f"check_bench: SCHEMA FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        schema_fail(f"{path}: {e}")


def check_runs(doc, path):
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        schema_fail(f"{path}: 'runs' must be a non-empty array")
    return runs


def check_fields(run, where, str_fields, num_fields):
    if not isinstance(run, dict):
        schema_fail(f"{where}: not an object")
    for field in str_fields:
        if not isinstance(run.get(field), str) or not run[field]:
            schema_fail(f"{where}: missing string field {field!r}")
    for field in num_fields:
        if not isinstance(run.get(field), (int, float)):
            schema_fail(f"{where}: missing numeric field {field!r}")
        if run[field] < 0:
            schema_fail(f"{where}: negative {field}")


def check_rate(run, where, count, rate, wall="wall_seconds"):
    """The stated rate must agree with count/wall (1% tolerance)."""
    if run[wall] <= 0:
        return
    stated = run[rate]
    actual = run[count] / run[wall]
    if abs(stated - actual) > max(1.0, 0.01 * actual):
        schema_fail(f"{where}: {rate} {stated} != {count}/wall "
                    f"{actual:.1f}")


def validate_solver(doc, path):
    keyed = {}
    for i, run in enumerate(check_runs(doc, path)):
        where = f"{path}: runs[{i}]"
        check_fields(run, where, SOLVER_STR, SOLVER_NUM)
        if run["backend"] not in ("minipb", "race"):
            schema_fail(f"{where}: backend {run['backend']!r}")
        if run["pb_mode"] not in ("watched", "counter"):
            schema_fail(f"{where}: pb_mode {run['pb_mode']!r}")
        if run["restart_mode"] not in ("glucose", "luby"):
            schema_fail(f"{where}: restart_mode {run['restart_mode']!r}")
        if run["minimize_mode"] not in ("recursive", "local"):
            schema_fail(f"{where}: minimize_mode {run['minimize_mode']!r}")
        if run["rephase"] not in ("on", "off"):
            schema_fail(f"{where}: rephase {run['rephase']!r}")
        if run["phase"] not in ("cold", "warm"):
            schema_fail(f"{where}: phase {run['phase']!r}")
        key = (run["workload"], run["backend"], run["pb_mode"],
               run["restart_mode"], run["minimize_mode"], run["rephase"],
               run["phase"])
        if key in keyed:
            schema_fail(f"{where}: duplicate run key {key}")
        keyed[key] = run
        check_rate(run, where, "conflicts", "conflicts_per_sec")
        check_rate(run, where, "propagations", "propagations_per_sec")
    return keyed


def solver_advisories(current):
    """Prints the fig3a_grid headline: seed-config vs race wall speedup.
    Advisory only — wall clocks are machine-speed dependent."""
    seed = race = None
    for key, run in current.items():
        if run["workload"] != "fig3a_grid" or run["phase"] != "cold":
            continue
        if run["backend"] == "race":
            race = run
        elif (run["backend"], run["restart_mode"], run["minimize_mode"],
              run["rephase"]) == ("minipb", "luby", "local", "off"):
            seed = run
    if seed is None or race is None:
        return
    if race["wall_seconds"] <= 0:
        return
    speedup = seed["wall_seconds"] / race["wall_seconds"]
    print(f"check_bench: advisory: fig3a_grid cold wall speedup "
          f"(seed-config {seed['wall_seconds']:.3f}s / race "
          f"{race['wall_seconds']:.3f}s) = {speedup:.2f}x")


def validate_load(doc, path):
    keyed = {}
    for i, run in enumerate(check_runs(doc, path)):
        where = f"{path}: runs[{i}]"
        check_fields(run, where, LOAD_STR, LOAD_NUM)
        if run["mode"] not in ("closed", "open"):
            schema_fail(f"{where}: mode {run['mode']!r}")
        for pct in ("dup_pct", "hit_rate_pct"):
            if not 0 <= run[pct] <= 100:
                schema_fail(f"{where}: {pct} {run[pct]} outside [0, 100]")
        if run["p50_ms"] > run["p99_ms"]:
            schema_fail(f"{where}: p50_ms {run['p50_ms']} > p99_ms "
                        f"{run['p99_ms']}")
        if run["errors"] != 0:
            schema_fail(f"{where}: {run['errors']} request(s) errored")
        key = (run["backend"], run["dup_pct"], run["mode"])
        if key in keyed:
            schema_fail(f"{where}: duplicate run key {key}")
        keyed[key] = run
        check_rate(run, where, "requests", "req_per_sec")
    return keyed


def validate_scale(doc, path):
    keyed = {}
    for i, run in enumerate(check_runs(doc, path)):
        where = f"{path}: runs[{i}]"
        check_fields(run, where, SCALE_STR, SCALE_NUM)
        if run["mode"] not in ("mono", "sharded"):
            schema_fail(f"{where}: mode {run['mode']!r}")
        if run["status"] not in ("sat", "unsat", "capped"):
            schema_fail(f"{where}: status {run['status']!r}")
        if run["fallback"] not in (0, 1):
            schema_fail(f"{where}: fallback {run['fallback']!r}")
        key = (run["topology"], run["hosts"], run["mode"])
        if key in keyed:
            schema_fail(f"{where}: duplicate run key {key}")
        keyed[key] = run
        check_rate(run, where, "hosts", "hosts_per_sec")
    return keyed


def validate_churn(doc, path):
    keyed = {}
    for i, run in enumerate(check_runs(doc, path)):
        where = f"{path}: runs[{i}]"
        check_fields(run, where, CHURN_STR, CHURN_NUM)
        if run["op_class"] not in CHURN_CLASSES:
            schema_fail(f"{where}: op_class {run['op_class']!r}")
        paths = run["warm"] + run["retract"] + run["replay"] + run["full"]
        if paths != run["steps"]:
            schema_fail(f"{where}: path counts {paths} != steps "
                        f"{run['steps']}")
        if run["capped"] > run["steps"]:
            schema_fail(f"{where}: capped {run['capped']} > steps "
                        f"{run['steps']}")
        # Correctness is a hard gate: the apply_delta contract promises
        # cold-identical verdicts, certified designs, and byte-identical
        # designs on the deterministic replay/full tiers.
        if run["verdict_mismatches"] != 0:
            schema_fail(f"{where}: {run['verdict_mismatches']} incremental "
                        f"verdict(s) differ from the cold solve")
        if run["invalid_designs"] != 0:
            schema_fail(f"{where}: {run['invalid_designs']} design(s) "
                        f"failed check_design certification")
        if run["design_matches"] != run["design_comparisons"]:
            schema_fail(f"{where}: only {run['design_matches']} of "
                        f"{run['design_comparisons']} replay/full designs "
                        f"matched the cold design")
        key = (run["topology"], run["hosts"], run["op_class"])
        if key in keyed:
            schema_fail(f"{where}: duplicate run key {key}")
        keyed[key] = run
        if run["inc_median_seconds"] > 0:
            stated = run["speedup_median"]
            actual = run["cold_median_seconds"] / run["inc_median_seconds"]
            if abs(stated - actual) > max(0.01, 0.02 * actual):
                schema_fail(f"{where}: speedup_median {stated} != "
                            f"cold/inc {actual:.3f}")
    return keyed


def skip_capped(run, base):
    """A capped wall clock measures the effort cap, not the machine."""
    return run.get("status") == "capped" or base.get("status") == "capped"


def skip_churn_capped(run, base):
    """A cell with capped steps has cap-burn wall times in its medians."""
    return run["capped"] > 0 or base["capped"] > 0


# schema name -> (validator, regression rate floors, optional pair skip).
# Validators return {key: run}; rate_floors are (count_field, rate_field,
# min_count) triples fed to compare().
SCHEMAS = {
    SOLVER_SCHEMA: {
        "validate": validate_solver,
        "rate_floors": (("conflicts", "conflicts_per_sec", MIN_CONFLICTS),
                        ("propagations", "propagations_per_sec",
                         MIN_PROPAGATIONS)),
        "advisories": solver_advisories,
    },
    LOAD_SCHEMA: {
        "validate": validate_load,
        "rate_floors": (("requests", "req_per_sec", MIN_REQUESTS),),
    },
    SCALE_SCHEMA: {
        "validate": validate_scale,
        "rate_floors": (("hosts", "hosts_per_sec", MIN_HOSTS),),
        "skip": skip_capped,
    },
    CHURN_SCHEMA: {
        "validate": validate_churn,
        "rate_floors": (("steps", "speedup_median", MIN_STEPS),),
        "skip": skip_churn_capped,
    },
}


def compare(current, baseline, rate_floors, skip=None):
    """Flags matched runs whose rate fell below baseline/REGRESSION_FACTOR.
    rate_floors: (count_field, rate_field, min_count) triples; skip, when
    given, drops (run, base) pairs the rates are meaningless for."""
    regressions = []
    for key, run in sorted(current.items(), key=lambda kv: str(kv[0])):
        base = baseline.get(key)
        if base is None:
            print(f"check_bench: note: {key} not in baseline (new run)")
            continue
        if skip is not None and skip(run, base):
            continue
        for count, rate, floor in rate_floors:
            if run[count] < floor or base[count] < floor:
                continue
            if run[rate] * REGRESSION_FACTOR < base[rate]:
                regressions.append(
                    f"{key}: {rate} {run[rate]:.0f} < baseline "
                    f"{base[rate]:.0f}/{REGRESSION_FACTOR}")
    return regressions


def main():
    args = sys.argv[1:]
    if not args or len(args) not in (1, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    baseline_path = None
    if len(args) == 3:
        if args[1] != "--baseline":
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        baseline_path = args[2]

    doc = load(path)
    schema = doc.get("schema")
    entry = SCHEMAS.get(schema)
    if entry is None:
        schema_fail(f"{path}: unknown schema {schema!r} "
                    f"(want one of {sorted(SCHEMAS)})")

    current = entry["validate"](doc, path)
    print(f"check_bench: {path}: {schema} schema OK ({len(current)} runs)")
    if "advisories" in entry:
        entry["advisories"](current)
    if baseline_path is None:
        return

    baseline_doc = load(baseline_path)
    if baseline_doc.get("schema") != schema:
        schema_fail(f"{baseline_path}: baseline schema "
                    f"{baseline_doc.get('schema')!r} != {schema!r}")
    baseline = entry["validate"](baseline_doc, baseline_path)
    regressions = compare(current, baseline, entry["rate_floors"],
                          entry.get("skip"))
    if regressions:
        for r in regressions:
            print(f"check_bench: REGRESSION: {r}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench: no >{REGRESSION_FACTOR}x throughput regression "
          f"vs {baseline_path}")


if __name__ == "__main__":
    main()
