#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation tree.

Scans every top-level *.md plus docs/*.md for inline links and verifies
that intra-repo targets resolve:

  * relative file links must point at an existing file or directory
    (resolved against the linking file's directory);
  * fragment links (foo.md#section or a bare #section) must match a
    heading in the target file, using GitHub's anchor slug rules;
  * external schemes (http, https, mailto) are skipped — CI must not
    depend on the network.

Exits non-zero listing every dead link. Stdlib only.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor for a heading: lowercase, strip punctuation,
    spaces to hyphens (backtick/emphasis markers removed)."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.lower())


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def links_of(path: Path):
    """Yields (line number, raw target) for every link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                yield lineno, m.group(1)


def check_file(md: Path, repo: Path) -> list[str]:
    errors = []
    for lineno, target in links_of(md):
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(repo)}:{lineno}: dead link "
                    f"'{target}' (no such file)"
                )
                continue
        else:
            resolved = md.resolve()
        if fragment and resolved.suffix == ".md" and resolved.is_file():
            if fragment.lower() not in headings_of(resolved):
                errors.append(
                    f"{md.relative_to(repo)}:{lineno}: dead anchor "
                    f"'{target}' (no heading '#{fragment}')"
                )
    return errors


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    files = sorted(repo.glob("*.md")) + sorted((repo / "docs").glob("*.md"))
    errors = []
    for md in files:
        errors.extend(check_file(md, repo))
    for e in errors:
        print(e, file=sys.stderr)
    print(
        f"check_links: {len(files)} files, "
        f"{len(errors)} dead link(s)" + ("" if errors else " — OK")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
