#!/usr/bin/env bash
# Builds everything, runs the full test suite and regenerates every paper
# table/figure. Artifacts: test_output.txt, bench_output.txt, *.csv.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Request-file smoke run of the synthesis server (cache + admission
# control end to end; deterministic effort cap keeps it quick). The
# trace/metrics dumps double as an observability smoke: check_trace.py
# validates JSON shape and per-track span nesting.
./build/examples/configsynth_server examples/data/server_requests.txt \
  --backend minipb --jobs 2 --time-limit 20000 --conflict-limit 20000 \
  --trace-out server_trace.json --metrics-prom server_metrics.prom \
  2>&1 | tee server_output.txt
python3 scripts/check_trace.py server_trace.json \
  service/queue_wait service/solve synth/

# CLI trace smoke: one synthesis run with the span tracer on, validated
# the same way (encoder phases + solver counter timeline present).
./build/examples/configsynth_cli synth examples/data/paper_example.cfg \
  --backend minipb --trace-out cli_trace.json > /dev/null
python3 scripts/check_trace.py cli_trace.json \
  encode/ synth/check minipb/conflicts

# Parallel-safety audit: the sweep-engine/thread-pool/service tests under
# ThreadSanitizer on the MiniPB backend. Z3 is an uninstrumented system
# library, so only the from-scratch backend gives TSan full visibility;
# the filters select the pool tests plus every MiniPB-backed sweep and
# service test. Skip with CS_SKIP_TSAN=1.
if [ "${CS_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -G Ninja -DCONFIGSYNTH_SANITIZE=thread
  cmake --build build-tsan \
    --target sweep_test service_test obs_test delta_test minisolver_test \
    fuzz_minipb
  ./build-tsan/tests/sweep_test \
    --gtest_filter='ThreadPool*:SweepEngineMiniPb*:*minipb*' \
    2>&1 | tee tsan_output.txt
  ./build-tsan/tests/service_test \
    --gtest_filter='SynthServiceMiniPb*:ResultCache*:Metrics*:*minipb*' \
    2>&1 | tee -a tsan_output.txt
  ./build-tsan/tests/delta_test \
    --gtest_filter='DeltaSynthesisParallel*:DeltaGrammar*' \
    2>&1 | tee -a tsan_output.txt
  ./build-tsan/tests/obs_test 2>&1 | tee -a tsan_output.txt
  # Solver-core coverage: the arena/watched-sum/reduce paths themselves,
  # plus a short differential fuzz burst, instrumented.
  ./build-tsan/tests/minisolver_test 2>&1 | tee -a tsan_output.txt
  ./build-tsan/tests/fuzz_minipb 500 2>&1 | tee -a tsan_output.txt
fi

for b in build/bench/bench_*; do
  echo "### $b"
  "$b"
done 2>&1 | tee bench_output.txt

# Solver-core bench artifact sanity: a schema failure (exit 2) means the
# emitter broke and should block; a throughput regression vs the committed
# baseline (exit 1) is machine-speed dependent, so warn only.
python3 scripts/check_bench.py BENCH_solver.json \
  --baseline bench/baselines/BENCH_solver.json
case $? in
  0) ;;
  1) echo "WARNING: solver bench throughput regressed vs baseline" ;;
  *) echo "BENCH_solver.json schema check failed"; exit 2 ;;
esac

# Churn bench artifact: schema AND the incremental-verdict certification
# are hard gates (exit 2 — any mismatch means apply_delta broke, not the
# machine); a speedup regression vs the baseline (exit 1) warns only.
python3 scripts/check_bench.py BENCH_churn.json \
  --baseline bench/baselines/BENCH_churn.json
case $? in
  0) ;;
  1) echo "WARNING: churn bench speedup regressed vs baseline" ;;
  *) echo "BENCH_churn.json check failed"; exit 2 ;;
esac

echo "Artifacts written. What each bench/CSV means: docs/BENCHMARKS.md"
