#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by the obs tracer.

Usage: check_trace.py <trace.json> [required-name-substring ...]

Checks (stdlib json only):
  * the file parses and has a top-level "traceEvents" array;
  * every event carries ph/pid/tid/name, complete events ("X") carry
    numeric ts/dur, counter events ("C") carry args.value;
  * per tid, complete-event spans are properly nested (any two are
    disjoint or one contains the other) — RAII scopes cannot overlap;
  * async events ("b"/"e") carry an id and pair up begin-to-end; they
    are exempt from the nesting check (they may overlap scoped spans —
    that is why the exporter emits them as async);
  * each extra argument matches at least one event name as a substring
    (lets callers assert "an encoder span and a sweep point exist").

Exit code 0 on success; prints the first failure and exits 1 otherwise.
"""
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    required = sys.argv[2:]

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing 'traceEvents' array")
    if not events:
        fail("trace has no events")

    spans_by_tid = {}
    async_open = {}
    n_async = 0
    names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                fail(f"event {i} lacks '{key}': {ev}")
        names.add(ev["name"])
        ph = ev["ph"]
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(f"complete event {i} lacks numeric '{key}': {ev}")
            spans_by_tid.setdefault(ev["tid"], []).append(ev)
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"counter event {i} lacks args.value: {ev}")
        elif ph in ("b", "e"):
            if "id" not in ev or not isinstance(ev.get("ts"), (int, float)):
                fail(f"async event {i} lacks id or numeric ts: {ev}")
            key = (ev["name"], ev["id"])
            if ph == "b":
                if key in async_open:
                    fail(f"async event {i}: duplicate begin for {key}")
                async_open[key] = ev["ts"]
                n_async += 1
            else:
                begin = async_open.pop(key, None)
                if begin is None:
                    fail(f"async event {i}: end without begin for {key}")
                if ev["ts"] < begin - 1e-9:
                    fail(f"async event {i}: end before begin for {key}")
        elif ph != "M":
            fail(f"event {i} has unexpected ph '{ph}'")
    if async_open:
        fail(f"async begins without ends: {sorted(async_open)}")

    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        # Stack discipline: walk in start order, track open scopes.
        stack = []
        for ev in spans:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1] - 1e-9:
                stack.pop()
            if stack and end > stack[-1] + 1e-9:
                fail(
                    f"tid {tid}: span '{ev['name']}' "
                    f"[{ev['ts']}, {end}) overlaps an enclosing span "
                    f"ending at {stack[-1]}"
                )
            stack.append(end)

    for want in required:
        if not any(want in n for n in names):
            fail(f"no event name contains '{want}' (have: {sorted(names)})")

    n_spans = sum(len(s) for s in spans_by_tid.values())
    print(
        f"check_trace: OK: {len(events)} events, {n_spans} spans + "
        f"{n_async} async on {len(spans_by_tid)} track(s), "
        f"{len(names)} distinct names"
    )


if __name__ == "__main__":
    main()
