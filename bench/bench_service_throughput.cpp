// Service throughput under duplicate traffic — the caching ablation.
//
// Drives service::SynthService with request streams at 0%, 50% and 90%
// duplicate ratios on both backends and reports requests/second, cache
// hit rate and total solver probes. Duplicates are exact fingerprint
// repeats of earlier requests, so the hit rate of a d% duplicate stream
// must reach d% — single-flight coalescing guarantees this even when the
// duplicate is submitted while its primary is still solving.
//
// Uses the deterministic effort caps of sweep_options() so probe counts
// are reproducible; `--jobs N` selects the worker count (default 1).
#include <memory>
#include <string>
#include <vector>

#include "common/workloads.h"
#include "service/synth_service.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cs;
  const int jobs = bench::jobs(argc, argv);
  const int total = bench::full_mode() ? 200 : 10;
  const std::vector<int> duplicate_pcts = {0, 50, 90};

  // One shared mid-size spec; requests differ in their threshold triple,
  // which is part of the fingerprint, so "distinct" means distinct keys.
  const auto spec = std::make_shared<const model::ProblemSpec>(
      bench::make_eval_spec(8, 8, 0.10, 4242));

  std::vector<std::vector<std::string>> rows;
  for (const smt::BackendKind kind :
       {smt::BackendKind::kZ3, smt::BackendKind::kMiniPb}) {
    for (const int dup_pct : duplicate_pcts) {
      const int distinct = std::max(1, total * (100 - dup_pct) / 100);

      service::ServiceConfig config;
      config.workers = jobs;
      config.queue_limit = static_cast<std::size_t>(total) + 8;
      service::SynthService service(config);

      const auto request_at = [&](int key) {
        service::ServiceRequest req;
        req.spec = spec;
        req.point.objective = synth::SweepObjective::kFeasibility;
        // Distinct sub-slider offsets: every key is a distinct
        // fingerprint but the same (easy, SAT) instance difficulty.
        req.point.isolation = util::Fixed::from_raw(key);
        req.point.usability = util::Fixed::from_int(0);
        req.point.budget = util::Fixed::from_int(100);
        synth::SynthesisOptions opts = bench::sweep_options();
        opts.backend = kind;
        req.synthesis = opts;
        return req;
      };

      // Stream: the first `distinct` requests introduce the keys, the
      // remaining total-distinct repeat them round-robin.
      std::vector<std::future<service::ServiceOutcome>> pending;
      pending.reserve(static_cast<std::size_t>(total));
      util::Stopwatch watch;
      for (int i = 0; i < total; ++i)
        pending.push_back(
            service.submit(request_at(i < distinct ? i : i % distinct)));
      int hits = 0, rejected = 0;
      for (auto& f : pending) {
        const service::ServiceOutcome out = f.get();
        hits += out.cache_hit ? 1 : 0;
        rejected += out.rejected ? 1 : 0;
      }
      const double wall = watch.elapsed_seconds();

      const double hit_rate =
          100.0 * hits / static_cast<double>(total);
      char rate[32], rps[32];
      std::snprintf(rate, sizeof(rate), "%.1f%%", hit_rate);
      std::snprintf(rps, sizeof(rps), "%.1f",
                    static_cast<double>(total) / wall);
      rows.push_back(
          {kind == smt::BackendKind::kZ3 ? "z3" : "minipb",
           std::to_string(dup_pct) + "%", std::to_string(total),
           std::to_string(distinct), rps, rate,
           std::to_string(
               service.metrics().counter_value("solver_probes_total")),
           bench::fmt_seconds(wall), rejected == 0 ? "ok" : "REJECTED"});
    }
  }
  bench::emit("service_throughput",
              "Service throughput vs duplicate-request ratio "
              "(cache + single-flight coalescing)",
              {"backend", "dup", "requests", "distinct", "req/s",
               "hit rate", "probes", "wall(s)", "admission"},
              rows);
  return 0;
}
