// Fig. 4(b) — model synthesis time vs. the number of routers (fixed host
// count), at two connectivity-requirement volumes.
//
// Expected shape (paper §V-B): the flow count is unchanged, but a larger
// core distributes the hosts across more candidate placement links, so the
// search grows — roughly quadratically in the router count.
#include "common/workloads.h"

int main() {
  using namespace cs;
  const int hosts = bench::full_mode() ? 20 : 14;
  const std::vector<int> router_counts =
      bench::full_mode() ? std::vector<int>{8, 10, 12, 14, 16, 20}
                         : std::vector<int>{8, 12, 16, 20};
  const double cr_volumes[] = {0.10, 0.20};

  std::vector<std::vector<std::string>> rows;
  for (const int routers : router_counts) {
    std::vector<std::string> row{std::to_string(routers)};
    {
      // Model size grows with the core even when a modern solver's time
      // does not: report the clause count alongside (see EXPERIMENTS.md).
      const model::ProblemSpec spec = bench::make_eval_spec(
          hosts, routers, 0.10, 2000 + static_cast<std::uint64_t>(routers));
      synth::Synthesizer probe(spec, bench::options());
      row.push_back(std::to_string(probe.encoding_stats().clauses));
    }
    for (const double cr : cr_volumes) {
      // Isolation 4 makes device placement load-bearing, so the larger
      // core's bigger placement search shows up in the timing; median of
      // three seeds tames per-network variance.
      const model::Sliders sliders{util::Fixed::from_int(4),
                                   util::Fixed::from_int(3),
                                   util::Fixed::from_int(10 * hosts)};
      bool decided = true;
      const double median = bench::median_synthesis_seconds(
          hosts, routers, cr, 2000 + static_cast<std::uint64_t>(routers), 3,
          sliders, &decided);
      row.push_back(bench::fmt_seconds(median) +
                    (decided ? "" : " (timeout)"));
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig4b_time_vs_routers",
              "Fig 4(b): synthesis time vs number of routers",
              {"routers", "clauses", "time(s)@10%CR", "time(s)@20%CR"},
              rows);
  return 0;
}
