// Fig. 3(a) — maximum possible isolation vs. the usability constraint,
// under two deployment-cost constraints ($10K and $20K on the example
// network).
//
// Expected shape (paper §V-A): isolation decreases as the usability floor
// rises; connectivity requirements cap isolation even at usability 0; the
// higher budget curve dominates the lower one and the gap narrows at high
// usability values.
#include "common/workloads.h"
#include "synth/optimizer.h"
#include "topology/generator.h"

int main() {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  const util::Fixed budgets[] = {util::Fixed::from_int(10),
                                 util::Fixed::from_int(20)};
  const int step = bench::full_mode() ? 1 : 2;

  std::vector<std::vector<std::string>> rows;
  for (int u = 0; u <= 10; u += step) {
    std::vector<std::string> row{std::to_string(u)};
    for (const util::Fixed budget : budgets) {
      // Fresh synthesizer per point: the binary search accumulates guard
      // constraints, and carrying them across the whole sweep slows every
      // later probe.
      synth::Synthesizer synthesizer(spec, bench::options());
      const synth::OptimizeResult best = synth::maximize_isolation(
          synthesizer, spec, util::Fixed::from_int(u), budget);
      row.push_back(best.feasible ? best.metrics.isolation.to_string() +
                                        (best.exact ? "" : " (>=)")
                    : best.exact ? "infeasible"
                                 : "timeout");
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig3a_isolation_vs_usability",
              "Fig 3(a): max isolation vs usability constraint",
              {"usability", "isolation@$10K", "isolation@$20K"}, rows);
  return 0;
}
