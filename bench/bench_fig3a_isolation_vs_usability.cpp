// Fig. 3(a) — maximum possible isolation vs. the usability constraint,
// under two deployment-cost constraints ($10K and $20K on the example
// network).
//
// Expected shape (paper §V-A): isolation decreases as the usability floor
// rises; connectivity requirements cap isolation even at usability 0; the
// higher budget curve dominates the lower one and the gap narrows at high
// usability values.
//
// The grid runs on the sweep engine twice: once cold (fresh synthesizer
// per point) and once warm-started (encode once per worker, swap threshold
// assumptions — synth/sweep.h). The emitted table comes from the cold run;
// the warm run must reproduce every *decided* cell (a converged bound is a
// property of the formula, identical in both modes), and the closing
// effort lines show what warm start saves in encode time and solver
// conflicts. Cells whose search hit the effort cap are excluded from the
// comparison: a capped probe's verdict depends on learnt state, which warm
// reuse deliberately changes. `--jobs N` (or CS_BENCH_JOBS) solves the
// points on N workers with output byte-identical to the serial run.
#include "common/workloads.h"
#include "synth/sweep.h"
#include "topology/generator.h"

int main(int argc, char** argv) {
  using namespace cs;
  // `--trace-out <file>`: per-worker sweep-point spans (warm/cold
  // tagged), encoder-phase spans, and solver counter timelines.
  const bench::TraceGuard trace(argc, argv);
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  const std::vector<util::Fixed> budgets = {util::Fixed::from_int(10),
                                            util::Fixed::from_int(20)};
  const int step = bench::full_mode() ? 1 : 2;
  std::vector<util::Fixed> floors;
  for (int u = 0; u <= 10; u += step)
    floors.push_back(util::Fixed::from_int(u));

  synth::SweepRequest request =
      synth::SweepRequest::max_isolation_grid(floors, budgets);
  request.synthesis = bench::sweep_options();
  request.jobs = bench::jobs(argc, argv);
  const synth::SweepEngine engine(spec);
  const synth::SweepResult cold = engine.run(request);
  request.warm_start = true;
  const synth::SweepResult warm = engine.run(request);

  // Floor-major, budget-minor grid order: one row per floor.
  const auto render = [&](const synth::SweepResult& sweep) {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < sweep.points.size(); i += budgets.size()) {
      std::vector<std::string> row{
          sweep.points[i].point.usability.to_string()};
      for (std::size_t b = 0; b < budgets.size(); ++b)
        row.push_back(bench::fmt_isolation_cell(sweep.points[i + b]));
      rows.push_back(std::move(row));
    }
    return rows;
  };
  const std::vector<std::vector<std::string>> rows = render(cold);
  bench::emit("fig3a_isolation_vs_usability",
              "Fig 3(a): max isolation vs usability constraint",
              {"usability", "isolation@$10K", "isolation@$20K"}, rows);
  bench::print_sweep_effort("cold", cold);
  bench::print_sweep_effort("warm", warm);

  // Warm/cold agreement, decided cells only (see the header comment).
  const std::vector<std::vector<std::string>> warm_rows = render(warm);
  int decided = 0, capped = 0, diverged = 0;
  for (std::size_t i = 0; i < cold.points.size(); ++i) {
    const std::size_t r = i / budgets.size(), c = 1 + i % budgets.size();
    if (!cold.points[i].search.exact || !warm.points[i].search.exact) {
      ++capped;
    } else if (warm_rows[r][c] != rows[r][c]) {
      ++diverged;
    } else {
      ++decided;
    }
  }
  std::printf(
      "warm run reproduces the cold table: %s "
      "(%d decided cell(s) agree, %d capped cell(s) not comparable)\n",
      diverged == 0 ? "yes" : "NO — decided bounds diverged", decided,
      capped);
  return diverged == 0 ? 0 : 1;
}
