// Fig. 3(a) — maximum possible isolation vs. the usability constraint,
// under two deployment-cost constraints ($10K and $20K on the example
// network).
//
// Expected shape (paper §V-A): isolation decreases as the usability floor
// rises; connectivity requirements cap isolation even at usability 0; the
// higher budget curve dominates the lower one and the gap narrows at high
// usability values.
//
// The grid runs on the sweep engine: `--jobs N` (or CS_BENCH_JOBS) solves
// the points on N workers with output byte-identical to the serial run —
// each point is an independent fresh-synthesizer bound search.
#include "common/workloads.h"
#include "synth/sweep.h"
#include "topology/generator.h"

int main(int argc, char** argv) {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  const std::vector<util::Fixed> budgets = {util::Fixed::from_int(10),
                                            util::Fixed::from_int(20)};
  const int step = bench::full_mode() ? 1 : 2;
  std::vector<util::Fixed> floors;
  for (int u = 0; u <= 10; u += step)
    floors.push_back(util::Fixed::from_int(u));

  synth::SweepRequest request =
      synth::SweepRequest::max_isolation_grid(floors, budgets);
  request.synthesis = bench::sweep_options();
  request.jobs = bench::jobs(argc, argv);
  const synth::SweepResult sweep = synth::SweepEngine(spec).run(request);

  // Floor-major, budget-minor grid order: one row per floor.
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep.points.size(); i += budgets.size()) {
    std::vector<std::string> row{
        sweep.points[i].point.usability.to_string()};
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const synth::BoundSearchResult& best = sweep.points[i + b].search;
      row.push_back(best.feasible ? best.metrics.isolation.to_string() +
                                        (best.exact ? "" : " (>=)")
                    : best.exact ? "infeasible"
                                 : "timeout");
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig3a_isolation_vs_usability",
              "Fig 3(a): max isolation vs usability constraint",
              {"usability", "isolation@$10K", "isolation@$20K"}, rows);
  std::printf("(%d worker(s), %.3fs wall, %d probes)\n", sweep.jobs,
              sweep.wall_seconds, sweep.total_probes);
  return 0;
}
