// Ablation A4 — host-level isolation patterns (§VII extension).
//
// Sweeps the isolation floor and compares the minimum budget at which the
// network-only model and the extended model (host firewall $1K, antivirus
// $0.5K per host) become satisfiable. Expected: at low isolation floors
// host-level patterns cover the open flows for a fraction of a network
// device's price; at high floors they stop helping (their scores are
// capped well below access-deny).
#include "common/workloads.h"
#include "synth/optimizer.h"
#include "synth/synthesizer.h"

namespace {

/// Smallest budget ($K) making the isolation floor satisfiable; -1 if
/// none up to max_k does.
int min_feasible_budget(const cs::model::ProblemSpec& base,
                        cs::util::Fixed isolation, int max_k) {
  using namespace cs;
  synth::Synthesizer synth(base, bench::options());
  synth::MinCostOptions opts;
  opts.max_budget = util::Fixed::from_int(max_k);
  const synth::BoundSearchResult r = synth::minimize_cost(
      synth, base, isolation, util::Fixed{}, opts);
  if (!r.feasible) return -1;
  return static_cast<int>(r.bound.to_double() + 0.5);
}

}  // namespace

int main() {
  using namespace cs;
  const int hosts = bench::full_mode() ? 14 : 8;
  const int routers = 10;
  const int budget_cap = 40 * hosts;

  std::vector<std::vector<std::string>> rows;
  for (const double iso : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    model::ProblemSpec plain =
        bench::make_eval_spec(hosts, routers, 0.10, 11000);
    model::ProblemSpec extended =
        bench::make_eval_spec(hosts, routers, 0.10, 11000);
    extended.host_patterns = model::HostPatternConfig::defaults();

    const util::Fixed floor = util::Fixed::from_double(iso);
    const int plain_budget = min_feasible_budget(plain, floor, budget_cap);
    const int ext_budget = min_feasible_budget(extended, floor, budget_cap);
    rows.push_back(
        {floor.to_string(),
         plain_budget < 0 ? "infeasible" : std::to_string(plain_budget),
         ext_budget < 0 ? "infeasible" : std::to_string(ext_budget)});
  }
  bench::emit("ablation_host_patterns",
              "Ablation A4: minimum budget ($K) to reach an isolation "
              "floor, network-only vs +host-level patterns",
              {"isolation floor", "network-only $K", "+host patterns $K"},
              rows);
  return 0;
}
