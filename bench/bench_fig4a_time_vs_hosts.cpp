// Fig. 4(a) — model synthesis time vs. the number of hosts, at two
// connectivity-requirement volumes (10% and 20% of all flows).
//
// Expected shape (paper §V-B): super-quadratic growth in the host count
// (the flow count is O(N²)), with the 20% CR curve above the 10% curve.
//
// --topology mesh|fat-tree|campus|isp (default mesh) swaps the paper's
// random mesh for a structured fabric (topology/structured.h) with the
// same random workload, so the curve can be read per network family.
#include "common/workloads.h"
#include "util/error.h"

int main(int argc, char** argv) {
  using namespace cs;
  topology::TopologyKind kind = topology::TopologyKind::kMesh;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--topology") {
        CS_REQUIRE(i + 1 < argc, "--topology needs a value");
        kind = topology::topology_kind_from_name(argv[++i]);
      } else {
        throw util::SpecError("unknown flag '" + flag + "'");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const std::string topo(topology::topology_kind_name(kind));
  const std::vector<int> host_counts =
      bench::full_mode() ? std::vector<int>{10, 20, 30, 40, 50}
                         : std::vector<int>{6, 10, 14, 18};
  const double cr_volumes[] = {0.10, 0.20};

  std::vector<std::vector<std::string>> rows;
  for (const int hosts : host_counts) {
    const int routers = std::clamp(8 + hosts / 5, 8, 20);
    std::vector<std::string> row{std::to_string(hosts)};
    for (const double cr : cr_volumes) {
      const model::ProblemSpec spec = bench::make_eval_spec(
          kind, hosts, routers, cr, 1000 + static_cast<std::uint64_t>(hosts));
      const model::Sliders sliders{
          util::Fixed::from_int(3), util::Fixed::from_int(3),
          util::Fixed::from_int(10 * hosts)};  // budget scales with size
      const bench::TimedRun run = bench::run_synthesis(spec, sliders);
      row.push_back(bench::fmt_seconds(run.seconds) +
                    (run.status == smt::CheckResult::kSat ? "" : " (unsat)"));
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig4a_time_vs_hosts",
              "Fig 4(a): synthesis time vs number of hosts (" + topo + ")",
              {"hosts", "time(s)@10%CR", "time(s)@20%CR"}, rows);
  return 0;
}
