// Fig. 7 (churn extension) — incremental re-synthesis under topology
// churn vs. cold re-solves, on structured topologies.
//
// The paper synthesizes once; real deployments mutate. This bench
// replays a seeded stream of single-op cs-delta-v1 deltas (docs/
// DELTAS.md) against a live synth::Synthesizer via apply_delta and,
// for every step, also cold-solves the post-delta spec on a fresh
// synthesizer with the same options. The op mix models operational
// churn: mostly threshold retunes and policy edits, occasional flow
// changes, rare link failures and host arrivals/departures.
//
// Per step the bench asserts the incremental verdict equals the cold
// verdict (the apply_delta contract; any decided-vs-decided difference
// is counted in verdict_mismatches and hard-fails the artifact check),
// certifies the incremental design with analysis::check_design when
// SAT, and — on the deterministic replay/full tiers — compares the
// designs byte-for-byte. Steps where either side returns kUnknown are
// counted `capped` and excluded from certification: a cold reference
// that burns its whole effort budget on a formula the warm solver's
// learnt state decides is the asymmetry being measured, not a bug.
// Streams are independent per host count and seeded, so results are
// byte-identical at any --jobs value.
//
// Flags:
//   --topology <name>     mesh|fat-tree|campus|isp (default fat-tree)
//   --hosts <n1,n2,...>   host counts (default 100,300;
//                         CS_BENCH_FULL=1 appends 1000)
//   --steps <n>           delta ops per stream (default 40)
//   --jobs <N>            concurrent streams (default 1; 0 = one per
//                         hardware thread — results are byte-identical
//                         at any value)
//   --out <file>          JSON artifact path (BENCH_churn.json)
//   --trace-out <file>    Chrome-trace-event timeline
//
// The artifact (schema cs-bench-churn-v1) is validated, and compared
// against bench/baselines/BENCH_churn.json, by scripts/check_bench.py.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "common/workloads.h"
#include "model/delta.h"
#include "topology/structured.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cs;

struct StepRecord {
  std::string op_class;  // "retune" | "uic" | "flow" | "link" | "host"
  std::string path;      // "warm" | "retract" | "replay" | "full"
  double inc_seconds = 0;
  double cold_seconds = 0;
  bool capped = false;  // either side kUnknown: effort cap, not a verdict
  bool verdict_mismatch = false;
  bool invalid_design = false;
  bool design_compared = false;  // replay/full with both sides SAT
  bool design_matched = false;
};

/// One aggregated artifact row: a (topology, hosts, op_class) cell.
struct ChurnRun {
  std::string topology;
  int hosts = 0;
  std::string op_class;  // per-class rows plus an "all" aggregate
  int steps = 0;
  double inc_median_seconds = 0;
  double cold_median_seconds = 0;
  double speedup_median = 0;
  int capped = 0;  // steps where either side hit its effort cap
  int verdict_mismatches = 0;
  int invalid_designs = 0;
  int design_comparisons = 0;
  int design_matches = 0;
  int warm = 0, retract = 0, replay = 0, full = 0;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) / 2];
}

/// Deterministic churn-stream generator. Op mix: retune 35%, policy
/// (UIC add/remove) 25%, flow add/remove 20%, link fail/restore 10%,
/// host add/remove 10%. Removals only target objects the stream itself
/// added (plus link restores of its own failures), so every delta is
/// valid against the evolving spec by construction.
class ChurnGenerator {
 public:
  ChurnGenerator(std::uint64_t seed, int hosts) : rng_(seed), hosts_(hosts) {}

  model::SpecDelta next(const model::ProblemSpec& cur,
                        std::string* op_class) {
    const double r = rng_.uniform01();
    model::DeltaOp op;
    if (r < 0.35) {
      *op_class = "retune";
      op = retune();
    } else if (r < 0.60) {
      *op_class = "uic";
      op = uic(cur);
    } else if (r < 0.80) {
      *op_class = "flow";
      op = flow(cur);
    } else if (r < 0.90) {
      *op_class = "link";
      op = link(cur, op_class);
    } else {
      *op_class = "host";
      op = host(cur);
    }
    return model::SpecDelta{{std::move(op)}};
  }

 private:
  const std::string& host_name(const model::ProblemSpec& cur, int i) {
    // Base (non-churn) hosts only: names are stable across the stream.
    const auto& hs = cur.network.hosts();
    return cur.network
        .node(hs[static_cast<std::size_t>(((i % hosts_) + hosts_) % hosts_)])
        .name;
  }

  model::DeltaOp retune() {
    model::DeltaOp op;
    op.kind = model::DeltaOpKind::kRetune;
    // At least one knob; each present with p=1/2, isolation as default.
    const bool iso = rng_.chance(0.5);
    const bool usab = rng_.chance(0.5);
    const bool budget = rng_.chance(0.5);
    if (iso || (!usab && !budget))
      op.isolation = util::Fixed::from_double(
          static_cast<double>(rng_.uniform(50, 90)) / 10.0);
    if (usab)
      op.usability = util::Fixed::from_double(
          static_cast<double>(rng_.uniform(30, 55)) / 10.0);
    if (budget)
      op.budget = util::Fixed::from_int(rng_.uniform(12, 20) * hosts_);
    return op;
  }

  model::DeltaOp uic(const model::ProblemSpec& cur) {
    model::DeltaOp op;
    if (!added_uics_.empty() && rng_.chance(0.4)) {
      op.kind = model::DeltaOpKind::kRemoveUic;
      const std::size_t at = static_cast<std::size_t>(
          rng_.uniform(0, static_cast<std::int64_t>(added_uics_.size()) - 1));
      op.uic = added_uics_[at];
      added_uics_.erase(added_uics_.begin() +
                        static_cast<std::ptrdiff_t>(at));
      return op;
    }
    // Strengthen a base WEB flow (i -> i+1, never removed by this
    // stream) with a non-denying pattern, so CR flows stay routable.
    static constexpr const char* kPatterns[] = {"trusted-comm",
                                                "payload-inspection",
                                                "proxy"};
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int i = static_cast<int>(rng_.uniform(0, hosts_ - 1));
      std::vector<std::string> uic{
          "forbid-flow", host_name(cur, i), host_name(cur, i + 1), "WEB",
          kPatterns[rng_.uniform(0, 2)]};
      if (std::find(added_uics_.begin(), added_uics_.end(), uic) !=
          added_uics_.end())
        continue;  // set semantics: add-uic rejects duplicates
      op.kind = model::DeltaOpKind::kAddUic;
      op.uic = uic;
      added_uics_.push_back(std::move(uic));
      return op;
    }
    return retune();  // saturated; keep the stream moving
  }

  model::DeltaOp flow(const model::ProblemSpec& cur) {
    model::DeltaOp op;
    op.service = "WEB";
    if (!added_flows_.empty() && rng_.chance(0.5)) {
      op.kind = model::DeltaOpKind::kRemoveFlow;
      const std::size_t at = static_cast<std::size_t>(rng_.uniform(
          0, static_cast<std::int64_t>(added_flows_.size()) - 1));
      op.a = added_flows_[at].first;
      op.b = added_flows_[at].second;
      added_flows_.erase(added_flows_.begin() +
                         static_cast<std::ptrdiff_t>(at));
      return op;
    }
    // (i, i+3, WEB) never exists in the locality workload (WEB spans 1,
    // DB 2, SSH n/2), so only this stream's own additions can collide.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int i = static_cast<int>(rng_.uniform(0, hosts_ - 1));
      std::pair<std::string, std::string> pair{host_name(cur, i),
                                               host_name(cur, i + 3)};
      if (std::find(added_flows_.begin(), added_flows_.end(), pair) !=
          added_flows_.end())
        continue;
      op.kind = model::DeltaOpKind::kAddFlow;
      op.a = pair.first;
      op.b = pair.second;
      op.connectivity_required = rng_.chance(0.3);
      added_flows_.push_back(std::move(pair));
      return op;
    }
    return retune();
  }

  model::DeltaOp link(const model::ProblemSpec& cur, std::string* op_class) {
    model::DeltaOp op;
    if (!failed_links_.empty() && rng_.chance(0.5)) {
      op.kind = model::DeltaOpKind::kRestoreLink;
      op.a = failed_links_.back().first;
      op.b = failed_links_.back().second;
      failed_links_.pop_back();
      return op;
    }
    // Fail a redundant router-router link: probe candidates with a real
    // apply (cheap next to any solve) and take the first that keeps the
    // network connected.
    const auto& links = cur.network.links();
    const std::size_t start = static_cast<std::size_t>(
        rng_.uniform(0, static_cast<std::int64_t>(links.size()) - 1));
    for (std::size_t k = 0; k < links.size(); ++k) {
      const topology::Link& l = links[(start + k) % links.size()];
      if (!cur.network.is_router(l.a) || !cur.network.is_router(l.b))
        continue;
      model::DeltaOp candidate;
      candidate.kind = model::DeltaOpKind::kFailLink;
      candidate.a = cur.network.node(l.a).name;
      candidate.b = cur.network.node(l.b).name;
      try {
        model::apply_delta(cur, model::SpecDelta{{candidate}});
      } catch (const util::Error&) {
        continue;  // bridge link: failing it would disconnect
      }
      failed_links_.emplace_back(candidate.a, candidate.b);
      return candidate;
    }
    *op_class = "retune";  // no redundant link left; keep moving
    return retune();
  }

  model::DeltaOp host(const model::ProblemSpec& cur) {
    model::DeltaOp op;
    if (!added_hosts_.empty() && rng_.chance(0.5)) {
      op.kind = model::DeltaOpKind::kRemoveHost;
      op.a = added_hosts_.back();
      added_hosts_.pop_back();
      return op;
    }
    op.kind = model::DeltaOpKind::kAddHost;
    op.a = "churn-h" + std::to_string(next_host_++);
    const auto& routers = cur.network.routers();
    op.b = cur.network
               .node(routers[static_cast<std::size_t>(rng_.uniform(
                   0, static_cast<std::int64_t>(routers.size()) - 1))])
               .name;
    added_hosts_.push_back(op.a);
    return op;
  }

  util::Rng rng_;
  int hosts_;
  int next_host_ = 0;
  std::vector<std::vector<std::string>> added_uics_;
  std::vector<std::pair<std::string, std::string>> added_flows_;
  std::vector<std::pair<std::string, std::string>> failed_links_;
  std::vector<std::string> added_hosts_;
};

std::vector<StepRecord> run_stream(topology::TopologyKind kind, int hosts,
                                   int steps,
                                   const synth::SynthesisOptions& options) {
  auto spec = std::make_shared<const model::ProblemSpec>(
      bench::make_locality_spec(kind, hosts,
                                6000 + static_cast<std::uint64_t>(hosts)));
  synth::Synthesizer inc(spec, options);
  inc.synthesize();  // the pre-churn solve every delta is warm against

  ChurnGenerator gen(9000 + static_cast<std::uint64_t>(hosts), hosts);
  std::vector<StepRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    StepRecord rec;
    const model::SpecDelta delta = gen.next(inc.spec(), &rec.op_class);

    util::Stopwatch inc_watch;
    const synth::DeltaApplyReport report = inc.apply_delta(delta);
    rec.inc_seconds = inc_watch.elapsed_seconds();
    rec.path = report.path;

    // Cold reference: fresh synthesizer on the post-delta spec, same
    // options (cold wall clock includes the encode, the paper's
    // definition).
    const model::ProblemSpec& post = inc.spec();
    util::Stopwatch cold_watch;
    synth::Synthesizer cold(post, options);
    const synth::SynthesisResult cold_result = cold.synthesize();
    rec.cold_seconds = cold_watch.elapsed_seconds();

    // A kUnknown on either side is an effort cap, not a verdict: the
    // cold reference can burn its whole budget on a formula the warm
    // solver's learnt state decides instantly (that asymmetry is the
    // *point* of the incremental path). Capped steps keep their wall
    // times but are excluded from certification — a decided-vs-decided
    // disagreement is still a hard failure.
    rec.capped = report.result.status == smt::CheckResult::kUnknown ||
                 cold_result.status == smt::CheckResult::kUnknown;
    rec.verdict_mismatch =
        !rec.capped && report.result.status != cold_result.status;
    if (rec.verdict_mismatch)
      std::fprintf(stderr,
                   "VERDICT MISMATCH %d hosts step %d (%s, %s): %s\n",
                   hosts, s, rec.op_class.c_str(), rec.path.c_str(),
                   model::render_delta(delta).c_str());
    if (report.result.design.has_value()) {
      const analysis::CheckReport check =
          analysis::check_design(post, *report.result.design,
                                 /*check_thresholds=*/false);
      rec.invalid_design = !check.ok();
      if (rec.invalid_design)
        std::fprintf(stderr, "INVALID DESIGN %d hosts step %d: %s\n", hosts,
                     s, check.to_string().c_str());
    }
    // Replay/full rebuild deterministically, so the witness — not just
    // the verdict — must match the cold one bit for bit.
    if ((rec.path == "replay" || rec.path == "full") &&
        report.result.design.has_value() &&
        cold_result.design.has_value()) {
      rec.design_compared = true;
      rec.design_matched = *report.result.design == *cold_result.design;
      if (!rec.design_matched)
        std::fprintf(stderr, "DESIGN MISMATCH %d hosts step %d (%s)\n",
                     hosts, s, rec.path.c_str());
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<ChurnRun> aggregate(const std::string& topo, int hosts,
                                const std::vector<StepRecord>& records) {
  // Per-class cells first (stable order), then the "all" aggregate.
  std::vector<std::string> classes{"retune", "uic", "flow", "link", "host",
                                   "all"};
  std::vector<ChurnRun> runs;
  for (const std::string& cls : classes) {
    ChurnRun run;
    run.topology = topo;
    run.hosts = hosts;
    run.op_class = cls;
    std::vector<double> inc, cold;
    for (const StepRecord& r : records) {
      if (cls != "all" && r.op_class != cls) continue;
      ++run.steps;
      inc.push_back(r.inc_seconds);
      cold.push_back(r.cold_seconds);
      run.capped += r.capped ? 1 : 0;
      run.verdict_mismatches += r.verdict_mismatch ? 1 : 0;
      run.invalid_designs += r.invalid_design ? 1 : 0;
      run.design_comparisons += r.design_compared ? 1 : 0;
      run.design_matches += r.design_matched ? 1 : 0;
      if (r.path == "warm") ++run.warm;
      if (r.path == "retract") ++run.retract;
      if (r.path == "replay") ++run.replay;
      if (r.path == "full") ++run.full;
    }
    if (run.steps == 0) continue;  // mix didn't draw this class
    run.inc_median_seconds = median(inc);
    run.cold_median_seconds = median(cold);
    run.speedup_median = run.inc_median_seconds > 0
                             ? run.cold_median_seconds /
                                   run.inc_median_seconds
                             : 0;
    runs.push_back(std::move(run));
  }
  return runs;
}

void write_json(const std::string& path, const std::vector<ChurnRun>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"cs-bench-churn-v1\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ChurnRun& r = runs[i];
    std::fprintf(
        f,
        "    {\"topology\": \"%s\", \"hosts\": %d, \"op_class\": \"%s\", "
        "\"steps\": %d,\n"
        "     \"inc_median_seconds\": %.6f, \"cold_median_seconds\": %.6f, "
        "\"speedup_median\": %.3f, \"capped\": %d,\n"
        "     \"verdict_mismatches\": %d, \"invalid_designs\": %d, "
        "\"design_comparisons\": %d, \"design_matches\": %d,\n"
        "     \"warm\": %d, \"retract\": %d, \"replay\": %d, \"full\": "
        "%d}%s\n",
        r.topology.c_str(), r.hosts, r.op_class.c_str(), r.steps,
        r.inc_median_seconds, r.cold_median_seconds, r.speedup_median,
        r.capped, r.verdict_mismatches, r.invalid_designs,
        r.design_comparisons, r.design_matches, r.warm, r.retract, r.replay,
        r.full, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs;
  bench::TraceGuard trace(argc, argv);
  topology::TopologyKind kind = topology::TopologyKind::kFatTree;
  std::vector<int> host_counts{100, 300};
  if (bench::full_mode()) host_counts.push_back(1000);
  int steps = 40;
  std::string out_path = "BENCH_churn.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        CS_REQUIRE(i + 1 < argc, "flag " + flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--topology") {
        kind = topology::topology_kind_from_name(next());
      } else if (flag == "--hosts") {
        host_counts.clear();
        for (const std::string& part : util::split(next(), ','))
          host_counts.push_back(
              static_cast<int>(util::parse_int(part, "hosts")));
        CS_REQUIRE(!host_counts.empty(), "--hosts wants n1,n2,...");
      } else if (flag == "--steps") {
        steps = static_cast<int>(util::parse_int(next(), "steps"));
        CS_REQUIRE(steps > 0, "--steps must be positive");
      } else if (flag == "--out") {
        out_path = next();
      } else if (flag == "--jobs" || flag == "--trace-out") {
        next();  // consumed by bench::jobs / TraceGuard
      } else {
        throw util::SpecError("unknown flag '" + flag + "'");
      }
    }

    synth::SynthesisOptions options = bench::sweep_options();
    // The whole point: policy-only deltas retract instead of re-encode.
    // The cold reference uses the same options, so verdict and design
    // comparisons are against the identical formula.
    options.retractable_sections = true;
    const int jobs = bench::jobs(argc, argv);
    const std::string topo(topology::topology_kind_name(kind));

    // One stream per host count; streams share nothing and are fully
    // seeded, so running them on a pool changes wall time only.
    std::vector<std::vector<StepRecord>> streams(host_counts.size());
    {
      util::ThreadPool pool(static_cast<std::size_t>(
          jobs == 0 ? util::ThreadPool::hardware_jobs()
                    : std::max(1, jobs)));
      std::vector<std::future<void>> futs;
      for (std::size_t i = 0; i < host_counts.size(); ++i)
        futs.push_back(pool.submit([&, i] {
          streams[i] = run_stream(kind, host_counts[i], steps, options);
        }));
      for (auto& f : futs) f.get();
    }

    std::vector<ChurnRun> runs;
    std::vector<std::vector<std::string>> rows;
    int mismatches = 0;
    for (std::size_t i = 0; i < host_counts.size(); ++i) {
      std::vector<ChurnRun> stream_runs =
          aggregate(topo, host_counts[i], streams[i]);
      for (ChurnRun& run : stream_runs) {
        mismatches += run.verdict_mismatches + run.invalid_designs +
                      (run.design_comparisons - run.design_matches);
        rows.push_back(
            {std::to_string(run.hosts), run.op_class,
             std::to_string(run.steps), std::to_string(run.capped),
             bench::fmt_seconds(run.inc_median_seconds),
             bench::fmt_seconds(run.cold_median_seconds),
             util::Fixed::from_double(run.speedup_median).to_string() + "x",
             std::to_string(run.warm) + "/" + std::to_string(run.retract) +
                 "/" + std::to_string(run.replay) + "/" +
                 std::to_string(run.full)});
        runs.push_back(std::move(run));
      }
    }

    bench::emit("fig7_churn",
                std::string("Fig 7: incremental vs cold re-synthesis "
                            "under churn (") +
                    topo + ", " + std::to_string(steps) + " ops/stream)",
                {"hosts", "ops", "steps", "capped", "inc med(s)",
                 "cold med(s)", "speedup", "warm/retract/replay/full"},
                rows);
    write_json(out_path, runs);
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "error: %d verdict/design certification failure(s)\n",
                   mismatches);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
