// Ablation A1 — SMT top-down synthesis vs. the greedy bottom-up baseline.
//
// For a set of generated networks, compares the isolation achieved by the
// greedy baseline against the SMT optimizer's maximum, under identical
// usability and budget constraints. Expected: the baseline never wins, and
// on budget-tight instances it is clearly worse, which quantifies the
// paper's §II claim for top-down design automation.
#include "common/workloads.h"
#include "synth/baseline.h"
#include "synth/optimizer.h"

int main() {
  using namespace cs;
  const int nets = bench::full_mode() ? 8 : 4;
  std::vector<std::vector<std::string>> rows;
  for (int n = 0; n < nets; ++n) {
    const int hosts = 6 + 2 * n;
    const int routers = std::clamp(6 + hosts / 4, 6, 14);
    model::ProblemSpec spec = bench::make_eval_spec(
        hosts, routers, 0.10, 7000 + static_cast<std::uint64_t>(n));
    spec.sliders = model::Sliders{util::Fixed{}, util::Fixed::from_int(4),
                                  util::Fixed::from_int(8 * hosts)};

    const synth::BaselineResult greedy = synth::greedy_baseline(spec);

    synth::Synthesizer synthesizer(
        spec, bench::options());
    const synth::BoundSearchResult best = synth::maximize_isolation(
        synthesizer, spec, spec.sliders.usability, spec.sliders.budget);

    rows.push_back(
        {std::to_string(hosts), std::to_string(spec.flows.size()),
         greedy.metrics.isolation.to_string(),
         best.feasible ? best.metrics.isolation.to_string() +
                             (best.exact ? "" : " (>=)")
                       : "infeasible",
         bench::fmt_seconds(greedy.seconds),
         bench::fmt_seconds(best.solve_seconds)});
  }
  bench::emit("ablation_baseline",
              "Ablation A1: greedy bottom-up vs SMT top-down (isolation "
              "achieved under usability >= 4, budget $8K/host)",
              {"hosts", "flows", "greedy isolation", "smt isolation",
               "greedy time(s)", "smt time(s)"},
              rows);
  return 0;
}
