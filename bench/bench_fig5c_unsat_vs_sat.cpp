// Fig. 5(c) — synthesis time of unsatisfiable vs. satisfiable instances as
// the network grows.
//
// Expected shape (paper §V-B): the UNSAT curve sits above the SAT curve —
// proving that no design exists requires exhausting all options, while a
// SAT run can stop at the first model. The paper's unsatisfiable cases are
// "very tight constraints": we reproduce that by first finding the maximum
// feasible isolation, then timing a probe just below it (SAT) against a
// probe just above it (barely UNSAT). Far-infeasible sliders would be
// refuted by bound propagation instantly and invert the figure.
#include "common/workloads.h"
#include "synth/optimizer.h"

int main() {
  using namespace cs;
  const std::vector<int> host_counts =
      bench::full_mode() ? std::vector<int>{10, 20, 30, 40}
                         : std::vector<int>{6, 10, 14};

  std::vector<std::vector<std::string>> rows;
  for (const int hosts : host_counts) {
    const int routers = std::clamp(8 + hosts / 5, 8, 20);
    const model::ProblemSpec spec = bench::make_eval_spec(
        hosts, routers, 0.10, 5000 + static_cast<std::uint64_t>(hosts));
    const util::Fixed usability = util::Fixed::from_int(3);
    const util::Fixed budget = util::Fixed::from_int(10 * hosts);

    // Locate the feasibility boundary (not timed).
    synth::Synthesizer scout(spec, bench::options());
    const synth::BoundSearchResult max =
        synth::maximize_isolation(scout, spec, usability, budget);
    if (!max.feasible) continue;
    const util::Fixed sat_iso = max.bound - util::Fixed::from_double(0.5);

    const bench::TimedRun sat = bench::run_synthesis(
        spec, model::Sliders{sat_iso, usability, budget});
    // When the boundary scout was capped, the bound is only a lower
    // bound — step upward until the probe stops being satisfiable.
    util::Fixed unsat_iso =
        max.metrics.isolation + util::Fixed::from_double(0.25);
    bench::TimedRun unsat;
    for (int attempt = 0; attempt < 4; ++attempt) {
      unsat = bench::run_synthesis(
          spec, model::Sliders{unsat_iso, usability, budget});
      if (unsat.status != smt::CheckResult::kSat) break;
      unsat_iso = unsat_iso + util::Fixed::from_double(0.5);
    }
    const bool ok = sat.status == smt::CheckResult::kSat &&
                    unsat.status != smt::CheckResult::kSat;
    rows.push_back({std::to_string(hosts), bench::fmt_seconds(sat.seconds),
                    bench::fmt_seconds(unsat.seconds) +
                        (unsat.status == smt::CheckResult::kUnknown
                             ? " (timeout)"
                             : ""),
                    ok ? (max.exact ? "ok" : "ok (boundary approx)")
                       : "unexpected-verdict"});
  }
  bench::emit("fig5c_unsat_vs_sat",
              "Fig 5(c): satisfiable vs barely-unsatisfiable synthesis time",
              {"hosts", "sat time(s)", "unsat time(s)", "verdicts"}, rows);
  return 0;
}
