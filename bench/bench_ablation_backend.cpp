// Ablation A2 — Z3 backend vs. the from-scratch MiniPB backend.
//
// Runs identical synthesis problems through both backends and compares
// verdicts (must agree) and wall-clock time. Shows that the paper's model
// is solvable without an SMT solver at all: its constraint system is pure
// pseudo-Boolean.
#include "common/workloads.h"
#include "synth/synthesizer.h"
#include "util/timer.h"

int main() {
  using namespace cs;
  const std::vector<int> host_counts =
      bench::full_mode() ? std::vector<int>{8, 12, 16, 20, 24}
                         : std::vector<int>{6, 10, 14};

  std::vector<std::vector<std::string>> rows;
  for (const int hosts : host_counts) {
    const int routers = std::clamp(8 + hosts / 5, 8, 20);
    const model::ProblemSpec spec = bench::make_eval_spec(
        hosts, routers, 0.10, 8000 + static_cast<std::uint64_t>(hosts));
    const model::Sliders sliders{util::Fixed::from_int(3),
                                 util::Fixed::from_int(3),
                                 util::Fixed::from_int(10 * hosts)};

    std::string verdicts;
    std::vector<std::string> row{std::to_string(hosts),
                                 std::to_string(spec.flows.size())};
    for (const smt::BackendKind kind :
         {smt::BackendKind::kZ3, smt::BackendKind::kMiniPb}) {
      util::Stopwatch watch;
      synth::SynthesisOptions opts = bench::options();
      opts.backend = kind;
      synth::Synthesizer synthesizer(spec, opts);
      const synth::SynthesisResult r = synthesizer.synthesize(sliders);
      row.push_back(bench::fmt_seconds(watch.elapsed_seconds()));
      verdicts += r.status == smt::CheckResult::kSat ? "S" : "U";
    }
    row.push_back(verdicts == "SS" || verdicts == "UU" ? "agree"
                                                       : "DISAGREE");
    rows.push_back(std::move(row));
  }
  bench::emit("ablation_backend",
              "Ablation A2: Z3 vs MiniPB backend synthesis time",
              {"hosts", "flows", "z3 time(s)", "minipb time(s)", "verdicts"},
              rows);
  return 0;
}
