// Ablation A3 — sensitivity to the flow-route enumeration bound k.
//
// The placement constraints quantify over enumerated routes per host pair
// (DESIGN.md §6.2). This bench sweeps the bound: more routes mean more
// coverage clauses (safer placements, potentially higher cost and slower
// synthesis); k=1 models only the primary path.
#include "common/workloads.h"
#include "synth/metrics.h"
#include "synth/synthesizer.h"
#include "util/timer.h"

int main() {
  using namespace cs;
  const int hosts = bench::full_mode() ? 16 : 10;
  const int routers = 12;
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    model::ProblemSpec spec =
        bench::make_eval_spec(hosts, routers, 0.10, 9001);
    spec.route_options.max_routes = k;
    const model::Sliders sliders{util::Fixed::from_int(3),
                                 util::Fixed::from_int(3),
                                 util::Fixed::from_int(10 * hosts)};
    util::Stopwatch watch;
    synth::Synthesizer synthesizer(spec,
                                   bench::options());
    const synth::SynthesisResult r = synthesizer.synthesize(sliders);
    const double seconds = watch.elapsed_seconds();
    std::string cost = "-";
    if (r.status == smt::CheckResult::kSat)
      cost = synth::compute_metrics(spec, *r.design).cost.to_string();
    rows.push_back({std::to_string(k),
                    std::to_string(r.encoding.clauses),
                    bench::fmt_seconds(seconds), cost,
                    r.status == smt::CheckResult::kSat ? "sat" : "unsat"});
  }
  bench::emit("ablation_routes",
              "Ablation A3: route-enumeration bound k",
              {"k", "clauses", "time(s)", "design cost($K)", "status"},
              rows);
  return 0;
}
