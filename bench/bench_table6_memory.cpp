// Table VI — memory requirement (MB) vs. problem size, in two isolation
// scenarios (constraint 3 and constraint 5).
//
// Expected shape (paper §V-B): memory grows ~quadratically with the host
// count (the model size is dominated by per-flow variables), and the
// tighter isolation scenario needs somewhat more memory than the looser
// one.
#include "common/workloads.h"
#include "util/memory.h"

int main() {
  using namespace cs;
  const std::vector<int> host_counts =
      bench::full_mode() ? std::vector<int>{10, 20, 30, 40, 50}
                         : std::vector<int>{6, 10, 14};
  const util::Fixed scenarios[] = {util::Fixed::from_int(3),
                                   util::Fixed::from_int(5)};

  std::vector<std::vector<std::string>> rows;
  for (const int hosts : host_counts) {
    const int routers = std::clamp(8 + hosts / 5, 8, 20);
    std::vector<std::string> row{std::to_string(hosts)};
    for (const util::Fixed iso : scenarios) {
      const model::ProblemSpec spec = bench::make_eval_spec(
          hosts, routers, 0.10, 6000 + static_cast<std::uint64_t>(hosts));
      const model::Sliders sliders{iso, util::Fixed::from_int(3),
                                   util::Fixed::from_int(10 * hosts)};
      const bench::TimedRun run = bench::run_synthesis(spec, sliders);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f",
                    static_cast<double>(run.solver_memory_bytes) / 1e6);
      row.push_back(buf);
    }
    rows.push_back(std::move(row));
  }
  bench::emit("table6_memory",
              "Table VI: solver memory (MB) vs problem size",
              {"hosts", "MB@iso3", "MB@iso5"}, rows);
  return 0;
}
