// Fig. 5(b) — synthesis time vs. the deployment-cost constraint, at two
// usability constraints (3 and 5).
//
// Expected shape (paper §V-B): a small budget tightens the problem and
// costs time; as the budget grows the solver finds models faster, and past
// a point additional budget no longer changes the time.
#include "common/workloads.h"
#include "synth/synthesizer.h"

int main() {
  using namespace cs;
  const int hosts = bench::full_mode() ? 30 : 10;
  const int routers = std::clamp(8 + hosts / 5, 8, 20);
  const model::ProblemSpec spec =
      bench::make_eval_spec(hosts, routers, 0.10, 4243);
  const util::Fixed usabilities[] = {util::Fixed::from_int(3),
                                     util::Fixed::from_int(5)};
  const util::Fixed isolation = util::Fixed::from_int(3);
  const std::vector<int> budgets =
      bench::full_mode()
          ? std::vector<int>{25, 50, 75, 100, 150, 200, 250, 300}
          : std::vector<int>{25, 50, 100, 200};

  std::vector<std::vector<std::string>> rows;
  for (const int budget : budgets) {
    std::vector<std::string> row{std::to_string(budget)};
    for (const util::Fixed usab : usabilities) {
      util::Stopwatch watch;
      synth::Synthesizer synthesizer(
          spec, bench::options());
      const synth::SynthesisResult r = synthesizer.synthesize(
          model::Sliders{isolation, usab, util::Fixed::from_int(budget)});
      row.push_back(bench::fmt_seconds(watch.elapsed_seconds()) +
                    (r.status == smt::CheckResult::kSat ? "" : " (unsat)"));
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig5b_time_vs_cost",
              "Fig 5(b): synthesis time vs deployment cost constraint",
              {"budget($K)", "time(s)@U3", "time(s)@U5"}, rows);
  return 0;
}
