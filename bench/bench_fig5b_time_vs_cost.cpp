// Fig. 5(b) — synthesis time vs. the deployment-cost constraint, at two
// usability constraints (3 and 5).
//
// Expected shape (paper §V-B): a small budget tightens the problem and
// costs time; as the budget grows the solver finds models faster, and past
// a point additional budget no longer changes the time.
//
// The grid runs on the sweep engine (fresh synthesizer per point).
// `--jobs N` parallelizes the points; keep the default serial run when the
// per-point times themselves are the result.
#include "common/workloads.h"
#include "synth/sweep.h"

int main(int argc, char** argv) {
  using namespace cs;
  const int hosts = bench::full_mode() ? 30 : 10;
  const int routers = std::clamp(8 + hosts / 5, 8, 20);
  const model::ProblemSpec spec =
      bench::make_eval_spec(hosts, routers, 0.10, 4243);
  const std::vector<util::Fixed> usabilities = {util::Fixed::from_int(3),
                                                util::Fixed::from_int(5)};
  const util::Fixed isolation = util::Fixed::from_int(3);
  const std::vector<int> budgets =
      bench::full_mode()
          ? std::vector<int>{25, 50, 75, 100, 150, 200, 250, 300}
          : std::vector<int>{25, 50, 100, 200};

  std::vector<model::Sliders> grid;
  for (const int budget : budgets)
    for (const util::Fixed usab : usabilities)
      grid.push_back(model::Sliders{isolation, usab,
                                    util::Fixed::from_int(budget)});

  synth::SweepRequest request = synth::SweepRequest::feasibility_grid(grid);
  request.synthesis = bench::options();
  request.jobs = bench::jobs(argc, argv);
  const synth::SweepResult sweep = synth::SweepEngine(spec).run(request);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep.points.size();
       i += usabilities.size()) {
    std::vector<std::string> row{
        sweep.points[i].point.budget.to_string()};
    for (std::size_t u = 0; u < usabilities.size(); ++u) {
      const synth::SweepPointResult& p = sweep.points[i + u];
      row.push_back(bench::fmt_seconds(p.wall_seconds) +
                    (p.status == smt::CheckResult::kSat ? "" : " (unsat)"));
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig5b_time_vs_cost",
              "Fig 5(b): synthesis time vs deployment cost constraint",
              {"budget($K)", "time(s)@U3", "time(s)@U5"}, rows);
  std::printf("(%d worker(s), %.3fs wall, peak solver %.1f MB)\n",
              sweep.jobs, sweep.wall_seconds,
              static_cast<double>(sweep.peak_solver_memory_bytes) / 1e6);
  return 0;
}
