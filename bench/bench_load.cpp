// bench_load — closed-loop load harness for the cs-req-v1 TCP front-end.
//
// Default run: an in-process matrix. For each backend (z3, minipb — or
// just the one named with --backend) a TcpServer is started on an
// ephemeral loopback port and hammered with feasibility requests at 0%,
// 50% and 90% duplicate-key mixes; every request travels over a real
// socket through the full codec → admission → cache → solver path, so
// the reported rates are end-to-end wire numbers, not library calls.
//
//   --port <p> [--host <h>]  external mode: skip the in-process servers
//                            and fire at an already-running
//                            `configsynth_server --listen` (the CI
//                            load-smoke job does this); the --backend
//                            flag then only labels the runs.
//   --connections <N>        client connections, one thread each (4)
//   --requests <N>           requests per connection per cell (50)
//   --mode closed|open       closed: send, await the response, repeat —
//                            concurrency == connections. open: pipeline
//                            every request, then collect; latencies
//                            include queueing behind the pipeline (50)
//   --dup <p1,p2,...>        duplicate-mix percentages (0,50,90)
//   --out <file>             JSON artifact path (BENCH_load.json)
//
// plus the shared net/options.h flag surface (--jobs picks the
// in-process servers' worker count, --queue-limit/--cache-capacity
// their admission/cache policy, --time-limit/--conflict-limit the
// per-check caps).
//
// Methodology: all requests of a cell share one ProblemSpec, shipped as
// an `inline:` base64 spec-ref so external servers need no shared
// filesystem. A duplicate request repeats the cell's single hot
// threshold triple; a unique request perturbs the isolation threshold by
// one fixed-point ulp drawn from a process-wide counter, so no key ever
// repeats across cells, connections or backends. The duplicate hit rate
// is measured from the responses' `source=` field (cache | coalesced) —
// at 90% duplicates it must reach the mid-80s for the cache plus
// single-flight coalescing to be doing their job over the wire.
//
// Output: one table row and one JSON run per (backend, dup%, mode) cell
// with req/s, client-observed p50/p99 (service::Histogram percentiles)
// and the hit rate; schema cs-bench-load-v1, validated (and compared
// against bench/baselines/BENCH_load.json) by scripts/check_bench.py.
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/workloads.h"
#include "model/input_file.h"
#include "net/client.h"
#include "net/options.h"
#include "net/request_codec.h"
#include "net/server.h"
#include "service/metrics_registry.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cs;

struct LoadOptions {
  net::CommonOptions common;
  std::vector<std::string> backends = {"z3", "minipb"};
  std::vector<int> dups = {0, 50, 90};
  std::string mode = "closed";
  std::string host = "127.0.0.1";
  std::string out_path = "BENCH_load.json";
  int connections = 4;
  int requests_per_conn = 50;
  int port = -1;  // >= 0: external server mode
};

std::string backend_label(smt::BackendKind kind) {
  return kind == smt::BackendKind::kMiniPb ? "minipb" : "z3";
}

/// One (backend, dup%, mode) measurement.
struct CellResult {
  std::string backend;
  int dup_pct = 0;
  std::string mode;
  int connections = 0;
  std::int64_t requests = 0;
  std::int64_t rejected = 0;
  std::int64_t errors = 0;
  double wall_seconds = 0;
  double req_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate_pct = 0;
};

/// Process-wide unique-key source: every unique request perturbs the
/// isolation threshold by a distinct ulp, so keys never collide across
/// cells or backends (which would silently inflate hit rates).
std::uint32_t next_unique_key() {
  static std::uint32_t counter = 0;
  return ++counter;  // single-threaded: lines are rendered before load
}

/// Renders the per-connection request lines for one cell before the
/// clock starts (rendering base64 per line is codec work, not server
/// work). dup_key picks the cell's hot triple.
std::vector<std::string> render_lines(const std::string& spec_text,
                                      int thread_index, int count,
                                      int dup_pct, std::uint32_t dup_key) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    net::WireRequest req;
    req.id = "t" + std::to_string(thread_index) + "-" + std::to_string(i);
    req.spec_kind = net::SpecRefKind::kInline;
    req.spec = spec_text;
    req.point.objective = synth::SweepObjective::kFeasibility;
    // Thresholds stay near zero so every request is SAT in one probe;
    // only the ulp-sized perturbation distinguishes cache keys. Unique
    // requests perturb isolation, duplicates perturb usability — the two
    // families can never collide.
    // Interleaved Bresenham mix: exactly floor(count * dup% / 100)
    // duplicates, spread evenly through the stream regardless of count.
    const bool duplicate =
        (i + 1) * dup_pct / 100 > i * dup_pct / 100;
    req.point.isolation = util::Fixed::from_raw(
        duplicate ? 0 : static_cast<std::int64_t>(next_unique_key()));
    req.point.usability = util::Fixed::from_raw(
        duplicate ? static_cast<std::int64_t>(dup_key) : 0);
    req.point.budget = util::Fixed::from_int(10000);
    lines.push_back(net::RequestCodec::render_request(req));
  }
  return lines;
}

/// Sends the cell's lines on one connection and classifies the
/// responses. Closed loop: one request outstanding. Open loop: write
/// everything, then collect (ids pair responses to send order).
void run_connection(const LoadOptions& opts, int port,
                    const std::vector<std::string>& lines,
                    service::Histogram& latency, std::int64_t& hits,
                    std::int64_t& rejected, std::int64_t& errors,
                    std::mutex& mutex) {
  net::BlockingClient client(opts.host, port);
  std::int64_t local_hits = 0;
  std::int64_t local_rejected = 0;
  std::int64_t local_errors = 0;
  std::vector<double> samples;
  samples.reserve(lines.size());

  const auto classify = [&](const net::WireResponse& resp) {
    if (resp.status == net::WireStatus::kSat ||
        resp.status == net::WireStatus::kUnsat ||
        resp.status == net::WireStatus::kUnknown) {
      if (resp.source == "cache" || resp.source == "coalesced")
        ++local_hits;
    } else if (resp.status == net::WireStatus::kRejected) {
      // Open-loop bursts past --queue-limit are *supposed* to be turned
      // away deterministically; report them, don't call them errors.
      ++local_rejected;
    } else {
      ++local_errors;
    }
  };

  if (opts.mode == "closed") {
    for (const std::string& line : lines) {
      util::Stopwatch watch;
      client.send_line(line);
      const auto reply = client.recv_line();
      CS_REQUIRE(reply.has_value(), "server closed mid-run");
      samples.push_back(watch.elapsed_seconds() * 1000);
      classify(net::RequestCodec::parse_response(*reply));
    }
  } else {
    // Open loop: every request is in flight at once; the send
    // timestamps pair with responses by id (completion order is not
    // submission order).
    std::map<std::string, double> sent_at;
    util::Stopwatch watch;
    std::string batch;
    for (const std::string& line : lines) {
      sent_at[net::RequestCodec::parse_line(line).request.id] =
          watch.elapsed_seconds();
      batch += line;
      batch += '\n';
    }
    client.send_raw(batch);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto reply = client.recv_line();
      CS_REQUIRE(reply.has_value(), "server closed mid-run");
      const net::WireResponse resp =
          net::RequestCodec::parse_response(*reply);
      const auto it = sent_at.find(resp.id);
      if (it != sent_at.end())
        samples.push_back((watch.elapsed_seconds() - it->second) * 1000);
      classify(resp);
    }
  }

  const std::lock_guard<std::mutex> lock(mutex);
  hits += local_hits;
  rejected += local_rejected;
  errors += local_errors;
  for (const double ms : samples) latency.observe(ms);
}

CellResult run_cell(const LoadOptions& opts, int port,
                    const std::string& backend,
                    const std::string& spec_text, int dup_pct) {
  const int conns = opts.connections;
  const int per_conn = opts.requests_per_conn;
  // All connections of a cell share one hot key; a fresh one per cell.
  const std::uint32_t dup_key = next_unique_key();

  std::vector<std::vector<std::string>> lines;
  lines.reserve(static_cast<std::size_t>(conns));
  for (int t = 0; t < conns; ++t)
    lines.push_back(
        render_lines(spec_text, t, per_conn, dup_pct, dup_key));

  service::Histogram latency;
  std::int64_t hits = 0;
  std::int64_t rejected = 0;
  std::int64_t errors = 0;
  std::mutex mutex;
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      run_connection(opts, port, lines[static_cast<std::size_t>(t)],
                     latency, hits, rejected, errors, mutex);
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall = watch.elapsed_seconds();

  CellResult cell;
  cell.backend = backend;
  cell.dup_pct = dup_pct;
  cell.mode = opts.mode;
  cell.connections = conns;
  cell.requests = static_cast<std::int64_t>(conns) * per_conn;
  cell.rejected = rejected;
  cell.errors = errors;
  cell.wall_seconds = wall;
  cell.req_per_sec =
      wall > 0 ? static_cast<double>(cell.requests) / wall : 0;
  cell.p50_ms = latency.percentile_ms(0.50);
  cell.p99_ms = latency.percentile_ms(0.99);
  // Hit rate over *answered* requests: a rejected request never reached
  // the cache, so it says nothing about cache effectiveness.
  const std::int64_t answered = cell.requests - rejected;
  cell.hit_rate_pct =
      answered > 0
          ? 100.0 * static_cast<double>(hits) / static_cast<double>(answered)
          : 0;
  return cell;
}

void write_json(const std::string& path,
                const std::vector<CellResult>& cells) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"cs-bench-load-v1\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"dup_pct\": %d, \"mode\": \"%s\",\n"
        "     \"connections\": %d, \"requests\": %lld, \"rejected\": "
        "%lld, \"errors\": %lld,\n"
        "     \"wall_seconds\": %.6f, \"req_per_sec\": %.3f,\n"
        "     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"hit_rate_pct\": "
        "%.2f}%s\n",
        c.backend.c_str(), c.dup_pct, c.mode.c_str(), c.connections,
        static_cast<long long>(c.requests),
        static_cast<long long>(c.rejected),
        static_cast<long long>(c.errors), c.wall_seconds, c.req_per_sec,
        c.p50_ms, c.p99_ms, c.hit_rate_pct,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cout << "\nwrote " << path << "\n";
}

LoadOptions parse_flags(int argc, char** argv) {
  LoadOptions opts;
  opts.common.service.workers = 2;
  opts.common.synthesis.check_time_limit_ms = 20000;
  bool backend_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--backend") backend_given = true;
    const auto next = [&]() -> std::string {
      CS_REQUIRE(i + 1 < argc, "flag " + flag + " needs a value");
      return argv[++i];
    };
    if (net::consume_common_flag(opts.common, argc, argv, i)) {
      continue;
    } else if (flag == "--port") {
      opts.port = static_cast<int>(util::parse_int(next(), "port"));
    } else if (flag == "--host") {
      opts.host = next();
    } else if (flag == "--connections") {
      opts.connections =
          static_cast<int>(util::parse_int(next(), "connections"));
      CS_REQUIRE(opts.connections > 0, "--connections must be > 0");
    } else if (flag == "--requests") {
      opts.requests_per_conn =
          static_cast<int>(util::parse_int(next(), "requests"));
      CS_REQUIRE(opts.requests_per_conn > 0, "--requests must be > 0");
    } else if (flag == "--mode") {
      opts.mode = next();
      CS_REQUIRE(opts.mode == "closed" || opts.mode == "open",
                 "--mode wants closed|open");
    } else if (flag == "--dup") {
      opts.dups.clear();
      for (const std::string& part : util::split(next(), ',')) {
        const int pct =
            static_cast<int>(util::parse_int(part, "dup percentage"));
        CS_REQUIRE(pct >= 0 && pct <= 100, "--dup wants values in 0..100");
        opts.dups.push_back(pct);
      }
      CS_REQUIRE(!opts.dups.empty(), "--dup wants a percentage list");
    } else if (flag == "--out") {
      opts.out_path = next();
    } else {
      throw util::SpecError("unknown flag '" + flag + "'");
    }
  }
  // An explicit --backend narrows the in-process matrix to that backend
  // (and labels the runs in external mode).
  if (backend_given)
    opts.backends = {backend_label(opts.common.synthesis.backend)};
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const LoadOptions opts = parse_flags(argc, argv);

    // The cell workload: one small spec, shipped inline with every
    // request (parsed once server-side thanks to the spec cache).
    const model::ProblemSpec spec =
        bench::make_eval_spec(6, 5, 0.10, 4242, /*services=*/1);
    const std::string spec_text = model::serialize_input(spec);

    std::vector<CellResult> cells;
    if (opts.port >= 0) {
      const std::string label =
          backend_label(opts.common.synthesis.backend);
      for (const int dup : opts.dups)
        cells.push_back(
            run_cell(opts, opts.port, label, spec_text, dup));
    } else {
      for (const std::string& backend : opts.backends) {
        net::ServerConfig config;
        config.port = 0;
        config.service = opts.common.service;
        config.synthesis = opts.common.synthesis;
        config.synthesis.backend = smt::backend_from_name(backend);
        net::TcpServer server(std::move(config));
        server.start();
        for (const int dup : opts.dups)
          cells.push_back(
              run_cell(opts, server.port(), backend, spec_text, dup));
        server.shutdown();
      }
    }

    util::TextTable table({"backend", "dup%", "mode", "conns", "requests",
                           "req/s", "p50 ms", "p99 ms", "hit%", "rejected",
                           "errors"});
    for (const CellResult& c : cells) {
      char req_s[32], p50[32], p99[32], hit[32];
      std::snprintf(req_s, sizeof(req_s), "%.1f", c.req_per_sec);
      std::snprintf(p50, sizeof(p50), "%.2f", c.p50_ms);
      std::snprintf(p99, sizeof(p99), "%.2f", c.p99_ms);
      std::snprintf(hit, sizeof(hit), "%.1f", c.hit_rate_pct);
      table.add_row({c.backend, std::to_string(c.dup_pct), c.mode,
                     std::to_string(c.connections),
                     std::to_string(c.requests), req_s, p50, p99, hit,
                     std::to_string(c.rejected),
                     std::to_string(c.errors)});
    }
    std::cout << "=== cs-req-v1 wire load (" << opts.mode << " loop) ===\n"
              << table.render();
    write_json(opts.out_path, cells);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
