// Fig. 6 (scale extension) — synthesis time vs. the number of hosts,
// monolithic vs. sharded, on structured topologies (topology/structured.h).
//
// The paper's evaluation (§V-B) stops near 50 hosts because monolithic
// synthesis grows super-quadratically in the host count. This bench
// extends the curve to 100-2000 hosts with a locality-weighted workload
// (most flows stay near their source, the shape sharding exploits) and
// runs each point twice: a plain synth::Synthesizer solve and a
// shard::ShardedSynthesizer solve (partition → per-region solves →
// stitch). A monolithic point whose check hits the bench effort cap is
// reported as "capped" — at the largest sizes that is the expected
// outcome, and it is exactly the regime the sharded column is for.
//
// Flags:
//   --topology <name>        mesh|fat-tree|campus|isp (default fat-tree)
//   --hosts <n1,n2,...>      host counts (default 100,300,1000;
//                            CS_BENCH_FULL=1 appends 2000)
//   --mode both|mono|sharded which columns to run (default both)
//   --jobs <N>               sharded region-solve workers (default 1;
//                            0 = one per hardware thread — results are
//                            byte-identical at any value)
//   --out <file>             JSON artifact path (BENCH_scale.json)
//   --trace-out <file>       Chrome-trace-event timeline
//
// The artifact (schema cs-bench-scale-v1) is validated, and compared
// against bench/baselines/BENCH_scale.json, by scripts/check_bench.py.
#include <cstdio>
#include <string>
#include <vector>

#include "common/workloads.h"
#include "shard/sharded.h"
#include "topology/structured.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace cs;

struct ScaleRun {
  std::string topology;
  std::string mode;    // "mono" | "sharded"
  std::string status;  // "sat" | "unsat" | "capped"
  int hosts = 0;
  int routers = 0;
  int flows = 0;
  int regions = 0;    // 0 on the monolithic side
  int cut_links = 0;  // 0 on the monolithic side
  int fallback = 0;   // 1 when the sharded solve fell back to monolithic
  double wall_seconds = 0;
  double hosts_per_sec = 0;
};

const char* status_name(smt::CheckResult status) {
  switch (status) {
    case smt::CheckResult::kSat:
      return "sat";
    case smt::CheckResult::kUnsat:
      return "unsat";
    case smt::CheckResult::kUnknown:
      return "capped";
  }
  return "capped";
}

void write_json(const std::string& path, const std::vector<ScaleRun>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"cs-bench-scale-v1\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    std::fprintf(
        f,
        "    {\"topology\": \"%s\", \"hosts\": %d, \"mode\": \"%s\", "
        "\"status\": \"%s\",\n"
        "     \"routers\": %d, \"flows\": %d, \"regions\": %d, "
        "\"cut_links\": %d, \"fallback\": %d,\n"
        "     \"wall_seconds\": %.6f, \"hosts_per_sec\": %.3f}%s\n",
        r.topology.c_str(), r.hosts, r.mode.c_str(), r.status.c_str(),
        r.routers, r.flows, r.regions, r.cut_links, r.fallback,
        r.wall_seconds, r.hosts_per_sec, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs;
  bench::TraceGuard trace(argc, argv);
  topology::TopologyKind kind = topology::TopologyKind::kFatTree;
  std::vector<int> host_counts{100, 300, 1000};
  if (bench::full_mode()) host_counts.push_back(2000);
  bool run_mono = true;
  bool run_sharded = true;
  std::string out_path = "BENCH_scale.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        CS_REQUIRE(i + 1 < argc, "flag " + flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--topology") {
        kind = topology::topology_kind_from_name(next());
      } else if (flag == "--hosts") {
        host_counts.clear();
        for (const std::string& part : util::split(next(), ','))
          host_counts.push_back(
              static_cast<int>(util::parse_int(part, "hosts")));
        CS_REQUIRE(!host_counts.empty(), "--hosts wants n1,n2,...");
      } else if (flag == "--mode") {
        const std::string mode = next();
        CS_REQUIRE(mode == "both" || mode == "mono" || mode == "sharded",
                   "--mode wants both|mono|sharded");
        run_mono = mode != "sharded";
        run_sharded = mode != "mono";
      } else if (flag == "--out") {
        out_path = next();
      } else if (flag == "--jobs" || flag == "--trace-out") {
        next();  // consumed by bench::jobs / TraceGuard
      } else {
        throw util::SpecError("unknown flag '" + flag + "'");
      }
    }

    const synth::SynthesisOptions options = bench::sweep_options();
    const int jobs = bench::jobs(argc, argv);
    const std::string topo(topology::topology_kind_name(kind));
    std::vector<ScaleRun> runs;
    std::vector<std::vector<std::string>> rows;
    for (const int hosts : host_counts) {
      const model::ProblemSpec spec = bench::make_locality_spec(
          kind, hosts, 6000 + static_cast<std::uint64_t>(hosts));
      ScaleRun base;
      base.topology = topo;
      base.hosts = static_cast<int>(spec.network.host_count());
      base.routers = static_cast<int>(spec.network.router_count());
      base.flows = static_cast<int>(spec.flows.size());
      std::vector<std::string> row{std::to_string(base.hosts)};

      if (run_mono) {
        ScaleRun mono = base;
        mono.mode = "mono";
        util::Stopwatch watch;
        synth::Synthesizer synthesizer(spec, options);
        const synth::SynthesisResult result = synthesizer.synthesize();
        mono.wall_seconds = watch.elapsed_seconds();
        mono.status = status_name(result.status);
        if (result.design.has_value()) {
          const synth::DesignMetrics m =
              synth::compute_metrics(spec, *result.design);
          std::fprintf(stderr, "mono %d hosts: cost %s iso %s usab %s\n",
                       base.hosts, m.cost.to_string().c_str(),
                       m.isolation.to_string().c_str(),
                       m.usability.to_string().c_str());
        }
        mono.hosts_per_sec =
            mono.wall_seconds > 0 ? base.hosts / mono.wall_seconds : 0;
        row.push_back(bench::fmt_seconds(mono.wall_seconds) +
                      (mono.status == "sat" ? "" : " (" + mono.status + ")"));
        runs.push_back(std::move(mono));
      } else {
        row.push_back("-");
      }

      if (run_sharded) {
        ScaleRun sharded = base;
        sharded.mode = "sharded";
        shard::ShardOptions shard_options;
        shard_options.synthesis = options;
        shard_options.jobs = jobs;
        const shard::ShardedOutcome outcome =
            shard::ShardedSynthesizer(spec, shard_options).synthesize();
        sharded.wall_seconds = outcome.wall_seconds;
        sharded.status = status_name(outcome.status);
        sharded.regions = outcome.regions;
        sharded.cut_links = outcome.cut_links;
        sharded.fallback = outcome.used_fallback ? 1 : 0;
        sharded.hosts_per_sec =
            sharded.wall_seconds > 0 ? base.hosts / sharded.wall_seconds : 0;
        row.push_back(
            bench::fmt_seconds(sharded.wall_seconds) +
            (sharded.status == "sat" ? "" : " (" + sharded.status + ")") +
            (outcome.used_fallback ? " (fallback: " + outcome.fallback_reason + ")"
                                   : ""));
        std::fprintf(stderr,
                     "sharded %d hosts: plan %.3fs regions %.3fs stitch "
                     "%.3fs fallback %.3fs escalated %d repairs %d\n",
                     base.hosts, outcome.plan_seconds,
                     outcome.region_wall_seconds, outcome.stitch_seconds,
                     outcome.fallback_seconds, outcome.escalated_flows,
                     outcome.repair_placements);
        if (!outcome.stitch_failure.empty())
          std::fprintf(stderr, "  stitch failure: %s\n",
                       outcome.stitch_failure.c_str());
        for (const shard::RegionOutcome& r : outcome.region_outcomes)
          std::fprintf(stderr, "  region %d: %zu hosts %zu flows %s %.3fs\n",
                       r.index, r.hosts, r.flows, status_name(r.status),
                       r.wall_seconds);
        row.push_back(std::to_string(sharded.regions));
        row.push_back(std::to_string(sharded.cut_links));
        runs.push_back(std::move(sharded));
      } else {
        row.push_back("-");
        row.push_back("-");
        row.push_back("-");
      }
      rows.push_back(std::move(row));
    }

    bench::emit("fig6_scale",
                std::string("Fig 6: synthesis time vs hosts at scale (") +
                    topo + ", mono vs sharded)",
                {"hosts", "mono(s)", "sharded(s)", "regions", "cut links"},
                rows);
    write_json(out_path, runs);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
