// Fig. 4(c) — model synthesis time vs. the volume of connectivity
// requirements, for two network sizes (20 and 30 hosts).
//
// Expected shape (paper §V-B): the flow count is constant per curve, but
// more CRs mean more hard constraints and fewer satisfying options, so the
// synthesis time rises with the CR volume; the larger network sits above
// the smaller one.
#include "common/workloads.h"

int main() {
  using namespace cs;
  const std::vector<int> host_counts =
      bench::full_mode() ? std::vector<int>{20, 30}
                         : std::vector<int>{12, 16};
  const std::vector<int> cr_percents = bench::full_mode()
                                           ? std::vector<int>{5, 10, 15, 20,
                                                              25, 30}
                                           : std::vector<int>{5, 15, 25};

  std::vector<std::vector<std::string>> rows;
  for (const int cr : cr_percents) {
    std::vector<std::string> row{std::to_string(cr) + "%"};
    for (const int hosts : host_counts) {
      const int routers = std::clamp(8 + hosts / 5, 8, 20);
      // Isolation 5 pushes towards deny-heavy designs, which the CRs veto
      // flow by flow — more CRs, more constrained search; median of three
      // seeds tames per-network variance.
      const model::Sliders sliders{util::Fixed::from_int(5),
                                   util::Fixed::from_int(3),
                                   util::Fixed::from_int(10 * hosts)};
      bool decided = true;
      const double median = bench::median_synthesis_seconds(
          hosts, routers, cr / 100.0,
          3000 + static_cast<std::uint64_t>(cr) * 7 +
              static_cast<std::uint64_t>(hosts),
          3, sliders, &decided);
      row.push_back(bench::fmt_seconds(median) +
                    (decided ? "" : " (timeout)"));
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header{"CR volume"};
  for (const int hosts : host_counts)
    header.push_back("time(s)@" + std::to_string(hosts) + "hosts");
  bench::emit("fig4c_time_vs_cr",
              "Fig 4(c): synthesis time vs connectivity-requirement volume",
              header, rows);
  return 0;
}
