// Microbenchmarks of the substrates (google-benchmark): route enumeration,
// partial-order completion, encoding throughput, MiniPB solving.
#include <benchmark/benchmark.h>

#include "common/workloads.h"
#include "minisolver/solver.h"
#include "model/order.h"
#include "smt/ir.h"
#include "synth/encoder.h"
#include "topology/generator.h"
#include "topology/routes.h"
#include "util/rng.h"

namespace {

using namespace cs;

void BM_RouteEnumeration(benchmark::State& state) {
  util::Rng rng(1);
  topology::GeneratorConfig cfg;
  cfg.hosts = static_cast<int>(state.range(0));
  cfg.routers = 16;
  cfg.extra_core_link_ratio = 1.0;
  const topology::Network net = topology::generate_topology(cfg, rng);
  topology::RouteOptions opts;
  opts.max_routes = 4;
  for (auto _ : state) {
    topology::RouteTable table(net, opts);
    std::size_t total = 0;
    for (const topology::NodeId a : net.hosts())
      for (const topology::NodeId b : net.hosts())
        if (a != b) total += table.routes(a, b).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_RouteEnumeration)->Arg(10)->Arg(20)->Arg(40);

void BM_OrderCompletion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<model::OrderConstraint> constraints;
  for (std::size_t i = 1; i < n; ++i)
    constraints.push_back(model::OrderConstraint{
        static_cast<std::size_t>(rng.uniform(0, static_cast<int>(i) - 1)), i,
        model::OrderRelation::kGreater});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::complete_order(n, constraints));
  }
}
BENCHMARK(BM_OrderCompletion)->Arg(5)->Arg(20)->Arg(50);

void BM_Encode(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const model::ProblemSpec spec =
      bench::make_eval_spec(hosts, 12, 0.10, 77);
  for (auto _ : state) {
    auto backend = smt::make_backend(smt::BackendKind::kMiniPb);
    topology::RouteTable routes(spec.network, spec.route_options);
    synth::Encoding encoding(spec, routes, *backend);
    benchmark::DoNotOptimize(encoding.stats().clauses);
  }
}
BENCHMARK(BM_Encode)->Arg(8)->Arg(16);

void BM_MiniPbPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    minisolver::Solver s;
    std::vector<std::vector<minisolver::Var>> x(
        static_cast<std::size_t>(holes + 1));
    for (auto& row : x)
      for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
    for (const auto& row : x) {
      std::vector<minisolver::Lit> some;
      for (const minisolver::Var v : row)
        some.push_back(minisolver::Lit::pos(v));
      s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
      for (std::size_t p1 = 0; p1 < x.size(); ++p1)
        for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
          s.add_clause({minisolver::Lit::neg(x[p1][static_cast<std::size_t>(
                            h)]),
                        minisolver::Lit::neg(x[p2][static_cast<std::size_t>(
                            h)])});
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_MiniPbPigeonhole)->Arg(5)->Arg(7);

void BM_MiniPbCardinalityChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    minisolver::Solver s;
    std::vector<minisolver::PbTerm> terms;
    for (int i = 0; i < n; ++i)
      terms.push_back(minisolver::PbTerm{minisolver::Lit::pos(s.new_var()),
                                         (i % 7) + 1});
    s.add_linear_ge(terms, n);
    s.add_linear_le(terms, 2 * n);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_MiniPbCardinalityChain)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
