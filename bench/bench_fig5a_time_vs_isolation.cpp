// Fig. 5(a) — synthesis time vs. the isolation constraint, at two
// usability constraints (3 and 5).
//
// Expected shape (paper §V-B): tightening the isolation threshold shrinks
// the solution space, so time rises — slowly at first, then sharply past a
// knee; the tighter usability curve (5) sits above the looser one (3)
// where both are still satisfiable.
#include "common/workloads.h"
#include "synth/synthesizer.h"

int main() {
  using namespace cs;
  const int hosts = bench::full_mode() ? 30 : 10;
  const int routers = std::clamp(8 + hosts / 5, 8, 20);
  const model::ProblemSpec spec =
      bench::make_eval_spec(hosts, routers, 0.10, 4242);
  const util::Fixed usabilities[] = {util::Fixed::from_int(3),
                                     util::Fixed::from_int(5)};
  const util::Fixed budget = util::Fixed::from_int(10 * hosts);
  const int iso_max = bench::full_mode() ? 7 : 6;

  std::vector<std::vector<std::string>> rows;
  for (int iso = 0; iso <= iso_max; ++iso) {
    std::vector<std::string> row{std::to_string(iso)};
    for (const util::Fixed usab : usabilities) {
      // Fresh synthesizer per point: the paper measures cold solves.
      util::Stopwatch watch;
      synth::Synthesizer synthesizer(
          spec, bench::options());
      const synth::SynthesisResult r = synthesizer.synthesize(
          model::Sliders{util::Fixed::from_int(iso), usab, budget});
      row.push_back(bench::fmt_seconds(watch.elapsed_seconds()) +
                    (r.status == smt::CheckResult::kSat ? "" : " (unsat)"));
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig5a_time_vs_isolation",
              "Fig 5(a): synthesis time vs isolation constraint",
              {"isolation", "time(s)@U3", "time(s)@U5"}, rows);
  return 0;
}
