// Fig. 5(a) — synthesis time vs. the isolation constraint, at two
// usability constraints (3 and 5).
//
// Expected shape (paper §V-B): tightening the isolation threshold shrinks
// the solution space, so time rises — slowly at first, then sharply past a
// knee; the tighter usability curve (5) sits above the looser one (3)
// where both are still satisfiable.
//
// The grid runs on the sweep engine (fresh synthesizer per point — the
// paper measures cold solves, and the emitted times are the cold run's).
// A second, warm-started pass (synth/sweep.h) then re-solves the same
// grid by swapping threshold assumptions on per-worker synthesizers; the
// closing effort lines compare the two modes' encode time and solver
// conflicts — the deltas warm start exists to save. `--jobs N`
// parallelizes the points; note that concurrent workers contend for
// cores, so keep the default serial run when the per-point times
// themselves are the result.
#include "common/workloads.h"
#include "synth/sweep.h"

int main(int argc, char** argv) {
  using namespace cs;
  // `--trace-out <file>`: per-worker sweep-point spans (warm/cold
  // tagged), encoder-phase spans, and solver counter timelines.
  const bench::TraceGuard trace(argc, argv);
  const int hosts = bench::full_mode() ? 30 : 10;
  const int routers = std::clamp(8 + hosts / 5, 8, 20);
  const model::ProblemSpec spec =
      bench::make_eval_spec(hosts, routers, 0.10, 4242);
  const std::vector<util::Fixed> usabilities = {util::Fixed::from_int(3),
                                                util::Fixed::from_int(5)};
  const util::Fixed budget = util::Fixed::from_int(10 * hosts);
  const int iso_max = bench::full_mode() ? 7 : 6;

  std::vector<model::Sliders> grid;
  for (int iso = 0; iso <= iso_max; ++iso)
    for (const util::Fixed usab : usabilities)
      grid.push_back(
          model::Sliders{util::Fixed::from_int(iso), usab, budget});

  synth::SweepRequest request = synth::SweepRequest::feasibility_grid(grid);
  request.synthesis = bench::options();
  request.jobs = bench::jobs(argc, argv);
  const synth::SweepEngine engine(spec);
  const synth::SweepResult sweep = engine.run(request);
  request.warm_start = true;
  const synth::SweepResult warm = engine.run(request);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep.points.size();
       i += usabilities.size()) {
    std::vector<std::string> row{
        sweep.points[i].point.isolation.to_string()};
    for (std::size_t u = 0; u < usabilities.size(); ++u)
      row.push_back(bench::fmt_time_cell(sweep.points[i + u]));
    rows.push_back(std::move(row));
  }
  bench::emit("fig5a_time_vs_isolation",
              "Fig 5(a): synthesis time vs isolation constraint",
              {"isolation", "time(s)@U3", "time(s)@U5"}, rows);
  std::printf("(peak solver %.1f MB)\n",
              static_cast<double>(sweep.peak_solver_memory_bytes) / 1e6);
  bench::print_sweep_effort("cold", sweep);
  bench::print_sweep_effort("warm", warm);
  return 0;
}
