// Fig. 5(a) — synthesis time vs. the isolation constraint, at two
// usability constraints (3 and 5).
//
// Expected shape (paper §V-B): tightening the isolation threshold shrinks
// the solution space, so time rises — slowly at first, then sharply past a
// knee; the tighter usability curve (5) sits above the looser one (3)
// where both are still satisfiable.
//
// The grid runs on the sweep engine (fresh synthesizer per point — the
// paper measures cold solves). `--jobs N` parallelizes the points; note
// that concurrent workers contend for cores, so keep the default serial
// run when the per-point times themselves are the result.
#include "common/workloads.h"
#include "synth/sweep.h"

int main(int argc, char** argv) {
  using namespace cs;
  const int hosts = bench::full_mode() ? 30 : 10;
  const int routers = std::clamp(8 + hosts / 5, 8, 20);
  const model::ProblemSpec spec =
      bench::make_eval_spec(hosts, routers, 0.10, 4242);
  const std::vector<util::Fixed> usabilities = {util::Fixed::from_int(3),
                                                util::Fixed::from_int(5)};
  const util::Fixed budget = util::Fixed::from_int(10 * hosts);
  const int iso_max = bench::full_mode() ? 7 : 6;

  std::vector<model::Sliders> grid;
  for (int iso = 0; iso <= iso_max; ++iso)
    for (const util::Fixed usab : usabilities)
      grid.push_back(
          model::Sliders{util::Fixed::from_int(iso), usab, budget});

  synth::SweepRequest request = synth::SweepRequest::feasibility_grid(grid);
  request.synthesis = bench::options();
  request.jobs = bench::jobs(argc, argv);
  const synth::SweepResult sweep = synth::SweepEngine(spec).run(request);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep.points.size();
       i += usabilities.size()) {
    std::vector<std::string> row{
        sweep.points[i].point.isolation.to_string()};
    for (std::size_t u = 0; u < usabilities.size(); ++u) {
      const synth::SweepPointResult& p = sweep.points[i + u];
      row.push_back(bench::fmt_seconds(p.wall_seconds) +
                    (p.status == smt::CheckResult::kSat ? "" : " (unsat)"));
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig5a_time_vs_isolation",
              "Fig 5(a): synthesis time vs isolation constraint",
              {"isolation", "time(s)@U3", "time(s)@U5"}, rows);
  std::printf("(%d worker(s), %.3fs wall, peak solver %.1f MB)\n",
              sweep.jobs, sweep.wall_seconds,
              static_cast<double>(sweep.peak_solver_memory_bytes) / 1e6);
  return 0;
}
