// Table III — assistance on choosing slider values.
//
// Prints the representative (isolation, usability) operating points that
// ConfigSynth presents to its user for the running example: full denial,
// no isolation, deny-all-but-CR, 50% deny, and the 25%/25% deny/trusted
// mix. The paper reports 10/0, 0/10, 8.2/1.8, 5/≈5 and ≈5/7.5 for its
// example; the shape (monotone trade-off, deny-but-CR close to the top) is
// what must reproduce.
#include "common/workloads.h"
#include "synth/assistance.h"
#include "topology/generator.h"

int main() {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  // 10% connectivity requirements, spread deterministically.
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  const std::vector<synth::SliderChoice> rows = synth::slider_assistance(spec);
  std::vector<std::vector<std::string>> out;
  for (const synth::SliderChoice& r : rows)
    out.push_back({r.isolation.to_string(), r.usability.to_string(),
                   r.description});
  bench::emit("table3_sliders",
              "Table III: slider assistance (example network)",
              {"isolation", "usability", "configuration"}, out);
  return 0;
}
