// Fig. 3(b) — maximum possible isolation vs. the deployment-cost
// constraint, under two usability constraints (5 and 7).
//
// Expected shape (paper §V-A): isolation grows with budget, the lower
// usability floor dominates, and beyond a certain budget the curves
// plateau — extra money cannot buy isolation that the usability constraint
// forbids.
#include "common/workloads.h"
#include "synth/optimizer.h"
#include "topology/generator.h"

int main() {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  const util::Fixed usabilities[] = {util::Fixed::from_int(5),
                                     util::Fixed::from_int(7)};
  const int step = bench::full_mode() ? 5 : 10;

  std::vector<std::vector<std::string>> rows;
  for (int c = 0; c <= 60; c += step) {
    std::vector<std::string> row{std::to_string(c)};
    for (const util::Fixed usab : usabilities) {
      synth::Synthesizer synthesizer(spec, bench::options());
      const synth::OptimizeResult best = synth::maximize_isolation(
          synthesizer, spec, usab, util::Fixed::from_int(c));
      row.push_back(best.feasible ? best.metrics.isolation.to_string() +
                                        (best.exact ? "" : " (>=)")
                    : best.exact ? "infeasible"
                                 : "timeout");
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig3b_isolation_vs_cost",
              "Fig 3(b): max isolation vs deployment cost constraint",
              {"budget($K)", "isolation@U5", "isolation@U7"}, rows);
  return 0;
}
