// Fig. 3(b) — maximum possible isolation vs. the deployment-cost
// constraint, under two usability constraints (5 and 7).
//
// Expected shape (paper §V-A): isolation grows with budget, the lower
// usability floor dominates, and beyond a certain budget the curves
// plateau — extra money cannot buy isolation that the usability constraint
// forbids.
//
// The grid runs on the sweep engine: `--jobs N` (or CS_BENCH_JOBS) solves
// the points on N workers with output byte-identical to the serial run.
#include "common/workloads.h"
#include "synth/sweep.h"
#include "topology/generator.h"

int main(int argc, char** argv) {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  const std::vector<util::Fixed> usabilities = {util::Fixed::from_int(5),
                                                util::Fixed::from_int(7)};
  const int step = bench::full_mode() ? 5 : 10;

  // Budget-major grid (one row per budget, one point per usability floor).
  synth::SweepRequest request;
  request.synthesis = bench::sweep_options();
  request.jobs = bench::jobs(argc, argv);
  for (int c = 0; c <= 60; c += step) {
    for (const util::Fixed usab : usabilities) {
      synth::SweepPoint p;
      p.objective = synth::SweepObjective::kMaxIsolation;
      p.usability = usab;
      p.budget = util::Fixed::from_int(c);
      request.points.push_back(p);
    }
  }
  const synth::SweepResult sweep = synth::SweepEngine(spec).run(request);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep.points.size();
       i += usabilities.size()) {
    std::vector<std::string> row{
        sweep.points[i].point.budget.to_string()};
    for (std::size_t u = 0; u < usabilities.size(); ++u) {
      const synth::BoundSearchResult& best = sweep.points[i + u].search;
      row.push_back(best.feasible ? best.metrics.isolation.to_string() +
                                        (best.exact ? "" : " (>=)")
                    : best.exact ? "infeasible"
                                 : "timeout");
    }
    rows.push_back(std::move(row));
  }
  bench::emit("fig3b_isolation_vs_cost",
              "Fig 3(b): max isolation vs deployment cost constraint",
              {"budget($K)", "isolation@U5", "isolation@U7"}, rows);
  std::printf("(%d worker(s), %.3fs wall, %d probes)\n", sweep.jobs,
              sweep.wall_seconds, sweep.total_probes);
  return 0;
}
