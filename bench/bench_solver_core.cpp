// Solver-core throughput benchmark: conflicts/sec and propagations/sec of
// the MiniPB solver on the paper's workload families, measured for both PB
// propagators (the default watched-sum prefix and the reference counter
// method, selected per run via CS_MINIPB_PB_MODE / Solver::set_pb_mode)
// and for both phases (cold and warm) — plus the search-heuristic
// ablation matrix and the portfolio-racing headline run.
//
// Four workload groups:
//   * fig4a_h{8,10,12} — the hosts ladder swept end-to-end through the
//     sweep engine (cold fresh-per-point, warm assumption-swapping);
//     measures the whole solver including the clause arena.
//   * fig5a_grid — isolation 0..6 x usability {5,6} at 10 hosts; the
//     tight corner blows the 20000-conflict cap, so part of the grid is
//     pure bounded solver work. This grid additionally runs the
//     heuristic ablation: the {Luby, Glucose} restart × {local,
//     recursive} minimization matrix plus a rephasing-off run, selected
//     via CS_MINIPB_RESTART_MODE / CS_MINIPB_MINIMIZE / CS_MINIPB_REPHASE.
//   * fig5a_pb_core — the PB skeleton of the Fig. 5(a) encoding family
//     at paper scale, driven directly on minisolver::Solver: ~300
//     defense variables, ~300 long >=-sums (per-flow isolation,
//     per-host usability, cost) whose term count is O(#flows) with the
//     ConfigSynth coefficient palette, plus ternary routing clauses.
//     Cold = one capped plain solve; warm = thousands of threshold-probe
//     assumption rounds on a persistent solver. This is the workload
//     where PB propagation dominates, so its warm watched/counter ratio
//     is the number the watched-sum rewrite is accountable for.
//   * fig3a_grid — the paper example's Fig. 3(a) max-isolation grid,
//     cold, run twice: once on MiniPB pinned to the pre-heuristics seed
//     configuration (Luby + local minimization, rephasing off) and once
//     on the race backend with the modern defaults. The wall ratio of
//     the two is the headline speedup scripts/check_bench.py reports.
//
// Unlike the figure benches this one takes no CS_BENCH_BACKEND — every
// run pins its backend explicitly (MiniPB, or MiniPB-vs-Z3 racing for
// the fig3a headline) — and it emits a machine-readable artifact,
// BENCH_solver.json (schema cs-bench-solver-v2), that
// scripts/check_bench.py validates and compares against the committed
// baseline in bench/baselines/.
//
// Throughput rates are only meaningful when the solver did real work, so
// every run uses a deterministic conflict cap (hard points become a fixed
// amount of work instead of an unbounded one). peak_rss_bytes is the
// process-wide high-water mark when the run finishes, so it is monotone
// across the runs of one invocation — compare like-positioned runs only.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/workloads.h"
#include "minisolver/solver.h"
#include "synth/sweep.h"
#include "topology/generator.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace cs;
using minisolver::Lit;
using minisolver::PbTerm;
using minisolver::Solver;
using minisolver::Var;

struct RunRecord {
  std::string workload;
  const char* backend = "minipb";       // "minipb" | "race"
  const char* pb_mode;                  // "watched" | "counter"
  const char* restart_mode = "glucose";  // "glucose" | "luby"
  const char* minimize_mode = "recursive";  // "recursive" | "local"
  const char* rephase = "on";           // "on" | "off"
  const char* phase;                    // "cold" | "warm"
  int points = 0;
  std::int64_t rephases = 0;
  std::int64_t minimized_literals = 0;
  double wall_seconds = 0;
  std::int64_t conflicts = 0;
  std::int64_t propagations = 0;
  std::int64_t peak_rss_bytes = 0;

  double conflicts_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(conflicts) / wall_seconds
                            : 0.0;
  }
  double propagations_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(propagations) / wall_seconds
               : 0.0;
  }
};

// ---- sweep-engine workloads (whole solver, end to end) ---------------------

struct Workload {
  std::string name;
  model::ProblemSpec spec;
  std::vector<model::Sliders> grid;
};

std::vector<Workload> make_workloads() {
  std::vector<Workload> out;
  for (const int hosts : {8, 10, 12}) {
    const int routers = std::clamp(8 + hosts / 5, 8, 20);
    Workload w;
    w.name = "fig4a_h" + std::to_string(hosts);
    w.spec = bench::make_eval_spec(hosts, routers, 0.10,
                                   1000 + static_cast<std::uint64_t>(hosts));
    for (const int iso : {1, 3, 5})
      w.grid.push_back(model::Sliders{util::Fixed::from_int(iso),
                                      util::Fixed::from_int(3),
                                      util::Fixed::from_int(10 * hosts)});
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "fig5a_grid";
    w.spec = bench::make_eval_spec(10, 10, 0.10, 4242);
    for (int iso = 0; iso <= 6; ++iso)
      for (const int usab : {5, 6})
        w.grid.push_back(model::Sliders{util::Fixed::from_int(iso),
                                        util::Fixed::from_int(usab),
                                        util::Fixed::from_int(100)});
    out.push_back(std::move(w));
  }
  return out;
}

RunRecord measure_sweep(const std::string& workload, const char* pb_mode,
                        const char* phase, const synth::SweepEngine& engine,
                        synth::SweepRequest& request) {
  request.warm_start = std::string_view(phase) == "warm";
  util::Stopwatch watch;
  const synth::SweepResult result = engine.run(request);
  RunRecord rec;
  rec.workload = workload;
  rec.pb_mode = pb_mode;
  rec.phase = phase;
  rec.points = static_cast<int>(result.points.size());
  rec.wall_seconds = watch.elapsed_seconds();
  rec.conflicts = result.total_solver.conflicts;
  rec.propagations = result.total_solver.propagations;
  rec.rephases = result.total_solver.rephases;
  rec.minimized_literals = result.total_solver.minimized_literals;
  rec.peak_rss_bytes = util::peak_rss_bytes();
  return rec;
}

/// One cell of the heuristic ablation matrix; applied through the same
/// environment variables a whole-stack A/B run would use, so the bench
/// exercises the exact production configuration path.
struct HeuristicConfig {
  const char* restart;   // "glucose" | "luby"
  const char* minimize;  // "recursive" | "local"
  const char* rephase;   // "on" | "off"
};

void apply_heuristic_env(const HeuristicConfig& h) {
  ::setenv("CS_MINIPB_RESTART_MODE", h.restart, 1);
  ::setenv("CS_MINIPB_MINIMIZE", h.minimize, 1);
  ::setenv("CS_MINIPB_REPHASE",
           std::string_view(h.rephase) == "on" ? "1" : "0", 1);
}

void clear_heuristic_env() {
  ::unsetenv("CS_MINIPB_RESTART_MODE");
  ::unsetenv("CS_MINIPB_MINIMIZE");
  ::unsetenv("CS_MINIPB_REPHASE");
}

void tag_heuristics(RunRecord& rec, const HeuristicConfig& h) {
  rec.restart_mode = h.restart;
  rec.minimize_mode = h.minimize;
  rec.rephase = h.rephase;
}

// ---- PB-core workload (direct solver, PB propagation dominates) ------------

constexpr int kPbVars = 300;      // defense placement variables
constexpr int kPbSums = 300;      // per-flow / per-host / cost sums
constexpr int kPbSumLen = 150;    // O(#flows) terms per sum (30-host scale)
constexpr int kPbClauses = 300;   // ternary routing-structure clauses
constexpr int kPbWarmRounds = 10000;
constexpr std::int64_t kPbCap = 30000;

/// Loads the Fig. 5(a)-shaped PB skeleton: long descending-coefficient
/// sums over a shared variable pool (every variable lands in ~#sums/2
/// constraints, the high occurrence degree of the paper's usability and
/// cost sums) with a loose threshold-probe bound at 20% of each total.
void build_pb_core(Solver& s, util::Rng& rng) {
  for (int v = 0; v < kPbVars; ++v) (void)s.new_var();
  static const std::int64_t palette[] = {1000, 2500, 5000, 7500, 10000};
  for (int p = 0; p < kPbSums; ++p) {
    std::vector<PbTerm> terms;
    std::int64_t total = 0;
    for (int t = 0; t < kPbSumLen; ++t) {
      const Var v = static_cast<Var>(rng.uniform(0, kPbVars - 1));
      const std::int64_t coeff = palette[rng.uniform(0, 4)];
      total += coeff;
      terms.push_back(
          PbTerm{rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v), coeff});
    }
    (void)s.add_linear_ge(terms, total / 5);
  }
  for (int c = 0; c < kPbClauses; ++c) {
    std::vector<Lit> cl;
    for (int l = 0; l < 3; ++l) {
      const Var v = static_cast<Var>(rng.uniform(0, kPbVars - 1));
      cl.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
    }
    (void)s.add_clause(cl);
  }
}

/// Cold: load the skeleton into a fresh solver and solve it once — the
/// wall includes constraint normalization and the mode's watch setup
/// (tight prefixes vs full occurrence registration). Warm: a persistent
/// solver re-solved under kPbWarmRounds random threshold-assumption
/// rounds (the synthesizer's probe pattern); the wall excludes loading.
/// Returns the record plus the verdict tally so the caller can
/// differential-check the two modes.
RunRecord measure_pb_core(const char* pb_mode, const char* phase,
                          std::int64_t verdicts[3]) {
  Solver s;
  if (std::string_view(pb_mode) == "counter")
    s.set_pb_mode(Solver::PbMode::kCounter);
  util::Rng rng(4242);
  RunRecord rec;
  rec.workload = "fig5a_pb_core";
  rec.pb_mode = pb_mode;
  rec.phase = phase;
  const bool cold = std::string_view(phase) == "cold";
  util::Stopwatch watch;  // cold wall includes the load below
  build_pb_core(s, rng);
  s.set_conflict_limit(kPbCap);
  if (!cold) watch.reset();  // warm wall starts after the load
  if (cold) {
    rec.points = 1;
    verdicts[static_cast<int>(s.solve())]++;
  } else {
    rec.points = kPbWarmRounds;
    for (int round = 0; round < kPbWarmRounds; ++round) {
      std::vector<Lit> assume;
      for (Var v = 0; v < kPbVars; ++v)
        if (rng.chance(0.1))
          assume.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
      verdicts[static_cast<int>(s.solve(assume))]++;
    }
  }
  rec.wall_seconds = watch.elapsed_seconds();
  rec.conflicts = s.stats().conflicts;
  rec.propagations = s.stats().propagations;
  rec.rephases = s.stats().rephases;
  rec.minimized_literals = s.stats().minimized_literals;
  rec.peak_rss_bytes = util::peak_rss_bytes();
  return rec;
}

// ---- output ----------------------------------------------------------------

void write_json(const char* path, const std::vector<RunRecord>& runs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"cs-bench-solver-v2\",\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"backend\": \"%s\", \"pb_mode\": "
        "\"%s\", \"restart_mode\": \"%s\", \"minimize_mode\": \"%s\", "
        "\"rephase\": \"%s\", \"phase\": \"%s\", \"points\": %d, "
        "\"wall_seconds\": %.6f, \"conflicts\": %lld, \"propagations\": "
        "%lld, \"conflicts_per_sec\": %.1f, \"propagations_per_sec\": "
        "%.1f, \"rephases\": %lld, \"minimized_literals\": %lld, "
        "\"peak_rss_bytes\": %lld}%s\n",
        r.workload.c_str(), r.backend, r.pb_mode, r.restart_mode,
        r.minimize_mode, r.rephase, r.phase, r.points, r.wall_seconds,
        static_cast<long long>(r.conflicts),
        static_cast<long long>(r.propagations), r.conflicts_per_sec(),
        r.propagations_per_sec(), static_cast<long long>(r.rephases),
        static_cast<long long>(r.minimized_literals),
        static_cast<long long>(r.peak_rss_bytes),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

double rate_of(const std::vector<RunRecord>& runs, std::string_view workload,
               std::string_view phase, std::string_view pb_mode) {
  for (const RunRecord& r : runs)
    if (r.workload == workload && std::string_view(r.phase) == phase &&
        std::string_view(r.pb_mode) == pb_mode)
      return r.propagations_per_sec();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs;
  const bench::TraceGuard trace(argc, argv);
  std::vector<RunRecord> runs;

  const std::vector<Workload> workloads = make_workloads();
  for (const Workload& w : workloads) {
    for (const char* mode : {"watched", "counter"}) {
      // The propagator is chosen at backend construction, which happens
      // inside SweepEngine::run — the env var must be set before it.
      ::setenv("CS_MINIPB_PB_MODE", mode, 1);
      synth::SweepRequest request =
          synth::SweepRequest::feasibility_grid(w.grid);
      request.synthesis.backend = smt::BackendKind::kMiniPb;
      request.synthesis.check_conflict_limit = 20000;
      request.jobs = bench::jobs(argc, argv);
      const synth::SweepEngine engine(w.spec);
      for (const char* phase : {"cold", "warm"})
        runs.push_back(measure_sweep(w.name, mode, phase, engine, request));
    }
  }
  ::unsetenv("CS_MINIPB_PB_MODE");

  // Heuristic ablation matrix on the bounded-work grid (cold, watched):
  // the three non-default restart × minimization combinations plus a
  // rephasing-off run. The default combination (glucose + recursive +
  // rephase on) is already measured by the loop above.
  {
    const Workload& fig5a = workloads.back();
    const HeuristicConfig ablations[] = {
        {"luby", "recursive", "on"},
        {"glucose", "local", "on"},
        {"luby", "local", "on"},
        {"glucose", "recursive", "off"},
    };
    for (const HeuristicConfig& h : ablations) {
      apply_heuristic_env(h);
      synth::SweepRequest request =
          synth::SweepRequest::feasibility_grid(fig5a.grid);
      request.synthesis.backend = smt::BackendKind::kMiniPb;
      request.synthesis.check_conflict_limit = 20000;
      request.jobs = bench::jobs(argc, argv);
      const synth::SweepEngine engine(fig5a.spec);
      RunRecord rec =
          measure_sweep(fig5a.name, "watched", "cold", engine, request);
      tag_heuristics(rec, h);
      runs.push_back(std::move(rec));
    }
    clear_heuristic_env();
  }

  // Differential self-check rides along: both propagators must tally the
  // same verdicts on the PB-core rounds.
  std::int64_t tally[2][3] = {};
  int mode_idx = 0;
  for (const char* mode : {"watched", "counter"}) {
    for (const char* phase : {"cold", "warm"})
      runs.push_back(measure_pb_core(mode, phase, tally[mode_idx]));
    ++mode_idx;
  }
  for (int v = 0; v < 3; ++v) {
    if (tally[0][v] != tally[1][v]) {
      std::fprintf(stderr,
                   "pb_core verdict divergence between propagators\n");
      return 1;
    }
  }

  // The headline pair: the paper example's Fig. 3(a) grid, cold, once on
  // the pre-heuristics seed configuration and once on the portfolio
  // racer with the modern defaults. Same grid, same effort cap (in each
  // run's own units), same worker count — only the search changed.
  double fig3a_seed_wall = 0;
  double fig3a_race_wall = 0;
  {
    model::ProblemSpec spec;
    spec.network = topology::make_paper_example();
    const model::ServiceId svc = spec.services.add("svc");
    const auto& hosts = spec.network.hosts();
    for (const topology::NodeId i : hosts)
      for (const topology::NodeId j : hosts)
        if (i != j) spec.flows.add(model::Flow{i, j, svc});
    for (std::size_t f = 0; f < spec.flows.size(); f += 10)
      spec.connectivity.add(static_cast<model::FlowId>(f));
    spec.finalize();

    std::vector<util::Fixed> floors;
    for (int u = 0; u <= 10; u += 2)
      floors.push_back(util::Fixed::from_int(u));
    synth::SweepRequest request = synth::SweepRequest::max_isolation_grid(
        floors, {util::Fixed::from_int(10), util::Fixed::from_int(20)});
    request.synthesis.check_conflict_limit = 100'000;
    request.jobs = bench::jobs(argc, argv);
    const synth::SweepEngine engine(spec);

    const HeuristicConfig seed_config{"luby", "local", "off"};
    apply_heuristic_env(seed_config);
    request.synthesis.backend = smt::BackendKind::kMiniPb;
    RunRecord seed_rec =
        measure_sweep("fig3a_grid", "watched", "cold", engine, request);
    tag_heuristics(seed_rec, seed_config);
    fig3a_seed_wall = seed_rec.wall_seconds;
    runs.push_back(std::move(seed_rec));
    clear_heuristic_env();

    request.synthesis.backend = smt::BackendKind::kRace;
    RunRecord race_rec =
        measure_sweep("fig3a_grid", "watched", "cold", engine, request);
    race_rec.backend = "race";
    fig3a_race_wall = race_rec.wall_seconds;
    runs.push_back(std::move(race_rec));
  }

  std::vector<std::vector<std::string>> rows;
  for (const RunRecord& r : runs) {
    char cps[32], pps[32];
    std::snprintf(cps, sizeof cps, "%.0f", r.conflicts_per_sec());
    std::snprintf(pps, sizeof pps, "%.0f", r.propagations_per_sec());
    rows.push_back({r.workload, r.backend, r.pb_mode,
                    std::string(r.restart_mode) + "+" + r.minimize_mode +
                        (std::string_view(r.rephase) == "on" ? ""
                                                             : "-norephase"),
                    r.phase, std::to_string(r.points),
                    bench::fmt_seconds(r.wall_seconds),
                    std::to_string(r.conflicts), cps, pps});
  }
  bench::emit("solver_core",
              "Solver core: PB propagator throughput (MiniPB)",
              {"workload", "backend", "pb_mode", "heuristics", "phase",
               "points", "wall(s)", "conflicts", "conflicts/s", "props/s"},
              rows);

  write_json("BENCH_solver.json", runs);
  std::printf("(JSON written to BENCH_solver.json)\n");

  // The headline numbers. The end-to-end grid mixes encode and clause
  // work into the denominator; the PB-core warm rounds isolate what the
  // watched-sum propagator actually changed.
  const double grid =
      rate_of(runs, "fig5a_grid", "cold", "watched") /
      std::max(1.0, rate_of(runs, "fig5a_grid", "cold", "counter"));
  const double core =
      rate_of(runs, "fig5a_pb_core", "warm", "watched") /
      std::max(1.0, rate_of(runs, "fig5a_pb_core", "warm", "counter"));
  std::printf("fig5a_grid cold watched/counter propagation throughput: "
              "%.2fx\n", grid);
  std::printf("fig5a_pb_core warm watched/counter propagation throughput: "
              "%.2fx\n", core);
  if (fig3a_race_wall > 0)
    std::printf("fig3a_grid cold seed-config/race wall speedup: %.2fx\n",
                fig3a_seed_wall / fig3a_race_wall);
  return 0;
}
