// Table V / Fig. 2 — the running example synthesis.
//
// Synthesizes the example network's security configuration and prints the
// paper's Table V (per-destination classification of sources by selected
// isolation pattern) plus the device placements of Fig. 2(b) and the
// achieved metrics.
#include <cstdio>

#include "analysis/checker.h"
#include "analysis/report.h"
#include "common/workloads.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"

int main() {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  const auto require = [&](int from, int to) {
    spec.connectivity.add(*spec.flows.find(
        model::Flow{hosts[static_cast<std::size_t>(from - 1)],
                    hosts[static_cast<std::size_t>(to - 1)], svc}));
  };
  require(1, 5);
  require(1, 6);
  require(2, 5);
  require(3, 7);
  require(4, 8);
  require(9, 5);
  require(10, 6);
  spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                util::Fixed::from_int(4),
                                util::Fixed::from_int(60)};
  spec.finalize();

  synth::Synthesizer synthesizer(spec,
                                 bench::options());
  const synth::SynthesisResult result = synthesizer.synthesize();
  std::printf("%s\n", analysis::render_report(spec, result).c_str());
  if (result.status != smt::CheckResult::kSat) return 1;

  synth::SecurityDesign design = *result.design;
  analysis::minimize_placements(spec, design);
  std::printf("=== Table V: selected isolation patterns ===\n%s\n",
              design.isolation_table(spec).c_str());
  std::printf("=== Fig. 2(b): device placements ===\n%s\n",
              design.to_string(spec).c_str());

  const synth::DesignMetrics m = synth::compute_metrics(spec, design);
  bench::emit("table5_example", "Example metrics",
              {"isolation", "usability", "cost", "devices"},
              {{m.isolation.to_string(), m.usability.to_string(),
                m.cost.to_string(), std::to_string(design.device_count())}});
  return 0;
}
