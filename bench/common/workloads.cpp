#include "common/workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/trace.h"
#include "topology/generator.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cs::bench {

bool full_mode() {
  const char* v = std::getenv("CS_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

smt::BackendKind backend() {
  const char* v = std::getenv("CS_BENCH_BACKEND");
  if (v == nullptr) return smt::BackendKind::kZ3;
  return smt::backend_from_name(v);
}

synth::SynthesisOptions options() {
  synth::SynthesisOptions opts;
  opts.backend = backend();
  opts.check_time_limit_ms = full_mode() ? 120000 : 10000;
  return opts;
}

synth::SynthesisOptions sweep_options() {
  synth::SynthesisOptions opts;
  opts.backend = backend();
  // Z3 caps are rlimit units; MiniPB caps are conflicts; the race cap is
  // denominated in race units (MiniPB conflicts — the racer scales Z3's
  // slices internally), so it shares the MiniPB sizing.
  const std::int64_t quick =
      opts.backend == smt::BackendKind::kZ3 ? 50'000'000 : 100'000;
  opts.check_conflict_limit = full_mode() ? 12 * quick : quick;
  return opts;
}

int jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == "--jobs")
      return static_cast<int>(util::parse_int(argv[i + 1], "--jobs"));
  const char* v = std::getenv("CS_BENCH_JOBS");
  if (v != nullptr)
    return static_cast<int>(util::parse_int(v, "CS_BENCH_JOBS"));
  return 1;
}

model::ProblemSpec make_eval_spec(int hosts, int routers,
                                  double cr_fraction, std::uint64_t seed,
                                  int services) {
  util::Rng rng(seed);
  model::ProblemSpec spec;
  topology::GeneratorConfig net_cfg;
  net_cfg.hosts = hosts;
  net_cfg.routers = routers;
  spec.network = topology::generate_topology(net_cfg, rng);

  model::WorkloadConfig wl;
  wl.service_count = services;
  wl.max_services_per_pair = std::min(3, services);
  wl.cr_fraction = cr_fraction;
  model::populate_random_workload(spec, wl, rng);
  return spec;
}

model::ProblemSpec make_eval_spec(topology::TopologyKind kind, int hosts,
                                  int routers, double cr_fraction,
                                  std::uint64_t seed, int services) {
  if (kind == topology::TopologyKind::kMesh)
    return make_eval_spec(hosts, routers, cr_fraction, seed, services);
  util::Rng rng(seed);
  model::ProblemSpec spec;
  spec.network = topology::make_structured(kind, hosts, seed);
  model::WorkloadConfig wl;
  wl.service_count = services;
  wl.max_services_per_pair = std::min(3, services);
  wl.cr_fraction = cr_fraction;
  model::populate_random_workload(spec, wl, rng);
  return spec;
}

model::ProblemSpec make_locality_spec(topology::TopologyKind kind, int hosts,
                                      std::uint64_t seed) {
  model::ProblemSpec spec;
  spec.network = topology::make_structured(kind, hosts, seed);
  model::add_standard_services(spec.services);
  const model::ServiceId web = *spec.services.find("WEB");
  const model::ServiceId db = *spec.services.find("DB");
  const model::ServiceId ssh = *spec.services.find("SSH");

  std::vector<topology::NodeId> hs;
  for (const topology::NodeId h : spec.network.hosts())
    if (!spec.network.node(h).is_internet) hs.push_back(h);
  const int n = static_cast<int>(hs.size());
  const auto at = [&](int i) {
    return hs[static_cast<std::size_t>(((i % n) + n) % n)];
  };
  for (int i = 0; i < n; ++i) {
    spec.flows.add(model::Flow{at(i), at(i + 1), web});
    spec.flows.add(model::Flow{at(i), at(i + 2), db});
    if (i % 4 == 0) spec.flows.add(model::Flow{at(i), at(i + n / 2), ssh});
  }
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));

  spec.sliders = model::Sliders{util::Fixed::from_int(7),
                                util::Fixed::from_double(4.5),
                                util::Fixed::from_int(18 * hosts)};
  spec.finalize();
  return spec;
}

TimedRun run_synthesis(const model::ProblemSpec& spec,
                       const model::Sliders& sliders) {
  // One span per cold synthesis; the encoder/solver layers below nest
  // their own phase spans inside it, so a bench trace decomposes every
  // reported time without extra bench-side stopwatches.
  obs::Span span("bench", "bench/synthesis");
  util::Stopwatch watch;
  synth::Synthesizer synthesizer(spec, options());
  synth::SynthesisResult result = synthesizer.synthesize(sliders);
  TimedRun out;
  out.seconds = watch.elapsed_seconds();
  out.encode_seconds = result.encode_seconds;
  out.status = result.status;
  out.solver_memory_bytes = result.solver_memory_bytes;
  out.design = std::move(result.design);
  return out;
}

double median_synthesis_seconds(int hosts, int routers, double cr_fraction,
                                std::uint64_t base_seed, int seeds,
                                const model::Sliders& sliders,
                                bool* all_decided) {
  std::vector<double> times;
  bool decided = true;
  obs::Span span("bench", "bench/median-cell");
  span.arg("hosts", std::to_string(hosts));
  span.arg("routers", std::to_string(routers));
  span.arg("seeds", std::to_string(seeds));
  for (int s = 0; s < seeds; ++s) {
    const model::ProblemSpec spec = make_eval_spec(
        hosts, routers, cr_fraction, base_seed + static_cast<std::uint64_t>(s));
    const TimedRun run = run_synthesis(spec, sliders);
    times.push_back(run.seconds);
    decided = decided && run.status != smt::CheckResult::kUnknown;
  }
  span.end();
  std::sort(times.begin(), times.end());
  if (all_decided != nullptr) *all_decided = decided;
  return times[times.size() / 2];
}

void emit(const std::string& name, const std::string& title,
          const std::vector<std::string>& header,
          const std::vector<std::vector<std::string>>& rows) {
  std::printf("=== %s ===\n", title.c_str());
  util::TextTable table(header);
  for (const auto& row : rows) table.add_row(row);
  std::fputs(table.render().c_str(), stdout);

  const std::string path = name + ".csv";
  util::CsvWriter csv(path, header);
  for (const auto& row : rows) csv.add_row(row);
  std::printf("(series written to %s)\n\n", path.c_str());
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string fmt_isolation_cell(const synth::SweepPointResult& point) {
  if (point.skipped) return "skipped";
  const synth::BoundSearchResult& best = point.search;
  if (best.feasible)
    return best.bound.to_string() + (best.exact ? "" : " (>=)");
  return best.exact ? "infeasible" : "timeout";
}

std::string fmt_time_cell(const synth::SweepPointResult& point) {
  if (point.skipped) return "skipped";
  return fmt_seconds(point.wall_seconds) +
         (point.status == smt::CheckResult::kSat ? "" : " (unsat)");
}

TraceGuard::TraceGuard(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace-out") {
      path_ = argv[i + 1];
      break;
    }
  }
  if (path_.empty()) return;
  obs::session().enable();
  obs::session().set_thread_name("main");
}

TraceGuard::~TraceGuard() {
  if (path_.empty()) return;
  // Destruction happens at the end of the bench's main, after every
  // sweep pool has joined — no recording thread can race the export.
  obs::session().disable();
  try {
    obs::session().write_json(path_);
    std::printf("trace written to %s\n", path_.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace export failed: %s\n", e.what());
  }
}

void print_sweep_effort(const char* label, const synth::SweepResult& sweep) {
  std::printf(
      "%-4s: %d worker(s), %.3fs wall, %.3fs encode, %d probes, "
      "%lld conflicts, %lld propagations, %lld restarts",
      label, sweep.jobs, sweep.wall_seconds, sweep.total_encode_seconds,
      sweep.total_probes,
      static_cast<long long>(sweep.total_solver.conflicts),
      static_cast<long long>(sweep.total_solver.propagations),
      static_cast<long long>(sweep.total_solver.restarts));
  if (sweep.warm_reuses > 0)
    std::printf(", %d warm re-solve(s)", sweep.warm_reuses);
  std::printf("\n");
}

}  // namespace cs::bench
