// Shared workload builder and measurement helpers for the bench binaries.
//
// Every figure/table bench generates networks through this module so the
// whole evaluation agrees on the methodology (paper §V): random connected
// router core, hosts attached at the edge, 1-3 services per ordered host
// pair, connectivity requirements as a percentage of all flows.
//
// Benches run in two scales:
//   * quick (default)         — small sweeps, finishes in seconds; used by
//                               `for b in build/bench/*; do $b; done`.
//   * full  (CS_BENCH_FULL=1) — paper-scale parameter ranges.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/spec.h"
#include "smt/ir.h"
#include "synth/sweep.h"
#include "synth/synthesizer.h"
#include "topology/structured.h"
#include "util/csv.h"
#include "util/table.h"

namespace cs::bench {

/// True when CS_BENCH_FULL=1 is set in the environment.
bool full_mode();

/// Backend selected by CS_BENCH_BACKEND (z3|minipb|race); defaults to
/// Z3, the paper's solver. "race" runs the deterministic MiniPB/Z3
/// portfolio (smt/race_backend.h).
smt::BackendKind backend();

/// Standard synthesis options for benches: the selected backend plus a
/// per-check time cap (10s quick / 120s full) so boundary probes — which
/// are genuinely exponential (paper Fig. 5a) — terminate. Capped checks
/// are reported as such in the tables.
synth::SynthesisOptions options();

/// Options for verdict-reporting sweep benches (the Fig. 3 grids): the
/// selected backend plus a deterministic per-check effort cap
/// (SynthesisOptions::check_conflict_limit) instead of the wall-clock cap.
/// Wall caps expire under machine load, so a capped bound would depend on
/// how busy the box is and on the --jobs value; the effort cap is a pure
/// function of the formula, keeping the emitted tables byte-identical at
/// any worker count. Units are backend-specific (Z3 resource units /
/// MiniPB conflicts), sized to roughly match options()'s wall caps.
synth::SynthesisOptions sweep_options();

/// Sweep worker count for benches that run their grid on the sweep engine
/// (synth/sweep.h): `--jobs N` on the command line, else CS_BENCH_JOBS,
/// else 1 — benches default to serial so reported times stay comparable
/// to the paper's single-threaded measurements. `--jobs 0` means one
/// worker per hardware thread. Results are byte-identical across jobs
/// values (fresh synthesizer per point).
int jobs(int argc, char** argv);

/// Builds an evaluation spec: generated topology + random workload.
/// Sliders are left at zero; callers set them per experiment.
model::ProblemSpec make_eval_spec(int hosts, int routers,
                                  double cr_fraction, std::uint64_t seed,
                                  int services = 3);

/// Same workload over a chosen topology family (topology/structured.h).
/// kMesh reproduces the paper's random mesh with the given router count;
/// the structured families derive their own switch counts from `hosts`
/// and ignore `routers`.
model::ProblemSpec make_eval_spec(topology::TopologyKind kind, int hosts,
                                  int routers, double cr_fraction,
                                  std::uint64_t seed, int services = 3);

/// Locality-weighted scale workload on a structured fabric (the Fig. 6
/// and churn-bench spec). Hosts attach in contiguous index blocks, so
/// adjacent indices are topologically close; each host talks WEB/DB to
/// its two index neighbors and every fourth host reaches one far host
/// (SSH to i + n/2) — roughly 2.25 flows per host. Every 10th flow is a
/// connectivity requirement; sliders are 7 / 4.5 / 18·hosts (feasible
/// across the size range), and the budget scales with the host count.
model::ProblemSpec make_locality_spec(topology::TopologyKind kind, int hosts,
                                      std::uint64_t seed);

struct TimedRun {
  smt::CheckResult status = smt::CheckResult::kUnknown;
  /// Synthesis time = model generation + constraint verification (the
  /// paper's definition; generation is separately available below).
  double seconds = 0;
  double encode_seconds = 0;
  std::size_t solver_memory_bytes = 0;
  std::optional<synth::SecurityDesign> design;
};

/// One full synthesis (fresh synthesizer) under explicit sliders.
TimedRun run_synthesis(const model::ProblemSpec& spec,
                       const model::Sliders& sliders);

/// Median synthesis time over `seeds` regenerated workloads (same size
/// parameters, different seeds); the status is the first run's. Tames the
/// per-seed variance of random networks in the timing figures.
double median_synthesis_seconds(int hosts, int routers, double cr_fraction,
                                std::uint64_t base_seed, int seeds,
                                const model::Sliders& sliders,
                                bool* all_decided = nullptr);

/// Prints the table and writes `<name>.csv` beside the binary.
void emit(const std::string& name, const std::string& title,
          const std::vector<std::string>& header,
          const std::vector<std::vector<std::string>>& rows);

/// Formats seconds with millisecond resolution.
std::string fmt_seconds(double s);

/// Renders a kMaxIsolation grid cell from the search's converged bound —
/// a property of the formula (identical on warm and cold sweeps), unlike
/// the witness design's achieved isolation, which depends on the model
/// the solver happened to return. "(>=)" marks a one-sided bound from a
/// capped probe; infeasible/timeout/skipped points are named as such.
std::string fmt_isolation_cell(const synth::SweepPointResult& point);

/// Renders a kFeasibility timing cell: wall seconds plus an "(unsat)"
/// marker when the point's verdict was negative.
std::string fmt_time_cell(const synth::SweepPointResult& point);

/// Prints a one-line effort summary of a sweep: wall clock, total encode
/// time, probe count and the backend's conflict/propagation/restart
/// totals. Cold-vs-warm benches print one line per mode, making the
/// encode and conflict savings of warm start directly comparable.
void print_sweep_effort(const char* label, const synth::SweepResult& sweep);

/// RAII `--trace-out <file>` handling for bench binaries: scans argv for
/// the flag, enables the tracer when present, and writes the Chrome
/// trace-event JSON on destruction (by which point every sweep pool has
/// drained). Without the flag it is inert, so every bench can hold one
/// unconditionally.
class TraceGuard {
 public:
  TraceGuard(int argc, char** argv);
  ~TraceGuard();

  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
};

}  // namespace cs::bench
