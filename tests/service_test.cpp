// Tests for the synthesis service layer (src/service):
//   * ResultCache — LRU eviction, stats, negative-result entries.
//   * SynthService — the acceptance triad: (a) a repeated identical
//     request is served from cache with zero additional solver probes
//     (proved via MetricsRegistry counters), (b) cached and
//     freshly-solved results for one fingerprint are byte-identical,
//     (c) queue overflow is rejected deterministically, never blocked.
//     Plus deadlines, cancellation, retry policy and single-flight
//     coalescing.
//
// Everything runs on both backends; the MiniPB cases double as TSan
// coverage (scripts/run_all.sh runs the filter '*MiniPb*:ResultCache*:
// Metrics*' under -DCONFIGSYNTH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "model/delta.h"
#include "service/synth_service.h"
#include "spec_helpers.h"

namespace cs::service {
namespace {

using cs::testing::make_example_spec;
using smt::BackendKind;
using smt::CheckResult;

/// Deterministic per-check effort cap (see sweep_test.cpp): boundary
/// probes are exponential, and a conflict cap expires as a pure function
/// of the formula, so capped runs reproduce across worker counts.
std::int64_t effort_cap(BackendKind backend) {
  return backend == BackendKind::kZ3 ? 2'000'000 : 20'000;
}

std::shared_ptr<const model::ProblemSpec> shared_example_spec() {
  return std::make_shared<const model::ProblemSpec>(make_example_spec());
}

ServiceRequest feasibility_request(
    std::shared_ptr<const model::ProblemSpec> spec, BackendKind backend,
    util::Fixed isolation, util::Fixed usability, util::Fixed budget) {
  ServiceRequest req;
  req.spec = std::move(spec);
  req.point.objective = synth::SweepObjective::kFeasibility;
  req.point.isolation = isolation;
  req.point.usability = usability;
  req.point.budget = budget;
  req.synthesis.backend = backend;
  // 10x the usual cap: warm-pool tests assert that *no* probe caps (a
  // capped probe triggers the cold retry and hides the warm behavior
  // under test), and a Z3 re-check after incremental threshold adds can
  // cost more resources than the original cold solve.
  req.synthesis.check_conflict_limit = 10 * effort_cap(backend);
  return req;
}

/// Every formula-level field must match bit for bit. Witness-level
/// fields (design, metrics) are deliberately NOT compared: a SAT model
/// is not unique, and a warm re-solve's learnt state may steer the
/// solver to a different (equally valid) witness than a cold solve.
void expect_payload_identical(const synth::SweepPointResult& a,
                              const synth::SweepPointResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.conflicting, b.conflicting);
  EXPECT_EQ(a.search.objective, b.search.objective);
  EXPECT_EQ(a.search.feasible, b.search.feasible);
  EXPECT_EQ(a.search.exact, b.search.exact);
  EXPECT_EQ(a.search.bound, b.search.bound);
  EXPECT_EQ(a.search.design.has_value(), b.search.design.has_value());
}

// ---- ResultCache -----------------------------------------------------------

model::Fingerprint key_of(int i) {
  model::FingerprintHasher h;
  h.mix_i64(i);
  return h.digest();
}

TEST(ResultCache, LruEvictionAndStats) {
  ResultCache cache(2);
  synth::SweepPointResult r;
  r.status = CheckResult::kSat;
  cache.insert(key_of(1), r);
  cache.insert(key_of(2), r);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());  // 1 becomes MRU
  cache.insert(key_of(3), r);                        // evicts 2 (LRU)
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, NegativeEntriesCountedSeparately) {
  ResultCache cache(4);
  synth::SweepPointResult unsat;
  unsat.status = CheckResult::kUnsat;
  unsat.conflicting = {synth::ThresholdKind::kIsolation,
                       synth::ThresholdKind::kCost};
  cache.insert(key_of(1), unsat);
  const auto hit = cache.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, CheckResult::kUnsat);
  ASSERT_EQ(hit->conflicting.size(), 2u);  // the relaxation core survives
  EXPECT_EQ(cache.stats().negative_hits, 1);
}

/// Distinct sub-digest sets that share (or not) a shape, for exercising
/// the partial-hit index without building whole specs.
model::SpecDigests digests_of(int topo, int flows, int uics, int point) {
  model::SpecDigests d;
  d.topology = key_of(topo);
  d.flows = key_of(flows);
  d.uics = key_of(uics);
  d.thresholds = key_of(point);
  d.budget = key_of(point + 1);
  return d;
}

TEST(ResultCache, ShapeIndexCountsPartialHits) {
  ResultCache cache(2);
  synth::SweepPointResult r;
  r.status = CheckResult::kSat;
  const model::SpecDigests d1 = digests_of(100, 101, 102, 103);
  cache.insert(key_of(1), r, &d1);
  EXPECT_EQ(cache.digests(key_of(1)), std::optional(d1));

  // Same shape, different query point → full-key miss, partial hit.
  const model::SpecDigests retuned = digests_of(100, 101, 102, 203);
  bool partial = false;
  EXPECT_FALSE(cache.lookup(key_of(2), &retuned, &partial).has_value());
  EXPECT_TRUE(partial);

  // Different shape (one flows digest apart) → a plain miss.
  const model::SpecDigests reshaped = digests_of(100, 301, 102, 103);
  EXPECT_FALSE(cache.lookup(key_of(3), &reshaped, &partial).has_value());
  EXPECT_FALSE(partial);

  // A full-key hit is never counted as partial.
  EXPECT_TRUE(cache.lookup(key_of(1), &d1, &partial).has_value());
  EXPECT_FALSE(partial);
  EXPECT_EQ(cache.stats().partial_hits, 1);

  // Eviction unregisters the entry's shape from the index.
  cache.insert(key_of(4), r);  // no digests
  cache.insert(key_of(5), r);  // evicts key_of(1), the LRU
  EXPECT_FALSE(cache.lookup(key_of(6), &retuned, &partial).has_value());
  EXPECT_FALSE(partial);
  EXPECT_EQ(cache.stats().partial_hits, 1);
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CountersAndHistogramsRender) {
  MetricsRegistry reg;
  reg.counter("requests_total").add(3);
  reg.counter("requests_total").inc();
  EXPECT_EQ(reg.counter_value("requests_total"), 4);
  EXPECT_EQ(reg.counter_value("never_created"), 0);
  reg.histogram("solve_ms").observe(0.5);
  reg.histogram("solve_ms").observe(7.0);
  reg.histogram("solve_ms").observe(20000.0);  // overflow bucket
  EXPECT_EQ(reg.histogram("solve_ms").count(), 3);
  EXPECT_DOUBLE_EQ(reg.histogram("solve_ms").min_ms(), 0.5);
  EXPECT_DOUBLE_EQ(reg.histogram("solve_ms").max_ms(), 20000.0);
  const auto buckets = reg.histogram("solve_ms").buckets();
  ASSERT_EQ(buckets.size(), Histogram::bucket_bounds().size() + 1);
  EXPECT_EQ(buckets.front(), 1);  // 0.5 <= 1
  EXPECT_EQ(buckets.back(), 1);   // 20000 > every finite bound
  const std::string text = reg.render();
  EXPECT_NE(text.find("requests_total"), std::string::npos);
  EXPECT_NE(text.find("solve_ms"), std::string::npos);
}

TEST(Metrics, PercentilesInterpolateUniformSamples) {
  // 1..100 ms, one each: the exact order statistics are 50/90/99, and
  // they fall where linear interpolation inside the exponential buckets
  // lands (cumulative counts line up with the bucket edges).
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.99), 99.0);
  // Quantile extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile_ms(1.0), 100.0);
}

TEST(Metrics, PercentileSingleSampleAndEmpty) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile_ms(0.5), 0.0);
  // One sample: every quantile is that sample (the clamp to [min, max]
  // overrides whatever the bucket interpolation would claim).
  Histogram h;
  h.observe(7.0);
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.99), 7.0);
}

TEST(Metrics, PercentileOverflowBucketUsesObservedMax) {
  // All mass beyond the last finite bound (10000): the overflow bucket's
  // upper edge is the observed max, so quantiles stay finite and inside
  // [min, max].
  Histogram h;
  h.observe(20000.0);
  h.observe(40000.0);
  const double p99 = h.percentile_ms(0.99);
  EXPECT_GE(p99, 20000.0);
  EXPECT_LE(p99, 40000.0);
  EXPECT_DOUBLE_EQ(h.percentile_ms(1.0), 40000.0);
}

TEST(Metrics, RenderSurfacesPercentiles) {
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i)
    reg.histogram("queue_ms").observe(static_cast<double>(i));
  const std::string text = reg.render();
  EXPECT_NE(text.find("p50 ms"), std::string::npos);
  EXPECT_NE(text.find("p99 ms"), std::string::npos);
  EXPECT_NE(text.find("50.000"), std::string::npos);
  EXPECT_NE(text.find("99.000"), std::string::npos);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("requests_total").add(5);
  reg.histogram("solve_ms").observe(1.0);   // le="1"
  reg.histogram("solve_ms").observe(7.0);   // le="10"
  reg.histogram("solve_ms").observe(20000.0);  // +Inf only
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE configsynth_requests_total counter\n"
                      "configsynth_requests_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE configsynth_solve_ms histogram"),
            std::string::npos);
  // Bucket series is cumulative and ends at +Inf == _count.
  EXPECT_NE(text.find("configsynth_solve_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("configsynth_solve_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("configsynth_solve_ms_bucket{le=\"10000\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("configsynth_solve_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("configsynth_solve_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("configsynth_solve_ms_sum 20008.000"),
            std::string::npos);
}

// ---- SynthService acceptance triad -----------------------------------------

class BackendServiceTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendServiceTest, RepeatRequestHitsCacheWithZeroProbes) {
  ServiceConfig config;
  config.workers = 1;
  SynthService service(config);
  const auto spec = shared_example_spec();
  const ServiceRequest req = feasibility_request(
      spec, GetParam(), spec->sliders.isolation, spec->sliders.usability,
      spec->sliders.budget);

  const ServiceOutcome first = service.solve(req);
  ASSERT_FALSE(first.rejected);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.result.status, CheckResult::kSat);
  const std::int64_t probes_after_first =
      service.metrics().counter_value("solver_probes_total");
  EXPECT_GT(probes_after_first, 0);

  const ServiceOutcome second = service.solve(req);
  EXPECT_TRUE(second.cache_hit);
  // (a) zero additional solver probes, proved by the registry counter.
  EXPECT_EQ(service.metrics().counter_value("solver_probes_total"),
            probes_after_first);
  EXPECT_EQ(service.metrics().counter_value("cache_hits"), 1);
  // (b) the cached payload is identical to the freshly-solved one.
  expect_payload_identical(first.result, second.result);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
}

TEST_P(BackendServiceTest, CachedResultIdenticalToIndependentFreshSolve) {
  // Solve the same request in two *separate* services (disjoint caches):
  // the cached copy one service returns must equal what the other
  // freshly computes — cached results are not allowed to drift.
  const auto spec = shared_example_spec();
  const ServiceRequest req = feasibility_request(
      spec, GetParam(), spec->sliders.isolation, spec->sliders.usability,
      spec->sliders.budget);
  SynthService warm{ServiceConfig{}};
  SynthService cold{ServiceConfig{}};
  (void)warm.solve(req);                          // prime the warm cache
  const ServiceOutcome cached = warm.solve(req);  // served from cache
  const ServiceOutcome fresh = cold.solve(req);   // full solve
  ASSERT_TRUE(cached.cache_hit);
  ASSERT_FALSE(fresh.cache_hit);
  expect_payload_identical(cached.result, fresh.result);
}

TEST_P(BackendServiceTest, UnsatVerdictIsCachedWithCore) {
  SynthService service{ServiceConfig{}};
  const auto spec = shared_example_spec();
  // Overtight triple (cf. sweep_test): isolation 10 / usability 10 at a
  // $5K budget is unsatisfiable.
  const ServiceRequest req = feasibility_request(
      spec, GetParam(), util::Fixed::from_int(10), util::Fixed::from_int(10),
      util::Fixed::from_int(5));
  const ServiceOutcome first = service.solve(req);
  ASSERT_EQ(first.result.status, CheckResult::kUnsat);
  EXPECT_FALSE(first.result.conflicting.empty());
  const std::int64_t probes =
      service.metrics().counter_value("solver_probes_total");
  const ServiceOutcome second = service.solve(req);
  EXPECT_TRUE(second.cache_hit);  // negative result served from cache
  EXPECT_EQ(second.result.status, CheckResult::kUnsat);
  EXPECT_EQ(second.result.conflicting, first.result.conflicting);
  EXPECT_EQ(service.metrics().counter_value("solver_probes_total"), probes);
  EXPECT_EQ(service.cache().stats().negative_hits, 1);
}

TEST_P(BackendServiceTest, WarmPoolServesRepeatSpecAtNewThresholds) {
  // The warm pool's reason to exist: same spec, *different* thresholds —
  // a cache miss — must be answered on a parked encoded synthesizer
  // (zero re-encoding), with the same verdict a cold solve gives.
  ServiceConfig config;
  config.workers = 1;
  SynthService service(config);
  const auto spec = shared_example_spec();

  const ServiceOutcome first = service.solve(feasibility_request(
      spec, GetParam(), spec->sliders.isolation, spec->sliders.usability,
      spec->sliders.budget));
  ASSERT_EQ(first.result.status, CheckResult::kSat);
  EXPECT_FALSE(first.result.warm);  // nothing parked yet: cold encode
  EXPECT_EQ(service.metrics().counter_value("warm_misses"), 1);
  EXPECT_EQ(service.warm_pool_size(), 1u);

  // Different thresholds → different request fingerprint → cache miss,
  // but the same spec/backend/caps → warm-pool hit.
  const ServiceRequest shifted = feasibility_request(
      spec, GetParam(), util::Fixed::from_int(1), util::Fixed::from_int(2),
      spec->sliders.budget);
  const ServiceOutcome second = service.solve(shifted);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.result.warm);
  EXPECT_EQ(second.result.encode_seconds, 0.0);
  EXPECT_EQ(service.metrics().counter_value("warm_hits"), 1);
  EXPECT_EQ(service.warm_pool_size(), 1u);  // checked back in

  // The warm verdict matches an independent cold solve bit for bit.
  SynthService cold{ServiceConfig{}};
  expect_payload_identical(second.result, cold.solve(shifted).result);

  // Solver-effort counters accumulated across both solves.
  EXPECT_GT(service.metrics().counter_value("solver_propagations_total"), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendServiceTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

// ---- Warm pool edge cases (MiniPB, TSan-covered) ---------------------------

TEST(SynthServiceMiniPb, RetunedDeltaSpecIsPartialHitServedWarm) {
  // The changefeed fast path end to end: a thresholds-only cs-delta-v1
  // retune produces a new combined digest (full-key cache miss) with an
  // unchanged encoding shape, so the service counts a partial hit and
  // the shape-keyed warm pool answers without re-encoding.
  ServiceConfig config;
  config.workers = 1;
  SynthService service(config);
  const auto spec = shared_example_spec();
  const auto request_for = [](const auto& s) {
    return feasibility_request(s, BackendKind::kMiniPb, s->sliders.isolation,
                               s->sliders.usability, s->sliders.budget);
  };
  const ServiceOutcome first = service.solve(request_for(spec));
  ASSERT_EQ(first.result.status, CheckResult::kSat);
  EXPECT_EQ(service.metrics().counter_value("cache_partial_hits"), 0);

  const auto retuned = std::make_shared<const model::ProblemSpec>(
      model::apply_delta(
          *spec, model::parse_delta("retune,iso=2,usab=3,budget=55")));
  const ServiceOutcome second = service.solve(request_for(retuned));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(service.metrics().counter_value("cache_partial_hits"), 1);
  EXPECT_TRUE(second.result.warm);
  EXPECT_EQ(second.result.encode_seconds, 0.0);
  EXPECT_EQ(service.metrics().counter_value("warm_hits"), 1);
  // The counter reaches the Prometheus exposition like any other.
  EXPECT_NE(
      service.metrics().render_prometheus().find("cache_partial_hits"),
      std::string::npos);

  // The warm verdict matches an independent cold solve bit for bit.
  SynthService cold{ServiceConfig{}};
  expect_payload_identical(second.result,
                           cold.solve(request_for(retuned)).result);
}

TEST(SynthServiceMiniPb, WarmPoolDisabledSolvesCold) {
  ServiceConfig config;
  config.workers = 1;
  config.warm_pool_limit = 0;
  SynthService service(config);
  const auto spec = shared_example_spec();
  const ServiceOutcome out = service.solve(feasibility_request(
      spec, BackendKind::kMiniPb, spec->sliders.isolation,
      spec->sliders.usability, spec->sliders.budget));
  EXPECT_FALSE(out.result.warm);
  EXPECT_EQ(service.warm_pool_size(), 0u);
  EXPECT_EQ(service.metrics().counter_value("warm_hits"), 0);
  EXPECT_EQ(service.metrics().counter_value("warm_misses"), 0);
}

TEST(SynthServiceMiniPb, WarmPoolEvictsFifoAtLimit) {
  ServiceConfig config;
  config.workers = 1;
  config.warm_pool_limit = 2;
  SynthService service(config);
  // Three distinct specs → three distinct warm keys; the pool holds two.
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    const auto spec = std::make_shared<const model::ProblemSpec>(
        cs::testing::make_random_spec(seed, 4, 3));
    const ServiceOutcome out = service.solve(feasibility_request(
        spec, BackendKind::kMiniPb, spec->sliders.isolation,
        spec->sliders.usability, spec->sliders.budget));
    ASSERT_FALSE(out.rejected);
  }
  EXPECT_EQ(service.warm_pool_size(), 2u);
  EXPECT_EQ(service.metrics().counter_value("warm_evictions"), 1);
}

TEST(SynthServiceMiniPb, HardThresholdModeBypassesWarmPool) {
  ServiceConfig config;
  config.workers = 1;
  SynthService service(config);
  const auto spec = shared_example_spec();
  ServiceRequest req = feasibility_request(
      spec, BackendKind::kMiniPb, spec->sliders.isolation,
      spec->sliders.usability, spec->sliders.budget);
  req.synthesis.threshold_mode = synth::ThresholdMode::kHard;
  const ServiceOutcome out = service.solve(req);
  EXPECT_EQ(out.result.status, CheckResult::kSat);
  EXPECT_FALSE(out.result.warm);
  EXPECT_EQ(service.warm_pool_size(), 0u);
}

// ---- Admission control / deadlines / coalescing (MiniPB, TSan-covered) -----

/// Gate that blocks the service's single worker inside on_start until
/// the test releases it — makes queue-overflow tests deterministic.
class Gate {
 public:
  void block_first_entry() {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool first = !entered_;
    entered_ = true;
    entered_cv_.notify_all();
    if (first) release_cv_.wait(lock, [this] { return released_; });
  }
  void wait_until_entered() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_, release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(SynthServiceMiniPb, QueueOverflowRejectsDeterministically) {
  Gate gate;
  ServiceConfig config;
  config.workers = 1;
  config.queue_limit = 2;
  config.on_start = [&gate](const ServiceRequest&) {
    gate.block_first_entry();
  };
  SynthService service(config);
  const auto spec = shared_example_spec();
  const auto req = [&](int isolation) {
    return feasibility_request(spec, BackendKind::kMiniPb,
                               util::Fixed::from_int(isolation),
                               util::Fixed::from_int(0),
                               util::Fixed::from_int(60));
  };

  // First request starts executing and parks in on_start; the worker is
  // now busy, so subsequent submissions stack up in the queue.
  auto running = service.submit(req(0));
  gate.wait_until_entered();
  auto queued_a = service.submit(req(1));  // queue depth 1
  auto queued_b = service.submit(req(2));  // queue depth 2 = limit
  auto rejected = service.submit(req(3));  // (c) over limit: rejected now

  // The rejection resolves immediately — before the worker is released —
  // so it provably never blocked on solving.
  const ServiceOutcome over = rejected.get();
  EXPECT_TRUE(over.rejected);
  EXPECT_EQ(over.reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(reject_reason_name(over.reject_reason), "queue-full");
  EXPECT_EQ(over.result.status, CheckResult::kUnknown);
  EXPECT_EQ(service.metrics().counter_value("rejected"), 1);
  EXPECT_EQ(service.metrics().counter_value("rejected_queue_full"), 1);

  gate.release();
  const ServiceOutcome ran = running.get();
  EXPECT_FALSE(ran.rejected);
  EXPECT_EQ(ran.reject_reason, RejectReason::kNone);
  EXPECT_FALSE(queued_a.get().rejected);
  EXPECT_FALSE(queued_b.get().rejected);
  EXPECT_EQ(service.metrics().counter_value("requests_total"), 4);
}

TEST(SynthServiceMiniPb, ExpiredDeadlineSkipsWithoutSolving) {
  SynthService service{ServiceConfig{}};
  const auto spec = shared_example_spec();
  ServiceRequest req = feasibility_request(
      spec, BackendKind::kMiniPb, spec->sliders.isolation,
      spec->sliders.usability, spec->sliders.budget);
  req.deadline_ms = -1;  // already expired at submit time
  const ServiceOutcome out = service.solve(req);
  EXPECT_FALSE(out.rejected);
  EXPECT_TRUE(out.result.skipped);
  EXPECT_EQ(out.reject_reason, RejectReason::kDeadlineExpired);
  EXPECT_EQ(out.result.status, CheckResult::kUnknown);
  EXPECT_EQ(service.metrics().counter_value("solver_probes_total"), 0);
  EXPECT_EQ(service.metrics().counter_value("skipped_deadline"), 1);
  // Skipped results must not poison the cache.
  req.deadline_ms = 0;
  const ServiceOutcome solved = service.solve(req);
  EXPECT_FALSE(solved.result.skipped);
  EXPECT_EQ(solved.result.status, CheckResult::kSat);
}

TEST(SynthServiceMiniPb, CancellationTokenSkipsPendingRequests) {
  SynthService service{ServiceConfig{}};
  const auto spec = shared_example_spec();
  std::atomic<bool> cancel{true};  // raised before submission
  ServiceRequest req = feasibility_request(
      spec, BackendKind::kMiniPb, spec->sliders.isolation,
      spec->sliders.usability, spec->sliders.budget);
  req.cancel = &cancel;
  const ServiceOutcome out = service.solve(req);
  EXPECT_TRUE(out.result.skipped);
  EXPECT_EQ(out.reject_reason, RejectReason::kCancelled);
  EXPECT_EQ(service.metrics().counter_value("solver_probes_total"), 0);
  EXPECT_EQ(service.metrics().counter_value("skipped_cancelled"), 1);
}

TEST(SynthServiceMiniPb, RetryRaisesConflictCapOnce) {
  // A 1-conflict cap makes the first probe expire; the retry (cap × a
  // large factor) then decides the instance. The outcome must be the
  // decided verdict, with exactly one retry counted.
  ServiceConfig config;
  config.retry_cap_factor = 100000;
  SynthService service(config);
  const auto spec = shared_example_spec();
  ServiceRequest req = feasibility_request(
      spec, BackendKind::kMiniPb, spec->sliders.isolation,
      spec->sliders.usability, spec->sliders.budget);
  req.synthesis.check_conflict_limit = 1;
  const ServiceOutcome out = service.solve(req);
  EXPECT_EQ(out.retries, 1);
  EXPECT_EQ(service.metrics().counter_value("retries"), 1);
  EXPECT_EQ(out.result.status, CheckResult::kSat);
}

TEST(SynthServiceMiniPb, ConcurrentIdenticalRequestsCoalesce) {
  // 8 identical requests on 4 workers: single-flight guarantees exactly
  // one solve; everyone else is served from cache (possibly after
  // waiting on the in-flight primary).
  ServiceConfig config;
  config.workers = 4;
  SynthService service(config);
  const auto spec = shared_example_spec();
  const ServiceRequest req = feasibility_request(
      spec, BackendKind::kMiniPb, spec->sliders.isolation,
      spec->sliders.usability, spec->sliders.budget);
  std::vector<std::future<ServiceOutcome>> pending;
  for (int i = 0; i < 8; ++i) pending.push_back(service.submit(req));
  int hits = 0;
  for (auto& f : pending) {
    const ServiceOutcome out = f.get();
    ASSERT_FALSE(out.rejected);
    EXPECT_EQ(out.result.status, CheckResult::kSat);
    hits += out.cache_hit ? 1 : 0;
  }
  EXPECT_EQ(hits, 7);  // one primary solve, seven cache hits
  EXPECT_EQ(service.metrics().counter_value("cache_misses"), 1);
  const std::int64_t one_solve_probes =
      service.metrics().counter_value("solver_probes_total");
  SynthService single{ServiceConfig{}};
  (void)single.solve(req);
  EXPECT_EQ(one_solve_probes,
            single.metrics().counter_value("solver_probes_total"));
}

TEST(SynthServiceMiniPb, MalformedRequestRethrowsFromFuture) {
  SynthService service{ServiceConfig{}};
  const auto spec = shared_example_spec();
  ServiceRequest req;
  req.spec = spec;
  req.point.objective = synth::SweepObjective::kMaxIsolation;
  req.point.usability = util::Fixed::from_int(0);
  req.point.budget = util::Fixed::from_int(20);
  req.synthesis.backend = BackendKind::kMiniPb;
  req.optimize.resolution = util::Fixed{};  // invalid: must throw
  EXPECT_THROW(service.solve(req), util::Error);
}

}  // namespace
}  // namespace cs::service
