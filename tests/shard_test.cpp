// Tests for the sharded synthesis subsystem (src/shard):
//   * partition_topology — assignment totality, cut-link bookkeeping,
//     determinism, host balance, and non-collapse on symmetric fabrics
//     (a fat-tree defeats nearest-seed assignment; the host-weighted BFS
//     growth must keep every region populated);
//   * plan_shards / project_spec — flows survive iff both endpoints do,
//     id maps lift back to the parent spec, budget shares never exceed
//     the global budget;
//   * ShardedSynthesizer — the verdict contract (sharded == monolithic
//     on SAT and UNSAT inputs), stitched designs passing the global
//     checker, byte-identical results at any --jobs value, trivial
//     regions, and the fallback path;
//   * SynthService with shard_regions set — the service-level shard
//     branch returns the same verdict as a direct solve.
//
// Everything runs MiniPB with deterministic conflict caps so the suite
// is reproducible on any machine. Labelled `parallel` in CMake: the
// jobs>1 cases exercise the region thread pool under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/checker.h"
#include "service/synth_service.h"
#include "shard/sharded.h"
#include "spec_helpers.h"
#include "topology/structured.h"

namespace cs::shard {
namespace {

using cs::testing::make_example_spec;
using cs::testing::make_random_spec;
using smt::BackendKind;
using smt::CheckResult;

synth::SynthesisOptions minipb_options() {
  synth::SynthesisOptions options;
  options.backend = BackendKind::kMiniPb;
  options.check_conflict_limit = 50'000;
  return options;
}

/// Small structured spec with a locality workload (the shape sharding is
/// for): neighbor WEB flows along the host index, every 10th flow a
/// connectivity requirement.
model::ProblemSpec make_campus_spec(int hosts) {
  model::ProblemSpec spec;
  spec.network = topology::make_structured(topology::TopologyKind::kCampus,
                                           hosts, 11);
  const model::ServiceId svc = spec.services.add("WEB");
  const auto& hs = spec.network.hosts();
  for (std::size_t i = 0; i + 1 < hs.size(); ++i) {
    spec.flows.add(model::Flow{hs[i], hs[i + 1], svc});
    if (i + 2 < hs.size()) spec.flows.add(model::Flow{hs[i], hs[i + 2], svc});
  }
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                util::Fixed::from_int(3),
                                util::Fixed::from_int(10 * hosts)};
  spec.finalize();
  return spec;
}

// ---- partition_topology ----------------------------------------------------

void expect_partition_invariants(const topology::Network& net,
                                 const Partition& p) {
  ASSERT_GE(p.regions, 1);
  ASSERT_EQ(p.region_of.size(), net.node_count());
  for (const int r : p.region_of) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, p.regions);
  }
  // members is the exact inverse of region_of, ascending.
  ASSERT_EQ(p.members.size(), static_cast<std::size_t>(p.regions));
  std::size_t member_total = 0;
  for (int r = 0; r < p.regions; ++r) {
    member_total += p.members[static_cast<std::size_t>(r)].size();
    EXPECT_TRUE(std::is_sorted(p.members[static_cast<std::size_t>(r)].begin(),
                               p.members[static_cast<std::size_t>(r)].end()));
    for (const topology::NodeId n : p.members[static_cast<std::size_t>(r)])
      EXPECT_EQ(p.region_of[static_cast<std::size_t>(n)], r);
  }
  EXPECT_EQ(member_total, net.node_count());
  // Every region owns at least one router, and cut_links is exactly the
  // set of region-crossing links.
  for (int r = 0; r < p.regions; ++r) {
    const auto& members = p.members[static_cast<std::size_t>(r)];
    EXPECT_TRUE(std::any_of(members.begin(), members.end(),
                            [&](topology::NodeId n) {
                              return net.is_router(n);
                            }))
        << "region " << r << " has no router";
  }
  std::set<topology::LinkId> expected_cut;
  for (const topology::Link& l : net.links()) {
    if (p.region_of[static_cast<std::size_t>(l.a)] !=
        p.region_of[static_cast<std::size_t>(l.b)])
      expected_cut.insert(l.id);
  }
  EXPECT_EQ(std::set<topology::LinkId>(p.cut_links.begin(),
                                       p.cut_links.end()),
            expected_cut);
  EXPECT_TRUE(std::is_sorted(p.cut_links.begin(), p.cut_links.end()));
}

TEST(PartitionTest, InvariantsAcrossFamiliesAndCounts) {
  for (const topology::TopologyKind kind :
       {topology::TopologyKind::kFatTree, topology::TopologyKind::kCampus,
        topology::TopologyKind::kIsp}) {
    const topology::Network net = topology::make_structured(kind, 60, 5);
    for (const int regions : {0, 2, 3, 5}) {
      const Partition p = partition_topology(net, regions);
      expect_partition_invariants(net, p);
      if (regions >= 2) {
        EXPECT_EQ(p.regions, std::min<int>(
                                 regions,
                                 static_cast<int>(net.router_count())));
      }
    }
  }
}

TEST(PartitionTest, Deterministic) {
  const topology::Network net =
      topology::make_structured(topology::TopologyKind::kFatTree, 128, 9);
  const Partition a = partition_topology(net, 4);
  const Partition b = partition_topology(net, 4);
  EXPECT_EQ(a.region_of, b.region_of);
  EXPECT_EQ(a.cut_links, b.cut_links);
}

TEST(PartitionTest, FatTreeDoesNotCollapseAndBalancesHosts) {
  // Symmetric fabric: every edge switch is equidistant from every core,
  // the case where nearest-seed assignment degenerates to one region.
  const topology::Network net =
      topology::make_structured(topology::TopologyKind::kFatTree, 200, 9);
  const Partition p = partition_topology(net, 4);
  ASSERT_EQ(p.regions, 4);
  std::vector<int> hosts_in(4, 0);
  for (const topology::NodeId h : net.hosts())
    ++hosts_in[static_cast<std::size_t>(p.region_of[static_cast<std::size_t>(
        h)])];
  const int avg = 200 / 4;
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(hosts_in[static_cast<std::size_t>(r)], avg / 4)
        << "region " << r << " starved of hosts";
    EXPECT_LE(hosts_in[static_cast<std::size_t>(r)], avg * 3)
        << "region " << r << " swallowed the fabric";
  }
}

// ---- plan_shards / project_spec --------------------------------------------

TEST(PlannerTest, ProjectionKeepsExactlyTheIntraRegionFlows) {
  const model::ProblemSpec spec = make_campus_spec(24);
  const ShardPlan plan = plan_shards(spec, ShardPlannerOptions{3});

  std::size_t projected_flows = 0;
  util::Fixed budget_total;
  for (const RegionPlan& region : plan.regions) {
    const model::SpecProjection& proj = region.projection;
    projected_flows += proj.flows.size();
    budget_total += proj.spec.sliders.budget;
    ASSERT_EQ(proj.flows.size(), proj.spec.flows.size());
    for (std::size_t lf = 0; lf < proj.flows.size(); ++lf) {
      // The local flow lifts to a global flow between the lifted
      // endpoints, both inside this region.
      const model::Flow& local =
          proj.spec.flows.flow(static_cast<model::FlowId>(lf));
      const model::Flow& global = spec.flows.flow(proj.flows[lf]);
      EXPECT_EQ(proj.nodes[static_cast<std::size_t>(local.src)], global.src);
      EXPECT_EQ(proj.nodes[static_cast<std::size_t>(local.dst)], global.dst);
      EXPECT_EQ(local.service, global.service);
      EXPECT_EQ(
          plan.partition.region_of[static_cast<std::size_t>(global.src)],
          region.index);
      EXPECT_EQ(
          plan.partition.region_of[static_cast<std::size_t>(global.dst)],
          region.index);
    }
  }
  // Intra flows + cross flows tile the global flow set, and the floored
  // budget shares never overshoot the global budget.
  EXPECT_EQ(projected_flows + plan.cross_flows.size(), spec.flows.size());
  EXPECT_LE(budget_total, spec.sliders.budget);
  for (const model::FlowId f : plan.cross_flows) {
    const model::Flow& flow = spec.flows.flow(f);
    EXPECT_NE(plan.partition.region_of[static_cast<std::size_t>(flow.src)],
              plan.partition.region_of[static_cast<std::size_t>(flow.dst)]);
  }
}

TEST(PlannerTest, PlanDigestIsStable) {
  const model::ProblemSpec spec = make_campus_spec(24);
  const ShardPlan a = plan_shards(spec, ShardPlannerOptions{3});
  const ShardPlan b = plan_shards(spec, ShardPlannerOptions{3});
  EXPECT_EQ(a.plan_digest, b.plan_digest);
  const ShardPlan c = plan_shards(spec, ShardPlannerOptions{2});
  EXPECT_NE(a.plan_digest, c.plan_digest);
}

// ---- ShardedSynthesizer ----------------------------------------------------

TEST(ShardedTest, MatchesMonolithicVerdictOnExampleSpec) {
  const model::ProblemSpec spec = make_example_spec();
  synth::Synthesizer mono(spec, minipb_options());
  const synth::SynthesisResult expected = mono.synthesize();

  ShardOptions options;
  options.synthesis = minipb_options();
  options.regions = 2;
  const ShardedOutcome outcome = ShardedSynthesizer(spec, options).synthesize();
  EXPECT_EQ(outcome.status, expected.status);
  if (outcome.status == CheckResult::kSat) {
    ASSERT_TRUE(outcome.design.has_value());
    EXPECT_TRUE(analysis::check_design(spec, *outcome.design).ok());
  }
}

TEST(ShardedTest, MatchesMonolithicVerdictOnRandomSpecs) {
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    model::ProblemSpec spec = make_random_spec(seed, 16, 8);
    spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                  util::Fixed::from_int(3),
                                  util::Fixed::from_int(160)};
    spec.finalize();
    synth::Synthesizer mono(spec, minipb_options());
    const synth::SynthesisResult expected = mono.synthesize();

    ShardOptions options;
    options.synthesis = minipb_options();
    options.regions = 2;
    const ShardedOutcome outcome =
        ShardedSynthesizer(spec, options).synthesize();
    EXPECT_EQ(outcome.status, expected.status) << "seed " << seed;
    if (outcome.status == CheckResult::kSat) {
      ASSERT_TRUE(outcome.design.has_value());
      EXPECT_TRUE(analysis::check_design(spec, *outcome.design).ok())
          << "seed " << seed;
    }
  }
}

TEST(ShardedTest, StitchedCampusSolveAvoidsFallback) {
  // The locality workload on a campus fabric is the case sharding is
  // built for: every region solves and the stitched design passes the
  // global check with no monolithic fallback.
  const model::ProblemSpec spec = make_campus_spec(40);
  ShardOptions options;
  options.synthesis = minipb_options();
  options.regions = 3;
  const ShardedOutcome outcome = ShardedSynthesizer(spec, options).synthesize();
  EXPECT_EQ(outcome.status, CheckResult::kSat);
  EXPECT_TRUE(outcome.sharded);
  EXPECT_FALSE(outcome.used_fallback);
  ASSERT_TRUE(outcome.design.has_value());
  EXPECT_TRUE(analysis::check_design(spec, *outcome.design).ok());
  EXPECT_EQ(outcome.region_outcomes.size(), 3u);
  for (const RegionOutcome& r : outcome.region_outcomes)
    EXPECT_EQ(r.status, CheckResult::kSat);
}

TEST(ShardedTest, ByteIdenticalAtAnyJobsValue) {
  const model::ProblemSpec spec = make_campus_spec(40);
  ShardOptions options;
  options.synthesis = minipb_options();
  options.regions = 3;
  options.jobs = 1;
  const ShardedOutcome serial = ShardedSynthesizer(spec, options).synthesize();
  options.jobs = 4;
  const ShardedOutcome parallel =
      ShardedSynthesizer(spec, options).synthesize();
  EXPECT_EQ(serial.status, parallel.status);
  EXPECT_EQ(serial.used_fallback, parallel.used_fallback);
  EXPECT_EQ(serial.escalated_flows, parallel.escalated_flows);
  EXPECT_EQ(serial.repair_placements, parallel.repair_placements);
  ASSERT_EQ(serial.design.has_value(), parallel.design.has_value());
  if (serial.design.has_value()) {
    EXPECT_TRUE(*serial.design == *parallel.design);
  }
  ASSERT_EQ(serial.region_outcomes.size(), parallel.region_outcomes.size());
  for (std::size_t r = 0; r < serial.region_outcomes.size(); ++r) {
    EXPECT_EQ(serial.region_outcomes[r].status,
              parallel.region_outcomes[r].status);
    EXPECT_EQ(serial.region_outcomes[r].sub_digest,
              parallel.region_outcomes[r].sub_digest);
  }
}

TEST(ShardedTest, UnsatVerdictMatchesThroughFallback) {
  // Impossible thresholds: maximum isolation and usability on a zero
  // budget. Regions report UNSAT, the pipeline falls back, and the
  // verdict matches the monolithic solve.
  model::ProblemSpec spec = make_campus_spec(24);
  spec.sliders = model::Sliders{util::Fixed::from_int(10),
                                util::Fixed::from_int(10), util::Fixed{}};
  spec.finalize();
  synth::Synthesizer mono(spec, minipb_options());
  const synth::SynthesisResult expected = mono.synthesize();
  ASSERT_EQ(expected.status, CheckResult::kUnsat);

  ShardOptions options;
  options.synthesis = minipb_options();
  options.regions = 2;
  const ShardedOutcome outcome = ShardedSynthesizer(spec, options).synthesize();
  EXPECT_EQ(outcome.status, CheckResult::kUnsat);
  EXPECT_TRUE(outcome.used_fallback);
  EXPECT_FALSE(outcome.sharded);
}

TEST(ShardedTest, RegionsWithoutFlowsAreTrivial) {
  // All flows among the first few hosts: at least one region has no
  // flows and must be solved vacuously (empty design), not rejected.
  model::ProblemSpec spec;
  spec.network = topology::make_structured(topology::TopologyKind::kCampus,
                                           24, 11);
  const model::ServiceId svc = spec.services.add("WEB");
  const auto& hs = spec.network.hosts();
  for (std::size_t i = 0; i + 1 < 4; ++i)
    spec.flows.add(model::Flow{hs[i], hs[i + 1], svc});
  spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                util::Fixed::from_int(3),
                                util::Fixed::from_int(60)};
  spec.finalize();

  ShardOptions options;
  options.synthesis = minipb_options();
  options.regions = 3;
  const ShardedOutcome outcome = ShardedSynthesizer(spec, options).synthesize();
  EXPECT_EQ(outcome.status, CheckResult::kSat);
  EXPECT_TRUE(std::any_of(outcome.region_outcomes.begin(),
                          outcome.region_outcomes.end(),
                          [](const RegionOutcome& r) { return r.trivial; }));
  ASSERT_TRUE(outcome.design.has_value());
  EXPECT_TRUE(analysis::check_design(spec, *outcome.design).ok());
}

// ---- SynthService shard branch ---------------------------------------------

TEST(ShardedServiceTest, ShardedServiceMatchesDirectVerdict) {
  const auto spec =
      std::make_shared<const model::ProblemSpec>(make_campus_spec(24));
  synth::Synthesizer mono(*spec, minipb_options());
  const synth::SynthesisResult expected = mono.synthesize();

  service::ServiceConfig config;
  config.workers = 1;
  config.shard_regions = 2;
  service::SynthService service(config);
  service::ServiceRequest req;
  req.spec = spec;
  req.point.objective = synth::SweepObjective::kFeasibility;
  req.point.isolation = spec->sliders.isolation;
  req.point.usability = spec->sliders.usability;
  req.point.budget = spec->sliders.budget;
  req.synthesis = minipb_options();
  const service::ServiceOutcome outcome = service.solve(std::move(req));
  EXPECT_EQ(outcome.result.status, expected.status);
  EXPECT_EQ(outcome.result.search.feasible,
            expected.status == CheckResult::kSat);
}

}  // namespace
}  // namespace cs::shard
