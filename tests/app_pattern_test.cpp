// Tests for the application-level isolation pattern extension (§VII).
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "smt/ir.h"
#include "spec_helpers.h"
#include "synth/metrics.h"
#include "synth/synthesizer.h"

namespace cs::synth {
namespace {

using smt::BackendKind;
using smt::CheckResult;
using util::Fixed;

/// Two hosts exchanging WEB and SSH through one router.
model::ProblemSpec two_service_spec() {
  model::ProblemSpec spec;
  const topology::NodeId h1 = spec.network.add_host("h1");
  const topology::NodeId h2 = spec.network.add_host("h2");
  const topology::NodeId r1 = spec.network.add_router("r1");
  spec.network.add_link(h1, r1);
  spec.network.add_link(r1, h2);
  const model::ServiceId web = spec.services.add("WEB", 6, 80);
  const model::ServiceId ssh = spec.services.add("SSH", 6, 22);
  spec.flows.add(model::Flow{h1, h2, web});
  spec.flows.add(model::Flow{h1, h2, ssh});
  spec.flows.add(model::Flow{h2, h1, web});
  spec.finalize();
  return spec;
}

TEST(AppPatternConfig, DefaultsAndApplicability) {
  model::ServiceCatalog services;
  model::add_standard_services(services);
  const model::AppPatternConfig cfg =
      model::AppPatternConfig::defaults(services);
  EXPECT_TRUE(cfg.any());
  const model::ServiceId web = *services.find("WEB");
  const model::ServiceId ssh = *services.find("SSH");
  EXPECT_TRUE(cfg.applicable(model::AppPattern::kWaf, web));
  EXPECT_FALSE(cfg.applicable(model::AppPattern::kWaf, ssh));
  EXPECT_TRUE(cfg.applicable(model::AppPattern::kAppHardening, ssh));
  EXPECT_EQ(cfg.score(model::AppPattern::kWaf), Fixed::from_int(3));
}

TEST(AppPatternConfig, Validation) {
  model::AppPatternConfig cfg;
  EXPECT_FALSE(cfg.any());
  EXPECT_THROW(cfg.enable(model::AppPattern::kWaf, Fixed{}, Fixed{}),
               util::SpecError);
  EXPECT_THROW(cfg.enable(model::AppPattern::kWaf, Fixed::from_int(11),
                          Fixed{}),
               util::SpecError);
}

TEST(AppPatternMetrics, PrecedenceNetworkHostApp) {
  model::ProblemSpec spec = two_service_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  spec.app_patterns = model::AppPatternConfig::defaults(spec.services);

  SecurityDesign d(spec.flows.size(), spec.network.link_count(),
                   spec.network.node_count());
  const topology::NodeId h2 = spec.network.hosts()[1];
  const model::ServiceId web = *spec.services.find("WEB");
  d.set_app_pattern(h2, web, model::AppPattern::kWaf);

  // App pattern alone protects the WEB flow into h2 (score 3).
  const DesignMetrics app_only = compute_metrics(spec, d);
  EXPECT_GT(app_only.isolation, Fixed{});
  EXPECT_EQ(app_only.cost, Fixed::from_int(2));  // WAF $2K

  // With a host pattern deployed too, the host layer takes precedence on
  // every uncovered flow: the metrics equal a host-only design (the WAF
  // contributes nothing on top), yet its cost is still paid.
  SecurityDesign host_only(spec.flows.size(), spec.network.link_count(),
                           spec.network.node_count());
  host_only.set_host_pattern(h2, model::HostPattern::kHostFirewall);
  SecurityDesign both = d;
  both.set_host_pattern(h2, model::HostPattern::kHostFirewall);
  const DesignMetrics m_host = compute_metrics(spec, host_only);
  const DesignMetrics m_both = compute_metrics(spec, both);
  EXPECT_EQ(m_both.isolation, m_host.isolation);
  EXPECT_EQ(m_both.cost, m_host.cost + Fixed::from_int(2));

  // A network pattern outranks both layers.
  SecurityDesign with_net = both;
  with_net.set_pattern(*spec.flows.find(model::Flow{
                           spec.network.hosts()[0], h2, web}),
                       model::IsolationPattern::kAccessDeny);
  const DesignMetrics net_wins = compute_metrics(spec, with_net);
  EXPECT_GT(net_wins.isolation, m_both.isolation);
}

TEST(AppPatternMetrics, InapplicableDeploymentIgnored) {
  model::ProblemSpec spec = two_service_spec();
  spec.app_patterns = model::AppPatternConfig::defaults(spec.services);
  SecurityDesign d(spec.flows.size(), spec.network.link_count(),
                   spec.network.node_count());
  const model::ServiceId ssh = *spec.services.find("SSH");
  // WAF on an SSH endpoint: not applicable, contributes nothing.
  d.set_app_pattern(spec.network.hosts()[1], ssh, model::AppPattern::kWaf);
  const DesignMetrics m = compute_metrics(spec, d);
  EXPECT_EQ(m.isolation, Fixed{});
  EXPECT_EQ(m.cost, Fixed{});
  // And the checker flags it.
  const analysis::CheckReport report =
      analysis::check_design(spec, d, /*check_thresholds=*/false);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues.front().find("inapplicable app pattern"),
            std::string::npos);
}

class AppPatternBackendTest : public ::testing::TestWithParam<BackendKind> {
};

TEST_P(AppPatternBackendTest, SolverUsesEndpointProtection) {
  // Budget $3K: no network device fits, but WAF($2K)+hardening($0.5K)
  // endpoints do. Isolation floor 1 forces the solver to use them.
  model::ProblemSpec spec = two_service_spec();
  spec.app_patterns = model::AppPatternConfig::defaults(spec.services);
  spec.sliders = model::Sliders{Fixed::from_int(1), Fixed{},
                                Fixed::from_int(3)};
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  EXPECT_GT(r.design->app_pattern_count(), 0u);
  const analysis::CheckReport report =
      analysis::check_design(spec, *r.design);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Without the extension the floor is unreachable at $3K.
  model::ProblemSpec plain = two_service_spec();
  plain.sliders = spec.sliders;
  Synthesizer synth_plain(plain, SynthesisOptions{GetParam()});
  EXPECT_EQ(synth_plain.synthesize().status, CheckResult::kUnsat);
}

TEST_P(AppPatternBackendTest, AllThreeLayersCompose) {
  model::ProblemSpec spec = cs::testing::make_example_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  spec.app_patterns = model::AppPatternConfig::defaults(spec.services);
  spec.sliders = model::Sliders{Fixed::from_int(2), Fixed::from_int(8),
                                Fixed::from_int(30)};
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  const analysis::CheckReport report =
      analysis::check_design(spec, *r.design);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AppPatternBackendTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

}  // namespace
}  // namespace cs::synth
