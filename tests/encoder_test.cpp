// White-box tests of the SMT encoding: variable layout, placement
// implications, IPSec margin rules, threshold guard arithmetic.
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "smt/ir.h"
#include "synth/encoder.h"
#include "synth/metrics.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"

namespace cs::synth {
namespace {

using smt::BackendKind;
using smt::CheckResult;
using util::Fixed;

/// h1 - r1 - h2: the shortest possible routed pair (2 links).
model::ProblemSpec tiny_spec() {
  model::ProblemSpec spec;
  const topology::NodeId h1 = spec.network.add_host("h1");
  const topology::NodeId h2 = spec.network.add_host("h2");
  const topology::NodeId r1 = spec.network.add_router("r1");
  spec.network.add_link(h1, r1);
  spec.network.add_link(r1, h2);
  const model::ServiceId svc = spec.services.add("svc");
  spec.flows.add(model::Flow{h1, h2, svc});
  spec.flows.add(model::Flow{h2, h1, svc});
  spec.finalize();
  return spec;
}

/// h1 - r1 - r2 - r3 - r4 - h2: long chain (5 links, IPSec-feasible at T=2).
model::ProblemSpec chain_spec() {
  model::ProblemSpec spec;
  const topology::NodeId h1 = spec.network.add_host("h1");
  const topology::NodeId h2 = spec.network.add_host("h2");
  topology::NodeId prev = spec.network.add_router("r1");
  spec.network.add_link(h1, prev);
  for (int i = 2; i <= 4; ++i) {
    const topology::NodeId r = spec.network.add_router("r" + std::to_string(i));
    spec.network.add_link(prev, r);
    prev = r;
  }
  spec.network.add_link(prev, h2);
  const model::ServiceId svc = spec.services.add("svc");
  spec.flows.add(model::Flow{h1, h2, svc});
  spec.flows.add(model::Flow{h2, h1, svc});
  spec.finalize();
  return spec;
}

TEST(Encoding, VariableLayoutCounts) {
  model::ProblemSpec spec = tiny_spec();
  auto backend = smt::make_backend(BackendKind::kMiniPb);
  topology::RouteTable routes(spec.network, spec.route_options);
  const Encoding enc(spec, routes, *backend);
  // 2 flows x 5 enabled patterns.
  EXPECT_EQ(enc.stats().flow_vars, 10u);
  // 1 unordered pair x 4 device types.
  EXPECT_EQ(enc.stats().pair_device_vars, 4u);
  // 2 links x 4 device types.
  EXPECT_EQ(enc.stats().placement_vars, 8u);
  // 2 ordered directions with flows.
  EXPECT_EQ(enc.stats().directed_pairs, 2u);
  EXPECT_NE(enc.y_var(0, model::IsolationPattern::kAccessDeny), smt::kNoVar);
  EXPECT_NE(enc.l_var(0, model::DeviceType::kFirewall), smt::kNoVar);
}

TEST(Encoding, DisabledPatternHasNoVariable) {
  model::ProblemSpec spec = tiny_spec();
  spec.isolation = model::IsolationConfig::from_partial_order(
      {model::IsolationPattern::kAccessDeny,
       model::IsolationPattern::kPayloadInspection},
      {{0, 1, model::OrderRelation::kGreater}});
  auto backend = smt::make_backend(BackendKind::kMiniPb);
  topology::RouteTable routes(spec.network, spec.route_options);
  const Encoding enc(spec, routes, *backend);
  EXPECT_EQ(enc.y_var(0, model::IsolationPattern::kTrustedComm),
            smt::kNoVar);
  EXPECT_NE(enc.y_var(0, model::IsolationPattern::kPayloadInspection),
            smt::kNoVar);
  // IPSec is unused by the enabled patterns: no placement variables.
  EXPECT_EQ(enc.l_var(0, model::DeviceType::kIpsec), smt::kNoVar);
}

TEST(Encoding, DenyForcesFirewallOnTheOnlyRoute) {
  model::ProblemSpec spec = tiny_spec();
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      spec.flows.flow(0), model::IsolationPattern::kAccessDeny});
  spec.sliders.budget = Fixed::from_int(100);
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  // Firewall on h1-r1 or r1-h2.
  EXPECT_TRUE(r.design->placed(0, model::DeviceType::kFirewall) ||
              r.design->placed(1, model::DeviceType::kFirewall));
  EXPECT_TRUE(analysis::check_design(spec, *r.design).ok());
}

TEST(Encoding, TrustedCommImpossibleOnShortRoute) {
  // Route length 2 < 2T+1 = 5: forcing trusted communication is UNSAT.
  model::ProblemSpec spec = tiny_spec();
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      spec.flows.flow(0), model::IsolationPattern::kTrustedComm});
  spec.sliders.budget = Fixed::from_int(1000);
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  EXPECT_EQ(synth.synthesize().status, CheckResult::kUnsat);
}

TEST(Encoding, TrustedCommPlacesGatewaysNearEndpoints) {
  model::ProblemSpec spec = chain_spec();
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      spec.flows.flow(0), model::IsolationPattern::kTrustedComm});
  spec.sliders.budget = Fixed::from_int(1000);
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  // Links 0..4 along the chain; T=2 => a gateway among links {0,1} and one
  // among links {3,4}.
  const bool head = r.design->placed(0, model::DeviceType::kIpsec) ||
                    r.design->placed(1, model::DeviceType::kIpsec);
  const bool tail = r.design->placed(3, model::DeviceType::kIpsec) ||
                    r.design->placed(4, model::DeviceType::kIpsec);
  EXPECT_TRUE(head);
  EXPECT_TRUE(tail);
  EXPECT_TRUE(analysis::check_design(spec, *r.design).ok());
}

TEST(Encoding, TunnelMarginThreeNeedsSevenLinks) {
  model::ProblemSpec spec = chain_spec();  // 5 links
  spec.isolation.set_tunnel_margin(3);     // needs >= 7 links
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      spec.flows.flow(0), model::IsolationPattern::kTrustedComm});
  spec.sliders.budget = Fixed::from_int(1000);
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  EXPECT_EQ(synth.synthesize().status, CheckResult::kUnsat);
}

TEST(Encoding, CompositePatternNeedsBothDevices) {
  model::ProblemSpec spec = chain_spec();
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      spec.flows.flow(0), model::IsolationPattern::kProxyTrusted});
  spec.sliders.budget = Fixed::from_int(1000);
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  bool proxy = false;
  bool ipsec = false;
  for (topology::LinkId e = 0; e < 5; ++e) {
    proxy |= r.design->placed(e, model::DeviceType::kProxy);
    ipsec |= r.design->placed(e, model::DeviceType::kIpsec);
  }
  EXPECT_TRUE(proxy);
  EXPECT_TRUE(ipsec);
}

TEST(Encoding, CostGuardIsTight) {
  // Denying the single flow pair requires one firewall = $5K; a $4.9K
  // budget with isolation 10 must be UNSAT, $5K SAT.
  model::ProblemSpec spec = tiny_spec();
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  const SynthesisResult ok = synth.synthesize_partial(
      Fixed::from_int(10), Fixed{}, Fixed::from_int(5));
  EXPECT_EQ(ok.status, CheckResult::kSat);
  const SynthesisResult broke = synth.synthesize_partial(
      Fixed::from_int(10), Fixed{}, Fixed::from_double(4.9));
  EXPECT_EQ(broke.status, CheckResult::kUnsat);
}

TEST(Encoding, AsymmetricFlowsScoreHalfIsolationWhenOpen) {
  // Only one direction carries a flow: the empty reverse direction counts
  // as fully isolated, so an all-open design scores I = 5.
  model::ProblemSpec spec;
  const topology::NodeId h1 = spec.network.add_host("h1");
  const topology::NodeId h2 = spec.network.add_host("h2");
  const topology::NodeId r1 = spec.network.add_router("r1");
  spec.network.add_link(h1, r1);
  spec.network.add_link(r1, h2);
  const model::ServiceId svc = spec.services.add("svc");
  spec.flows.add(model::Flow{h1, h2, svc});
  spec.finalize();
  const SecurityDesign open(1, 2);
  const DesignMetrics m = compute_metrics(spec, open);
  EXPECT_EQ(m.isolation, Fixed::from_int(5));
  // And the encoder agrees: isolation >= 5 is satisfiable with no devices,
  // isolation > 5 requires protecting the only flow.
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  const SynthesisResult at5 = synth.synthesize_partial(
      Fixed::from_int(5), std::nullopt, Fixed{});
  EXPECT_EQ(at5.status, CheckResult::kSat);
  const SynthesisResult above = synth.synthesize_partial(
      Fixed::from_double(5.1), std::nullopt, Fixed{});
  EXPECT_EQ(above.status, CheckResult::kUnsat);  // budget 0 forbids devices
}

TEST(Encoding, UsabilityGuardMatchesMetrics) {
  // Force deny on one of the two flows; usability = 5 exactly. The guard
  // at 5 must accept, at 5.001 must reject.
  model::ProblemSpec spec = tiny_spec();
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      spec.flows.flow(0), model::IsolationPattern::kAccessDeny});
  Synthesizer synth(spec, SynthesisOptions{BackendKind::kMiniPb});
  const SynthesisResult at5 = synth.synthesize_partial(
      std::nullopt, Fixed::from_int(5), Fixed::from_int(100));
  ASSERT_EQ(at5.status, CheckResult::kSat);
  EXPECT_EQ(compute_metrics(spec, *at5.design).usability,
            Fixed::from_int(5));
  const SynthesisResult above = synth.synthesize_partial(
      std::nullopt, Fixed::from_raw(5001), Fixed::from_int(100));
  EXPECT_EQ(above.status, CheckResult::kUnsat);
}

TEST(Encoding, SatisfiedModelsAlwaysPassChecker) {
  // Property: for a grid of slider triples on the paper topology, every
  // SAT model passes the independent checker.
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 7)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  SynthesisOptions opts;
  opts.backend = BackendKind::kZ3;
  opts.check_time_limit_ms = 5000;
  Synthesizer synth(spec, opts);
  for (const int iso : {0, 2, 4}) {
    for (const int usab : {0, 3, 6}) {
      for (const int budget : {20, 80}) {
        spec.sliders = model::Sliders{Fixed::from_int(iso),
                                      Fixed::from_int(usab),
                                      Fixed::from_int(budget)};
        const SynthesisResult r = synth.synthesize(spec.sliders);
        if (r.status == CheckResult::kSat) {
          const analysis::CheckReport report =
              analysis::check_design(spec, *r.design);
          EXPECT_TRUE(report.ok())
              << "iso=" << iso << " usab=" << usab << " budget=" << budget
              << "\n"
              << report.to_string();
        }
      }
    }
  }
}

}  // namespace
}  // namespace cs::synth
