// Fuzz driver for the MiniPB solver: random clause+PB instances with wide
// coefficient ranges, solved twice under random assumptions, cross-checked
// against brute force. Prints the first failing seed and exits non-zero.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "minisolver/solver.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace cs;
using minisolver::Lit;
using minisolver::PbTerm;
using minisolver::Solver;
using minisolver::Var;

namespace {

struct Instance {
  int vars;
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::pair<std::vector<PbTerm>, std::int64_t>> ges;
  std::vector<Lit> guards;  // assumption candidates
};

Instance gen(util::Rng& rng) {
  Instance inst;
  inst.vars = static_cast<int>(rng.uniform(6, 14));
  const int clauses = static_cast<int>(rng.uniform(0, 20));
  for (int c = 0; c < clauses; ++c) {
    std::vector<Lit> cl;
    const int len = static_cast<int>(rng.uniform(1, 3));
    for (int l = 0; l < len; ++l) {
      const Var v = static_cast<Var>(rng.uniform(0, inst.vars - 1));
      cl.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
    }
    inst.clauses.push_back(cl);
  }
  // At-most-one groups (pattern selection structure).
  const int amos = static_cast<int>(rng.uniform(0, 2));
  for (int g = 0; g < amos; ++g) {
    std::vector<Var> group;
    for (int i = 0; i < 3; ++i)
      group.push_back(static_cast<Var>(rng.uniform(0, inst.vars - 1)));
    for (std::size_t i = 0; i < group.size(); ++i)
      for (std::size_t j = i + 1; j < group.size(); ++j)
        if (group[i] != group[j])
          inst.clauses.push_back(
              {Lit::neg(group[i]), Lit::neg(group[j])});
  }
  const int pbs = static_cast<int>(rng.uniform(1, 4));
  for (int p = 0; p < pbs; ++p) {
    std::vector<PbTerm> terms;
    const int len = static_cast<int>(rng.uniform(2, 7));
    std::int64_t total = 0;
    for (int t = 0; t < len; ++t) {
      const Var v = static_cast<Var>(rng.uniform(0, inst.vars - 1));
      // ConfigSynth-like coefficient palette.
      static const std::int64_t palette[] = {1,    2500, 5000,
                                             7500, 10000};
      const std::int64_t coeff =
          palette[rng.uniform(0, 4)];
      total += coeff;
      terms.push_back(
          PbTerm{rng.chance(0.7) ? Lit::pos(v) : Lit::neg(v), coeff});
    }
    std::int64_t bound = rng.uniform(0, total);
    const bool ge = rng.chance(0.6);
    if (!ge) {
      // Encode Σ ≤ bound as Σ(−t) ≥ −bound, matching add_linear_le.
      for (PbTerm& t : terms) t.coeff = -t.coeff;
      bound = -bound;
    }
    // Big-M guard relaxation on some constraints (mirrors MiniBackend's
    // guarded encoding); the guard is a dedicated variable.
    if (rng.chance(0.6)) {
      const Var g = static_cast<Var>(rng.uniform(0, inst.vars - 1));
      std::int64_t min_sum = 0;
      for (const PbTerm& t : terms)
        if (t.coeff < 0) min_sum += t.coeff;
      const std::int64_t relax = bound - min_sum;
      if (relax > 0) {
        terms.push_back(PbTerm{Lit::neg(g), relax});
        inst.guards.push_back(Lit::pos(g));
      }
    }
    inst.ges.emplace_back(terms, bound);
  }
  return inst;
}

bool lit_true(std::uint32_t m, Lit l) {
  const bool v = (m >> l.var()) & 1;
  return l.is_neg() ? !v : v;
}

bool brute(const Instance& inst, const std::vector<Lit>& assume) {
  for (std::uint32_t m = 0; m < (1u << inst.vars); ++m) {
    bool ok = true;
    for (const Lit a : assume) ok = ok && lit_true(m, a);
    for (const auto& cl : inst.clauses) {
      if (!ok) break;
      bool sat = false;
      for (const Lit l : cl) sat = sat || lit_true(m, l);
      ok = ok && sat;
    }
    for (const auto& [terms, bound] : inst.ges) {
      if (!ok) break;
      std::int64_t sum = 0;
      for (const PbTerm& t : terms) sum += lit_true(m, t.lit) ? t.coeff : 0;
      ok = ok && sum >= bound;
    }
    if (ok) return true;
  }
  return false;
}

std::vector<Lit> gen_assumptions(util::Rng& rng, const Instance& inst) {
  std::vector<Lit> out;
  // Prefer assuming the guards (like the synthesizer does).
  for (const Lit g : inst.guards)
    if (rng.chance(0.8)) out.push_back(g);
  for (Var v = 0; v < inst.vars; ++v)
    if (rng.chance(0.15))
      out.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  const long long iterations =
      argc > 1 ? util::parse_int(argv[1], "iterations") : 20000;
  int failures = 0;
  for (long long seed = 0; seed < iterations; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
    const Instance inst = gen(rng);

    Solver s;
    for (int v = 0; v < inst.vars; ++v) (void)s.new_var();
    bool consistent = true;
    for (const auto& cl : inst.clauses) consistent &= s.add_clause(cl);
    for (const auto& [terms, bound] : inst.ges)
      consistent &= s.add_linear_ge(terms, bound);
    if (!consistent) {
      if (brute(inst, {})) {
        std::printf("seed %lld: store claims unsat, brute says sat\n", seed);
        ++failures;
      }
      continue;
    }

    // Two sequential assumption solves, then a plain solve; every verdict
    // is checked against enumeration (this exercises clause learning
    // across calls).
    for (int round = 0; round < 3; ++round) {
      const std::vector<Lit> assume =
          round < 2 ? gen_assumptions(rng, inst) : std::vector<Lit>{};
      const auto verdict = s.solve(assume);
      const bool expect = brute(inst, assume);
      if ((verdict == Solver::Result::kSat) != expect) {
        std::printf("seed %lld round %d: solver=%s brute=%s\n", seed, round,
                    verdict == Solver::Result::kSat ? "sat" : "unsat",
                    expect ? "sat" : "unsat");
        ++failures;
        break;
      }
      if (verdict == Solver::Result::kSat) {
        // model must satisfy everything
        std::uint32_t m = 0;
        for (int v = 0; v < inst.vars; ++v)
          if (s.model_value(v)) m |= 1u << v;
        bool ok = true;
        for (const auto& cl : inst.clauses) {
          bool sat = false;
          for (const Lit l : cl) sat = sat || lit_true(m, l);
          ok = ok && sat;
        }
        for (const auto& [terms, bound] : inst.ges) {
          std::int64_t sum = 0;
          for (const PbTerm& t : terms)
            sum += lit_true(m, t.lit) ? t.coeff : 0;
          ok = ok && sum >= bound;
        }
        if (!ok) {
          std::printf("seed %lld round %d: invalid model\n", seed, round);
          ++failures;
          break;
        }
      }
    }
    if (failures >= 5) break;
  }
  std::printf("fuzz done: %d failures\n", failures);
  return failures == 0 ? 0 : 1;
}
