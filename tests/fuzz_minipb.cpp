// Fuzz driver for the MiniPB solver: random clause+PB instances with wide
// coefficient ranges, solved under random assumptions and cross-checked
// against brute force. Every instance runs *differentially*: four
// watched-sum solvers cover the full 2×2 heuristic matrix — {Luby,
// Glucose} restarts × {local, recursive} clause minimization, rephasing
// on — and a fifth uses the reference counter propagator. All five must
// agree on every verdict while keeping their per-constraint slack
// bookkeeping exact (Solver::pb_bookkeeping_ok). Odd seeds generate
// PB-heavy instances (more and longer constraints, bounds pushed toward
// the coefficient total) so the watched-prefix machinery is exercised
// hard. When built with CONFIGSYNTH_WITH_Z3, every 25th seed is
// additionally cross-checked against the Z3 backend. Prints the first
// failing seed and exits non-zero.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "minisolver/solver.h"
#include "util/rng.h"
#include "util/strings.h"

#ifdef CONFIGSYNTH_WITH_Z3
#include "smt/ir.h"
#endif

using namespace cs;
using minisolver::Lit;
using minisolver::PbTerm;
using minisolver::Solver;
using minisolver::Var;

namespace {

struct Instance {
  int vars;
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::pair<std::vector<PbTerm>, std::int64_t>> ges;
  std::vector<Lit> guards;  // assumption candidates
};

Instance gen(util::Rng& rng, bool pb_heavy) {
  Instance inst;
  inst.vars = static_cast<int>(rng.uniform(6, pb_heavy ? 12 : 14));
  const int clauses =
      static_cast<int>(rng.uniform(0, pb_heavy ? 8 : 20));
  for (int c = 0; c < clauses; ++c) {
    std::vector<Lit> cl;
    const int len = static_cast<int>(rng.uniform(1, 3));
    for (int l = 0; l < len; ++l) {
      const Var v = static_cast<Var>(rng.uniform(0, inst.vars - 1));
      cl.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
    }
    inst.clauses.push_back(cl);
  }
  // At-most-one groups (pattern selection structure).
  const int amos = static_cast<int>(rng.uniform(0, 2));
  for (int g = 0; g < amos; ++g) {
    std::vector<Var> group;
    for (int i = 0; i < 3; ++i)
      group.push_back(static_cast<Var>(rng.uniform(0, inst.vars - 1)));
    for (std::size_t i = 0; i < group.size(); ++i)
      for (std::size_t j = i + 1; j < group.size(); ++j)
        if (group[i] != group[j])
          inst.clauses.push_back(
              {Lit::neg(group[i]), Lit::neg(group[j])});
  }
  const int pbs =
      static_cast<int>(rng.uniform(pb_heavy ? 3 : 1, pb_heavy ? 8 : 4));
  for (int p = 0; p < pbs; ++p) {
    std::vector<PbTerm> terms;
    const int len = static_cast<int>(
        rng.uniform(pb_heavy ? 3 : 2, pb_heavy ? 10 : 7));
    std::int64_t total = 0;
    for (int t = 0; t < len; ++t) {
      const Var v = static_cast<Var>(rng.uniform(0, inst.vars - 1));
      // ConfigSynth-like coefficient palette; the heavy mode mixes small
      // coefficients in so watched prefixes grow term by term instead of
      // all at once.
      static const std::int64_t palette[] = {1,    2500, 5000,
                                             7500, 10000};
      static const std::int64_t heavy_palette[] = {
          1, 2, 3, 100, 2500, 5000, 7500, 10000, 20000};
      const std::int64_t coeff =
          pb_heavy ? heavy_palette[rng.uniform(0, 8)]
                   : palette[rng.uniform(0, 4)];
      total += coeff;
      terms.push_back(
          PbTerm{rng.chance(0.7) ? Lit::pos(v) : Lit::neg(v), coeff});
    }
    // Heavy mode biases the bound toward the coefficient total, where
    // near-every literal matters and slack stays close to zero.
    std::int64_t bound = pb_heavy && rng.chance(0.5)
                             ? rng.uniform(total / 2, total)
                             : rng.uniform(0, total);
    const bool ge = rng.chance(0.6);
    if (!ge) {
      // Encode Σ ≤ bound as Σ(−t) ≥ −bound, matching add_linear_le.
      for (PbTerm& t : terms) t.coeff = -t.coeff;
      bound = -bound;
    }
    // Big-M guard relaxation on some constraints (mirrors MiniBackend's
    // guarded encoding); the guard is a dedicated variable.
    if (rng.chance(0.6)) {
      const Var g = static_cast<Var>(rng.uniform(0, inst.vars - 1));
      std::int64_t min_sum = 0;
      for (const PbTerm& t : terms)
        if (t.coeff < 0) min_sum += t.coeff;
      const std::int64_t relax = bound - min_sum;
      if (relax > 0) {
        terms.push_back(PbTerm{Lit::neg(g), relax});
        inst.guards.push_back(Lit::pos(g));
      }
    }
    inst.ges.emplace_back(terms, bound);
  }
  return inst;
}

bool lit_true(std::uint32_t m, Lit l) {
  const bool v = (m >> l.var()) & 1;
  return l.is_neg() ? !v : v;
}

bool brute(const Instance& inst, const std::vector<Lit>& assume) {
  for (std::uint32_t m = 0; m < (1u << inst.vars); ++m) {
    bool ok = true;
    for (const Lit a : assume) ok = ok && lit_true(m, a);
    for (const auto& cl : inst.clauses) {
      if (!ok) break;
      bool sat = false;
      for (const Lit l : cl) sat = sat || lit_true(m, l);
      ok = ok && sat;
    }
    for (const auto& [terms, bound] : inst.ges) {
      if (!ok) break;
      std::int64_t sum = 0;
      for (const PbTerm& t : terms) sum += lit_true(m, t.lit) ? t.coeff : 0;
      ok = ok && sum >= bound;
    }
    if (ok) return true;
  }
  return false;
}

std::vector<Lit> gen_assumptions(util::Rng& rng, const Instance& inst) {
  std::vector<Lit> out;
  // Prefer assuming the guards (like the synthesizer does).
  for (const Lit g : inst.guards)
    if (rng.chance(0.8)) out.push_back(g);
  for (Var v = 0; v < inst.vars; ++v)
    if (rng.chance(0.15))
      out.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
  return out;
}

/// Loads the instance into a solver; returns add-time consistency.
bool load(Solver& s, const Instance& inst) {
  for (int v = 0; v < inst.vars; ++v) (void)s.new_var();
  bool consistent = true;
  for (const auto& cl : inst.clauses) consistent &= s.add_clause(cl);
  for (const auto& [terms, bound] : inst.ges)
    consistent &= s.add_linear_ge(terms, bound);
  return consistent;
}

/// Model satisfies every clause and PB constraint of the instance.
bool model_valid(const Solver& s, const Instance& inst) {
  std::uint32_t m = 0;
  for (int v = 0; v < inst.vars; ++v)
    if (s.model_value(v)) m |= 1u << v;
  for (const auto& cl : inst.clauses) {
    bool sat = false;
    for (const Lit l : cl) sat = sat || lit_true(m, l);
    if (!sat) return false;
  }
  for (const auto& [terms, bound] : inst.ges) {
    std::int64_t sum = 0;
    for (const PbTerm& t : terms) sum += lit_true(m, t.lit) ? t.coeff : 0;
    if (sum < bound) return false;
  }
  return true;
}

#ifdef CONFIGSYNTH_WITH_Z3
/// Independent verdict from the Z3 backend (no limits: always decided).
bool z3_sat(const Instance& inst, const std::vector<Lit>& assume) {
  auto backend = smt::make_backend(smt::BackendKind::kZ3);
  for (int v = 0; v < inst.vars; ++v) (void)backend->new_bool("f");
  const auto to_smt = [](Lit l) {
    return smt::Lit{l.var(), l.is_neg()};
  };
  for (const auto& cl : inst.clauses) {
    std::vector<smt::Lit> lits;
    for (const Lit l : cl) lits.push_back(to_smt(l));
    backend->add_clause(lits);
  }
  for (const auto& [terms, bound] : inst.ges) {
    std::vector<smt::Term> smt_terms;
    for (const PbTerm& t : terms)
      smt_terms.push_back(smt::Term{to_smt(t.lit), t.coeff});
    backend->add_linear_ge(smt_terms, bound);
  }
  std::vector<smt::Lit> smt_assume;
  for (const Lit a : assume) smt_assume.push_back(to_smt(a));
  return backend->check(smt_assume) == smt::CheckResult::kSat;
}
#endif

const char* verdict_name(Solver::Result r) {
  switch (r) {
    case Solver::Result::kSat: return "sat";
    case Solver::Result::kUnsat: return "unsat";
    case Solver::Result::kUnknown: return "unknown";
  }
  return "?";
}

/// The differential cohort: every heuristic configuration that must agree.
struct Cohort {
  // [0] is the repo default (Glucose + recursive); [4] is the counter
  // reference propagator on the same default heuristics.
  static constexpr int kSize = 5;
  static constexpr const char* kTags[kSize] = {
      "glucose+recursive", "luby+recursive", "glucose+local", "luby+local",
      "counter-ref"};

  Solver solvers[kSize];

  Cohort() {
    solvers[1].set_restart_mode(Solver::RestartMode::kLuby);
    solvers[2].set_minimize_mode(Solver::MinimizeMode::kLocal);
    solvers[3].set_restart_mode(Solver::RestartMode::kLuby);
    solvers[3].set_minimize_mode(Solver::MinimizeMode::kLocal);
    solvers[4].set_pb_mode(Solver::PbMode::kCounter);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  const long long iterations =
      argc > 1 ? util::parse_int(argv[1], "iterations") : 20000;
  int failures = 0;
  for (long long seed = 0; seed < iterations; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
    const bool pb_heavy = (seed % 2) == 1;
    const Instance inst = gen(rng, pb_heavy);

    // Differential cohort: the 2×2 heuristic matrix plus the counter
    // reference. Every member loads the same instance and must agree at
    // add time, on every verdict, and on bookkeeping exactness.
    Cohort cohort;
    bool consistent[Cohort::kSize];
    bool diverged = false;
    for (int i = 0; i < Cohort::kSize; ++i) {
      consistent[i] = load(cohort.solvers[i], inst);
      if (consistent[i] != consistent[0]) {
        std::printf("seed %lld: add-time divergence %s=%d %s=%d\n", seed,
                    Cohort::kTags[0], consistent[0], Cohort::kTags[i],
                    consistent[i]);
        ++failures;
        diverged = true;
        break;
      }
      if (!cohort.solvers[i].pb_bookkeeping_ok()) {
        std::printf("seed %lld: %s slack bookkeeping broken after load\n",
                    seed, Cohort::kTags[i]);
        ++failures;
        diverged = true;
        break;
      }
    }
    if (diverged) continue;
    if (!consistent[0]) {
      if (brute(inst, {})) {
        std::printf("seed %lld: store claims unsat, brute says sat\n", seed);
        ++failures;
      }
      continue;
    }

    // Two sequential assumption solves, then a plain solve; every verdict
    // is checked against enumeration (this exercises clause learning
    // across calls) and against every sibling configuration.
    for (int round = 0; round < 3; ++round) {
      const std::vector<Lit> assume =
          round < 2 ? gen_assumptions(rng, inst) : std::vector<Lit>{};
      Solver::Result verdicts[Cohort::kSize];
      bool bad = false;
      for (int i = 0; i < Cohort::kSize; ++i) {
        verdicts[i] = cohort.solvers[i].solve(assume);
        if (verdicts[i] != verdicts[0]) {
          std::printf("seed %lld round %d: %s=%s %s=%s\n", seed, round,
                      Cohort::kTags[0], verdict_name(verdicts[0]),
                      Cohort::kTags[i], verdict_name(verdicts[i]));
          ++failures;
          bad = true;
          break;
        }
        if (!cohort.solvers[i].pb_bookkeeping_ok()) {
          std::printf("seed %lld round %d: %s slack bookkeeping diverged\n",
                      seed, round, Cohort::kTags[i]);
          ++failures;
          bad = true;
          break;
        }
      }
      if (bad) break;
      const bool expect = brute(inst, assume);
      if ((verdicts[0] == Solver::Result::kSat) != expect) {
        std::printf("seed %lld round %d: solver=%s brute=%s\n", seed, round,
                    verdict_name(verdicts[0]), expect ? "sat" : "unsat");
        ++failures;
        break;
      }
#ifdef CONFIGSYNTH_WITH_Z3
      if (seed % 25 == 0 && z3_sat(inst, assume) != expect) {
        std::printf("seed %lld round %d: z3 disagrees with brute\n", seed,
                    round);
        ++failures;
        break;
      }
#endif
      if (verdicts[0] == Solver::Result::kSat) {
        for (int i = 0; i < Cohort::kSize; ++i) {
          if (!model_valid(cohort.solvers[i], inst)) {
            std::printf("seed %lld round %d: %s invalid model\n", seed,
                        round, Cohort::kTags[i]);
            ++failures;
            bad = true;
            break;
          }
        }
      }
      if (bad) break;
    }
    if (failures >= 5) break;
  }
  std::printf("fuzz done: %d failures\n", failures);
  return failures == 0 ? 0 : 1;
}
