// Tests for the host-level isolation pattern extension (§VII future work).
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "smt/ir.h"
#include "spec_helpers.h"
#include "synth/metrics.h"
#include "synth/optimizer.h"
#include "synth/synthesizer.h"

namespace cs::synth {
namespace {

using cs::testing::make_example_spec;
using smt::BackendKind;
using smt::CheckResult;
using util::Fixed;

TEST(HostPatternConfig, DefaultsAndValidation) {
  const model::HostPatternConfig cfg = model::HostPatternConfig::defaults();
  EXPECT_TRUE(cfg.any());
  EXPECT_TRUE(cfg.is_enabled(model::HostPattern::kHostFirewall));
  EXPECT_EQ(cfg.score(model::HostPattern::kHostFirewall),
            Fixed::from_int(2));
  EXPECT_EQ(cfg.cost(model::HostPattern::kAntivirus),
            Fixed::from_double(0.5));

  model::HostPatternConfig bad;
  EXPECT_FALSE(bad.any());
  EXPECT_THROW(bad.enable(model::HostPattern::kAntivirus, Fixed{},
                          Fixed::from_int(1)),
               util::SpecError);
  EXPECT_THROW(bad.enable(model::HostPattern::kAntivirus,
                          Fixed::from_int(11), Fixed::from_int(1)),
               util::SpecError);
}

TEST(HostPatternMetrics, ContributesOnlyWithoutNetworkPattern) {
  model::ProblemSpec spec = make_example_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  SecurityDesign design(spec.flows.size(), spec.network.link_count(),
                        spec.network.node_count());
  const topology::NodeId j = spec.network.hosts()[4];
  design.set_host_pattern(j, model::HostPattern::kHostFirewall);

  const DesignMetrics base = compute_metrics(spec, design);
  EXPECT_GT(base.isolation, Fixed::from_int(0));  // host fw adds isolation
  EXPECT_EQ(base.cost, Fixed::from_int(1));       // $1K host firewall

  // Covering the same host's flows with a network pattern removes the
  // host-level contribution (exclusive semantics) but raises isolation.
  SecurityDesign covered = design;
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows.flow(static_cast<model::FlowId>(f)).dst == j)
      covered.set_pattern(static_cast<model::FlowId>(f),
                          model::IsolationPattern::kAccessDeny);
  }
  const DesignMetrics m = compute_metrics(spec, covered);
  EXPECT_GT(m.isolation, base.isolation);
}

TEST(HostPatternMetrics, DisabledConfigIgnoresDeployments) {
  const model::ProblemSpec spec = make_example_spec();  // extension off
  SecurityDesign design(spec.flows.size(), spec.network.link_count(),
                        spec.network.node_count());
  design.set_host_pattern(spec.network.hosts()[0],
                          model::HostPattern::kAntivirus);
  const DesignMetrics m = compute_metrics(spec, design);
  EXPECT_EQ(m.isolation, Fixed::from_int(0));
  EXPECT_EQ(m.cost, Fixed::from_int(0));
}

class HostPatternBackendTest
    : public ::testing::TestWithParam<BackendKind> {};

TEST_P(HostPatternBackendTest, CheaperLowIsolationDesigns) {
  // Host firewalls reach a modest isolation floor without touching
  // usability: with isolation >= 1.8, usability >= 9.9 and a $10K budget,
  // covering every host with a $1K host firewall works (I = 2, U = 10),
  // while the network-only model cannot — denial would sink usability and
  // the transparent devices (IDS/proxy/IPSec) cost too much for the
  // coverage the floor needs.
  model::ProblemSpec spec = make_example_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  spec.sliders = model::Sliders{Fixed::from_double(1.8),
                                Fixed::from_double(9.9),
                                Fixed::from_int(10)};
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  const analysis::CheckReport report =
      analysis::check_design(spec, *r.design);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(r.design->host_pattern_count(), 0u);

  // Without the extension the same sliders are unsatisfiable.
  model::ProblemSpec plain = make_example_spec();
  plain.sliders = spec.sliders;
  Synthesizer synth_plain(plain, SynthesisOptions{GetParam()});
  EXPECT_EQ(synth_plain.synthesize().status, CheckResult::kUnsat);
}

TEST_P(HostPatternBackendTest, ModelsAlwaysPassChecker) {
  model::ProblemSpec spec = make_example_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  for (const int iso : {1, 3}) {
    for (const int budget : {10, 60}) {
      const SynthesisResult r = synth.synthesize_partial(
          Fixed::from_int(iso), Fixed::from_int(3),
          Fixed::from_int(budget));
      if (r.status == CheckResult::kSat) {
        model::ProblemSpec scoped = make_example_spec();
        scoped.host_patterns = model::HostPatternConfig::defaults();
        scoped.sliders = model::Sliders{Fixed::from_int(iso),
                                        Fixed::from_int(3),
                                        Fixed::from_int(budget)};
        const analysis::CheckReport report =
            analysis::check_design(scoped, *r.design);
        EXPECT_TRUE(report.ok())
            << "iso=" << iso << " budget=" << budget << "\n"
            << report.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, HostPatternBackendTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

TEST(HostPattern, WorksTogetherWithRmc) {
  // An RMC on a host can be met purely with a host-level pattern when the
  // required level is low.
  model::ProblemSpec spec = make_example_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  const topology::NodeId target = spec.network.hosts()[6];
  spec.host_requirements.push_back(model::HostIsolationRequirement{
      target, Fixed::from_double(1.2)});
  spec.sliders = model::Sliders{Fixed{}, Fixed{}, Fixed::from_int(2)};
  Synthesizer synth(spec, SynthesisOptions{});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  const analysis::CheckReport report = analysis::check_design(spec, *r.design);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(HostPattern, CheckerFlagsDisabledDeployment) {
  model::ProblemSpec spec = make_example_spec();
  model::HostPatternConfig cfg;
  cfg.enable(model::HostPattern::kHostFirewall, Fixed::from_int(2),
             Fixed::from_int(1));
  spec.host_patterns = cfg;  // antivirus NOT enabled
  SecurityDesign design(spec.flows.size(), spec.network.link_count(),
                        spec.network.node_count());
  design.set_host_pattern(spec.network.hosts()[0],
                          model::HostPattern::kAntivirus);
  const analysis::CheckReport report =
      analysis::check_design(spec, design, /*check_thresholds=*/false);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues.front().find("disabled host pattern"),
            std::string::npos);
}

}  // namespace
}  // namespace cs::synth
