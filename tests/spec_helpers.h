// Shared ProblemSpec builders for the test suites.
#pragma once

#include "model/spec.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace cs::testing {

/// The paper's running example: the Fig. 2(a) network, one service, flows
/// between every host pair, a handful of connectivity requirements, and
/// mid-scale sliders (isolation 3, usability 4, budget $60K).
inline model::ProblemSpec make_example_spec() {
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});

  // Connectivity requirements: the user subnets must reach the servers.
  const auto require = [&](int from, int to) {
    spec.connectivity.add(*spec.flows.find(
        model::Flow{hosts[static_cast<std::size_t>(from - 1)],
                    hosts[static_cast<std::size_t>(to - 1)], svc}));
  };
  require(1, 5);
  require(1, 6);
  require(2, 5);
  require(3, 7);
  require(4, 8);
  require(9, 5);
  require(10, 6);

  spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                util::Fixed::from_int(4),
                                util::Fixed::from_int(60)};
  spec.finalize();
  return spec;
}

/// Randomly generated spec following the paper's evaluation methodology.
inline model::ProblemSpec make_random_spec(std::uint64_t seed, int hosts,
                                           int routers,
                                           double cr_fraction = 0.1,
                                           int services = 3) {
  util::Rng rng(seed);
  model::ProblemSpec spec;
  topology::GeneratorConfig net_cfg;
  net_cfg.hosts = hosts;
  net_cfg.routers = routers;
  spec.network = topology::generate_topology(net_cfg, rng);

  model::WorkloadConfig wl;
  wl.service_count = services;
  wl.max_services_per_pair = std::min(3, services);
  wl.cr_fraction = cr_fraction;
  model::populate_random_workload(spec, wl, rng);

  spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                util::Fixed::from_int(3),
                                util::Fixed::from_int(100)};
  return spec;
}

}  // namespace cs::testing
