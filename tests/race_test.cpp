// Tests for the deterministic portfolio backend (smt/race_backend.h).
//
// The racer's whole contract is determinism: per sweep point MiniPB and
// Z3 race in fixed effort-cap rounds with a fixed tie-break, so the
// verdict — and everything rendered from it — must be byte-identical at
// any worker count and must agree with both single backends wherever
// those decide. These tests pin that contract:
//   * backend-level: race verdicts equal MiniPB/Z3 verdicts, the winner
//     is anchored for later checks, capped races report kUnknown.
//   * sweep-level: race sweeps are byte-identical at --jobs 1 vs 4
//     (including a rendered CSV body), race verdicts match both single
//     backends on the paper example and two generated topologies, and a
//     warm sweep survives a conflict-capped race point.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "smt/ir.h"
#include "smt/race_backend.h"
#include "spec_helpers.h"
#include "synth/frontier.h"
#include "synth/sweep.h"
#include "util/fixed.h"

namespace cs::synth {
namespace {

using cs::testing::make_example_spec;
using cs::testing::make_random_spec;
using smt::BackendKind;
using smt::CheckResult;
using util::Fixed;

// ---- RaceBackend unit behavior ---------------------------------------------

TEST(RaceBackend, DecidesLikeTheSingleBackends) {
  // A trivially SAT and a trivially UNSAT formula, checked through all
  // three backends; the race must agree with both singles.
  for (const bool unsat : {false, true}) {
    CheckResult verdicts[3];
    int i = 0;
    for (const BackendKind kind :
         {BackendKind::kZ3, BackendKind::kMiniPb, BackendKind::kRace}) {
      auto backend = smt::make_backend(kind);
      const smt::BoolVar a = backend->new_bool("a");
      const smt::BoolVar b = backend->new_bool("b");
      backend->add_clause({smt::pos(a), smt::pos(b)});
      backend->add_linear_ge(
          {smt::Term{smt::pos(a), 5}, smt::Term{smt::pos(b), 3}}, 5);
      if (unsat) backend->add_clause({smt::neg(a)});
      if (unsat) backend->add_linear_le({smt::Term{smt::pos(b), 3}}, 2);
      verdicts[i++] = backend->check();
    }
    EXPECT_EQ(verdicts[0], verdicts[1]);
    EXPECT_EQ(verdicts[1], verdicts[2]);
    EXPECT_EQ(verdicts[2],
              unsat ? CheckResult::kUnsat : CheckResult::kSat);
  }
}

TEST(RaceBackend, AnchorsTheFirstDecider) {
  smt::RaceBackend race;
  const smt::BoolVar a = race.new_bool("a");
  race.add_clause({smt::pos(a)});
  EXPECT_EQ(race.anchored(), "");
  EXPECT_EQ(race.check(), CheckResult::kSat);
  // A formula this small decides inside MiniPB's first slice, and the
  // fixed tie-break runs MiniPB first — so MiniPB anchors.
  EXPECT_EQ(race.anchored(), "minipb");
  EXPECT_TRUE(race.model_value(a));
  // Later checks stay on the anchor (and stay correct).
  EXPECT_EQ(race.check({smt::neg(a)}), CheckResult::kUnsat);
  EXPECT_EQ(race.anchored(), "minipb");
  const std::vector<smt::Lit> core = race.unsat_core();
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0], smt::neg(a));
  // Race accounting: exactly one race with one round, won by MiniPB.
  const smt::SolverStats stats = race.statistics();
  EXPECT_EQ(stats.race_rounds, 1);
  EXPECT_EQ(stats.race_wins_minipb, 1);
  EXPECT_EQ(stats.race_wins_z3, 0);
}

TEST(RaceBackend, StatisticsCountBothRacers) {
  // The racer bills the full cost of the race — both inner backends —
  // so sweep effort attribution reflects what was actually spent.
  smt::RaceBackend race;
  std::vector<smt::Lit> clause;
  for (int i = 0; i < 8; ++i) {
    const smt::BoolVar v = race.new_bool("v");
    clause.push_back(smt::pos(v));
  }
  race.add_clause(clause);
  ASSERT_EQ(race.check(), CheckResult::kSat);
  EXPECT_GT(race.statistics().decisions + race.statistics().propagations +
                race.statistics().restarts,
            0);
}

// ---- Sweep-level determinism -----------------------------------------------

/// Deterministic per-check effort cap in race units (MiniPB conflicts);
/// the racer scales Z3's slices internally. See sweep_test.cpp for why
/// sweeps cap effort instead of wall clock.
constexpr std::int64_t kRaceCap = 20'000;

std::vector<FrontierPoint> race_frontier(const model::ProblemSpec& spec,
                                         int jobs) {
  SynthesisOptions options;
  options.backend = BackendKind::kRace;
  options.check_conflict_limit = kRaceCap;
  FrontierOptions fopts;
  fopts.usability_floors = {Fixed::from_int(0), Fixed::from_int(4),
                           Fixed::from_int(8)};
  fopts.budgets = {Fixed::from_int(20), Fixed::from_int(60)};
  fopts.optimize.resolution = Fixed::from_raw(500);
  fopts.jobs = jobs;
  return explore_frontier(spec, options, fopts);
}

/// Renders frontier points the way the bench CSVs do — one row per cell
/// with every solver-derived field — so equality below really is
/// byte-identity of the emitted artifact, not just verdict equality.
std::string frontier_csv(const std::vector<FrontierPoint>& points) {
  std::string csv = "floor,budget,feasible,exact,isolation\n";
  for (const FrontierPoint& p : points) {
    csv += p.usability_floor.to_string() + "," + p.budget.to_string() +
           "," + (p.feasible ? "1" : "0") + "," + (p.exact ? "1" : "0") +
           "," + p.max_isolation.to_string() + "\n";
  }
  return csv;
}

TEST(RaceSweep, ByteIdenticalAtJobs1And4) {
  const model::ProblemSpec paper = make_example_spec();
  const model::ProblemSpec random_a = make_random_spec(31, 6, 5);
  for (const model::ProblemSpec* spec : {&paper, &random_a}) {
    const auto serial = race_frontier(*spec, 1);
    const auto parallel = race_frontier(*spec, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
    EXPECT_EQ(frontier_csv(serial), frontier_csv(parallel));
  }
}

TEST(RaceSweep, MatchesSingleBackendVerdicts) {
  // Race verdicts must equal both single backends' verdicts on every
  // decided grid cell — the racer picks a winner per point but never a
  // different answer. A cell is compared only when all three runs
  // converged exactly: near-threshold boundary probes are genuinely
  // exponential (paper Fig. 5a), so grids with a nonzero floor always
  // carry cells no backend decides at test-sized caps, and a capped
  // bound depends on learnt state — exactly why the warm-vs-cold bench
  // comparison skips capped cells too. Every spec must contribute at
  // least one compared cell, so the test cannot silently skip
  // everything.
  const model::ProblemSpec paper = make_example_spec();
  const model::ProblemSpec random_a = make_random_spec(31, 6, 5);
  const model::ProblemSpec random_b = make_random_spec(32, 7, 6);
  for (const model::ProblemSpec* spec : {&paper, &random_a, &random_b}) {
    SweepRequest request = SweepRequest::max_isolation_grid(
        {Fixed::from_int(0), Fixed::from_int(3)}, {Fixed::from_int(60)});
    request.optimize.resolution = Fixed::from_raw(500);
    SweepResult results[3];
    int i = 0;
    for (const BackendKind kind :
         {BackendKind::kRace, BackendKind::kMiniPb, BackendKind::kZ3}) {
      request.synthesis.backend = kind;
      // Decidedness needs headroom over the usual cap (see
      // sweep_test.cpp), hence 10x. Singles run in their own units:
      // Z3's cap matches what the racer grants it internally.
      request.synthesis.check_conflict_limit =
          kind == BackendKind::kZ3
              ? smt::RaceBackend::kZ3UnitsPerConflict * 10 * kRaceCap
              : 10 * kRaceCap;
      results[i++] = SweepEngine(*spec).run(request);
    }
    int compared = 0;
    for (std::size_t p = 0; p < results[0].points.size(); ++p) {
      const bool all_exact = results[0].points[p].search.exact &&
                             results[1].points[p].search.exact &&
                             results[2].points[p].search.exact;
      if (!all_exact) continue;
      ++compared;
      EXPECT_EQ(results[0].points[p].search.feasible,
                results[1].points[p].search.feasible)
          << "point " << p;
      EXPECT_EQ(results[0].points[p].search.bound,
                results[1].points[p].search.bound)
          << "point " << p;
      EXPECT_EQ(results[0].points[p].search.feasible,
                results[2].points[p].search.feasible)
          << "point " << p;
      EXPECT_EQ(results[0].points[p].search.bound,
                results[2].points[p].search.bound)
          << "point " << p;
    }
    EXPECT_GE(compared, 1) << "no cell decided in all three backends";
  }
}

TEST(RaceSweep, WarmSweepSurvivesCappedRacePoint) {
  // Regression twin of SweepEngineMiniPb.WarmSweepSurvivesConflictCappedPoint
  // for the racer: a race point where *both* inner solvers exhaust their
  // slices reports kUnknown without anchoring, and the same warm
  // synthesizer then re-races and decides the remaining points.
  const model::ProblemSpec spec = make_example_spec();
  const std::vector<model::Sliders> grid = {
      model::Sliders{Fixed::from_int(6), Fixed::from_int(5),
                     Fixed::from_int(40)},
      model::Sliders{Fixed::from_int(3), Fixed::from_int(3),
                     Fixed::from_int(60)},
      model::Sliders{Fixed::from_int(10), Fixed::from_int(10),
                     Fixed::from_int(5)},
  };
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = BackendKind::kRace;
  // Calibrated like the MiniPB twin: the hard point blows a 3000-conflict
  // MiniPB cap, and 3000 race units grant Z3 too little rlimit
  // (3000 * kZ3UnitsPerConflict) to decide it either — the ASSERT below
  // keeps that calibration honest.
  request.synthesis.check_conflict_limit = 3000;
  request.warm_start = true;
  request.jobs = 1;  // single worker chunk: the capped racer is reused
  const SweepResult warm = SweepEngine(spec).run(request);
  ASSERT_EQ(warm.points.size(), 3u);
  ASSERT_EQ(warm.points[0].status, CheckResult::kUnknown);
  EXPECT_FALSE(warm.points[0].skipped);
  // The capped racer kept serving: both remaining points re-race warm
  // and carry the verdicts a fresh solve produces.
  EXPECT_EQ(warm.warm_reuses, 2);
  EXPECT_TRUE(warm.points[1].warm);
  EXPECT_TRUE(warm.points[2].warm);
  EXPECT_EQ(warm.points[1].status, CheckResult::kSat);
  EXPECT_EQ(warm.points[2].status, CheckResult::kUnsat);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    Synthesizer direct(spec, request.synthesis);
    EXPECT_EQ(warm.points[i].status, direct.synthesize(grid[i]).status)
        << "point " << i;
  }
}

}  // namespace
}  // namespace cs::synth
