// Stability tests for the canonical spec fingerprint (model/fingerprint.h).
//
// The contract under test: construction order never matters (links, flows,
// CRs, user constraints, overrides can be added in any order), while every
// semantic single-field change — one score, one CR, one link, α, a rank, a
// slider, a device cost, the tunnel margin — changes the digest.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "model/fingerprint.h"
#include "spec_helpers.h"

namespace cs::model {
namespace {

using cs::testing::make_example_spec;
using cs::testing::make_random_spec;

/// Rebuilds `spec` with every set-like container populated in reverse
/// order: flows re-added back to front (remapping ranks and CRs through
/// the canonical triple), links re-added back to front, user constraints
/// and host requirements reversed, usability overrides re-applied in
/// reverse. Nodes and services keep their order — ids are identity.
ProblemSpec rebuild_reversed(const ProblemSpec& spec) {
  ProblemSpec out;

  const auto& net = spec.network;
  for (const topology::Node& n : net.nodes()) {
    switch (n.kind) {
      case topology::NodeKind::kHost:
        if (n.is_internet) {
          out.network.add_internet(n.name);
        } else {
          out.network.add_host(n.name, n.group_size);
        }
        break;
      case topology::NodeKind::kRouter:
        out.network.add_router(n.name);
        break;
    }
  }
  const auto& links = net.links();
  for (auto it = links.rbegin(); it != links.rend(); ++it)
    out.network.add_link(it->a, it->b);

  for (const Service& s : spec.services.all())
    out.services.add(s.name, s.protocol, s.port);

  const auto& flows = spec.flows.all();
  for (auto it = flows.rbegin(); it != flows.rend(); ++it) out.flows.add(*it);
  out.ranks = FlowRanks::uniform(out.flows);
  for (FlowId id = 0; id < static_cast<FlowId>(flows.size()); ++id) {
    const FlowId new_id = *out.flows.find(spec.flows.flow(id));
    out.ranks.set(new_id, spec.ranks.rank(id));
  }
  const std::vector<FlowId> crs = spec.connectivity.sorted();
  for (auto it = crs.rbegin(); it != crs.rend(); ++it)
    out.connectivity.add(*out.flows.find(spec.flows.flow(*it)));

  out.isolation = spec.isolation;
  out.host_patterns = spec.host_patterns;
  out.app_patterns = spec.app_patterns;
  out.device_costs = spec.device_costs;
  out.user_constraints.assign(spec.user_constraints.rbegin(),
                              spec.user_constraints.rend());
  out.host_requirements.assign(spec.host_requirements.rbegin(),
                               spec.host_requirements.rend());
  out.sliders = spec.sliders;
  out.alpha = spec.alpha;
  out.route_options = spec.route_options;
  return out;
}

/// Example spec decorated with entries in every optional container, so
/// the order-invariance test exercises all of them.
ProblemSpec decorated_example() {
  ProblemSpec spec = make_example_spec();
  const ServiceId svc = 0;
  const auto& hosts = spec.network.hosts();
  spec.isolation.set_usability_override(IsolationPattern::kProxy, svc,
                                        util::Fixed::from_double(0.5));
  spec.isolation.set_usability_override(IsolationPattern::kTrustedComm, svc,
                                        util::Fixed::from_double(0.25));
  spec.user_constraints.push_back(
      ForbidPatternForService{svc, IsolationPattern::kTrustedComm});
  spec.user_constraints.push_back(ForbidPatternForFlow{
      Flow{hosts[0], hosts[1], svc}, IsolationPattern::kProxy});
  spec.user_constraints.push_back(DenyOneOf{Flow{hosts[0], hosts[2], svc},
                                            Flow{hosts[2], hosts[0], svc}});
  spec.host_requirements.push_back(
      HostIsolationRequirement{hosts[3], util::Fixed::from_int(2)});
  spec.host_requirements.push_back(
      HostIsolationRequirement{hosts[4], util::Fixed::from_int(4)});
  return spec;
}

TEST(Fingerprint, DeterministicAcrossCalls) {
  const ProblemSpec spec = make_example_spec();
  EXPECT_EQ(fingerprint_spec(spec), fingerprint_spec(spec));
  EXPECT_EQ(fingerprint_spec(spec).to_string(),
            fingerprint_spec(make_example_spec()).to_string());
}

TEST(Fingerprint, RequiresFinalizedSpec) {
  ProblemSpec spec = make_example_spec();
  spec.flows.add(Flow{spec.network.hosts()[0], spec.network.hosts()[1],
                      spec.services.add("extra", 6, 99)});
  // Flow count and rank table now disagree: not finalized.
  EXPECT_THROW(fingerprint_spec(spec), util::SpecError);
}

TEST(Fingerprint, ConstructionOrderDoesNotMatter) {
  const ProblemSpec spec = decorated_example();
  const ProblemSpec reversed = rebuild_reversed(spec);
  // Sanity: the rebuild really did permute the underlying storage.
  ASSERT_NE(spec.flows.flow(0), reversed.flows.flow(0));
  ASSERT_FALSE(spec.network.links()[0].a == reversed.network.links()[0].a &&
               spec.network.links()[0].b == reversed.network.links()[0].b);
  EXPECT_EQ(fingerprint_spec(spec), fingerprint_spec(reversed));
}

TEST(Fingerprint, ConstructionOrderDoesNotMatterOnRandomSpecs) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    const ProblemSpec spec = make_random_spec(seed, 8, 4, 0.2);
    const ProblemSpec reversed = rebuild_reversed(spec);
    EXPECT_EQ(fingerprint_spec(spec), fingerprint_spec(reversed))
        << "seed " << seed;
  }
}

// Every mutation below must move the digest. The lambdas receive a fresh
// finalized example spec and flip exactly one semantic field.
struct Mutation {
  const char* name;
  void (*apply)(ProblemSpec&);
};

const Mutation kMutations[] = {
    {"alpha",
     [](ProblemSpec& s) { s.alpha = util::Fixed::from_double(0.71); }},
    {"slider_isolation",
     [](ProblemSpec& s) {
       s.sliders.isolation = s.sliders.isolation + util::Fixed::from_raw(1);
     }},
    {"slider_usability",
     [](ProblemSpec& s) {
       s.sliders.usability = s.sliders.usability + util::Fixed::from_raw(1);
     }},
    {"slider_budget",
     [](ProblemSpec& s) {
       s.sliders.budget = s.sliders.budget + util::Fixed::from_int(1);
     }},
    {"pattern_score",
     [](ProblemSpec& s) {
       s.isolation.set_score(IsolationPattern::kProxy,
                             s.isolation.score(IsolationPattern::kProxy) +
                                 util::Fixed::from_raw(1));
     }},
    {"pattern_usability",
     [](ProblemSpec& s) {
       s.isolation.set_usability(IsolationPattern::kProxy,
                                 util::Fixed::from_double(0.9));
     }},
    {"usability_override",
     [](ProblemSpec& s) {
       s.isolation.set_usability_override(IsolationPattern::kProxy, 0,
                                          util::Fixed::from_double(0.5));
     }},
    {"tunnel_margin",
     [](ProblemSpec& s) {
       s.isolation.set_tunnel_margin(s.isolation.tunnel_margin() + 1);
     }},
    {"device_cost",
     [](ProblemSpec& s) {
       s.device_costs.set(DeviceType::kIds,
                          s.device_costs.cost(DeviceType::kIds) +
                              util::Fixed::from_int(1));
     }},
    {"one_rank",
     [](ProblemSpec& s) { s.ranks.set(0, util::Fixed::from_double(0.5)); }},
    {"add_link",
     [](ProblemSpec& s) {
       s.network.add_link(s.network.hosts()[0], s.network.hosts()[1]);
     }},
    {"add_cr",
     [](ProblemSpec& s) {
       // Mark some flow that is not yet a CR as required.
       for (FlowId id = 0; id < static_cast<FlowId>(s.flows.size()); ++id) {
         if (!s.connectivity.required(id)) {
           s.connectivity.add(id);
           return;
         }
       }
     }},
    {"drop_cr",
     [](ProblemSpec& s) {
       ConnectivityRequirements kept;
       const std::vector<FlowId> crs = s.connectivity.sorted();
       for (std::size_t i = 1; i < crs.size(); ++i) kept.add(crs[i]);
       s.connectivity = kept;
     }},
    {"add_user_constraint",
     [](ProblemSpec& s) {
       s.user_constraints.push_back(
           ForbidPatternForService{0, IsolationPattern::kTrustedComm});
     }},
    {"add_host_requirement",
     [](ProblemSpec& s) {
       s.host_requirements.push_back(HostIsolationRequirement{
           s.network.hosts()[0], util::Fixed::from_int(3)});
     }},
    {"route_options",
     [](ProblemSpec& s) { s.route_options.max_routes += 1; }},
    {"add_flow",
     [](ProblemSpec& s) {
       const ServiceId extra = s.services.add("extra", 6, 99);
       s.flows.add(
           Flow{s.network.hosts()[0], s.network.hosts()[1], extra});
       s.ranks = FlowRanks::uniform(s.flows);
     }},
};

TEST(Fingerprint, EverySingleFieldMutationChangesTheDigest) {
  const Fingerprint base = fingerprint_spec(make_example_spec());
  std::set<std::string> seen = {base.to_string()};
  for (const Mutation& m : kMutations) {
    ProblemSpec spec = make_example_spec();
    m.apply(spec);
    const Fingerprint fp = fingerprint_spec(spec);
    EXPECT_NE(fp, base) << "mutation '" << m.name
                        << "' did not change the fingerprint";
    // All mutations must also be pairwise distinct — a hasher that
    // collapses different fields into the same digest would pass the
    // base != mutated check and still be broken.
    EXPECT_TRUE(seen.insert(fp.to_string()).second)
        << "mutation '" << m.name << "' collides with an earlier digest";
  }
}

TEST(Fingerprint, MutationsChangeDigestOnRandomSpecs) {
  // Property-style: across generated topologies, α / slider / score /
  // rank nudges always move the digest, and specs from different seeds
  // never collide.
  std::set<std::string> digests;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ProblemSpec spec = make_random_spec(seed, 6 + seed % 5, 3 + seed % 3,
                                        0.15);
    const Fingerprint base = fingerprint_spec(spec);
    EXPECT_TRUE(digests.insert(base.to_string()).second)
        << "seed " << seed << " collides with an earlier seed";

    ProblemSpec alpha = spec;
    alpha.alpha = alpha.alpha + util::Fixed::from_raw(1);
    EXPECT_NE(fingerprint_spec(alpha), base) << "seed " << seed;

    ProblemSpec slider = spec;
    slider.sliders.budget = slider.sliders.budget + util::Fixed::from_raw(1);
    EXPECT_NE(fingerprint_spec(slider), base) << "seed " << seed;

    ProblemSpec score = spec;
    score.isolation.set_score(IsolationPattern::kPayloadInspection,
                              score.isolation.score(
                                  IsolationPattern::kPayloadInspection) +
                                  util::Fixed::from_raw(1));
    EXPECT_NE(fingerprint_spec(score), base) << "seed " << seed;

    ProblemSpec rank = spec;
    rank.ranks.set(static_cast<FlowId>(seed % spec.flows.size()),
                   util::Fixed::from_double(0.123));
    EXPECT_NE(fingerprint_spec(rank), base) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cs::model
