// Unit and property tests for the topology substrate.
#include <gtest/gtest.h>

#include <set>

#include "topology/generator.h"
#include "topology/graphviz.h"
#include "topology/network.h"
#include "topology/routes.h"
#include "util/error.h"
#include "util/rng.h"

namespace cs::topology {
namespace {

Network tiny_network() {
  // h1 - r1 - r2 - h2 with a parallel core path r1 - r3 - r2.
  Network net;
  const NodeId h1 = net.add_host("h1");
  const NodeId h2 = net.add_host("h2");
  const NodeId r1 = net.add_router("r1");
  const NodeId r2 = net.add_router("r2");
  const NodeId r3 = net.add_router("r3");
  net.add_link(h1, r1);
  net.add_link(r1, r2);
  net.add_link(r2, h2);
  net.add_link(r1, r3);
  net.add_link(r3, r2);
  return net;
}

TEST(Network, BasicConstruction) {
  const Network net = tiny_network();
  EXPECT_EQ(net.host_count(), 2u);
  EXPECT_EQ(net.router_count(), 3u);
  EXPECT_EQ(net.link_count(), 5u);
  EXPECT_TRUE(net.connected());
  EXPECT_NO_THROW(net.validate());
}

TEST(Network, RejectsSelfLoopAndParallel) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.add_link(a, b);
  EXPECT_THROW(net.add_link(a, a), util::SpecError);
  EXPECT_THROW(net.add_link(b, a), util::SpecError);
}

TEST(Network, LinkOther) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  const LinkId l = net.add_link(a, b);
  EXPECT_EQ(net.link(l).other(a), b);
  EXPECT_EQ(net.link(l).other(b), a);
}

TEST(Network, FindLink) {
  const Network net = tiny_network();
  EXPECT_TRUE(net.find_link(0, 2).has_value());  // h1-r1
  EXPECT_FALSE(net.find_link(0, 1).has_value());
}

TEST(Network, DisconnectedFailsValidate) {
  Network net;
  net.add_host("a");
  net.add_host("b");
  EXPECT_FALSE(net.connected());
  EXPECT_THROW(net.validate(), util::SpecError);
}

TEST(Network, InternetFlag) {
  Network net;
  const NodeId i = net.add_internet();
  EXPECT_TRUE(net.node(i).is_internet);
  EXPECT_TRUE(net.is_host(i));
}

TEST(Routes, ShortestRouteFound) {
  const Network net = tiny_network();
  const Route r = shortest_route(net, 0, 1);
  ASSERT_EQ(r.length(), 3u);  // h1-r1-r2-h2
  EXPECT_EQ(r.nodes.front(), 0);
  EXPECT_EQ(r.nodes.back(), 1);
}

TEST(Routes, KShortestFindsBothCorePaths) {
  const Network net = tiny_network();
  RouteOptions opts;
  opts.max_routes = 8;
  const auto routes = k_shortest_routes(net, 0, 1, opts);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].length(), 3u);
  EXPECT_EQ(routes[1].length(), 4u);  // via r3
}

TEST(Routes, AllSimpleMatchesKShortestOnSmallNets) {
  const Network net = tiny_network();
  RouteOptions opts;
  opts.max_routes = RouteOptions::kAllRoutes;
  const auto all = all_simple_routes(net, 0, 1, opts);
  const auto kshort = k_shortest_routes(net, 0, 1, opts);
  EXPECT_EQ(all.size(), kshort.size());
}

TEST(Routes, RoutesNeverTransitHosts) {
  util::Rng rng(11);
  GeneratorConfig cfg;
  cfg.hosts = 8;
  cfg.routers = 6;
  const Network net = generate_topology(cfg, rng);
  RouteOptions opts;
  opts.max_routes = 6;
  for (const NodeId a : net.hosts()) {
    for (const NodeId b : net.hosts()) {
      if (a == b) continue;
      for (const Route& r : k_shortest_routes(net, a, b, opts)) {
        for (std::size_t i = 1; i + 1 < r.nodes.size(); ++i)
          EXPECT_TRUE(net.is_router(r.nodes[i]));
      }
    }
  }
}

TEST(Routes, RoutesAreSimpleAndConsistent) {
  util::Rng rng(13);
  GeneratorConfig cfg;
  cfg.hosts = 6;
  cfg.routers = 8;
  cfg.extra_core_link_ratio = 1.0;
  const Network net = generate_topology(cfg, rng);
  RouteOptions opts;
  opts.max_routes = 10;
  for (const NodeId a : net.hosts()) {
    for (const NodeId b : net.hosts()) {
      if (a >= b) continue;
      for (const Route& r : k_shortest_routes(net, a, b, opts)) {
        // Links consistent with node sequence.
        ASSERT_EQ(r.links.size() + 1, r.nodes.size());
        for (std::size_t i = 0; i < r.links.size(); ++i) {
          const Link& l = net.link(r.links[i]);
          EXPECT_TRUE((l.a == r.nodes[i] && l.b == r.nodes[i + 1]) ||
                      (l.b == r.nodes[i] && l.a == r.nodes[i + 1]));
        }
        // No repeated nodes.
        std::set<NodeId> unique(r.nodes.begin(), r.nodes.end());
        EXPECT_EQ(unique.size(), r.nodes.size());
      }
    }
  }
}

TEST(Routes, KShortestSortedByLength) {
  util::Rng rng(17);
  GeneratorConfig cfg;
  cfg.hosts = 5;
  cfg.routers = 7;
  cfg.extra_core_link_ratio = 1.5;
  const Network net = generate_topology(cfg, rng);
  RouteOptions opts;
  opts.max_routes = 6;
  const auto& hosts = net.hosts();
  const auto routes = k_shortest_routes(net, hosts[0], hosts[1], opts);
  for (std::size_t i = 1; i < routes.size(); ++i)
    EXPECT_LE(routes[i - 1].length(), routes[i].length());
}

TEST(Routes, MaxHopsHonored) {
  const Network net = tiny_network();
  RouteOptions opts;
  opts.max_routes = 8;
  opts.max_hops = 3;
  const auto routes = k_shortest_routes(net, 0, 1, opts);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_LE(routes[0].length(), 3u);
}

TEST(Routes, ReversedRoute) {
  const Network net = tiny_network();
  const Route r = shortest_route(net, 0, 1);
  const Route rev = r.reversed();
  EXPECT_EQ(rev.nodes.front(), 1);
  EXPECT_EQ(rev.nodes.back(), 0);
  EXPECT_EQ(rev.links.size(), r.links.size());
}

TEST(RouteTable, CachesAndMirrors) {
  const Network net = tiny_network();
  RouteTable table(net, RouteOptions{});
  const auto& fwd = table.routes(0, 1);
  const auto& rev = table.routes(1, 0);
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t i = 0; i < fwd.size(); ++i)
    EXPECT_EQ(fwd[i].reversed(), rev[i]);
  EXPECT_EQ(table.pairs_computed(), 1u);
}

TEST(Generator, ProducesValidNetworks) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    GeneratorConfig cfg;
    cfg.hosts = static_cast<int>(rng.uniform(2, 30));
    cfg.routers = static_cast<int>(rng.uniform(1, 15));
    const Network net = generate_topology(cfg, rng);
    EXPECT_EQ(net.host_count(), static_cast<std::size_t>(cfg.hosts));
    EXPECT_EQ(net.router_count(), static_cast<std::size_t>(cfg.routers));
    EXPECT_TRUE(net.connected());
  }
}

TEST(Generator, InternetIncluded) {
  util::Rng rng(5);
  GeneratorConfig cfg;
  cfg.include_internet = true;
  const Network net = generate_topology(cfg, rng);
  bool found = false;
  for (const NodeId h : net.hosts()) found |= net.node(h).is_internet;
  EXPECT_TRUE(found);
}

TEST(Generator, PaperExampleShape) {
  const Network net = make_paper_example();
  EXPECT_EQ(net.host_count(), 10u);
  EXPECT_EQ(net.router_count(), 8u);
  EXPECT_TRUE(net.connected());
  // The ring gives at least two routes between user and server subnets.
  RouteOptions opts;
  opts.max_routes = 4;
  const auto routes =
      k_shortest_routes(net, net.hosts()[0], net.hosts()[4], opts);
  EXPECT_GE(routes.size(), 2u);
}

TEST(Graphviz, EmitsNodesAndLabels) {
  const Network net = tiny_network();
  const std::string plain = to_dot(net);
  EXPECT_NE(plain.find("graph network"), std::string::npos);
  EXPECT_NE(plain.find("h1"), std::string::npos);
  const std::string labeled = to_dot(net, {{0, "FW"}});
  EXPECT_NE(labeled.find("FW"), std::string::npos);
}

}  // namespace
}  // namespace cs::topology
