// Property tests tying the SMT encoding to the metric semantics.
//
// For a random spec whose flows are all *pinned* to concrete patterns, the
// network isolation and usability are fully determined; the encoder must
// then accept thresholds just below the computed metrics and reject
// thresholds just above them. This exercises every coefficient path
// (rounding, group sizes, ladder increments) end to end against
// compute_metrics.
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "smt/ir.h"
#include "spec_helpers.h"
#include "synth/metrics.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace cs::synth {
namespace {

using smt::CheckResult;
using util::Fixed;

class PinnedDesignProperty : public ::testing::TestWithParam<int> {};

TEST_P(PinnedDesignProperty, ThresholdsMatchMetricsExactly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 5);
  model::ProblemSpec spec = cs::testing::make_random_spec(
      rng.next(), /*hosts=*/static_cast<int>(rng.uniform(4, 7)),
      /*routers=*/static_cast<int>(rng.uniform(3, 6)),
      /*cr_fraction=*/0.15);

  // Pin every flow to a pattern that needs no tunnel-length feasibility:
  // none / deny (non-CR only) / payload inspection / proxy.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const auto id = static_cast<model::FlowId>(f);
    const long long pick = rng.uniform(0, 3);
    std::optional<model::IsolationPattern> pattern;
    if (pick == 1 && !spec.connectivity.required(id))
      pattern = model::IsolationPattern::kAccessDeny;
    else if (pick == 2)
      pattern = model::IsolationPattern::kPayloadInspection;
    else if (pick == 3)
      pattern = model::IsolationPattern::kProxy;
    if (pattern.has_value()) {
      spec.user_constraints.push_back(
          model::RequirePatternForFlow{spec.flows.flow(id), *pattern});
    } else {
      for (const model::IsolationPattern k : spec.isolation.enabled())
        spec.user_constraints.push_back(
            model::ForbidPatternForFlow{spec.flows.flow(id), k});
    }
  }

  Synthesizer synth(spec, SynthesisOptions{});
  const Fixed big_budget = Fixed::from_int(100000);
  const SynthesisResult base =
      synth.synthesize_partial(std::nullopt, std::nullopt, big_budget);
  ASSERT_EQ(base.status, CheckResult::kSat);
  const DesignMetrics m = compute_metrics(spec, *base.design);

  const Fixed eps = Fixed::from_raw(5);
  // Just-below thresholds must be satisfiable.
  EXPECT_EQ(synth
                .synthesize_partial(m.isolation - eps, m.usability - eps,
                                    big_budget)
                .status,
            CheckResult::kSat);
  // Just-above thresholds must not (the pinned flows fix both metrics).
  if (m.isolation < model::kSliderMax) {
    EXPECT_EQ(synth
                  .synthesize_partial(m.isolation + eps, std::nullopt,
                                      big_budget)
                  .status,
              CheckResult::kUnsat);
  }
  if (m.usability < model::kSliderMax) {
    EXPECT_EQ(synth
                  .synthesize_partial(std::nullopt, m.usability + eps,
                                      big_budget)
                  .status,
              CheckResult::kUnsat);
  }
  // And the decoded design passes the checker structurally.
  EXPECT_TRUE(
      analysis::check_design(spec, *base.design, /*check_thresholds=*/false)
          .ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PinnedDesignProperty,
                         ::testing::Range(0, 12));

class PinnedHostPatternProperty : public ::testing::TestWithParam<int> {};

TEST_P(PinnedHostPatternProperty, HostLayerMetricsAgree) {
  // Same idea with the host-pattern layer in play: pin all network
  // patterns off and force host patterns via tiny budgets, then check the
  // threshold boundary around the computed isolation.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717 + 23);
  model::ProblemSpec spec = cs::testing::make_random_spec(
      rng.next(), 5, 4, /*cr_fraction=*/0.0);
  spec.host_patterns = model::HostPatternConfig::defaults();
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    for (const model::IsolationPattern k : spec.isolation.enabled())
      spec.user_constraints.push_back(model::ForbidPatternForFlow{
          spec.flows.flow(static_cast<model::FlowId>(f)), k});
  }

  Synthesizer synth(spec, SynthesisOptions{});
  // Force at least some host-level isolation.
  const SynthesisResult r = synth.synthesize_partial(
      Fixed::from_double(0.5), std::nullopt, Fixed::from_int(100));
  ASSERT_EQ(r.status, CheckResult::kSat);
  const DesignMetrics m = compute_metrics(spec, *r.design);
  EXPECT_GE(m.isolation, Fixed::from_double(0.5));
  EXPECT_GT(r.design->host_pattern_count(), 0u);
  EXPECT_TRUE(analysis::check_design(spec, *r.design, false).ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PinnedHostPatternProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace cs::synth
