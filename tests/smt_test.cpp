// Backend-equivalence tests: the Z3 backend and the from-scratch MiniPB
// backend must return the same verdict on every instance, and their models
// must satisfy the emitted constraints.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "smt/ir.h"
#include "util/rng.h"

namespace cs::smt {
namespace {

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::unique_ptr<Backend> backend_ = make_backend(GetParam());
};

TEST_P(BackendTest, NameNonEmpty) { EXPECT_FALSE(backend_->name().empty()); }

TEST_P(BackendTest, ClauseBasics) {
  Backend& b = *backend_;
  const BoolVar x = b.new_bool("x");
  const BoolVar y = b.new_bool("y");
  b.add_clause({pos(x), pos(y)});
  b.add_unit(neg(x));
  ASSERT_EQ(b.check(), CheckResult::kSat);
  EXPECT_FALSE(b.model_value(x));
  EXPECT_TRUE(b.model_value(y));
}

TEST_P(BackendTest, ImplicationChain) {
  Backend& b = *backend_;
  std::vector<BoolVar> v;
  for (int i = 0; i < 10; ++i) v.push_back(b.new_bool(""));
  for (int i = 0; i + 1 < 10; ++i)
    b.add_implies(pos(v[static_cast<std::size_t>(i)]),
                  pos(v[static_cast<std::size_t>(i + 1)]));
  b.add_unit(pos(v[0]));
  ASSERT_EQ(b.check(), CheckResult::kSat);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(b.model_value(v[static_cast<std::size_t>(i)]));
}

TEST_P(BackendTest, AtMostOne) {
  Backend& b = *backend_;
  std::vector<Lit> lits;
  std::vector<BoolVar> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(b.new_bool(""));
    lits.push_back(pos(vars.back()));
  }
  b.add_at_most_one(lits);
  // Force at least two true -> unsat.
  std::vector<Term> terms;
  for (const BoolVar v : vars) terms.push_back(Term{pos(v), 1});
  b.add_linear_ge(terms, 2);
  EXPECT_EQ(b.check(), CheckResult::kUnsat);
}

TEST_P(BackendTest, LinearGeAndLe) {
  Backend& b = *backend_;
  std::vector<Term> terms;
  std::vector<BoolVar> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(b.new_bool(""));
    terms.push_back(Term{pos(vars.back()), i + 1});  // weights 1..4
  }
  b.add_linear_ge(terms, 6);
  b.add_linear_le(terms, 6);
  ASSERT_EQ(b.check(), CheckResult::kSat);
  std::int64_t sum = 0;
  for (int i = 0; i < 4; ++i)
    sum += b.model_value(vars[static_cast<std::size_t>(i)]) ? (i + 1) : 0;
  EXPECT_EQ(sum, 6);
}

TEST_P(BackendTest, NegativeCoefficients) {
  // 3x - 2y >= 1: x must be true whenever y is true; x alone ok.
  Backend& b = *backend_;
  const BoolVar x = b.new_bool("x");
  const BoolVar y = b.new_bool("y");
  b.add_linear_ge({Term{pos(x), 3}, Term{pos(y), -2}}, 1);
  b.add_unit(pos(y));
  ASSERT_EQ(b.check(), CheckResult::kSat);
  EXPECT_TRUE(b.model_value(x));
}

TEST_P(BackendTest, GuardedConstraintsToggle) {
  Backend& b = *backend_;
  const BoolVar g = b.new_bool("guard");
  std::vector<Term> terms;
  std::vector<BoolVar> vars;
  for (int i = 0; i < 3; ++i) {
    vars.push_back(b.new_bool(""));
    terms.push_back(Term{pos(vars.back()), 1});
  }
  // Guarded: all three true. Unguarded store also forbids var0.
  b.add_guarded_linear_ge(pos(g), terms, 3);
  b.add_unit(neg(vars[0]));
  // Without assuming the guard: satisfiable.
  EXPECT_EQ(b.check(), CheckResult::kSat);
  // Assuming the guard: 3 of 3 needed but var0 is false -> unsat, and the
  // core mentions the guard.
  ASSERT_EQ(b.check({pos(g)}), CheckResult::kUnsat);
  const auto core = b.unsat_core();
  ASSERT_FALSE(core.empty());
  EXPECT_EQ(core[0].var, g);
  EXPECT_FALSE(core[0].negated);
}

TEST_P(BackendTest, GuardedLeToggle) {
  Backend& b = *backend_;
  const BoolVar g = b.new_bool("guard");
  const BoolVar x = b.new_bool("x");
  const BoolVar y = b.new_bool("y");
  b.add_guarded_linear_le(pos(g), {Term{pos(x), 5}, Term{pos(y), 4}}, 3);
  b.add_clause({pos(x), pos(y)});
  EXPECT_EQ(b.check(), CheckResult::kSat);
  EXPECT_EQ(b.check({pos(g)}), CheckResult::kUnsat);
}

TEST_P(BackendTest, TriviallyTrueGuardedConstraintIsDropped) {
  Backend& b = *backend_;
  const BoolVar g = b.new_bool("guard");
  const BoolVar x = b.new_bool("x");
  b.add_guarded_linear_ge(pos(g), {Term{pos(x), 1}}, 0);  // always true
  EXPECT_EQ(b.check({pos(g)}), CheckResult::kSat);
}

TEST_P(BackendTest, ReusableAcrossChecks) {
  Backend& b = *backend_;
  const BoolVar x = b.new_bool("x");
  const BoolVar y = b.new_bool("y");
  b.add_clause({pos(x), pos(y)});
  EXPECT_EQ(b.check({neg(x)}), CheckResult::kSat);
  EXPECT_TRUE(b.model_value(y));
  EXPECT_EQ(b.check({neg(x), neg(y)}), CheckResult::kUnsat);
  EXPECT_EQ(b.check({pos(x)}), CheckResult::kSat);
}

TEST_P(BackendTest, MemoryReported) {
  EXPECT_GE(backend_->memory_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

// Randomized cross-backend agreement.
class CrossBackendTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossBackendTest, VerdictsAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  auto z3 = make_backend(BackendKind::kZ3);
  auto mini = make_backend(BackendKind::kMiniPb);

  const int vars = static_cast<int>(rng.uniform(3, 8));
  for (int v = 0; v < vars; ++v) {
    z3->new_bool("");
    mini->new_bool("");
  }
  const auto rand_lit = [&] {
    const BoolVar v = static_cast<BoolVar>(rng.uniform(0, vars - 1));
    return rng.chance(0.5) ? pos(v) : neg(v);
  };

  const int clauses = static_cast<int>(rng.uniform(1, 15));
  for (int c = 0; c < clauses; ++c) {
    std::vector<Lit> lits;
    const int len = static_cast<int>(rng.uniform(1, 3));
    for (int l = 0; l < len; ++l) lits.push_back(rand_lit());
    z3->add_clause(lits);
    mini->add_clause(lits);
  }
  const int linears = static_cast<int>(rng.uniform(0, 4));
  for (int p = 0; p < linears; ++p) {
    std::vector<Term> terms;
    const int len = static_cast<int>(rng.uniform(1, 4));
    std::int64_t max_total = 0;
    for (int t = 0; t < len; ++t) {
      const std::int64_t coeff = rng.uniform(-3, 5);
      terms.push_back(Term{rand_lit(), coeff});
      max_total += coeff > 0 ? coeff : 0;
    }
    const std::int64_t bound = rng.uniform(0, std::max<std::int64_t>(
                                                  max_total, 1));
    if (rng.chance(0.5)) {
      z3->add_linear_ge(terms, bound);
      mini->add_linear_ge(terms, bound);
    } else {
      z3->add_linear_le(terms, bound);
      mini->add_linear_le(terms, bound);
    }
  }

  std::vector<Lit> assumptions;
  if (rng.chance(0.5)) assumptions.push_back(rand_lit());

  const CheckResult rz = z3->check(assumptions);
  const CheckResult rm = mini->check(assumptions);
  ASSERT_NE(rz, CheckResult::kUnknown);
  ASSERT_NE(rm, CheckResult::kUnknown);
  EXPECT_EQ(rz, rm);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossBackendTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace cs::smt
