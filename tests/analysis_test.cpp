// Tests for the independent checker, placement minimizer and reports.
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "analysis/report.h"
#include "spec_helpers.h"
#include "synth/synthesizer.h"

namespace cs::analysis {
namespace {

using cs::testing::make_example_spec;
using synth::SecurityDesign;

TEST(Checker, EmptyDesignHasNoStructuralIssues) {
  const model::ProblemSpec spec = make_example_spec();
  const SecurityDesign design(spec.flows.size(), spec.network.link_count());
  const CheckReport report = check_design(spec, design,
                                          /*check_thresholds=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Checker, FlagsDeniedConnectivityRequirement) {
  const model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  const model::FlowId required = spec.connectivity.sorted().front();
  design.set_pattern(required, model::IsolationPattern::kAccessDeny);
  const CheckReport report = check_design(spec, design, false);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues.front().find("connectivity requirement denied"),
            std::string::npos);
}

TEST(Checker, FlagsMissingDevice) {
  const model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  // Deny a non-required flow without placing any firewall.
  model::FlowId victim = 0;
  while (spec.connectivity.required(victim)) ++victim;
  design.set_pattern(victim, model::IsolationPattern::kAccessDeny);
  const CheckReport report = check_design(spec, design, false);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues.front().find("Firewall missing"),
            std::string::npos);
}

TEST(Checker, AcceptsCoveredDeny) {
  const model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  model::FlowId victim = 0;
  while (spec.connectivity.required(victim)) ++victim;
  design.set_pattern(victim, model::IsolationPattern::kAccessDeny);
  // Firewalls everywhere trivially cover all routes.
  for (std::size_t e = 0; e < spec.network.link_count(); ++e)
    design.set_placed(static_cast<topology::LinkId>(e),
                      model::DeviceType::kFirewall, true);
  const CheckReport report = check_design(spec, design, false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Checker, FlagsIpsecMarginViolation) {
  const model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  // Pick a pair whose shortest route has >= 2T+1 links (cross-subnet), and
  // select trusted communication with gateways *not* near the endpoints.
  topology::RouteTable routes(spec.network, spec.route_options);
  const auto& hosts = spec.network.hosts();
  model::FlowId chosen = model::kInvalidFlow;
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const model::Flow& flow =
        spec.flows.flow(static_cast<model::FlowId>(f));
    const auto& rs = routes.routes(flow.src, flow.dst);
    if (!rs.empty() && rs.front().length() >= 5) {
      chosen = static_cast<model::FlowId>(f);
      break;
    }
  }
  ASSERT_NE(chosen, model::kInvalidFlow);
  (void)hosts;
  design.set_pattern(chosen, model::IsolationPattern::kTrustedComm);
  const CheckReport report = check_design(spec, design, false);
  EXPECT_FALSE(report.ok());
}

TEST(Checker, ThresholdViolationsReported) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed::from_int(9);
  const SecurityDesign design(spec.flows.size(), spec.network.link_count());
  const CheckReport report = check_design(spec, design, true);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& issue : report.issues)
    found |= issue.find("isolation") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Checker, ReportRenders) {
  const model::ProblemSpec spec = make_example_spec();
  const SecurityDesign design(spec.flows.size(), spec.network.link_count());
  const CheckReport report = check_design(spec, design, false);
  EXPECT_NE(report.to_string().find("metrics:"), std::string::npos);
}

TEST(MinimizePlacements, DropsUnusedDevices) {
  const model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  // No flow protected, but devices littered everywhere.
  for (std::size_t e = 0; e < spec.network.link_count(); ++e)
    design.set_placed(static_cast<topology::LinkId>(e),
                      model::DeviceType::kIds, true);
  const std::size_t removed = minimize_placements(spec, design);
  EXPECT_EQ(removed, spec.network.link_count());
  EXPECT_EQ(design.device_count(), 0u);
}

}  // namespace
}  // namespace cs::analysis
