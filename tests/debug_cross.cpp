// Cross-backend soundness audit (also registered as a ctest regression).
//
// Encodes one spec into both backends, solves with Z3, audits every clause
// MiniPB learns against Z3 entailment, and replays Z3's full model as
// assumptions into MiniPB. Exits non-zero on any soundness violation.
// This caught a real bug: stale `seen_` bits left by conflict-clause
// minimization corrupted subsequent analyses into learning unsound units.
#include <cstdio>

#include "model/spec.h"
#include "smt/ir.h"
#include "smt/mini_backend.h"
#include "smt/z3_backend.h"
#include "synth/encoder.h"
#include "topology/generator.h"
#include "util/strings.h"

using namespace cs;

namespace {

model::ProblemSpec example_spec() {
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  const auto require = [&](int from, int to) {
    spec.connectivity.add(*spec.flows.find(
        model::Flow{hosts[static_cast<std::size_t>(from - 1)],
                    hosts[static_cast<std::size_t>(to - 1)], svc}));
  };
  require(1, 5);
  require(1, 6);
  require(2, 5);
  require(3, 7);
  require(4, 8);
  require(9, 5);
  require(10, 6);
  spec.finalize();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  const double iso = argc > 1 ? util::parse_double(argv[1], "iso") : 6;
  const double usab = argc > 2 ? util::parse_double(argv[2], "usab") : 0;
  const double cost = argc > 3 ? util::parse_double(argv[3], "cost") : 200;

  const model::ProblemSpec spec = example_spec();

  smt::Z3Backend z3;
  topology::RouteTable routes_z3(spec.network, spec.route_options);
  synth::Encoding enc_z3(spec, routes_z3, z3);
  const smt::Lit gi_z = enc_z3.isolation_guard(util::Fixed::from_double(iso));
  const smt::Lit gu_z = enc_z3.usability_guard(util::Fixed::from_double(usab));
  const smt::Lit gc_z = enc_z3.cost_guard(util::Fixed::from_double(cost));
  const smt::CheckResult rz = z3.check({gi_z, gu_z, gc_z});
  std::printf("z3: %d (0=sat)\n", static_cast<int>(rz));

  // Fresh MiniPB backend: replay Z3's model BEFORE any solving. If this
  // rejects, the two backends' constraint stores differ (encoding bug);
  // if it accepts but a post-solve replay rejects, learning is unsound.
  {
    smt::MiniBackend fresh;
    topology::RouteTable routes_f(spec.network, spec.route_options);
    synth::Encoding enc_f(spec, routes_f, fresh);
    (void)enc_f.isolation_guard(util::Fixed::from_double(iso));
    (void)enc_f.usability_guard(util::Fixed::from_double(usab));
    (void)enc_f.cost_guard(util::Fixed::from_double(cost));
    std::vector<smt::Lit> assumptions;
    for (std::size_t v = 0; v < fresh.num_vars(); ++v) {
      const auto var = static_cast<smt::BoolVar>(v);
      assumptions.push_back(z3.model_value(var) ? smt::pos(var)
                                                : smt::neg(var));
    }
    const smt::CheckResult fresh_replay = fresh.check(assumptions);
    std::printf("fresh replay: %d (0=sat)\n",
                static_cast<int>(fresh_replay));
    if (fresh_replay == smt::CheckResult::kUnsat) {
      std::printf("fresh core size: %zu\n", fresh.unsat_core().size());
      for (const smt::Lit l : fresh.unsat_core())
        std::printf("  fresh core var %d neg=%d\n", l.var, l.negated);
    }
  }

  smt::MiniBackend mini;
  // Audit every learned clause against Z3's model: a learned clause
  // violated by a genuine model is an unsound resolution.
  long long learnt_count = 0;
  int bad_reported = 0;
  mini.solver_for_testing().set_learnt_hook(
      [&](const std::vector<minisolver::Lit>& clause) {
        ++learnt_count;
        if (learnt_count > 200 || bad_reported >= 3) return;
        // Entailment check: constraints ∧ ¬C satisfiable => C not implied.
        std::vector<smt::Lit> negated;
        for (const minisolver::Lit l : clause)
          negated.push_back(smt::Lit{l.var(), !l.is_neg()});
        if (z3.check(negated) == smt::CheckResult::kSat) {
          ++bad_reported;
          std::printf("UNSOUND learnt #%lld size %zu:", learnt_count,
                      clause.size());
          for (const minisolver::Lit l : clause)
            std::printf(" %s", l.to_string().c_str());
          std::printf("\n");
        }
      });
  topology::RouteTable routes_m(spec.network, spec.route_options);
  synth::Encoding enc_m(spec, routes_m, mini);
  const smt::Lit gi_m = enc_m.isolation_guard(util::Fixed::from_double(iso));
  const smt::Lit gu_m = enc_m.usability_guard(util::Fixed::from_double(usab));
  const smt::Lit gc_m = enc_m.cost_guard(util::Fixed::from_double(cost));
  mini.set_time_limit_ms(60000);
  const smt::CheckResult rm = mini.check({gi_m, gu_m, gc_m});
  std::printf("minipb: %d (0=sat)\n", static_cast<int>(rm));

  int failures = bad_reported;
  if ((rz == smt::CheckResult::kSat && rm == smt::CheckResult::kUnsat) ||
      (rz == smt::CheckResult::kUnsat && rm == smt::CheckResult::kSat)) {
    std::printf("VERDICT MISMATCH\n");
    ++failures;
  }

  if (rz == smt::CheckResult::kSat && rm != smt::CheckResult::kSat) {
    // Replay Z3's model into MiniPB. Re-solve first: the entailment hook
    // above overwrote the cached model.
    (void)z3.check({gi_z, gu_z, gc_z});
    std::printf("replaying z3 model into minipb (%zu vars z3, %zu mini)\n",
                z3.num_vars(), mini.num_vars());
    std::vector<smt::Lit> assumptions;
    const std::size_t shared = std::min(z3.num_vars(), mini.num_vars());
    for (std::size_t v = 0; v < shared; ++v) {
      const auto var = static_cast<smt::BoolVar>(v);
      assumptions.push_back(z3.model_value(var) ? smt::pos(var)
                                                : smt::neg(var));
    }
    // Guard literals must be asserted too (same indices by construction).
    const smt::CheckResult replay = mini.check(assumptions);
    std::printf("replay: %d (0=sat)\n", static_cast<int>(replay));
    if (replay == smt::CheckResult::kUnsat) {
      std::printf("core size: %zu\n", mini.unsat_core().size());
      for (const smt::Lit l : mini.unsat_core())
        std::printf("  core var %d neg=%d\n", l.var, l.negated);
      ++failures;
    }
  }
  std::printf("audit failures: %d (learnt clauses checked: %lld)\n",
              failures, std::min(learnt_count, 200ll));
  return failures == 0 ? 0 : 1;
}
