// Tests for design persistence (design_io), exposure reporting and the
// frontier API.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/checker.h"
#include "analysis/design_io.h"
#include "analysis/exposure.h"
#include "spec_helpers.h"
#include "synth/frontier.h"
#include "synth/synthesizer.h"

namespace cs::analysis {
namespace {

using cs::testing::make_example_spec;
using synth::SecurityDesign;
using util::Fixed;

SecurityDesign make_sample_design(const model::ProblemSpec& spec) {
  SecurityDesign d(spec.flows.size(), spec.network.link_count(),
                   spec.network.node_count());
  d.set_pattern(0, model::IsolationPattern::kAccessDeny);
  d.set_pattern(3, model::IsolationPattern::kPayloadInspection);
  d.set_placed(2, model::DeviceType::kFirewall, true);
  d.set_placed(2, model::DeviceType::kIds, true);
  d.set_placed(5, model::DeviceType::kIpsec, true);
  d.set_host_pattern(spec.network.hosts()[1],
                     model::HostPattern::kAntivirus);
  d.set_app_pattern(spec.network.hosts()[2], 0,
                    model::AppPattern::kAppHardening);
  return d;
}

TEST(DesignIo, RoundTrip) {
  const model::ProblemSpec spec = make_example_spec();
  const SecurityDesign original = make_sample_design(spec);
  const std::string text = design_to_text(original);
  const SecurityDesign loaded = design_from_text(text);

  EXPECT_EQ(loaded.flow_count(), original.flow_count());
  EXPECT_EQ(loaded.link_count(), original.link_count());
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded, original);
}

TEST(DesignIo, RoundTripOfSynthesizedDesign) {
  const model::ProblemSpec spec = make_example_spec();
  synth::Synthesizer synth(spec, synth::SynthesisOptions{});
  const synth::SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, smt::CheckResult::kSat);
  const SecurityDesign loaded =
      design_from_text(design_to_text(*r.design));
  EXPECT_EQ(loaded, *r.design);
  // A loaded design still passes the checker against the same spec.
  EXPECT_TRUE(check_design(spec, loaded).ok());
}

TEST(DesignIo, RejectsMalformedInput) {
  EXPECT_THROW(design_from_text(""), util::SpecError);
  EXPECT_THROW(design_from_text("wrong-magic 1\n"), util::SpecError);
  EXPECT_THROW(design_from_text("configsynth-design 2\n"),
               util::SpecError);
  // Truncated body.
  EXPECT_THROW(design_from_text("configsynth-design 1\nflows 3\n0 0\n"),
               util::SpecError);
  // Pattern id out of range.
  EXPECT_THROW(design_from_text("configsynth-design 1\nflows 1\n0 9\n"
                                "links 0 placed 0\nhost-patterns 0 placed "
                                "0\napp-patterns 0\nend\n"),
               util::SpecError);
}

TEST(DesignIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "configsynth-design 1\n\nflows 1\n\n0 1\nlinks 2 placed 1\n"
      "1 1 3\nhost-patterns 0 placed 0\napp-patterns 0\nend\n";
  const SecurityDesign d = design_from_text(text);
  EXPECT_EQ(d.pattern(0), model::IsolationPattern::kAccessDeny);
  EXPECT_TRUE(d.placed(1, model::DeviceType::kFirewall));
  EXPECT_TRUE(d.placed(1, model::DeviceType::kIds));
  EXPECT_FALSE(d.placed(0, model::DeviceType::kFirewall));
}

TEST(Exposure, ClassifiesProtections) {
  model::ProblemSpec spec = make_example_spec();
  spec.host_patterns = model::HostPatternConfig::defaults();
  SecurityDesign d(spec.flows.size(), spec.network.link_count(),
                   spec.network.node_count());
  const topology::NodeId h1 = spec.network.hosts()[0];
  const topology::NodeId h2 = spec.network.hosts()[1];
  // Deny everything into h1; host-protect h2.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows.flow(static_cast<model::FlowId>(f)).dst == h1)
      d.set_pattern(static_cast<model::FlowId>(f),
                    model::IsolationPattern::kAccessDeny);
  }
  d.set_host_pattern(h2, model::HostPattern::kHostFirewall);

  const std::vector<HostExposure> exp = compute_exposure(spec, d);
  ASSERT_EQ(exp.size(), spec.network.host_count());
  EXPECT_EQ(exp[0].denied, exp[0].incoming_flows);
  EXPECT_EQ(exp[0].open, 0u);
  EXPECT_EQ(exp[1].host_protected, exp[1].incoming_flows);
  EXPECT_GT(exp[2].open, 0u);  // untouched host stays open
  EXPECT_DOUBLE_EQ(exp[2].open_fraction(), 1.0);

  const std::string table = render_exposure(exp);
  EXPECT_NE(table.find("h1"), std::string::npos);
  EXPECT_NE(table.find("internet-exposed"), std::string::npos);
}

TEST(Exposure, FlagsInternetReachability) {
  model::ProblemSpec spec;
  const topology::NodeId inet = spec.network.add_internet();
  const topology::NodeId srv = spec.network.add_host("srv");
  const topology::NodeId r = spec.network.add_router("r1");
  spec.network.add_link(inet, r);
  spec.network.add_link(srv, r);
  const model::ServiceId web = spec.services.add("WEB");
  spec.flows.add(model::Flow{inet, srv, web});
  spec.finalize();

  SecurityDesign open(spec.flows.size(), spec.network.link_count());
  auto exp = compute_exposure(spec, open);
  // srv is the second host added.
  EXPECT_TRUE(exp[1].internet_exposed);

  SecurityDesign inspected = open;
  inspected.set_pattern(0, model::IsolationPattern::kPayloadInspection);
  exp = compute_exposure(spec, inspected);
  EXPECT_FALSE(exp[1].internet_exposed);
  EXPECT_EQ(exp[1].inspected, 1u);
}

TEST(Frontier, SweepsAndRenders) {
  const model::ProblemSpec spec = make_example_spec();
  synth::SynthesisOptions opts;
  opts.check_time_limit_ms = 8000;

  synth::FrontierOptions fopts;
  fopts.usability_floors = {Fixed::from_int(0), Fixed::from_int(6)};
  fopts.budgets = {Fixed::from_int(20), Fixed::from_int(80)};
  fopts.reuse_synthesizer = true;  // serial incremental mode
  const auto points = synth::explore_frontier(spec, opts, fopts);
  ASSERT_EQ(points.size(), 4u);
  // Bigger budget dominates at the same floor (when both exact).
  if (points[0].exact && points[1].exact) {
    EXPECT_LE(points[0].max_isolation, points[1].max_isolation);
  }
  // Rendering mentions both budgets and all floors.
  const std::string table = synth::render_frontier(points);
  EXPECT_NE(table.find("$20"), std::string::npos);
  EXPECT_NE(table.find("$80"), std::string::npos);
  EXPECT_NE(table.find("6"), std::string::npos);
}

TEST(Frontier, DefaultsAreFig3Shaped) {
  const auto opts = synth::FrontierOptions::fig3_defaults(
      Fixed::from_int(10), Fixed::from_int(20));
  EXPECT_EQ(opts.usability_floors.size(), 6u);
  EXPECT_EQ(opts.budgets.size(), 2u);
}

}  // namespace
}  // namespace cs::analysis
