// Unit and property tests for the MiniPB CDCL solver.
//
// The property suites cross-check the solver against brute-force
// enumeration on small random instances — every SAT answer must produce a
// model satisfying all constraints, and every UNSAT answer must match the
// enumerator's verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "minisolver/luby.h"
#include "minisolver/pb_constraint.h"
#include "minisolver/solver.h"
#include "util/rng.h"

namespace cs::minisolver {
namespace {

using Result = Solver::Result;

TEST(Luby, FirstElements) {
  const std::vector<std::int64_t> expect{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1,
                                         1, 2, 4, 8};
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(luby(static_cast<std::int64_t>(i) + 1), expect[i]) << i;
}

TEST(Literal, Packing) {
  const Lit p = Lit::pos(7);
  const Lit n = Lit::neg(7);
  EXPECT_EQ(p.var(), 7);
  EXPECT_EQ(n.var(), 7);
  EXPECT_FALSE(p.is_neg());
  EXPECT_TRUE(n.is_neg());
  EXPECT_EQ(~p, n);
  EXPECT_EQ(~n, p);
  EXPECT_NE(p.index(), n.index());
}

TEST(NormalizePb, MergesAndFlips) {
  // 2x0 + 3(~x0) >= 4  ->  x0 with signed coeff -1, const +3:
  // -(x0) >= 1  ->  (~x0) >= 2 ... compute: signed: +2-3=-1; bound 4-3=1;
  // flip: 1*(~x0) >= 1+1 = 2 -> trivially false (max sum 1 < 2).
  const PbConstraint pb = normalize_pb(
      {{Lit::pos(0), 2}, {Lit::neg(0), 3}}, 4);
  EXPECT_TRUE(pb.trivially_false());
}

TEST(NormalizePb, CancellingPairIsTrivial) {
  // x + ~x >= 1 is always true.
  const PbConstraint pb = normalize_pb(
      {{Lit::pos(0), 1}, {Lit::neg(0), 1}}, 1);
  EXPECT_TRUE(pb.trivially_true());
}

TEST(NormalizePb, SortsDescending) {
  const PbConstraint pb = normalize_pb(
      {{Lit::pos(0), 1}, {Lit::pos(1), 5}, {Lit::pos(2), 3}}, 2);
  ASSERT_EQ(pb.terms.size(), 3u);
  EXPECT_GE(pb.terms[0].coeff, pb.terms[1].coeff);
  EXPECT_GE(pb.terms[1].coeff, pb.terms[2].coeff);
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({Lit::pos(a), Lit::pos(b)});
  s.add_clause({Lit::neg(a)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({Lit::pos(a)});
  EXPECT_FALSE(s.add_clause({Lit::neg(a)}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, EmptyProblemIsSat) {
  Solver s;
  (void)s.new_var();
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, ChainedImplications) {
  // x0 -> x1 -> ... -> x19, assert x0, so all true.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 20; ++i)
    s.add_clause({Lit::neg(v[static_cast<std::size_t>(i)]),
                  Lit::pos(v[static_cast<std::size_t>(i + 1)])});
  s.add_clause({Lit::pos(v[0])});
  ASSERT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)])) << i;
}

/// Pigeonhole principle: n+1 pigeons into n holes is UNSAT.
void build_php(Solver& s, int pigeons, int holes,
               std::vector<std::vector<Var>>& x) {
  x.assign(static_cast<std::size_t>(pigeons), {});
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h)
      x[static_cast<std::size_t>(p)].push_back(s.new_var());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h)
      some.push_back(Lit::pos(x[static_cast<std::size_t>(p)]
                                  [static_cast<std::size_t>(h)]));
    s.add_clause(some);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({Lit::neg(x[static_cast<std::size_t>(p1)]
                                   [static_cast<std::size_t>(h)]),
                      Lit::neg(x[static_cast<std::size_t>(p2)]
                                   [static_cast<std::size_t>(h)])});
}

TEST(Solver, PigeonholeUnsat) {
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 6, 5, x);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 5, 5, x);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, CardinalityViaPb) {
  // Exactly 3 of 6 variables: >=3 and <=3.
  Solver s;
  std::vector<PbTerm> terms;
  for (int i = 0; i < 6; ++i)
    terms.push_back(PbTerm{Lit::pos(s.new_var()), 1});
  ASSERT_TRUE(s.add_linear_ge(terms, 3));
  ASSERT_TRUE(s.add_linear_le(terms, 3));
  ASSERT_EQ(s.solve(), Result::kSat);
  int count = 0;
  for (int i = 0; i < 6; ++i)
    count += s.model_value(i) ? 1 : 0;
  EXPECT_EQ(count, 3);
}

TEST(Solver, PbForcesAll) {
  // x0+x1+x2 >= 3 forces all three true by propagation.
  Solver s;
  std::vector<PbTerm> terms;
  for (int i = 0; i < 3; ++i)
    terms.push_back(PbTerm{Lit::pos(s.new_var()), 1});
  ASSERT_TRUE(s.add_linear_ge(terms, 3));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(s.model_value(i));
}

TEST(Solver, PbWithWeightsConflictsWithClauses) {
  // 5a + 3b + 2c >= 8 and ~a: then need 3b+2c >= 8, impossible.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_linear_ge(
      {{Lit::pos(a), 5}, {Lit::pos(b), 3}, {Lit::pos(c), 2}}, 8));
  s.add_clause({Lit::neg(a)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PbLeBudget) {
  // 5a+3b+2c <= 4 with clause a∨b: a impossible (5>4), so b; c allowed
  // only if 3+2<=4 fails -> c false when b true.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_linear_le(
      {{Lit::pos(a), 5}, {Lit::pos(b), 3}, {Lit::pos(c), 2}}, 4));
  s.add_clause({Lit::pos(a), Lit::pos(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_FALSE(s.model_value(c));
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({Lit::neg(a), Lit::pos(b)});  // a -> b
  EXPECT_EQ(s.solve({Lit::pos(a)}), Result::kSat);
  EXPECT_TRUE(s.model_value(b));
  // Assume a and ~b: contradiction with a->b.
  EXPECT_EQ(s.solve({Lit::pos(a), Lit::neg(b)}), Result::kUnsat);
  // Solver stays usable.
  EXPECT_EQ(s.solve({Lit::neg(a)}), Result::kSat);
}

TEST(Solver, UnsatCoreIsSubsetOfAssumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  const Var d = s.new_var();
  s.add_clause({Lit::neg(a), Lit::neg(b)});  // not both a and b
  (void)c;
  (void)d;
  const std::vector<Lit> assumptions{Lit::pos(c), Lit::pos(a), Lit::pos(d),
                                     Lit::pos(b)};
  ASSERT_EQ(s.solve(assumptions), Result::kUnsat);
  const std::vector<Lit>& core = s.unsat_core();
  EXPECT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                assumptions.end())
        << l.to_string();
  }
  // c and d are irrelevant; a tight core keeps only a and b.
  for (const Lit l : core) {
    EXPECT_TRUE(l == Lit::pos(a) || l == Lit::pos(b)) << l.to_string();
  }
}

TEST(Solver, CoreEmptyWhenUnsatWithoutAssumptions) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({Lit::pos(a)});
  s.add_clause({Lit::neg(a)});
  EXPECT_EQ(s.solve({Lit::pos(s.new_var())}), Result::kUnsat);
  EXPECT_TRUE(s.unsat_core().empty());
}

// ---------------------------------------------------------------------------
// Property tests: random instances vs brute force.
// ---------------------------------------------------------------------------

struct RandomInstance {
  int vars = 0;
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::pair<std::vector<PbTerm>, std::int64_t>> pbs;  // >= bound
};

RandomInstance make_random(util::Rng& rng, int vars, int clauses, int pbs) {
  RandomInstance inst;
  inst.vars = vars;
  for (int c = 0; c < clauses; ++c) {
    const int len = static_cast<int>(rng.uniform(1, 3));
    std::vector<Lit> cl;
    for (int l = 0; l < len; ++l) {
      const Var v = static_cast<Var>(rng.uniform(0, vars - 1));
      cl.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));
    }
    inst.clauses.push_back(std::move(cl));
  }
  for (int p = 0; p < pbs; ++p) {
    const int len = static_cast<int>(rng.uniform(2, 5));
    std::vector<PbTerm> terms;
    std::int64_t total = 0;
    for (int t = 0; t < len; ++t) {
      const Var v = static_cast<Var>(rng.uniform(0, vars - 1));
      const std::int64_t coeff = rng.uniform(1, 4);
      total += coeff;
      terms.push_back(
          PbTerm{rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v), coeff});
    }
    inst.pbs.emplace_back(std::move(terms), rng.uniform(0, total));
  }
  return inst;
}

bool brute_force_sat(const RandomInstance& inst) {
  for (std::uint32_t m = 0; m < (1u << inst.vars); ++m) {
    const auto lit_true = [&](Lit l) {
      const bool v = (m >> l.var()) & 1;
      return l.is_neg() ? !v : v;
    };
    bool all_ok = true;
    for (const auto& cl : inst.clauses) {
      bool sat = false;
      for (const Lit l : cl) sat = sat || lit_true(l);
      if (!sat) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      for (const auto& [terms, bound] : inst.pbs) {
        std::int64_t sum = 0;
        for (const PbTerm& t : terms) sum += lit_true(t.lit) ? t.coeff : 0;
        if (sum < bound) {
          all_ok = false;
          break;
        }
      }
    }
    if (all_ok) return true;
  }
  return false;
}

class RandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceTest, AgreesWithBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int vars = static_cast<int>(rng.uniform(4, 10));
  const int clauses = static_cast<int>(rng.uniform(2, 30));
  const int pbs = static_cast<int>(rng.uniform(0, 5));
  const RandomInstance inst = make_random(rng, vars, clauses, pbs);

  Solver s;
  for (int v = 0; v < vars; ++v) (void)s.new_var();
  bool consistent = true;
  for (const auto& cl : inst.clauses) consistent &= s.add_clause(cl);
  for (const auto& [terms, bound] : inst.pbs)
    consistent &= s.add_linear_ge(terms, bound);

  const bool expect_sat = brute_force_sat(inst);
  if (!consistent) {
    EXPECT_FALSE(expect_sat) << "solver declared unsat during construction";
    return;
  }
  const Result r = s.solve();
  ASSERT_NE(r, Result::kUnknown);
  EXPECT_EQ(r == Result::kSat, expect_sat);
  if (r == Result::kSat) {
    // Verify the model against the original (pre-normalization) instance.
    const auto lit_true = [&](Lit l) {
      const bool v = s.model_value(l.var());
      return l.is_neg() ? !v : v;
    };
    for (const auto& cl : inst.clauses) {
      bool sat = false;
      for (const Lit l : cl) sat = sat || lit_true(l);
      EXPECT_TRUE(sat);
    }
    for (const auto& [terms, bound] : inst.pbs) {
      std::int64_t sum = 0;
      for (const PbTerm& t : terms) sum += lit_true(t.lit) ? t.coeff : 0;
      EXPECT_GE(sum, bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomInstanceTest, ::testing::Range(0, 60));

class RandomAssumptionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssumptionTest, CoreIsUnsatSubset) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int vars = static_cast<int>(rng.uniform(4, 9));
  const RandomInstance inst =
      make_random(rng, vars, static_cast<int>(rng.uniform(3, 20)),
                  static_cast<int>(rng.uniform(0, 3)));

  Solver s;
  for (int v = 0; v < vars; ++v) (void)s.new_var();
  bool consistent = true;
  for (const auto& cl : inst.clauses) consistent &= s.add_clause(cl);
  for (const auto& [terms, bound] : inst.pbs)
    consistent &= s.add_linear_ge(terms, bound);
  if (!consistent) return;  // covered by the other property suite

  std::vector<Lit> assumptions;
  for (int v = 0; v < vars; ++v)
    if (rng.chance(0.5))
      assumptions.push_back(rng.chance(0.5) ? Lit::pos(v) : Lit::neg(v));

  if (s.solve(assumptions) == Result::kUnsat) {
    // Core must be a subset of assumptions and itself unsat.
    RandomInstance with_core = inst;
    for (const Lit l : s.unsat_core()) {
      EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                  assumptions.end());
      with_core.clauses.push_back({l});
    }
    EXPECT_FALSE(brute_force_sat(with_core));
  } else {
    // Sanity: model satisfies assumptions.
    for (const Lit l : assumptions) {
      const bool v = s.model_value(l.var());
      EXPECT_TRUE(l.is_neg() ? !v : v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomAssumptionTest, ::testing::Range(0, 60));

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard pigeonhole instance with a one-conflict budget must give up.
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 8, 7, x);
  s.set_conflict_limit(1);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  // Removing the limit finishes the proof.
  s.set_conflict_limit(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, TimeLimitReturnsUnknown) {
  // A pigeonhole instance too hard for a 1ms budget.
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 9, 8, x);
  s.set_time_limit_ms(1);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  // Removing the limit lets it finish (and the solver stays sound).
  s.set_time_limit_ms(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PhaseVotesSteerInitialModel) {
  // With a single dominating GE constraint, the first model should
  // satisfy it without search: decisions follow the constraint's votes.
  Solver s;
  std::vector<PbTerm> terms;
  for (int i = 0; i < 50; ++i)
    terms.push_back(PbTerm{Lit::pos(s.new_var()), 1});
  s.add_linear_ge(terms, 50);  // needs all true
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.stats().conflicts, 0);
}

TEST(Solver, AddLinearEqViaTwoConstraints) {
  Solver s;
  std::vector<PbTerm> terms;
  for (int i = 0; i < 5; ++i)
    terms.push_back(PbTerm{Lit::pos(s.new_var()), i + 1});  // 1..5
  // Exactly 7 = e.g. {3,4} or {2,5} or {1,2,4}...
  s.add_linear_ge(terms, 7);
  s.add_linear_le(terms, 7);
  ASSERT_EQ(s.solve(), Result::kSat);
  std::int64_t sum = 0;
  for (int i = 0; i < 5; ++i) sum += s.model_value(i) ? i + 1 : 0;
  EXPECT_EQ(sum, 7);
}

TEST(Solver, LearntHookObservesClauses) {
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 4, 3, x);
  long long count = 0;
  s.set_learnt_hook([&](const std::vector<Lit>& clause) {
    EXPECT_FALSE(clause.empty());
    ++count;
  });
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(count, 0);
}

TEST(Solver, MemoryEstimateGrows) {
  Solver s;
  const auto empty = s.memory_estimate_bytes();
  for (int i = 0; i < 100; ++i) (void)s.new_var();
  for (int i = 0; i + 1 < 100; ++i)
    s.add_clause({Lit::pos(i), Lit::neg(i + 1)});
  EXPECT_GT(s.memory_estimate_bytes(), empty);
}

TEST(Solver, MemoryBreakdownIsConsistent) {
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 7, 6, x);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  const Solver::MemoryBreakdown mb = s.memory_breakdown();
  EXPECT_EQ(mb.total(), s.memory_estimate_bytes());
  EXPECT_GE(mb.arena_capacity_bytes, mb.arena_size_bytes);
  EXPECT_GE(mb.arena_size_bytes, mb.arena_wasted_bytes);
  EXPECT_GE(mb.wasted_fraction(), 0.0);
  EXPECT_LE(mb.wasted_fraction(), 1.0);
  EXPECT_GT(mb.arena_size_bytes, 0u);
  EXPECT_GT(mb.var_bytes, 0u);
}

TEST(Solver, ConflictLimitMidReduceEpochLeavesSolverReusable) {
  // Exhausting the conflict budget after clause-DB reductions have begun
  // must leave the solver checkout-able (the service warm pool re-solves
  // on the same instance after a kUnknown): the interrupted solve's
  // arena, watch lists and learnt tiers stay coherent.
  Solver s;
  std::vector<std::vector<Var>> x;
  // php(9,8): ~13k conflicts to refute under the default configuration,
  // comfortably past the 3000-conflict budget (php(8,7) refutes inside
  // it since the Glucose-cadence DB reduction landed).
  build_php(s, 9, 8, x);
  s.set_conflict_limit(3000);
  ASSERT_EQ(s.solve(), Result::kUnknown);
  // The budget must genuinely land mid-epoch: reductions already ran.
  EXPECT_GT(s.stats().deleted_clauses, 0);
  // Re-solve with assumptions on the reused solver, then unrestricted.
  s.set_conflict_limit(0);
  EXPECT_EQ(s.solve({Lit::pos(x[0][0])}), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, RootSimplifyFoldsNewFactsBetweenSolves) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  const Var d = s.new_var();
  s.add_clause({Lit::pos(a), Lit::pos(b)});
  s.add_clause({Lit::neg(a), Lit::pos(b), Lit::pos(c), Lit::pos(d)});
  s.add_clause({Lit::pos(a)});  // root fact: a = true
  ASSERT_EQ(s.solve(), Result::kSat);
  const std::int64_t rounds = s.stats().db_simplify_rounds;
  EXPECT_GE(rounds, 1);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b) || s.model_value(c) || s.model_value(d));
  // Another root fact arrives; the next solve runs another round and the
  // store stays sound.
  s.add_clause({Lit::neg(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_GT(s.stats().db_simplify_rounds, rounds);
  EXPECT_TRUE(s.model_value(c) || s.model_value(d));
}

TEST(Solver, LbdTierCountsCoverEveryLearntClause) {
  Solver s;
  std::vector<std::vector<Var>> x;
  build_php(s, 6, 5, x);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  const Solver::Stats& st = s.stats();
  EXPECT_GT(st.learned_clauses, 0);
  // Every multi-literal learnt clause entered exactly one tier at learn
  // time; promotions/demotions only add further entries.
  EXPECT_GE(st.lbd_core + st.lbd_tier2 + st.lbd_local, 0);
  EXPECT_GT(st.lbd_core + st.lbd_tier2 + st.lbd_local, 0);
}

TEST(Solver, CounterModeMatchesWatchedSumVerdicts) {
  // The reference counter propagator and the watched-sum default must
  // agree across a mixed clause/PB instance, including after an
  // interrupted solve; both keep exact slack bookkeeping.
  const auto build = [](Solver& s) {
    std::vector<PbTerm> terms;
    for (int i = 0; i < 12; ++i)
      terms.push_back(PbTerm{Lit::pos(s.new_var()), (i % 4) + 1});
    s.add_linear_ge(terms, 18);
    s.add_linear_le(terms, 24);
    for (int i = 0; i + 2 < 12; i += 3)
      s.add_clause({Lit::neg(i), Lit::neg(i + 1), Lit::neg(i + 2)});
  };
  Solver watched;
  Solver counter;
  counter.set_pb_mode(Solver::PbMode::kCounter);
  EXPECT_EQ(watched.pb_mode(), Solver::PbMode::kWatchedSum);
  build(watched);
  build(counter);
  const std::vector<std::vector<Lit>> rounds = {
      {}, {Lit::pos(0), Lit::pos(1)}, {Lit::neg(4), Lit::neg(7), Lit::neg(11)}};
  for (const std::vector<Lit>& assume : rounds) {
    EXPECT_EQ(watched.solve(assume), counter.solve(assume));
    EXPECT_TRUE(watched.pb_bookkeeping_ok());
    EXPECT_TRUE(counter.pb_bookkeeping_ok());
  }
}

}  // namespace
}  // namespace cs::minisolver
