// Tests for the structured topology generators (topology/structured.h):
// shape invariants per family (router counts, exact host counts,
// connectivity), seeded determinism (same config -> byte-identical
// network and spec fingerprint), contiguous host attachment, name
// round-trips, and graphviz export.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "model/fingerprint.h"
#include "model/spec.h"
#include "topology/graphviz.h"
#include "topology/structured.h"
#include "util/error.h"

namespace cs::topology {
namespace {

TEST(TopologyKindTest, NameRoundTrip) {
  for (const TopologyKind kind :
       {TopologyKind::kMesh, TopologyKind::kFatTree, TopologyKind::kCampus,
        TopologyKind::kIsp}) {
    EXPECT_EQ(topology_kind_from_name(topology_kind_name(kind)), kind);
  }
  EXPECT_THROW(topology_kind_from_name("torus"), util::SpecError);
}

TEST(FatTreeTest, ShapeInvariants) {
  // k = 4: 4 pods x (2 edge + 2 agg) = 16 pod switches + (k/2)^2 = 4
  // cores.
  const Network net = make_fat_tree(FatTreeConfig{4, 16});
  EXPECT_EQ(net.router_count(), 20u);
  EXPECT_EQ(net.host_count(), 16u);
  EXPECT_TRUE(net.connected());
  net.validate();
  // Aggregation switches link k/2 edges + k/2 cores and every core takes
  // one uplink per pod — router-degree k for both (12 switches); edge
  // switches link only their pod's k/2 aggregations (8 switches).
  int degree_k = 0;
  int degree_half_k = 0;
  for (const NodeId r : net.routers()) {
    int router_degree = 0;
    for (const Adjacency& adj : net.neighbors(r))
      if (net.is_router(adj.peer)) ++router_degree;
    if (router_degree == 4) ++degree_k;
    if (router_degree == 2) ++degree_half_k;
  }
  EXPECT_EQ(degree_k, 12);
  EXPECT_EQ(degree_half_k, 8);
}

TEST(FatTreeTest, DerivesArityFromHostBudget) {
  // Smallest even k with k^3/4 >= 100 is 8 -> 5k^2/4 = 80 routers.
  const Network net = make_structured(TopologyKind::kFatTree, 100, 1);
  EXPECT_EQ(net.host_count(), 100u);
  EXPECT_EQ(net.router_count(), 80u);
  EXPECT_TRUE(net.connected());
}

TEST(CampusTest, ShapeInvariants) {
  CampusConfig cfg;
  cfg.cores = 2;
  cfg.buildings = 5;
  cfg.access_per_building = 1;
  cfg.hosts = 20;
  cfg.include_internet = true;
  const Network net = make_campus(cfg);
  EXPECT_EQ(net.router_count(), 12u);  // 2 cores + 5 x (dist + access)
  EXPECT_EQ(net.host_count(), 21u);    // 20 hosts + the Internet endpoint
  EXPECT_TRUE(net.connected());
  int internet_nodes = 0;
  for (const NodeId h : net.hosts())
    if (net.node(h).is_internet) ++internet_nodes;
  EXPECT_EQ(internet_nodes, 1);
}

TEST(IspTest, ShapeInvariants) {
  const Network net = make_isp(IspConfig{});  // 4 + 8 + 16 routers
  EXPECT_EQ(net.router_count(), 28u);
  EXPECT_EQ(net.host_count(), 48u);
  EXPECT_TRUE(net.connected());
  net.validate();
}

TEST(StructuredTest, ExactHostCounts) {
  for (const TopologyKind kind :
       {TopologyKind::kFatTree, TopologyKind::kCampus, TopologyKind::kIsp}) {
    for (const int hosts : {7, 30, 120}) {
      const Network net = make_structured(kind, hosts, 99);
      EXPECT_EQ(net.host_count(), static_cast<std::size_t>(hosts))
          << topology_kind_name(kind) << " @ " << hosts;
      EXPECT_TRUE(net.connected());
    }
  }
}

TEST(StructuredTest, DeterministicAcrossCalls) {
  for (const TopologyKind kind :
       {TopologyKind::kMesh, TopologyKind::kFatTree, TopologyKind::kCampus,
        TopologyKind::kIsp}) {
    const Network a = make_structured(kind, 24, 42);
    const Network b = make_structured(kind, 24, 42);
    // Byte-identical construction implies identical DOT renderings.
    EXPECT_EQ(to_dot(a), to_dot(b)) << topology_kind_name(kind);
  }
}

TEST(StructuredTest, SpecFingerprintIsStable) {
  const auto build = [] {
    model::ProblemSpec spec;
    spec.network = make_structured(TopologyKind::kCampus, 12, 7);
    const model::ServiceId svc = spec.services.add("svc");
    const auto& hosts = spec.network.hosts();
    for (std::size_t i = 0; i + 1 < hosts.size(); ++i)
      spec.flows.add(model::Flow{hosts[i], hosts[i + 1], svc});
    spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                  util::Fixed::from_int(3),
                                  util::Fixed::from_int(50)};
    spec.finalize();
    return spec;
  };
  EXPECT_EQ(model::fingerprint_spec(build()), model::fingerprint_spec(build()));
}

TEST(StructuredTest, HostsAttachInContiguousBlocks) {
  // Host i's uplink switch id never decreases with i: blocks fill one
  // access switch before moving to the next (the locality the scale
  // workloads and the shard partitioner rely on).
  for (const TopologyKind kind :
       {TopologyKind::kFatTree, TopologyKind::kCampus, TopologyKind::kIsp}) {
    const Network net = make_structured(kind, 40, 3);
    NodeId last_switch = kInvalidNode;
    for (const NodeId h : net.hosts()) {
      ASSERT_FALSE(net.neighbors(h).empty());
      const NodeId up = net.neighbors(h).front().peer;
      EXPECT_TRUE(net.is_router(up));
      EXPECT_GE(up, last_switch) << topology_kind_name(kind);
      last_switch = up;
    }
  }
}

TEST(StructuredTest, GraphvizExportRendersAllNodes) {
  const Network net = make_structured(TopologyKind::kFatTree, 16, 1);
  const std::string dot = to_dot(net);
  EXPECT_NE(dot.find("graph"), std::string::npos);
  for (const Node& n : net.nodes())
    EXPECT_NE(dot.find(n.name), std::string::npos) << n.name;
}

}  // namespace
}  // namespace cs::topology
