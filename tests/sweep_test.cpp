// Tests for the parallel sweep engine and its thread pool:
//   * util::ThreadPool — submit-from-worker, exception propagation,
//     shutdown-while-busy drain semantics.
//   * synth::SweepEngine / explore_frontier — parallel runs must be
//     byte-identical to serial runs (fresh synthesizer per point), on the
//     paper example and generated topologies, for both backends.
//
// The MiniPB-named tests double as the ThreadSanitizer regression suite
// (scripts/run_all.sh builds with -DCONFIGSYNTH_SANITIZE=thread and runs
// the filter 'ThreadPool*:*minipb*:SweepEngineMiniPb*'): Z3 is an
// uninstrumented system library, so only the from-scratch backend gives
// TSan full visibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "spec_helpers.h"
#include "synth/frontier.h"
#include "synth/sweep.h"
#include "synth/unsat_analysis.h"
#include "util/thread_pool.h"

namespace cs::synth {
namespace {

using cs::testing::make_example_spec;
using cs::testing::make_random_spec;
using smt::BackendKind;
using util::ThreadPool;

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitFromWorker) {
  // A task enqueues a follow-up task from inside a worker; the pool must
  // accept it without deadlocking, even with a single worker.
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    pool.submit([&pool, &count] {
        ++count;
        pool.submit([&count] { ++count; });
      }).get();
    // The follow-up may still be queued here; the destructor drains it.
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the throwing task and keeps serving.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ShutdownWhileBusyDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i)
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++count;
      });
    // Destructor runs while most tasks are still queued: every submitted
    // task must still execute before the workers join.
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

// ---- SweepEngine determinism ----------------------------------------------

/// Deterministic per-check effort cap. Boundary probes are genuinely
/// exponential (paper Fig. 5a), so uncapped sweeps are intractable; a
/// wall-clock cap would expire nondeterministically under scheduler load
/// and break serial-vs-parallel comparability. The conflict/resource cap
/// expires as a pure function of the formula, keeping capped sweeps
/// byte-identical across worker counts. Units differ per backend (Z3
/// resource units vs MiniPB conflicts).
std::int64_t effort_cap(BackendKind backend) {
  return backend == BackendKind::kZ3 ? 2'000'000 : 20'000;
}

/// Frontier of `spec` at the given worker count, fresh-per-point mode.
std::vector<FrontierPoint> frontier_at(const model::ProblemSpec& spec,
                                       BackendKind backend, int jobs) {
  SynthesisOptions options;
  options.backend = backend;
  options.check_conflict_limit = effort_cap(backend);
  FrontierOptions fopts;
  fopts.usability_floors = {util::Fixed::from_int(0),
                            util::Fixed::from_int(4),
                            util::Fixed::from_int(8)};
  fopts.budgets = {util::Fixed::from_int(20), util::Fixed::from_int(60)};
  // Coarse search grid: fewer (and easier) boundary probes per point.
  fopts.optimize.resolution = util::Fixed::from_raw(500);
  fopts.jobs = jobs;
  return explore_frontier(spec, options, fopts);
}

class BackendSweepTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendSweepTest, ParallelFrontierIdenticalToSerial) {
  const model::ProblemSpec paper = make_example_spec();
  const model::ProblemSpec random_a = make_random_spec(31, 6, 5);
  const model::ProblemSpec random_b = make_random_spec(32, 7, 6);
  for (const model::ProblemSpec* spec : {&paper, &random_a, &random_b}) {
    const auto serial = frontier_at(*spec, GetParam(), 1);
    const auto parallel = frontier_at(*spec, GetParam(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
}

TEST_P(BackendSweepTest, SweepResultKeepsGridOrderAndCounts) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(6)},
      {util::Fixed::from_int(30)});
  request.synthesis.backend = GetParam();
  request.synthesis.check_conflict_limit = effort_cap(GetParam());
  request.jobs = 3;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.jobs, 3);
  // Grid order: floor-major regardless of which worker finished first.
  EXPECT_EQ(result.points[0].point.usability, util::Fixed::from_int(0));
  EXPECT_EQ(result.points[1].point.usability, util::Fixed::from_int(6));
  int probes = 0;
  std::size_t peak = 0;
  for (const SweepPointResult& p : result.points) {
    EXPECT_FALSE(p.skipped);
    EXPECT_GT(p.search.probes, 0);
    EXPECT_GT(p.wall_seconds, 0.0);
    probes += p.search.probes;
    peak = std::max(peak, p.solver_memory_bytes);
  }
  EXPECT_EQ(result.total_probes, probes);
  // Peak memory is the max over workers, never the sum.
  EXPECT_EQ(result.peak_solver_memory_bytes, peak);
  EXPECT_FALSE(result.deadline_expired);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSweepTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

// ---- SweepEngine semantics (MiniPB-backed, TSan-covered) -------------------

TEST(SweepEngineMiniPb, FeasibilityGridMatchesDirectSolve) {
  const model::ProblemSpec spec = make_example_spec();
  const std::vector<model::Sliders> grid = {
      model::Sliders{util::Fixed::from_int(0), util::Fixed::from_int(0),
                     util::Fixed::from_int(0)},
      spec.sliders,
      model::Sliders{util::Fixed::from_int(10), util::Fixed::from_int(10),
                     util::Fixed::from_int(5)},
  };
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 4;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    Synthesizer direct(spec, request.synthesis);
    EXPECT_EQ(result.points[i].status,
              direct.synthesize(grid[i]).status)
        << "point " << i;
  }
  // The overtight triple must be UNSAT, the loose one SAT.
  EXPECT_EQ(result.points[0].status, smt::CheckResult::kSat);
  EXPECT_EQ(result.points[2].status, smt::CheckResult::kUnsat);
}

TEST(SweepEngineMiniPb, CancellationSkipsRemainingPoints) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(5)},
      {util::Fixed::from_int(20), util::Fixed::from_int(40)});
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 2;
  std::atomic<bool> cancel{true};  // raised before the sweep starts
  request.cancel = &cancel;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 4u);  // grid shape preserved
  EXPECT_TRUE(result.deadline_expired);
  for (const SweepPointResult& p : result.points) {
    EXPECT_TRUE(p.skipped);
    EXPECT_EQ(p.status, smt::CheckResult::kUnknown);
    EXPECT_FALSE(p.search.exact);
    EXPECT_FALSE(p.search.feasible);
  }
}

TEST(SweepEngineMiniPb, EmptyGridReturnsImmediately) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request;  // no points
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 4;
  const SweepResult result = SweepEngine(spec).run(request);
  EXPECT_TRUE(result.points.empty());
  EXPECT_EQ(result.total_probes, 0);
  EXPECT_FALSE(result.deadline_expired);
  EXPECT_EQ(result.jobs, 4);
}

TEST(SweepEngineMiniPb, AlreadyExpiredDeadlineSkipsEveryPoint) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(5)},
      {util::Fixed::from_int(20), util::Fixed::from_int(40)});
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 2;
  request.deadline_ms = -1;  // expired before the sweep begins
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 4u);  // grid shape preserved
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_EQ(result.total_probes, 0);
  for (const SweepPointResult& p : result.points) {
    EXPECT_TRUE(p.skipped);
    EXPECT_EQ(p.status, smt::CheckResult::kUnknown);
    EXPECT_FALSE(p.search.exact);
  }
  // Grid order survives the mass skip: floor-major.
  EXPECT_EQ(result.points[0].point.usability, util::Fixed::from_int(0));
  EXPECT_EQ(result.points[3].point.usability, util::Fixed::from_int(5));
}

TEST(SweepEngineMiniPb, WorkerExceptionPropagatesToCaller) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0)},
      {util::Fixed::from_int(20), util::Fixed::from_int(40)});
  request.synthesis.backend = BackendKind::kMiniPb;
  request.optimize.resolution = util::Fixed{};  // invalid: must throw
  request.jobs = 2;
  EXPECT_THROW(SweepEngine(spec).run(request), util::Error);
}

// ---- Warm-started sweeps ---------------------------------------------------

TEST_P(BackendSweepTest, WarmMaxIsolationGridByteIdenticalToCold) {
  // The Fig. 3(a) shape: warm and cold sweeps must render identical
  // cells (feasibility, exactness and the converged bound — exactly what
  // bench_fig3a writes to its CSV) at any worker count. Byte-identity is
  // only guaranteed for *decided* probes (a capped probe's verdict
  // depends on the learnt state warm reuse deliberately changes), so the
  // grid runs on a small generated spec where every boundary probe
  // decides well within the effort cap; the ASSERTs on exactness below
  // keep that precondition honest.
  const model::ProblemSpec spec = make_random_spec(7, 4, 3);
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(4),
       util::Fixed::from_int(8)},
      {util::Fixed::from_int(20), util::Fixed::from_int(60)});
  request.synthesis.backend = GetParam();
  // 10x the usual cap: this test *requires* decided probes, and the spec
  // is small enough that the headroom costs nothing when probes decide.
  request.synthesis.check_conflict_limit = 10 * effort_cap(GetParam());
  request.optimize.resolution = util::Fixed::from_raw(500);
  const SweepEngine engine(spec);
  const SweepResult cold = engine.run(request);
  request.warm_start = true;
  for (const int jobs : {1, 2}) {
    request.jobs = jobs;
    const SweepResult warm = engine.run(request);
    ASSERT_EQ(warm.points.size(), cold.points.size());
    // Every worker's chunk has > 1 point here, so reuse must happen.
    EXPECT_GT(warm.warm_reuses, 0) << "jobs " << jobs;
    EXPECT_EQ(warm.warm_reuses,
              static_cast<int>(warm.points.size()) - jobs);
    for (std::size_t i = 0; i < cold.points.size(); ++i) {
      ASSERT_TRUE(cold.points[i].search.exact) << "cap expired at " << i;
      ASSERT_TRUE(warm.points[i].search.exact) << "cap expired at " << i;
      EXPECT_EQ(warm.points[i].search.feasible,
                cold.points[i].search.feasible)
          << "point " << i;
      EXPECT_EQ(warm.points[i].search.bound, cold.points[i].search.bound)
          << "point " << i;
      if (warm.points[i].warm) {
        EXPECT_EQ(warm.points[i].encode_seconds, 0.0) << "point " << i;
      }
    }
  }
}

TEST_P(BackendSweepTest, WarmFeasibilityGridMatchesColdVerdicts) {
  // The Fig. 5(a) shape: the emitted verdict markers ("(unsat)") must be
  // identical warm and cold; only the wall times may differ.
  const model::ProblemSpec spec = make_example_spec();
  std::vector<model::Sliders> grid;
  for (int iso = 0; iso <= 5; ++iso)
    grid.push_back(model::Sliders{util::Fixed::from_int(iso),
                                  util::Fixed::from_int(3),
                                  util::Fixed::from_int(60)});
  // One overtight triple so the grid crosses into UNSAT territory.
  grid.push_back(model::Sliders{util::Fixed::from_int(10),
                                util::Fixed::from_int(10),
                                util::Fixed::from_int(5)});
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = GetParam();
  // 10x the usual cap: verdict identity needs every probe decided.
  request.synthesis.check_conflict_limit = 10 * effort_cap(GetParam());
  const SweepEngine engine(spec);
  const SweepResult cold = engine.run(request);
  request.warm_start = true;
  request.jobs = 2;
  const SweepResult warm = engine.run(request);
  ASSERT_EQ(warm.points.size(), cold.points.size());
  EXPECT_GT(warm.warm_reuses, 0);
  for (std::size_t i = 0; i < cold.points.size(); ++i) {
    ASSERT_NE(cold.points[i].status, smt::CheckResult::kUnknown)
        << "cap expired at " << i;
    EXPECT_EQ(warm.points[i].status, cold.points[i].status)
        << "point " << i;
  }
  // The warm sweep encodes once per worker chunk, the cold one per point.
  EXPECT_LT(warm.total_encode_seconds, cold.total_encode_seconds);
}

TEST_P(BackendSweepTest, UnsatPointCoreMatchesRelaxationAnalysis) {
  // Regression: the failed-assumption core a sweep point reports must
  // name the same thresholds as Algorithm 1's relaxation analysis — both
  // read the same backend core off the same formula.
  model::ProblemSpec spec = make_example_spec();
  spec.sliders = model::Sliders{util::Fixed::from_int(10),
                                util::Fixed::from_int(10),
                                util::Fixed::from_int(5)};
  SweepRequest request = SweepRequest::feasibility_grid({spec.sliders});
  request.synthesis.backend = GetParam();
  const SweepResult swept = SweepEngine(spec).run(request);
  ASSERT_EQ(swept.points.size(), 1u);
  ASSERT_EQ(swept.points[0].status, smt::CheckResult::kUnsat);
  ASSERT_FALSE(swept.points[0].conflicting.empty());

  Synthesizer synth(spec, request.synthesis);
  const UnsatReport report = analyze_unsat(synth, spec);
  ASSERT_TRUE(report.was_unsat);
  auto sweep_core = swept.points[0].conflicting;
  auto analysis_core = report.core;
  std::sort(sweep_core.begin(), sweep_core.end());
  std::sort(analysis_core.begin(), analysis_core.end());
  EXPECT_EQ(sweep_core, analysis_core);
}

TEST_P(BackendSweepTest, WarmResolveReportsUnsatCore) {
  // A warm re-solve that lands on an UNSAT triple must still produce a
  // threshold core from its failed assumptions — explanations don't
  // degrade when the encode is skipped.
  const model::ProblemSpec spec = make_example_spec();
  SynthesisOptions options;
  options.backend = GetParam();
  Synthesizer synth(spec, options);
  ASSERT_EQ(synth.synthesize(spec.sliders).status, smt::CheckResult::kSat);
  const SynthesisResult unsat =
      synth.resolve(model::Sliders{util::Fixed::from_int(10),
                                   util::Fixed::from_int(10),
                                   util::Fixed::from_int(5)});
  EXPECT_EQ(unsat.status, smt::CheckResult::kUnsat);
  EXPECT_FALSE(unsat.conflicting.empty());
  EXPECT_EQ(unsat.encode_seconds, 0.0);
  EXPECT_EQ(synth.resolves(), 1);
}

TEST(SweepEngineMiniPb, WarmStartWithHardModeFallsBackToCold) {
  // kHard thresholds cannot be retracted, so a warm-start request in that
  // mode must silently use the cold fresh-per-point path — same verdicts,
  // zero warm re-solves.
  const model::ProblemSpec spec = make_example_spec();
  const std::vector<model::Sliders> grid = {
      spec.sliders,
      model::Sliders{util::Fixed::from_int(10), util::Fixed::from_int(10),
                     util::Fixed::from_int(5)},
  };
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = BackendKind::kMiniPb;
  request.synthesis.threshold_mode = ThresholdMode::kHard;
  request.warm_start = true;
  request.jobs = 2;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.warm_reuses, 0);
  for (const SweepPointResult& p : result.points) EXPECT_FALSE(p.warm);
  EXPECT_EQ(result.points[0].status, smt::CheckResult::kSat);
  EXPECT_EQ(result.points[1].status, smt::CheckResult::kUnsat);
  // kHard asserts thresholds unguarded, so UNSAT carries no threshold
  // core — the price of the marginally smaller formula.
  EXPECT_TRUE(result.points[1].conflicting.empty());
}

TEST(SweepEngineMiniPb, WarmSweepAccumulatesSolverStats) {
  const model::ProblemSpec spec = make_example_spec();
  std::vector<model::Sliders> grid;
  for (int iso = 0; iso <= 3; ++iso)
    grid.push_back(model::Sliders{util::Fixed::from_int(iso),
                                  util::Fixed::from_int(3),
                                  util::Fixed::from_int(60)});
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = BackendKind::kMiniPb;
  request.warm_start = true;
  const SweepResult result = SweepEngine(spec).run(request);
  // Per-point deltas sum to the total, and solving did real work.
  smt::SolverStats sum;
  for (const SweepPointResult& p : result.points) sum += p.solver;
  EXPECT_EQ(sum, result.total_solver);
  EXPECT_GT(result.total_solver.propagations, 0);
  EXPECT_EQ(result.warm_reuses, static_cast<int>(grid.size()) - 1);
}

TEST(SweepEngineMiniPb, WarmSweepSurvivesConflictCappedPoint) {
  // Regression: a warm worker whose solver exhausts its conflict budget
  // mid-flight (possibly mid reduce-epoch, with learnt clauses already
  // marked for deletion) must stay usable — the *same* synthesizer then
  // re-solves the remaining grid points and still decides them correctly.
  // Sliders (6,5,40) are calibrated to blow a 3000-conflict cap on the
  // example spec; (3,3,60) decides SAT in ~100 conflicts and (10,10,5)
  // is instantly UNSAT, so the cap only bites the hard point.
  const model::ProblemSpec spec = make_example_spec();
  const std::vector<model::Sliders> grid = {
      model::Sliders{util::Fixed::from_int(6), util::Fixed::from_int(5),
                     util::Fixed::from_int(40)},
      model::Sliders{util::Fixed::from_int(3), util::Fixed::from_int(3),
                     util::Fixed::from_int(60)},
      model::Sliders{util::Fixed::from_int(10), util::Fixed::from_int(10),
                     util::Fixed::from_int(5)},
  };
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = BackendKind::kMiniPb;
  request.synthesis.check_conflict_limit = 3000;
  request.warm_start = true;
  request.jobs = 1;  // single worker chunk: the capped solver is reused
  const SweepResult warm = SweepEngine(spec).run(request);
  ASSERT_EQ(warm.points.size(), 3u);
  // Calibration self-check: the hard point really hit the cap (it is not
  // skipped — the budget expired inside the solver, not in the engine).
  ASSERT_EQ(warm.points[0].status, smt::CheckResult::kUnknown);
  EXPECT_FALSE(warm.points[0].skipped);
  EXPECT_GE(warm.points[0].solver.conflicts, 3000);
  // The capped synthesizer kept serving: both remaining points are warm
  // re-solves and carry the verdicts a fresh solver produces.
  EXPECT_EQ(warm.warm_reuses, 2);
  EXPECT_TRUE(warm.points[1].warm);
  EXPECT_TRUE(warm.points[2].warm);
  EXPECT_EQ(warm.points[1].status, smt::CheckResult::kSat);
  EXPECT_EQ(warm.points[2].status, smt::CheckResult::kUnsat);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    Synthesizer direct(spec, request.synthesis);
    EXPECT_EQ(warm.points[i].status, direct.synthesize(grid[i]).status)
        << "point " << i;
  }
}

TEST(SweepEngineMiniPb, IncrementalModeMatchesFreshOnVerdictAndBound) {
  // The incremental (reuse_synthesizer) path accumulates guards but must
  // agree with the fresh-per-point path on feasibility and the maximum
  // isolation bound; only the witnessing designs may differ.
  const model::ProblemSpec spec = make_example_spec();
  SynthesisOptions options;
  options.backend = BackendKind::kMiniPb;
  options.check_conflict_limit = effort_cap(BackendKind::kMiniPb);
  FrontierOptions fresh;
  fresh.usability_floors = {util::Fixed::from_int(0),
                            util::Fixed::from_int(6)};
  fresh.budgets = {util::Fixed::from_int(40)};
  fresh.optimize.resolution = util::Fixed::from_raw(500);
  FrontierOptions incremental = fresh;
  incremental.reuse_synthesizer = true;
  const auto a = explore_frontier(spec, options, fresh);
  const auto b = explore_frontier(spec, options, incremental);
  ASSERT_EQ(a.size(), b.size());
  const std::int64_t res = fresh.optimize.resolution.raw();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feasible, b[i].feasible) << "point " << i;
    // The accumulated guards change the solver's learnt state, so a capped
    // probe may expire in one mode and not the other; the grid-aligned
    // maximum is only comparable when both searches completed every probe.
    if (a[i].exact && b[i].exact) {
      EXPECT_EQ(a[i].max_isolation.raw() / res,
                b[i].max_isolation.raw() / res)
          << "point " << i;
    }
  }
}

}  // namespace
}  // namespace cs::synth
