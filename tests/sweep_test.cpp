// Tests for the parallel sweep engine and its thread pool:
//   * util::ThreadPool — submit-from-worker, exception propagation,
//     shutdown-while-busy drain semantics.
//   * synth::SweepEngine / explore_frontier — parallel runs must be
//     byte-identical to serial runs (fresh synthesizer per point), on the
//     paper example and generated topologies, for both backends.
//
// The MiniPB-named tests double as the ThreadSanitizer regression suite
// (scripts/run_all.sh builds with -DCONFIGSYNTH_SANITIZE=thread and runs
// the filter 'ThreadPool*:*minipb*:SweepEngineMiniPb*'): Z3 is an
// uninstrumented system library, so only the from-scratch backend gives
// TSan full visibility.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "spec_helpers.h"
#include "synth/frontier.h"
#include "synth/sweep.h"
#include "util/thread_pool.h"

namespace cs::synth {
namespace {

using cs::testing::make_example_spec;
using cs::testing::make_random_spec;
using smt::BackendKind;
using util::ThreadPool;

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitFromWorker) {
  // A task enqueues a follow-up task from inside a worker; the pool must
  // accept it without deadlocking, even with a single worker.
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    pool.submit([&pool, &count] {
        ++count;
        pool.submit([&count] { ++count; });
      }).get();
    // The follow-up may still be queued here; the destructor drains it.
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the throwing task and keeps serving.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ShutdownWhileBusyDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i)
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++count;
      });
    // Destructor runs while most tasks are still queued: every submitted
    // task must still execute before the workers join.
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

// ---- SweepEngine determinism ----------------------------------------------

/// Deterministic per-check effort cap. Boundary probes are genuinely
/// exponential (paper Fig. 5a), so uncapped sweeps are intractable; a
/// wall-clock cap would expire nondeterministically under scheduler load
/// and break serial-vs-parallel comparability. The conflict/resource cap
/// expires as a pure function of the formula, keeping capped sweeps
/// byte-identical across worker counts. Units differ per backend (Z3
/// resource units vs MiniPB conflicts).
std::int64_t effort_cap(BackendKind backend) {
  return backend == BackendKind::kZ3 ? 2'000'000 : 20'000;
}

/// Frontier of `spec` at the given worker count, fresh-per-point mode.
std::vector<FrontierPoint> frontier_at(const model::ProblemSpec& spec,
                                       BackendKind backend, int jobs) {
  SynthesisOptions options;
  options.backend = backend;
  options.check_conflict_limit = effort_cap(backend);
  FrontierOptions fopts;
  fopts.usability_floors = {util::Fixed::from_int(0),
                            util::Fixed::from_int(4),
                            util::Fixed::from_int(8)};
  fopts.budgets = {util::Fixed::from_int(20), util::Fixed::from_int(60)};
  // Coarse search grid: fewer (and easier) boundary probes per point.
  fopts.optimize.resolution = util::Fixed::from_raw(500);
  fopts.jobs = jobs;
  return explore_frontier(spec, options, fopts);
}

class BackendSweepTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendSweepTest, ParallelFrontierIdenticalToSerial) {
  const model::ProblemSpec paper = make_example_spec();
  const model::ProblemSpec random_a = make_random_spec(31, 6, 5);
  const model::ProblemSpec random_b = make_random_spec(32, 7, 6);
  for (const model::ProblemSpec* spec : {&paper, &random_a, &random_b}) {
    const auto serial = frontier_at(*spec, GetParam(), 1);
    const auto parallel = frontier_at(*spec, GetParam(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
}

TEST_P(BackendSweepTest, SweepResultKeepsGridOrderAndCounts) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(6)},
      {util::Fixed::from_int(30)});
  request.synthesis.backend = GetParam();
  request.synthesis.check_conflict_limit = effort_cap(GetParam());
  request.jobs = 3;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.jobs, 3);
  // Grid order: floor-major regardless of which worker finished first.
  EXPECT_EQ(result.points[0].point.usability, util::Fixed::from_int(0));
  EXPECT_EQ(result.points[1].point.usability, util::Fixed::from_int(6));
  int probes = 0;
  std::size_t peak = 0;
  for (const SweepPointResult& p : result.points) {
    EXPECT_FALSE(p.skipped);
    EXPECT_GT(p.search.probes, 0);
    EXPECT_GT(p.wall_seconds, 0.0);
    probes += p.search.probes;
    peak = std::max(peak, p.solver_memory_bytes);
  }
  EXPECT_EQ(result.total_probes, probes);
  // Peak memory is the max over workers, never the sum.
  EXPECT_EQ(result.peak_solver_memory_bytes, peak);
  EXPECT_FALSE(result.deadline_expired);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSweepTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

// ---- SweepEngine semantics (MiniPB-backed, TSan-covered) -------------------

TEST(SweepEngineMiniPb, FeasibilityGridMatchesDirectSolve) {
  const model::ProblemSpec spec = make_example_spec();
  const std::vector<model::Sliders> grid = {
      model::Sliders{util::Fixed::from_int(0), util::Fixed::from_int(0),
                     util::Fixed::from_int(0)},
      spec.sliders,
      model::Sliders{util::Fixed::from_int(10), util::Fixed::from_int(10),
                     util::Fixed::from_int(5)},
  };
  SweepRequest request = SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 4;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    Synthesizer direct(spec, request.synthesis);
    EXPECT_EQ(result.points[i].status,
              direct.synthesize(grid[i]).status)
        << "point " << i;
  }
  // The overtight triple must be UNSAT, the loose one SAT.
  EXPECT_EQ(result.points[0].status, smt::CheckResult::kSat);
  EXPECT_EQ(result.points[2].status, smt::CheckResult::kUnsat);
}

TEST(SweepEngineMiniPb, CancellationSkipsRemainingPoints) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(5)},
      {util::Fixed::from_int(20), util::Fixed::from_int(40)});
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 2;
  std::atomic<bool> cancel{true};  // raised before the sweep starts
  request.cancel = &cancel;
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 4u);  // grid shape preserved
  EXPECT_TRUE(result.deadline_expired);
  for (const SweepPointResult& p : result.points) {
    EXPECT_TRUE(p.skipped);
    EXPECT_EQ(p.status, smt::CheckResult::kUnknown);
    EXPECT_FALSE(p.search.exact);
    EXPECT_FALSE(p.search.feasible);
  }
}

TEST(SweepEngineMiniPb, EmptyGridReturnsImmediately) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request;  // no points
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 4;
  const SweepResult result = SweepEngine(spec).run(request);
  EXPECT_TRUE(result.points.empty());
  EXPECT_EQ(result.total_probes, 0);
  EXPECT_FALSE(result.deadline_expired);
  EXPECT_EQ(result.jobs, 4);
}

TEST(SweepEngineMiniPb, AlreadyExpiredDeadlineSkipsEveryPoint) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0), util::Fixed::from_int(5)},
      {util::Fixed::from_int(20), util::Fixed::from_int(40)});
  request.synthesis.backend = BackendKind::kMiniPb;
  request.jobs = 2;
  request.deadline_ms = -1;  // expired before the sweep begins
  const SweepResult result = SweepEngine(spec).run(request);
  ASSERT_EQ(result.points.size(), 4u);  // grid shape preserved
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_EQ(result.total_probes, 0);
  for (const SweepPointResult& p : result.points) {
    EXPECT_TRUE(p.skipped);
    EXPECT_EQ(p.status, smt::CheckResult::kUnknown);
    EXPECT_FALSE(p.search.exact);
  }
  // Grid order survives the mass skip: floor-major.
  EXPECT_EQ(result.points[0].point.usability, util::Fixed::from_int(0));
  EXPECT_EQ(result.points[3].point.usability, util::Fixed::from_int(5));
}

TEST(SweepEngineMiniPb, WorkerExceptionPropagatesToCaller) {
  const model::ProblemSpec spec = make_example_spec();
  SweepRequest request = SweepRequest::max_isolation_grid(
      {util::Fixed::from_int(0)},
      {util::Fixed::from_int(20), util::Fixed::from_int(40)});
  request.synthesis.backend = BackendKind::kMiniPb;
  request.optimize.resolution = util::Fixed{};  // invalid: must throw
  request.jobs = 2;
  EXPECT_THROW(SweepEngine(spec).run(request), util::Error);
}

TEST(SweepEngineMiniPb, IncrementalModeMatchesFreshOnVerdictAndBound) {
  // The incremental (reuse_synthesizer) path accumulates guards but must
  // agree with the fresh-per-point path on feasibility and the maximum
  // isolation bound; only the witnessing designs may differ.
  const model::ProblemSpec spec = make_example_spec();
  SynthesisOptions options;
  options.backend = BackendKind::kMiniPb;
  options.check_conflict_limit = effort_cap(BackendKind::kMiniPb);
  FrontierOptions fresh;
  fresh.usability_floors = {util::Fixed::from_int(0),
                            util::Fixed::from_int(6)};
  fresh.budgets = {util::Fixed::from_int(40)};
  fresh.optimize.resolution = util::Fixed::from_raw(500);
  FrontierOptions incremental = fresh;
  incremental.reuse_synthesizer = true;
  const auto a = explore_frontier(spec, options, fresh);
  const auto b = explore_frontier(spec, options, incremental);
  ASSERT_EQ(a.size(), b.size());
  const std::int64_t res = fresh.optimize.resolution.raw();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feasible, b[i].feasible) << "point " << i;
    // The accumulated guards change the solver's learnt state, so a capped
    // probe may expire in one mode and not the other; the grid-aligned
    // maximum is only comparable when both searches completed every probe.
    if (a[i].exact && b[i].exact) {
      EXPECT_EQ(a[i].max_isolation.raw() / res,
                b[i].max_isolation.raw() / res)
          << "point " << i;
    }
  }
}

}  // namespace
}  // namespace cs::synth
