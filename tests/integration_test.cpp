// End-to-end integration scenarios exercising the full public API surface
// the way the examples do: spec building, synthesis, optimization, unsat
// explanation, serialization, reporting — on one realistic multi-service
// problem per test.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/checker.h"
#include "analysis/report.h"
#include "model/input_file.h"
#include "spec_helpers.h"
#include "synth/assistance.h"
#include "synth/baseline.h"
#include "synth/optimizer.h"
#include "synth/synthesizer.h"
#include "synth/unsat_analysis.h"
#include "topology/graphviz.h"

namespace cs {
namespace {

using synth::SynthesisOptions;
using synth::SynthesisResult;
using util::Fixed;

/// A miniature campus: 8 host groups, 6 routers, three services with
/// demand ranks, UIC policies, one RMC, host patterns enabled.
model::ProblemSpec make_campus() {
  util::Rng rng(404);
  model::ProblemSpec spec;
  topology::GeneratorConfig cfg;
  cfg.hosts = 8;
  cfg.routers = 6;
  cfg.include_internet = true;
  spec.network = topology::generate_topology(cfg, rng);

  const model::ServiceId web = spec.services.add("WEB", 6, 80);
  const model::ServiceId ssh = spec.services.add("SSH", 6, 22);
  const model::ServiceId db = spec.services.add("DB", 6, 3306);

  const auto& hosts = spec.network.hosts();
  const topology::NodeId server = hosts[7];
  for (const topology::NodeId h : hosts) {
    if (h == server) continue;
    spec.flows.add(model::Flow{h, server, web});
    if (!spec.network.node(h).is_internet) {
      spec.flows.add(model::Flow{h, server, db});
      if (h != hosts[0]) spec.flows.add(model::Flow{hosts[0], h, ssh});
    }
  }
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows.flow(static_cast<model::FlowId>(f)).service == web)
      spec.connectivity.add(static_cast<model::FlowId>(f));
  }

  std::vector<model::OrderConstraint> demand{
      {static_cast<std::size_t>(web), static_cast<std::size_t>(ssh),
       model::OrderRelation::kGreater},
      {static_cast<std::size_t>(ssh), static_cast<std::size_t>(db),
       model::OrderRelation::kGreaterEqual}};
  spec.ranks = model::FlowRanks::from_service_order(
      spec.flows, spec.services.size(), demand);

  spec.user_constraints.push_back(model::ForbidPatternForService{
      ssh, model::IsolationPattern::kTrustedComm});
  spec.host_requirements.push_back(
      model::HostIsolationRequirement{server, Fixed::from_int(2)});
  spec.host_patterns = model::HostPatternConfig::defaults();

  spec.sliders = model::Sliders{Fixed::from_int(2), Fixed::from_int(4),
                                Fixed::from_int(80)};
  spec.finalize();
  spec.validate();
  return spec;
}

TEST(Integration, CampusSynthesisEndToEnd) {
  const model::ProblemSpec spec = make_campus();
  synth::Synthesizer synth(spec, SynthesisOptions{});
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, smt::CheckResult::kSat);

  const analysis::CheckReport report =
      analysis::check_design(spec, *result.design);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Reports render without throwing and mention the verdict.
  const std::string rendered = analysis::render_report(spec, result);
  EXPECT_NE(rendered.find("SAT"), std::string::npos);
  EXPECT_FALSE(result.design->to_string(spec).empty());

  // DOT export covers placements.
  const std::string dot =
      topology::to_dot(spec.network, result.design->link_labels());
  EXPECT_NE(dot.find("graph network"), std::string::npos);
}

TEST(Integration, CampusPlacementMinimizationKeepsThresholds) {
  const model::ProblemSpec spec = make_campus();
  synth::Synthesizer synth(spec, SynthesisOptions{});
  SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, smt::CheckResult::kSat);
  synth::SecurityDesign design = *result.design;
  const std::size_t removed = analysis::minimize_placements(spec, design);
  (void)removed;
  const analysis::CheckReport report = analysis::check_design(spec, design,
                                                              false);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Minimization never raises cost.
  EXPECT_LE(report.metrics.cost,
            synth::compute_metrics(spec, *result.design).cost);
}

TEST(Integration, CampusOptimizerAndBaselineOrdering) {
  const model::ProblemSpec spec = make_campus();
  SynthesisOptions opts;
  opts.check_time_limit_ms = 8000;
  synth::Synthesizer synth(spec, opts);
  const synth::BoundSearchResult best = synth::maximize_isolation(
      synth, spec, spec.sliders.usability, spec.sliders.budget);
  ASSERT_TRUE(best.feasible);
  const synth::BaselineResult greedy = synth::greedy_baseline(spec);
  if (best.exact) {
    EXPECT_LE(greedy.metrics.isolation.raw(),
              best.metrics.isolation.raw() + 50);
  }
  // Both produce structurally valid designs.
  EXPECT_TRUE(analysis::check_design(spec, *best.design, false).ok());
  EXPECT_TRUE(analysis::check_design(spec, greedy.design, false).ok());
}

TEST(Integration, CampusUnsatAnalysisExplainsOvertightSliders) {
  model::ProblemSpec spec = make_campus();
  spec.sliders = model::Sliders{Fixed::from_int(9), Fixed::from_int(9),
                                Fixed::from_int(3)};
  SynthesisOptions opts;
  opts.check_time_limit_ms = 8000;
  synth::Synthesizer synth(spec, opts);
  const synth::UnsatReport report = synth::analyze_unsat(synth, spec);
  ASSERT_TRUE(report.was_unsat);
  EXPECT_FALSE(report.core.empty());
  EXPECT_NE(report.to_string().find("relax"), std::string::npos);
}

TEST(Integration, AssistanceMatchesMetricsOnCampus) {
  const model::ProblemSpec spec = make_campus();
  const auto rows = synth::slider_assistance(spec);
  ASSERT_GE(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    // The ladder of configurations trades isolation against usability:
    // rows are not dominated in both dimensions simultaneously.
    EXPECT_FALSE(rows[i].isolation > rows[0].isolation &&
                 rows[i].usability > rows[0].usability);
  }
}

TEST(Integration, SingleServiceRoundTripSynthesesAgree) {
  // Serialize the paper example, parse it back, and check both specs
  // synthesize to the same verdict with identical metrics bounds.
  const model::ProblemSpec original = cs::testing::make_example_spec();
  const std::string text = model::serialize_input(original);
  std::istringstream in(text);
  const model::ProblemSpec parsed = model::parse_input(in);

  synth::Synthesizer s1(original, SynthesisOptions{});
  synth::Synthesizer s2(parsed, SynthesisOptions{});
  const SynthesisResult r1 = s1.synthesize();
  const SynthesisResult r2 = s2.synthesize();
  ASSERT_EQ(r1.status, r2.status);
  if (r1.status == smt::CheckResult::kSat) {
    EXPECT_TRUE(analysis::check_design(parsed, *r2.design).ok());
  }
}

}  // namespace
}  // namespace cs
