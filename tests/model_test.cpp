// Unit tests for the security domain model.
#include <gtest/gtest.h>

#include <sstream>

#include "model/device.h"
#include "model/flow.h"
#include "model/input_file.h"
#include "model/isolation.h"
#include "model/order.h"
#include "model/policy.h"
#include "model/requirements.h"
#include "model/service.h"
#include "model/spec.h"
#include "topology/generator.h"
#include "util/error.h"

namespace cs::model {
namespace {

using util::Fixed;

TEST(Order, PaperTableOneScores) {
  // The paper's partial order must complete to deny=4, trusted=2,
  // inspect=1, proxy=1, proxy+trusted=3 (Table I).
  const std::vector<int> scores =
      complete_order(kPatternCount, paper_pattern_order());
  EXPECT_EQ(scores[0], 4);  // access deny
  EXPECT_EQ(scores[1], 2);  // trusted communication
  EXPECT_EQ(scores[2], 1);  // payload inspection
  EXPECT_EQ(scores[3], 1);  // proxy
  EXPECT_EQ(scores[4], 3);  // proxy + trusted
}

TEST(Order, EqualityMergesItems) {
  const std::vector<int> scores = complete_order(
      3, {{0, 1, OrderRelation::kEqual}, {0, 2, OrderRelation::kGreater}});
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[2]);
}

TEST(Order, WeakCycleBecomesEquality) {
  const std::vector<int> scores =
      complete_order(2, {{0, 1, OrderRelation::kGreaterEqual},
                         {1, 0, OrderRelation::kGreaterEqual}});
  EXPECT_EQ(scores[0], scores[1]);
}

TEST(Order, StrictCycleThrows) {
  EXPECT_THROW(complete_order(2, {{0, 1, OrderRelation::kGreater},
                                  {1, 0, OrderRelation::kGreater}}),
               util::SpecError);
  EXPECT_THROW(complete_order(2, {{0, 1, OrderRelation::kGreater},
                                  {1, 0, OrderRelation::kGreaterEqual}}),
               util::SpecError);
  EXPECT_THROW(complete_order(1, {{0, 0, OrderRelation::kGreater}}),
               util::SpecError);
}

TEST(Order, UnknownItemThrows) {
  EXPECT_THROW(complete_order(2, {{0, 5, OrderRelation::kGreater}}),
               util::SpecError);
}

TEST(Order, NoConstraintsAllEqual) {
  const std::vector<int> scores = complete_order(4, {});
  for (const int s : scores) EXPECT_EQ(s, 1);
}

TEST(Order, NormalizeSpansRange) {
  const std::vector<util::Fixed> out = normalize_scores(
      {1, 2, 3, 4}, Fixed::from_int(0), Fixed::from_int(10));
  EXPECT_EQ(out[0], Fixed::from_int(0));
  EXPECT_EQ(out[3], Fixed::from_int(10));
  EXPECT_LT(out[1], out[2]);
}

TEST(Order, NormalizeUniformMapsToTop) {
  const std::vector<util::Fixed> out =
      normalize_scores({2, 2}, Fixed::from_int(0), Fixed::from_int(10));
  EXPECT_EQ(out[0], Fixed::from_int(10));
  EXPECT_EQ(out[1], Fixed::from_int(10));
}

TEST(Isolation, DefaultsMatchPaperRatios) {
  const IsolationConfig cfg = IsolationConfig::defaults();
  // Table I ratios 4:2:1:1:3 normalized to (0, 10].
  EXPECT_EQ(cfg.score(IsolationPattern::kAccessDeny), Fixed::from_int(10));
  EXPECT_EQ(cfg.score(IsolationPattern::kTrustedComm), Fixed::from_int(5));
  EXPECT_EQ(cfg.score(IsolationPattern::kPayloadInspection),
            Fixed::from_double(2.5));
  EXPECT_EQ(cfg.score(IsolationPattern::kProxy), Fixed::from_double(2.5));
  EXPECT_EQ(cfg.score(IsolationPattern::kProxyTrusted),
            Fixed::from_double(7.5));
  EXPECT_EQ(cfg.max_enabled_score(), Fixed::from_int(10));
}

TEST(Isolation, AccessDenyKillsUsability) {
  const IsolationConfig cfg = IsolationConfig::defaults();
  EXPECT_EQ(cfg.usability(IsolationPattern::kAccessDeny, 0), Fixed{});
  EXPECT_EQ(cfg.usability(IsolationPattern::kTrustedComm, 0),
            Fixed::from_int(1));
}

TEST(Isolation, PerServiceUsabilityOverride) {
  IsolationConfig cfg = IsolationConfig::defaults();
  cfg.set_usability_override(IsolationPattern::kTrustedComm, 2,
                             Fixed::from_double(0.6));
  EXPECT_EQ(cfg.usability(IsolationPattern::kTrustedComm, 2),
            Fixed::from_double(0.6));
  EXPECT_EQ(cfg.usability(IsolationPattern::kTrustedComm, 1),
            Fixed::from_int(1));
}

TEST(Isolation, DeviceMapping) {
  EXPECT_EQ(devices_for(IsolationPattern::kAccessDeny),
            std::vector<DeviceType>{DeviceType::kFirewall});
  const auto& composite = devices_for(IsolationPattern::kProxyTrusted);
  EXPECT_EQ(composite.size(), 2u);
  EXPECT_TRUE(denies_flow(IsolationPattern::kAccessDeny));
  EXPECT_FALSE(denies_flow(IsolationPattern::kProxy));
}

TEST(Isolation, PaperIds) {
  EXPECT_EQ(paper_id(IsolationPattern::kAccessDeny), 1);
  EXPECT_EQ(paper_id(IsolationPattern::kProxyTrusted), 5);
  EXPECT_EQ(paper_id(DeviceType::kFirewall), 1);
  EXPECT_EQ(paper_id(DeviceType::kProxy), 4);
}

TEST(Isolation, TunnelMarginValidation) {
  IsolationConfig cfg = IsolationConfig::defaults();
  cfg.set_tunnel_margin(3);
  EXPECT_EQ(cfg.tunnel_margin(), 3);
  EXPECT_THROW(cfg.set_tunnel_margin(0), util::SpecError);
}

TEST(Device, CostDefaults) {
  const DeviceCosts costs = DeviceCosts::defaults();
  EXPECT_EQ(costs.cost(DeviceType::kFirewall), Fixed::from_int(5));
  EXPECT_EQ(costs.cost(DeviceType::kIpsec), Fixed::from_int(10));
  DeviceCosts c2;
  EXPECT_THROW(c2.set(DeviceType::kIds, Fixed::from_int(-1)),
               util::SpecError);
}

TEST(Service, CatalogLookup) {
  ServiceCatalog cat;
  const ServiceId web = cat.add("WEB", 6, 80);
  EXPECT_EQ(cat.find("WEB"), std::optional(web));
  EXPECT_FALSE(cat.find("SSH").has_value());
  EXPECT_THROW(cat.add("WEB"), util::SpecError);
  EXPECT_EQ(cat.service(web).port, 80);
}

TEST(FlowSet, AddFindDirected) {
  FlowSet flows;
  const FlowId f = flows.add(Flow{0, 1, 0});
  flows.add(Flow{0, 1, 1});
  flows.add(Flow{1, 0, 0});
  EXPECT_EQ(flows.find(Flow{0, 1, 0}), std::optional(f));
  EXPECT_EQ(flows.directed(0, 1).size(), 2u);
  EXPECT_EQ(flows.directed(1, 0).size(), 1u);
  EXPECT_TRUE(flows.directed(1, 2).empty());
  EXPECT_EQ(flows.directed_pairs().size(), 2u);
  EXPECT_THROW(flows.add(Flow{0, 1, 0}), util::SpecError);  // duplicate
  EXPECT_THROW(flows.add(Flow{2, 2, 0}), util::SpecError);  // self
}

TEST(Requirements, UniformRanks) {
  FlowSet flows;
  flows.add(Flow{0, 1, 0});
  flows.add(Flow{1, 0, 0});
  const FlowRanks ranks = FlowRanks::uniform(flows);
  EXPECT_EQ(ranks.total(), Fixed::from_int(2));
}

TEST(Requirements, ServiceOrderRanks) {
  FlowSet flows;
  flows.add(Flow{0, 1, 0});
  flows.add(Flow{0, 1, 1});
  // service 0 > service 1.
  const FlowRanks ranks = FlowRanks::from_service_order(
      flows, 2, {{0, 1, OrderRelation::kGreater}});
  EXPECT_GT(ranks.rank(0), ranks.rank(1));
  EXPECT_EQ(ranks.rank(0), Fixed::from_int(1));
}

TEST(Requirements, SetValidation) {
  FlowSet flows;
  flows.add(Flow{0, 1, 0});
  FlowRanks ranks = FlowRanks::uniform(flows);
  ranks.set(0, Fixed::from_double(0.5));
  EXPECT_EQ(ranks.rank(0), Fixed::from_double(0.5));
  EXPECT_THROW(ranks.set(0, Fixed{}), util::SpecError);
  EXPECT_THROW(ranks.set(0, Fixed::from_int(2)), util::SpecError);
}

TEST(Requirements, ConnectivitySet) {
  ConnectivityRequirements cr;
  cr.add(3);
  cr.add(1);
  cr.add(3);
  EXPECT_TRUE(cr.required(3));
  EXPECT_FALSE(cr.required(2));
  EXPECT_EQ(cr.sorted(), (std::vector<FlowId>{1, 3}));
}

TEST(Policy, Describe) {
  topology::Network net;
  net.add_host("a");
  net.add_host("b");
  ServiceCatalog cat;
  cat.add("WEB");
  const UserConstraint uc = ForbidPatternForService{
      0, IsolationPattern::kTrustedComm};
  EXPECT_NE(describe(uc, cat, net).find("WEB"), std::string::npos);
  const UserConstraint dn = DenyOneOf{Flow{0, 1, 0}, Flow{1, 0, 0}};
  EXPECT_NE(describe(dn, cat, net).find("a->b"), std::string::npos);
}

TEST(Spec, WorkloadPopulatesWithinBounds) {
  util::Rng rng(31);
  ProblemSpec spec;
  topology::GeneratorConfig cfg;
  cfg.hosts = 6;
  cfg.routers = 4;
  spec.network = topology::generate_topology(cfg, rng);
  WorkloadConfig wl;
  wl.service_count = 3;
  wl.cr_fraction = 0.2;
  populate_random_workload(spec, wl, rng);
  EXPECT_GE(spec.flows.size(), 30u);   // 6*5 pairs, >=1 each
  EXPECT_LE(spec.flows.size(), 90u);   // <=3 each
  const auto expected_cr = static_cast<std::size_t>(
      0.2 * static_cast<double>(spec.flows.size()) + 0.5);
  EXPECT_EQ(spec.connectivity.size(), expected_cr);
  EXPECT_NO_THROW(spec.validate());
}

TEST(Spec, ValidateCatchesDeniedRequirement) {
  util::Rng rng(33);
  ProblemSpec spec;
  topology::GeneratorConfig cfg;
  cfg.hosts = 3;
  cfg.routers = 2;
  spec.network = topology::generate_topology(cfg, rng);
  WorkloadConfig wl;
  wl.service_count = 1;
  wl.max_services_per_pair = 1;
  wl.cr_fraction = 0.5;
  populate_random_workload(spec, wl, rng);
  const FlowId required = spec.connectivity.sorted().front();
  spec.user_constraints.push_back(RequirePatternForFlow{
      spec.flows.flow(required), IsolationPattern::kAccessDeny});
  EXPECT_THROW(spec.validate(), util::SpecError);
}

TEST(Spec, StandardServices) {
  ServiceCatalog cat;
  add_standard_services(cat);
  EXPECT_EQ(cat.size(), 6u);
  EXPECT_TRUE(cat.find("WEB").has_value());
  EXPECT_TRUE(cat.find("DB").has_value());
}

TEST(InputFile, RoundTrip) {
  // Build a small single-service spec, serialize, parse back, compare.
  ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const ServiceId svc = spec.services.add("svc");
  for (const topology::NodeId i : spec.network.hosts())
    for (const topology::NodeId j : spec.network.hosts())
      if (i != j) spec.flows.add(Flow{i, j, svc});
  spec.connectivity.add(*spec.flows.find(
      Flow{spec.network.hosts()[0], spec.network.hosts()[2], svc}));
  spec.sliders = Sliders{Fixed::from_int(5), Fixed::from_int(5),
                         Fixed::from_int(20)};
  spec.finalize();

  const std::string text = serialize_input(spec);
  std::istringstream in(text);
  const ProblemSpec parsed = parse_input(in);

  EXPECT_EQ(parsed.network.host_count(), spec.network.host_count());
  EXPECT_EQ(parsed.network.router_count(), spec.network.router_count());
  EXPECT_EQ(parsed.network.link_count(), spec.network.link_count());
  EXPECT_EQ(parsed.flows.size(), spec.flows.size());
  EXPECT_EQ(parsed.connectivity.size(), spec.connectivity.size());
  EXPECT_EQ(parsed.sliders.isolation, spec.sliders.isolation);
  EXPECT_EQ(parsed.sliders.budget, spec.sliders.budget);
  // Isolation scores survive the order round-trip.
  for (const IsolationPattern p : kAllPatterns)
    EXPECT_EQ(parsed.isolation.score(p), spec.isolation.score(p))
        << pattern_name(p);
}

TEST(InputFile, PaperTableIvExample) {
  // A hand-written file in the paper's Table IV format.
  const std::string text = R"(# Number of Security Devices
3
# pattern ids
1 2 3
# Isolation Specifications (partial orders)
2
# Device, Device, Comparison (1 for =, 2 for >, and 3 for >=)
1 2 2
2 3 2
# Cost of each isolation device
5 10 8 6
# Number of Hosts and Routers
4 2
# Links
5
1 5
2 5
3 6
4 6
5 6
# Connectivity Requirements (each row for a host, which ends with 0)
3 0
0
1 0
0
# Sliders Values
3 4 25
)";
  std::istringstream in(text);
  const ProblemSpec spec = parse_input(in);
  EXPECT_EQ(spec.network.host_count(), 4u);
  EXPECT_EQ(spec.network.router_count(), 2u);
  EXPECT_EQ(spec.flows.size(), 12u);
  EXPECT_EQ(spec.connectivity.size(), 2u);
  EXPECT_EQ(spec.isolation.enabled().size(), 3u);
  EXPECT_GT(spec.isolation.score(IsolationPattern::kAccessDeny),
            spec.isolation.score(IsolationPattern::kTrustedComm));
  EXPECT_EQ(spec.sliders.budget, Fixed::from_int(25));
}

TEST(InputFile, MalformedInputsThrow) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_input(in);
  };
  EXPECT_THROW(parse(""), util::SpecError);
  EXPECT_THROW(parse("9"), util::SpecError);            // bad pattern count
  EXPECT_THROW(parse("1\n1\n0\n5 5 5 5\n1 0\n"), util::SpecError);
}

}  // namespace
}  // namespace cs::model
