// Tests for the span tracer (src/obs) and its integration with the
// synthesis stack:
//   * disabled path — recording entry points are inert, nothing is stored;
//   * span structure — spans on one thread track are properly nested
//     (any two either disjoint or contained), since they come from RAII
//     scopes;
//   * JSON export — the Chrome trace-event output parses (validated with
//     a small recursive-descent JSON parser) and every event carries the
//     keys Perfetto requires;
//   * determinism — a cold sweep of the paper example emits the same
//     span multiset (names + counts) at --jobs 1 and --jobs 4, because
//     per-point solver state is independent of the partition.
//
// The tracer is process-global state; these tests run in one gtest
// binary, serially, and each test starts from a clear()ed session.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "spec_helpers.h"
#include "synth/sweep.h"

namespace cs::obs {
namespace {

/// Resets the tracer to a known state. Registered per test because the
/// session outlives individual tests.
struct SessionReset {
  SessionReset() {
    session().disable();
    session().clear();
  }
  ~SessionReset() {
    session().disable();
    session().clear();
  }
};

// ---- minimal JSON syntax validator ----------------------------------------
// Recursive descent over the exported text; returns false on the first
// syntax error. Scalars are validated, structure is walked, nothing is
// built — the structural assertions use TraceSession::snapshot() instead.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // control characters must be escaped
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && text_[start] != '-' ? true : pos_ > start + 1;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- tracer core -----------------------------------------------------------

TEST(Obs, DisabledPathRecordsNothing) {
  SessionReset reset;
  ASSERT_FALSE(TraceSession::enabled());
  {
    Span span("test", "test/should-not-appear");
    span.arg("key", "value");
  }
  counter("test", "test/counter", 42);
  set_thread_name("ghost");
  EXPECT_TRUE(session().snapshot().empty());
  EXPECT_EQ(session().to_json().find("should-not-appear"), std::string::npos);
}

TEST(Obs, SpansAndCountersRoundTrip) {
  SessionReset reset;
  session().enable();
  {
    Span outer("test", "test/outer");
    outer.arg("k", "v");
    Span inner("test", "test/inner");
  }
  counter("test", "test/c", 7);
  session().disable();

  const auto events = session().snapshot();
  ASSERT_EQ(events.size(), 3u);
  // RAII order: inner ends (and records) before outer.
  EXPECT_EQ(events[0].name, "test/inner");
  EXPECT_EQ(events[1].name, "test/outer");
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "k");
  EXPECT_EQ(events[2].kind, TraceEvent::Kind::kCounter);
  EXPECT_EQ(events[2].value, 7);
  // Containment: outer started no later and ended no earlier than inner.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST(Obs, PerThreadTracksDoNotInterleave) {
  SessionReset reset;
  session().enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_name(("worker-" + std::to_string(t)).c_str());
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("test", "test/span");
        span.arg("thread", std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  session().disable();

  const auto events = session().snapshot();
  std::map<std::string, int> per_thread;
  for (const TraceEvent& e : events)
    if (e.kind == TraceEvent::Kind::kSpan && e.name == "test/span")
      per_thread[e.args.at(0).second]++;
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [thread, count] : per_thread)
    EXPECT_EQ(count, kSpansPerThread) << "thread " << thread;
}

TEST(Obs, ExportedJsonParses) {
  SessionReset reset;
  session().enable();
  session().set_thread_name("main");
  {
    Span span("test", "test/escaping");
    span.arg("quote", "a\"b\\c\nd\te");  // exercises string escaping
  }
  counter("test", "test/c", -3);
  session().disable();

  const std::string json = session().to_json();
  EXPECT_TRUE(JsonCursor(json).parse()) << json;
  // The envelope and both event shapes are present.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // Required complete-event keys.
  for (const char* key : {"\"name\"", "\"ts\"", "\"dur\"", "\"pid\"",
                          "\"tid\"", "\"cat\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

// ---- stack integration -----------------------------------------------------

/// Span names per track must nest: sort by start, then every later span
/// on the same track that starts inside an earlier one must also end
/// inside it.
void expect_proper_nesting(const std::vector<TraceEvent>& spans) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const TraceEvent& a = spans[i];
      const TraceEvent& b = spans[j];
      const double a_end = a.ts_us + a.dur_us;
      const double b_end = b.ts_us + b.dur_us;
      const bool disjoint = b.ts_us >= a_end || a.ts_us >= b_end;
      const bool a_in_b = b.ts_us <= a.ts_us && a_end <= b_end;
      const bool b_in_a = a.ts_us <= b.ts_us && b_end <= a_end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " [" << a.ts_us << "," << a_end << ") overlaps "
          << b.name << " [" << b.ts_us << "," << b_end << ")";
    }
  }
}

synth::SweepRequest example_grid(int jobs) {
  std::vector<model::Sliders> grid;
  for (int iso = 0; iso <= 3; ++iso)
    grid.push_back(model::Sliders{util::Fixed::from_int(iso),
                                  util::Fixed::from_int(4),
                                  util::Fixed::from_int(60)});
  synth::SweepRequest request = synth::SweepRequest::feasibility_grid(grid);
  request.synthesis.backend = smt::BackendKind::kMiniPb;
  // Deterministic effort cap: capped outcomes are a pure function of the
  // formula, so runs reproduce across worker counts (see sweep_test.cpp).
  request.synthesis.check_conflict_limit = 20'000;
  request.jobs = jobs;
  return request;
}

/// Multiset of span names recorded during one cold sweep of the paper
/// example at the given worker count.
std::map<std::string, int> sweep_span_names(int jobs) {
  session().clear();
  session().enable();
  const model::ProblemSpec spec = cs::testing::make_example_spec();
  const synth::SweepEngine engine(spec);
  const synth::SweepResult result = engine.run(example_grid(jobs));
  session().disable();
  EXPECT_EQ(result.points.size(), 4u);

  std::map<std::string, int> names;
  for (const TraceEvent& e : session().snapshot())
    if (e.kind == TraceEvent::Kind::kSpan) names[e.name]++;
  return names;
}

TEST(ObsSweep, SpanMultisetIdenticalAcrossJobs) {
  SessionReset reset;
  const std::map<std::string, int> serial = sweep_span_names(1);
  const std::map<std::string, int> parallel = sweep_span_names(4);
  // The instrumented layers all fired.
  EXPECT_EQ(serial.at("sweep/run"), 1);
  EXPECT_EQ(serial.at("sweep/point"), 4);
  EXPECT_EQ(serial.at("synth/encode"), 4);  // cold: one encode per point
  EXPECT_GE(serial.at("synth/check"), 4);
  EXPECT_EQ(serial.count("encode/flow-vars"), 1u);
  // Partitioning must not change what work was done.
  EXPECT_EQ(serial, parallel);
}

TEST(ObsSweep, SpansNestProperlyPerTrack) {
  SessionReset reset;
  sweep_span_names(4);
  // RAII spans come from stack scopes, so any two spans recorded by one
  // thread must be disjoint or contained — overlap would mean a track
  // mixed events from two threads.
  std::size_t tracks_with_spans = 0;
  for (const auto& [tid, events] : session().snapshot_by_track()) {
    std::vector<TraceEvent> spans;
    for (const TraceEvent& e : events)
      if (e.kind == TraceEvent::Kind::kSpan) spans.push_back(e);
    if (!spans.empty()) ++tracks_with_spans;
    expect_proper_nesting(spans);
  }
  // Main thread (sweep/run) plus at least one pool worker.
  EXPECT_GE(tracks_with_spans, 2u);
}

}  // namespace
}  // namespace cs::obs
