// Tests for the shared bench workload builder (bench/common).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/workloads.h"

namespace cs::bench {
namespace {

TEST(Workloads, DeterministicForSeed) {
  const model::ProblemSpec a = make_eval_spec(8, 6, 0.1, 42);
  const model::ProblemSpec b = make_eval_spec(8, 6, 0.1, 42);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows.flow(static_cast<model::FlowId>(f)),
              b.flows.flow(static_cast<model::FlowId>(f)));
  }
  EXPECT_EQ(a.connectivity.sorted(), b.connectivity.sorted());
  EXPECT_EQ(a.network.link_count(), b.network.link_count());
}

TEST(Workloads, DifferentSeedsDiffer) {
  const model::ProblemSpec a = make_eval_spec(8, 6, 0.1, 1);
  const model::ProblemSpec b = make_eval_spec(8, 6, 0.1, 2);
  // Flow sets almost surely differ (counts or contents).
  bool differ = a.flows.size() != b.flows.size();
  if (!differ) {
    for (std::size_t f = 0; f < a.flows.size() && !differ; ++f)
      differ = !(a.flows.flow(static_cast<model::FlowId>(f)) ==
                 b.flows.flow(static_cast<model::FlowId>(f)));
  }
  EXPECT_TRUE(differ);
}

TEST(Workloads, RespectsMethodologyBounds) {
  const model::ProblemSpec spec = make_eval_spec(10, 8, 0.2, 7);
  EXPECT_EQ(spec.network.host_count(), 10u);
  EXPECT_EQ(spec.network.router_count(), 8u);
  // 1..3 services per ordered pair.
  EXPECT_GE(spec.flows.size(), 90u);
  EXPECT_LE(spec.flows.size(), 270u);
  const auto expected_cr = static_cast<std::size_t>(
      0.2 * static_cast<double>(spec.flows.size()) + 0.5);
  EXPECT_EQ(spec.connectivity.size(), expected_cr);
  EXPECT_NO_THROW(spec.validate());
}

TEST(Workloads, RunSynthesisProducesVerdictAndTiming) {
  model::ProblemSpec spec = make_eval_spec(6, 5, 0.1, 3);
  const TimedRun run = run_synthesis(
      spec, model::Sliders{util::Fixed::from_int(2),
                           util::Fixed::from_int(3),
                           util::Fixed::from_int(80)});
  EXPECT_NE(run.status, smt::CheckResult::kUnknown);
  EXPECT_GT(run.seconds, 0.0);
  EXPECT_GE(run.seconds, run.encode_seconds);
  if (run.status == smt::CheckResult::kSat) {
    EXPECT_TRUE(run.design.has_value());
  }
}

TEST(Workloads, EmitWritesCsv) {
  const std::string name = ::testing::TempDir() + "/cs_bench_emit_test";
  emit(name, "test table", {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream in(name + ".csv");
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(name + ".csv");
}

TEST(Workloads, FmtSeconds) {
  EXPECT_EQ(fmt_seconds(1.5), "1.500");
  EXPECT_EQ(fmt_seconds(0.0), "0.000");
}

}  // namespace
}  // namespace cs::bench
