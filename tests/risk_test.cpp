// Tests for risk-based per-host isolation requirements (RMC).
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "smt/ir.h"
#include "spec_helpers.h"
#include "synth/metrics.h"
#include "synth/synthesizer.h"

namespace cs::synth {
namespace {

using cs::testing::make_example_spec;
using smt::BackendKind;
using smt::CheckResult;
using util::Fixed;

class RmcBackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RmcBackendTest, RequirementForcesProtection) {
  model::ProblemSpec spec = make_example_spec();
  const topology::NodeId target = spec.network.hosts()[7];  // h8
  spec.host_requirements.push_back(
      model::HostIsolationRequirement{target, Fixed::from_int(6)});
  spec.sliders = model::Sliders{Fixed{}, Fixed{}, Fixed::from_int(150)};
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  const SynthesisResult r = synth.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  const analysis::CheckReport report = analysis::check_design(spec, *r.design);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Position 7 in hosts() is the target.
  EXPECT_GE(report.metrics.host_isolation[7], Fixed::from_int(6));
  // The requirement forces actual protection: some flow touching h8 is
  // protected, hence devices exist.
  EXPECT_GT(r.design->device_count(), 0u);
}

TEST_P(RmcBackendTest, ImpossibleRequirementIsUnsat) {
  model::ProblemSpec spec = make_example_spec();
  // h5 receives connectivity-required flows, which cannot be denied; with
  // a zero budget no device-based isolation exists either, so requiring
  // full isolation of h5 conflicts.
  const topology::NodeId target = spec.network.hosts()[4];
  spec.host_requirements.push_back(
      model::HostIsolationRequirement{target, Fixed::from_int(10)});
  spec.sliders = model::Sliders{Fixed{}, Fixed{}, Fixed{}};
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  EXPECT_EQ(synth.synthesize().status, CheckResult::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RmcBackendTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

TEST(Rmc, AlphaWeightChangesFeasibility) {
  // Asymmetric scenario: only OUTGOING flows from the target host can be
  // protected (incoming flows are pinned open by UIC). With α close to 1
  // (incoming dominates) a high requirement is infeasible; with α close
  // to 0 (outgoing dominates) it becomes feasible.
  const auto build = [](double alpha) {
    model::ProblemSpec spec = make_example_spec();
    spec.alpha = Fixed::from_double(alpha);
    const topology::NodeId target = spec.network.hosts()[9];  // h10
    for (std::size_t f = 0; f < spec.flows.size(); ++f) {
      const model::Flow& flow =
          spec.flows.flow(static_cast<model::FlowId>(f));
      if (flow.dst == target) {
        // Pin incoming flows to "payload inspection" (low score 2.5).
        spec.user_constraints.push_back(model::RequirePatternForFlow{
            flow, model::IsolationPattern::kPayloadInspection});
      }
    }
    spec.host_requirements.push_back(
        model::HostIsolationRequirement{target, Fixed::from_int(7)});
    spec.sliders = model::Sliders{Fixed{}, Fixed{}, Fixed::from_int(400)};
    return spec;
  };

  model::ProblemSpec incoming_heavy = build(0.9);
  Synthesizer s1(incoming_heavy, SynthesisOptions{});
  EXPECT_EQ(s1.synthesize().status, CheckResult::kUnsat);

  model::ProblemSpec outgoing_heavy = build(0.1);
  Synthesizer s2(outgoing_heavy, SynthesisOptions{});
  const SynthesisResult r = s2.synthesize();
  ASSERT_EQ(r.status, CheckResult::kSat);
  EXPECT_TRUE(analysis::check_design(outgoing_heavy, *r.design).ok());
}

TEST(Rmc, ValidationRejectsBadRequirements) {
  model::ProblemSpec spec = make_example_spec();
  spec.host_requirements.push_back(model::HostIsolationRequirement{
      spec.network.routers().front(), Fixed::from_int(5)});
  EXPECT_THROW(spec.validate(), util::SpecError);

  spec.host_requirements.clear();
  spec.host_requirements.push_back(model::HostIsolationRequirement{
      spec.network.hosts().front(), Fixed::from_int(11)});
  EXPECT_THROW(spec.validate(), util::SpecError);
}

TEST(Rmc, CheckerFlagsViolations) {
  model::ProblemSpec spec = make_example_spec();
  spec.host_requirements.push_back(model::HostIsolationRequirement{
      spec.network.hosts()[2], Fixed::from_int(8)});
  const SecurityDesign open(spec.flows.size(), spec.network.link_count());
  const analysis::CheckReport report =
      analysis::check_design(spec, open, /*check_thresholds=*/false);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& issue : report.issues)
    found |= issue.find("below required") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Rmc, MetricsHostIsolationAlphaDirection) {
  // Denying only INCOMING flows of a host should raise its isolation more
  // than denying only OUTGOING ones when α > 0.5.
  model::ProblemSpec spec = make_example_spec();
  spec.alpha = Fixed::from_double(0.8);
  const topology::NodeId j = spec.network.hosts()[5];

  SecurityDesign deny_in(spec.flows.size(), spec.network.link_count());
  SecurityDesign deny_out(spec.flows.size(), spec.network.link_count());
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const model::Flow& flow = spec.flows.flow(static_cast<model::FlowId>(f));
    if (flow.dst == j)
      deny_in.set_pattern(static_cast<model::FlowId>(f),
                          model::IsolationPattern::kAccessDeny);
    if (flow.src == j)
      deny_out.set_pattern(static_cast<model::FlowId>(f),
                           model::IsolationPattern::kAccessDeny);
  }
  const DesignMetrics in_m = compute_metrics(spec, deny_in);
  const DesignMetrics out_m = compute_metrics(spec, deny_out);
  EXPECT_GT(in_m.host_isolation[5], out_m.host_isolation[5]);
}

}  // namespace
}  // namespace cs::synth
