// Diagnostic driver: times individual threshold probes on the example spec.
// Not a gtest; invoked manually while tuning solver encodings.
//
// Usage: probe_tool <backend> <iso> <usab> <cost> [<iso> <usab> <cost>]...
#include <cstdio>
#include <cstdlib>

#include "model/spec.h"
#include "smt/ir.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"
#include "util/strings.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cs;
  std::setbuf(stdout, nullptr);  // survive timeout kills
  if (argc < 5 || (argc - 2) % 3 != 0) {
    std::fprintf(stderr, "usage: %s <backend> (<iso> <usab> <cost>)+\n",
                 argv[0]);
    return 2;
  }
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  for (const topology::NodeId i : spec.network.hosts())
    for (const topology::NodeId j : spec.network.hosts())
      if (i != j) spec.flows.add(model::Flow{i, j, svc});
  for (std::size_t f = 0; f < spec.flows.size(); f += 10)
    spec.connectivity.add(static_cast<model::FlowId>(f));
  spec.finalize();

  synth::Synthesizer synth(
      spec, synth::SynthesisOptions{smt::backend_from_name(argv[1])});
  std::printf("encode: %.3fs\n", synth.encode_seconds());
  for (int i = 2; i + 2 < argc + 1 && i + 2 <= argc; i += 3) {
    const auto iso = util::Fixed::from_double(
        util::parse_double(argv[i], "iso"));
    const auto usab = util::Fixed::from_double(
        util::parse_double(argv[i + 1], "usab"));
    const auto cost = util::Fixed::from_double(
        util::parse_double(argv[i + 2], "cost"));
    util::Stopwatch watch;
    const synth::SynthesisResult r =
        synth.synthesize(model::Sliders{iso, usab, cost});
    std::printf("iso=%s usab=%s cost=%s -> %s in %.3fs\n",
                iso.to_string().c_str(), usab.to_string().c_str(),
                cost.to_string().c_str(),
                r.status == smt::CheckResult::kSat     ? "SAT"
                : r.status == smt::CheckResult::kUnsat ? "UNSAT"
                                                       : "UNKNOWN",
                watch.elapsed_seconds());
  }
  return 0;
}
