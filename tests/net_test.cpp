// net_test — the cs-req-v1 codec and the TCP front-end, over loopback.
//
// Codec half: round-trip properties (parse(render(r)) == r for requests
// and responses, base64 both ways) and the structured-error contract —
// malformed lines, unsupported versions and bad base64 all throw
// SpecError with context, never parse to something else.
//
// Wire half: a real TcpServer on an ephemeral loopback port, driven by
// BlockingClient connections. Covers keep-alive pipelining with
// out-of-order completions paired by id, concurrent clients,
// cache/coalescing visibility in the `source=` field, deterministic
// queue-full rejection (worker gated exactly as in service_test), a
// graceful drain that answers everything before EOF, protocol errors
// that leave the connection usable, the connection limit, and the HTTP
// metrics endpoint sharing the port.
//
// Everything solver-facing runs MiniPB with a deterministic conflict
// cap; the suite carries the `parallel` label, so TSan covers the
// loop-thread/worker/test-thread handshakes.
#include "net/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "model/input_file.h"
#include "net/client.h"
#include "net/request_codec.h"
#include "spec_helpers.h"
#include "util/error.h"

namespace cs::net {
namespace {

using testing::make_example_spec;

// ---------------------------------------------------------------- codec

TEST(Base64, RoundTripsArbitraryBytes) {
  const std::vector<std::string> cases = {
      "", "a", "ab", "abc", "abcd", "hello world\n",
      std::string("\x00\x01\xff\x7f\x80", 5)};
  for (const std::string& bytes : cases) {
    const std::string encoded = RequestCodec::base64_encode(bytes);
    EXPECT_EQ(RequestCodec::base64_decode(encoded), bytes) << encoded;
  }
  // Vectors from RFC 4648 §10.
  EXPECT_EQ(RequestCodec::base64_encode("foobar"), "Zm9vYmFy");
  EXPECT_EQ(RequestCodec::base64_decode("Zm9vYg=="), "foob");
}

TEST(Base64, RejectsMalformedInput) {
  EXPECT_THROW(RequestCodec::base64_decode("a"), util::SpecError);
  EXPECT_THROW(RequestCodec::base64_decode("ab!d"), util::SpecError);
  EXPECT_THROW(RequestCodec::base64_decode("=abc"), util::SpecError);
}

TEST(RequestCodec, RequestRoundTripProperty) {
  // A small product space of every field that affects rendering; the
  // property is parse(render(r)).request == r, byte-for-byte semantics.
  std::vector<WireRequest> cases;
  for (const synth::SweepObjective objective :
       {synth::SweepObjective::kFeasibility,
        synth::SweepObjective::kMaxIsolation,
        synth::SweepObjective::kMinCost}) {
    for (const std::string& id : {std::string(), std::string("r-17")}) {
      for (const std::int64_t deadline : {0, 2500}) {
        for (int raw = 0; raw < 4000; raw += 1337) {
          WireRequest req;
          req.id = id;
          req.spec_kind = SpecRefKind::kFile;
          req.spec = "specs/example.cfg";
          req.point.objective = objective;
          req.point.isolation = util::Fixed::from_raw(raw);
          req.point.usability = util::Fixed::from_raw(raw / 2);
          req.point.budget = util::Fixed::from_int(60);
          req.deadline_ms = deadline;
          cases.push_back(req);
        }
      }
    }
  }
  WireRequest inline_req;
  inline_req.spec_kind = SpecRefKind::kInline;
  inline_req.spec = "line one\nline two\n";
  inline_req.point.objective = synth::SweepObjective::kFeasibility;
  cases.push_back(inline_req);
  WireRequest colon_path = cases.front();
  colon_path.spec = "odd:path.cfg";  // needs the explicit file: prefix
  cases.push_back(colon_path);

  for (const WireRequest& req : cases) {
    const std::string line = RequestCodec::render_request(req);
    const ParsedLine parsed = RequestCodec::parse_line(line);
    ASSERT_EQ(parsed.kind, LineKind::kRequest) << line;
    EXPECT_EQ(parsed.request, req) << line;
  }
}

TEST(RequestCodec, ResponseRoundTripProperty) {
  std::vector<WireResponse> cases;
  for (const WireStatus status :
       {WireStatus::kSat, WireStatus::kUnsat, WireStatus::kUnknown,
        WireStatus::kRejected, WireStatus::kSkipped, WireStatus::kOk,
        WireStatus::kError}) {
    WireResponse resp;
    resp.id = "q7";
    resp.status = status;
    cases.push_back(resp);
  }
  WireResponse full;
  full.id = "a";
  full.status = WireStatus::kSat;
  full.source = "coalesced";
  full.bound = "4.667";
  full.probes = 7;
  full.total_ms = 12.5;  // one decimal: survives the wire format
  full.has_ms = true;
  cases.push_back(full);
  WireResponse unsat;
  unsat.id = "b";
  unsat.status = WireStatus::kUnsat;
  unsat.source = "solved";
  unsat.core = {synth::ThresholdKind::kIsolation,
                synth::ThresholdKind::kCost};
  unsat.probes = 1;
  cases.push_back(unsat);
  WireResponse rejected;
  rejected.id = "c";
  rejected.status = WireStatus::kRejected;
  rejected.reject = service::RejectReason::kQueueFull;
  cases.push_back(rejected);
  WireResponse skipped;
  skipped.id = "d";
  skipped.status = WireStatus::kSkipped;
  skipped.reject = service::RejectReason::kCancelled;
  cases.push_back(skipped);
  WireResponse error;
  error.id = "";  // renders as the "-" placeholder, parses back empty
  error.status = WireStatus::kError;
  error.message = "spec error: want 5 tokens, got 2 = nonsense";
  cases.push_back(error);

  for (const WireResponse& resp : cases) {
    const std::string line = RequestCodec::render_response(resp);
    EXPECT_EQ(RequestCodec::parse_response(line), resp) << line;
  }
}

TEST(RequestCodec, DeltaSpecRefRoundTrips) {
  // cs-delta-v1 ops text travels as the single spec-ref token after the
  // "delta:" prefix (docs/DELTAS.md); the grammar is space-free by
  // construction, so the line round-trips like any other spec-ref.
  WireRequest req;
  req.id = "d1";
  req.spec_kind = SpecRefKind::kDelta;
  req.spec = "retune,iso=4,budget=55;add-uic,forbid-service,svc,proxy";
  req.point.objective = synth::SweepObjective::kFeasibility;
  req.point.isolation = util::Fixed::from_int(3);
  req.point.usability = util::Fixed::from_int(4);
  req.point.budget = util::Fixed::from_int(60);
  const std::string line = RequestCodec::render_request(req);
  const ParsedLine parsed = RequestCodec::parse_line(line);
  ASSERT_EQ(parsed.kind, LineKind::kRequest) << line;
  EXPECT_EQ(parsed.request, req) << line;

  // An empty ops text is rejected at the codec layer already.
  EXPECT_THROW(RequestCodec::parse_line("delta: feasibility 3 4 60"),
               util::SpecError);
}

TEST(RequestCodec, ClassifiesNonRequestLines) {
  EXPECT_EQ(RequestCodec::parse_line("").kind, LineKind::kBlank);
  EXPECT_EQ(RequestCodec::parse_line("   ").kind, LineKind::kBlank);
  EXPECT_EQ(RequestCodec::parse_line("# comment").kind, LineKind::kBlank);
  EXPECT_EQ(RequestCodec::parse_line("cs-req-v1").kind, LineKind::kHello);
  EXPECT_EQ(RequestCodec::parse_line("metrics").kind, LineKind::kMetrics);
}

TEST(RequestCodec, MalformedLinesThrowStructuredErrors) {
  const std::vector<std::string> bad = {
      "too few tokens",
      "spec.cfg bogus-objective 3 4 60",
      "spec.cfg feasibility x 4 60",
      "spec.cfg feasibility 3 4 60 unknownopt=1",
      "spec.cfg feasibility 3 4 60 deadline=soon",
      "inline:!!! feasibility 3 4 60",
      "cs-req-v2 spec.cfg feasibility 3 4 60",  // future version
      "cs-resp-v1 id=1 status=sat",             // response on request side
  };
  for (const std::string& line : bad)
    EXPECT_THROW(RequestCodec::parse_line(line), util::SpecError) << line;
}

// ----------------------------------------------------------------- wire

/// Serialized example spec, shipped inline so the server needs no files.
const std::string& example_spec_text() {
  static const std::string text =
      model::serialize_input(make_example_spec());
  return text;
}

ServerConfig test_config() {
  ServerConfig config;
  config.service.workers = 2;
  config.synthesis.backend = smt::BackendKind::kMiniPb;
  config.synthesis.check_conflict_limit = 20000;
  return config;
}

/// A feasibility request line for the example spec; `ulp` perturbs the
/// isolation threshold so distinct values get distinct cache keys.
std::string request_line(const std::string& id, int ulp,
                         std::int64_t deadline_ms = 0) {
  WireRequest req;
  req.id = id;
  req.spec_kind = SpecRefKind::kInline;
  req.spec = example_spec_text();
  req.point.objective = synth::SweepObjective::kFeasibility;
  req.point.isolation = util::Fixed::from_raw(ulp);
  req.point.usability = util::Fixed::from_raw(0);
  req.point.budget = util::Fixed::from_int(100);
  req.deadline_ms = deadline_ms;
  return RequestCodec::render_request(req);
}

WireResponse recv_response(BlockingClient& client) {
  const auto line = client.recv_line();
  EXPECT_TRUE(line.has_value()) << "connection closed early";
  if (!line) return {};
  return RequestCodec::parse_response(*line);
}

TEST(TcpServer, KeepAliveConcurrentClientsPairResponsesById) {
  TcpServer server(test_config());
  server.start();
  constexpr int kClients = 4;
  constexpr int kRequests = 6;
  std::atomic<int> sat_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client("127.0.0.1", server.port());
      for (int i = 0; i < kRequests; ++i) {
        // One keep-alive connection per client, closed loop; every
        // request has a distinct key (and a distinct id).
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        client.send_line(request_line(id, c * kRequests + i + 1));
        const WireResponse resp = recv_response(client);
        EXPECT_EQ(resp.id, id);
        if (resp.status == WireStatus::kSat) ++sat_count;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(sat_count.load(), kClients * kRequests);
  EXPECT_EQ(server.metrics().counter_value("net_requests_total"),
            kClients * kRequests);
}

TEST(TcpServer, PipelinedRequestsAnswerEveryId) {
  TcpServer server(test_config());
  server.start();
  BlockingClient client("127.0.0.1", server.port());
  std::set<std::string> want;
  std::string batch;
  for (int i = 0; i < 8; ++i) {
    const std::string id = "p" + std::to_string(i);
    want.insert(id);
    batch += request_line(id, 100 + i);
    batch += "\n";
  }
  client.send_raw(batch);  // all in flight at once
  std::set<std::string> got;
  for (int i = 0; i < 8; ++i) {
    const WireResponse resp = recv_response(client);
    EXPECT_NE(resp.status, WireStatus::kError) << resp.message;
    got.insert(resp.id);
  }
  // Completion order is unspecified; the id pairing is the contract.
  EXPECT_EQ(got, want);
}

TEST(TcpServer, DuplicateKeysAreServedFromCacheOrCoalescing) {
  TcpServer server(test_config());
  server.start();

  // Sequential repeat on one connection: deterministically a cache hit.
  BlockingClient client("127.0.0.1", server.port());
  client.send_line(request_line("a", 7777));
  EXPECT_EQ(recv_response(client).source, "solved");
  client.send_line(request_line("b", 7777));
  EXPECT_EQ(recv_response(client).source, "cache");

  // Concurrent duplicates across connections: exactly one solve; every
  // other response is served by the cache or coalesced onto the solve.
  constexpr int kClients = 4;
  std::mutex mutex;
  std::vector<std::string> sources;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      BlockingClient dup("127.0.0.1", server.port());
      dup.send_line(request_line("d", 8888));
      const WireResponse resp = recv_response(dup);
      EXPECT_EQ(resp.status, WireStatus::kSat);
      const std::lock_guard<std::mutex> lock(mutex);
      sources.push_back(resp.source);
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(sources.size(), kClients);
  EXPECT_EQ(std::count(sources.begin(), sources.end(), "solved"), 1);
  for (const std::string& source : sources)
    EXPECT_TRUE(source == "solved" || source == "cache" ||
                source == "coalesced")
        << source;
}

/// A delta spec-ref request against the connection's anchor spec.
std::string delta_line(const std::string& id, const std::string& ops,
                       int ulp) {
  WireRequest req;
  req.id = id;
  req.spec_kind = SpecRefKind::kDelta;
  req.spec = ops;
  req.point.objective = synth::SweepObjective::kFeasibility;
  req.point.isolation = util::Fixed::from_raw(ulp);
  req.point.usability = util::Fixed::from_raw(0);
  req.point.budget = util::Fixed::from_int(100);
  return RequestCodec::render_request(req);
}

TEST(TcpServer, DeltaSpecRefsChainOnTheConnectionAnchor) {
  TcpServer server(test_config());
  server.start();
  BlockingClient client("127.0.0.1", server.port());

  // No anchor yet: a structured error that keeps the connection open.
  client.send_line(delta_line("orphan", "retune,iso=2", 1));
  const WireResponse orphan = recv_response(client);
  EXPECT_EQ(orphan.id, "orphan");
  EXPECT_EQ(orphan.status, WireStatus::kError);
  EXPECT_NE(orphan.message.find("previous spec"), std::string::npos);

  // Anchor, then two chained deltas — the second resolves against the
  // running post-delta spec, not the original anchor.
  client.send_line(request_line("anchor", 10));
  EXPECT_EQ(recv_response(client).status, WireStatus::kSat);
  client.send_line(delta_line("d1", "retune,iso=2,budget=80", 11));
  EXPECT_EQ(recv_response(client).status, WireStatus::kSat);
  client.send_line(delta_line("d2", "add-uic,forbid-service,svc,proxy", 12));
  const WireResponse d2 = recv_response(client);
  EXPECT_EQ(d2.status, WireStatus::kSat);
  EXPECT_EQ(d2.source, "solved");

  // A failing delta answers an error, leaves the anchor untouched, and
  // later deltas keep chaining from where d2 left it.
  client.send_line(delta_line("bad-op", "remove-host,ghost", 13));
  EXPECT_EQ(recv_response(client).status, WireStatus::kError);
  client.send_line(delta_line("bad-grammar", "retune,nope=1", 13));
  EXPECT_EQ(recv_response(client).status, WireStatus::kError);
  client.send_line(delta_line("d3", "retune,iso=1", 14));
  EXPECT_EQ(recv_response(client).status, WireStatus::kSat);

  // Delta resolution is content-keyed: a second connection replaying the
  // same anchor + ops at the same points lands on the first connection's
  // cache entries — byte-identical resolved specs, proved by `source=`.
  BlockingClient replay("127.0.0.1", server.port());
  replay.send_line(request_line("r-anchor", 10));
  EXPECT_EQ(recv_response(replay).source, "cache");
  replay.send_line(delta_line("r-d1", "retune,iso=2,budget=80", 11));
  EXPECT_EQ(recv_response(replay).source, "cache");
  replay.send_line(delta_line("r-d2", "add-uic,forbid-service,svc,proxy", 12));
  EXPECT_EQ(recv_response(replay).source, "cache");
}

/// Gate blocking the single worker inside on_start (same construction as
/// service_test) so queue-full and drain outcomes are deterministic.
class Gate {
 public:
  void block_first_entry() {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool first = !entered_;
    entered_ = true;
    entered_cv_.notify_all();
    if (first) release_cv_.wait(lock, [this] { return released_; });
  }
  void wait_until_entered() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_, release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(TcpServer, QueueFullRejectsDeterministicallyOverTheWire) {
  Gate gate;
  ServerConfig config = test_config();
  config.service.workers = 1;
  config.service.queue_limit = 1;
  config.service.on_start = [&gate](const service::ServiceRequest&) {
    gate.block_first_entry();
  };
  TcpServer server(std::move(config));
  server.start();

  BlockingClient client("127.0.0.1", server.port());
  client.send_line(request_line("running", 1));  // occupies the worker
  gate.wait_until_entered();
  client.send_line(request_line("queued", 2));  // queue depth 1 = limit
  client.send_line(request_line("over", 3));    // deterministic reject

  // The rejection answers first — while the worker is still parked, so
  // it provably never waited on a solve.
  const WireResponse over = recv_response(client);
  EXPECT_EQ(over.id, "over");
  EXPECT_EQ(over.status, WireStatus::kRejected);
  EXPECT_EQ(over.reject, service::RejectReason::kQueueFull);

  gate.release();
  std::set<std::string> rest = {recv_response(client).id,
                                recv_response(client).id};
  EXPECT_EQ(rest, (std::set<std::string>{"running", "queued"}));
  EXPECT_EQ(server.metrics().counter_value("rejected_queue_full"), 1);
}

TEST(TcpServer, GracefulDrainAnswersEveryRequestThenCloses) {
  Gate gate;
  ServerConfig config = test_config();
  config.service.workers = 1;
  // Park only the marked request (isolation == 1 ulp) — the warm-up
  // request must pass through on_start untouched.
  config.service.on_start = [&gate](const service::ServiceRequest& req) {
    if (req.point.isolation == util::Fixed::from_raw(1))
      gate.block_first_entry();
  };
  TcpServer server(std::move(config));
  server.start();

  BlockingClient client("127.0.0.1", server.port());
  // A solve that completed before the drain: its answer proves the
  // connection was healthy, and the solve is fully delivered.
  client.send_line(request_line("done", 9));
  EXPECT_EQ(recv_response(client).status, WireStatus::kSat);

  client.send_line(request_line("started", 1));
  gate.wait_until_entered();  // parked in on_start, pre-solve
  client.send_line(request_line("queued", 2));
  // Both requests are submitted once the second one is counted.
  while (server.metrics().counter_value("net_requests_total") < 3)
    std::this_thread::yield();

  server.shutdown();  // drain: stop accepting, cancel pending, flush
  gate.release();

  // Cancellation is cooperative and pre-solve: both requests that had
  // not begun solving are answered skipped/cancelled — answered, not
  // dropped — and only then does the server close the connection.
  std::map<std::string, WireResponse> responses;
  for (int i = 0; i < 2; ++i) {
    const WireResponse resp = recv_response(client);
    responses[resp.id] = resp;
  }
  ASSERT_TRUE(responses.count("started"));
  ASSERT_TRUE(responses.count("queued"));
  for (const std::string id : {"started", "queued"}) {
    EXPECT_EQ(responses[id].status, WireStatus::kSkipped) << id;
    EXPECT_EQ(responses[id].reject, service::RejectReason::kCancelled)
        << id;
  }
  EXPECT_EQ(client.recv_line(), std::nullopt);  // clean EOF after answers
  EXPECT_EQ(server.metrics().counter_value("skipped_cancelled"), 2);

  // The listener is gone: new connections are refused.
  EXPECT_THROW(BlockingClient("127.0.0.1", server.port()), util::Error);
}

TEST(TcpServer, ProtocolErrorsAnswerStructuredAndKeepTheConnection) {
  TcpServer server(test_config());
  server.start();
  BlockingClient client("127.0.0.1", server.port());

  client.send_line("cs-req-v1");  // hello
  const WireResponse hello = recv_response(client);
  EXPECT_EQ(hello.status, WireStatus::kOk);
  EXPECT_EQ(hello.message, "cs-req-v1");

  client.send_line("complete nonsense");
  EXPECT_EQ(recv_response(client).status, WireStatus::kError);
  client.send_line("cs-req-v2 spec.cfg feasibility 3 4 60");
  const WireResponse version = recv_response(client);
  EXPECT_EQ(version.status, WireStatus::kError);
  EXPECT_NE(version.message.find("version"), std::string::npos);
  client.send_line("../escape.cfg feasibility 3 4 60 id=esc");
  const WireResponse escape = recv_response(client);
  EXPECT_EQ(escape.status, WireStatus::kError);
  EXPECT_EQ(escape.id, "esc");

  // The connection survived all three errors.
  client.send_line(request_line("still-alive", 4321));
  const WireResponse ok = recv_response(client);
  EXPECT_EQ(ok.id, "still-alive");
  EXPECT_EQ(ok.status, WireStatus::kSat);
  EXPECT_EQ(server.metrics().counter_value("net_protocol_errors"), 2);
  EXPECT_EQ(server.metrics().counter_value("net_spec_errors"), 1);
}

TEST(TcpServer, ConnectionLimitRefusesWithAnErrorLine) {
  ServerConfig config = test_config();
  config.max_connections = 1;
  TcpServer server(std::move(config));
  server.start();

  BlockingClient first("127.0.0.1", server.port());
  first.send_line(request_line("one", 1));
  EXPECT_EQ(recv_response(first).id, "one");  // first is fully usable

  BlockingClient second("127.0.0.1", server.port());
  const auto refusal = second.recv_line();
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(RequestCodec::parse_response(*refusal).status,
            WireStatus::kError);
  EXPECT_EQ(second.recv_line(), std::nullopt);  // then closed
}

TEST(TcpServer, HttpMetricsSharesThePort) {
  TcpServer server(test_config());
  server.start();

  BlockingClient wire("127.0.0.1", server.port());
  wire.send_line(request_line("h", 5555));
  EXPECT_EQ(recv_response(wire).status, WireStatus::kSat);

  BlockingClient http("127.0.0.1", server.port());
  http.send_raw("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string metrics = http.recv_all();
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("configsynth_requests_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("configsynth_net_http_requests 1"),
            std::string::npos);

  BlockingClient missing("127.0.0.1", server.port());
  missing.send_raw("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.recv_all().find("404"), std::string::npos);

  BlockingClient post("127.0.0.1", server.port());
  post.send_raw("POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.recv_all().find("405"), std::string::npos);
}

}  // namespace
}  // namespace cs::net
