// cs-delta-v1 changefeed tests (model/delta.h, docs/DELTAS.md) and the
// incremental re-synthesis contract (Synthesizer::apply_delta).
//
// Covered here:
//   - canonical round-trip: parse_delta(render_delta(d)) == d for every
//     op kind, every uic form and every retune knob combination
//   - grammar rejection of non-canonical text (the wire format is
//     exactly one spelling per delta)
//   - transactional apply: a failing op leaves the input spec — and a
//     live Synthesizer — byte-identical (same cs-spec-v1 digest)
//   - cascade semantics of remove-host / remove-flow
//   - sub-digest sensitivity: each op class moves exactly the
//     fingerprint sections docs/DELTAS.md says it moves
//   - the incremental-verdict contract: every apply_delta tier returns
//     the cold verdict on the post-delta spec, with byte-identical
//     designs on the replay/full tiers
//   - two independent churn streams on concurrent threads (the
//     `parallel` label puts this under the TSan job)
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "analysis/checker.h"
#include "common/workloads.h"
#include "model/delta.h"
#include "model/fingerprint.h"
#include "spec_helpers.h"
#include "synth/synthesizer.h"

namespace cs {
namespace {

using cs::testing::make_example_spec;
using model::DeltaOp;
using model::DeltaOpKind;
using model::SpecDelta;
using model::apply_delta;
using model::parse_delta;
using model::render_delta;
using smt::BackendKind;
using smt::CheckResult;

SpecDelta delta_of(std::string_view text) { return parse_delta(text); }

// ---------------------------------------------------------------------
// Canonical round-trip
// ---------------------------------------------------------------------

TEST(DeltaGrammar, RoundTripsEveryOpForm) {
  // One canonical spelling per op form; parse must invert render and
  // re-render must reproduce the input byte for byte.
  const char* kCanonical[] = {
      "add-host,web-9,r1",
      "add-host,lab,r2,4",
      "remove-host,h3",
      "fail-link,r1,r2",
      "restore-link,r1,r2",
      "add-flow,h1,h2,svc",
      "add-flow,h1,h2,svc,cr",
      "remove-flow,h1,h2,svc",
      "add-uic,forbid-service,svc,access-deny",
      "add-uic,forbid-flow,h1,h2,svc,proxy",
      "add-uic,require-flow,h1,h2,svc,payload-inspection",
      "add-uic,deny-one-of,h1,h2,svc,h2,h1,svc",
      "remove-uic,forbid-service,svc,trusted-comm",
      "remove-uic,forbid-flow,h1,h2,svc,proxy-trusted",
      "retune,iso=4",
      "retune,usab=3.5",
      "retune,budget=70",
      "retune,iso=4,usab=3.5",
      "retune,usab=3.5,budget=70",
      "retune,iso=4,usab=3.5,budget=70",
      // Multi-op batch: ops keep their order through the round-trip.
      "add-host,n1,r1;add-flow,n1,h1,svc,cr;retune,iso=5",
  };
  for (const char* text : kCanonical) {
    const SpecDelta delta = parse_delta(text);
    EXPECT_EQ(render_delta(delta), text);
    EXPECT_EQ(parse_delta(render_delta(delta)), delta) << text;
  }
}

TEST(DeltaGrammar, PatternTokensRoundTrip) {
  for (int i = 0; i < model::kPatternCount; ++i) {
    const auto p = static_cast<model::IsolationPattern>(i);
    EXPECT_EQ(model::pattern_from_token(model::pattern_token(p)), p);
  }
  EXPECT_THROW(model::pattern_from_token("firewall"), util::SpecError);
}

TEST(DeltaGrammar, RejectsNonCanonicalText) {
  const char* kBad[] = {
      "",                           // empty delta
      "teleport-host,h1,r1",        // unknown op
      "remove-host",                // missing argument
      "remove-host,h1,h2",          // too many arguments
      "add-host,h,r1,1",            // explicit group of 1 is non-canonical
      "add-host,h,r1,x",            // group must be an integer
      "fail-link,r1",               // links take two endpoints
      "add-flow,h1,h2",             // flows take a service
      "add-flow,h1,h2,svc,maybe",   // trailing token must be "cr"
      "remove-flow,h1,h2,svc,cr",   // remove-flow takes no cr marker
      "add-uic",                    // uic op with no production
      "retune",                     // retune with no knobs
      "retune,iso",                 // knob without '='
      "retune,alpha=0.5",           // unknown knob
      "retune,usab=3,iso=4",        // knobs out of canonical order
      "retune,iso=4,iso=5",         // duplicate knob
      ";add-host,h,r1",             // empty op in the batch
  };
  for (const char* text : kBad)
    EXPECT_THROW(parse_delta(text), util::SpecError) << "'" << text << "'";

  // Names containing grammar delimiters cannot be rendered.
  DeltaOp op;
  op.kind = DeltaOpKind::kRemoveHost;
  op.a = "h 1";
  EXPECT_THROW(render_delta(SpecDelta{{op}}), util::SpecError);
  op.a = "h;1";
  EXPECT_THROW(render_delta(SpecDelta{{op}}), util::SpecError);
}

// ---------------------------------------------------------------------
// Transactional apply + cascades
// ---------------------------------------------------------------------

TEST(DeltaApply, FailingOpLeavesSpecUntouched) {
  const model::ProblemSpec spec = make_example_spec();
  const model::Fingerprint before = model::fingerprint_spec(spec);

  // First op is valid, second fails: nothing may stick.
  const SpecDelta bad =
      delta_of("add-host,nh,r1;add-flow,nh,missing-host,svc");
  EXPECT_THROW(apply_delta(spec, bad), util::SpecError);
  EXPECT_EQ(model::fingerprint_spec(spec), before);
  EXPECT_EQ(spec.network.host_count(), 10u);
}

TEST(DeltaApply, ResolutionErrorsAreSpecErrors) {
  const model::ProblemSpec spec = make_example_spec();
  const char* kBad[] = {
      "add-host,h1,r1",             // name already in use
      "add-host,nh,h1",             // attach target is not a router
      "remove-host,r1",             // not a host
      "remove-host,ghost",          // unknown node
      "fail-link,h1,h2",            // no such link
      "fail-link,h1,r5",            // would disconnect h1
      "restore-link,r1,r2",         // link already present
      "add-flow,h1,h2,svc",         // flow already present (full mesh)
      "remove-flow,h1,h1,svc",      // no such flow
      "add-flow,h1,h2,smtp",        // unknown service
      "remove-uic,forbid-service,svc,proxy",  // no such constraint
      "add-uic,forbid-flow,h1,h2,svc,firewall",  // unknown pattern
      "retune,iso=-1",              // spec validation rejects it
  };
  const model::Fingerprint before = model::fingerprint_spec(spec);
  for (const char* text : kBad) {
    EXPECT_THROW(apply_delta(spec, delta_of(text)), util::SpecError)
        << "'" << text << "'";
    EXPECT_EQ(model::fingerprint_spec(spec), before) << "'" << text << "'";
  }

  // Duplicate UIC adds are rejected (set semantics).
  const model::ProblemSpec with_uic =
      apply_delta(spec, delta_of("add-uic,forbid-service,svc,proxy"));
  EXPECT_THROW(
      apply_delta(with_uic, delta_of("add-uic,forbid-service,svc,proxy")),
      util::SpecError);
}

TEST(DeltaApply, RemoveHostCascades) {
  // Decorate the example with policy that references h1, then remove it:
  // the host's flows, their CRs, the referencing UICs and its isolation
  // requirement must all go; everything else survives.
  model::ProblemSpec spec = apply_delta(
      make_example_spec(),
      delta_of("add-uic,forbid-flow,h1,h5,svc,proxy;"
               "add-uic,deny-one-of,h1,h2,svc,h2,h1,svc;"
               "add-uic,forbid-service,svc,trusted-comm"));
  spec.host_requirements.push_back(model::HostIsolationRequirement{
      spec.network.hosts()[0], util::Fixed::from_int(2)});
  spec.host_requirements.push_back(model::HostIsolationRequirement{
      spec.network.hosts()[1], util::Fixed::from_int(3)});
  spec.finalize();

  const model::ProblemSpec post =
      apply_delta(spec, delta_of("remove-host,h1"));
  EXPECT_EQ(post.network.host_count(), 9u);
  // 10 hosts fully meshed = 90 flows; h1 carried 2 * 9 of them.
  EXPECT_EQ(post.flows.size(), 72u);
  // CRs (1,5) and (1,6) cascade away; the other five survive.
  EXPECT_EQ(post.connectivity.sorted().size(), 5u);
  // Both flow-scoped UICs referenced h1; the service-scoped one stays.
  ASSERT_EQ(post.user_constraints.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<model::ForbidPatternForService>(
      post.user_constraints[0]));
  // h1's requirement cascades; h2's survives with a remapped node id.
  ASSERT_EQ(post.host_requirements.size(), 1u);
  EXPECT_EQ(post.network.node(post.host_requirements[0].host).name, "h2");
}

TEST(DeltaApply, RemoveFlowCascades) {
  const model::ProblemSpec spec = apply_delta(
      make_example_spec(),
      delta_of("add-uic,require-flow,h2,h5,svc,payload-inspection"));
  // h2 -> h5 is one of the example's seven CRs.
  const model::ProblemSpec post =
      apply_delta(spec, delta_of("remove-flow,h2,h5,svc"));
  EXPECT_EQ(post.flows.size(), 89u);
  EXPECT_EQ(post.connectivity.sorted().size(), 6u);
  EXPECT_TRUE(post.user_constraints.empty());
}

TEST(DeltaApply, RoutePreservationClassification) {
  EXPECT_TRUE(model::route_preserving(
      delta_of("add-host,nh,r1;add-flow,nh,h1,svc;retune,iso=5;"
               "add-uic,forbid-service,svc,proxy;remove-flow,h1,h2,svc")));
  EXPECT_FALSE(model::route_preserving(delta_of("fail-link,r1,r2")));
  EXPECT_FALSE(model::route_preserving(delta_of("restore-link,r1,r2")));
  EXPECT_FALSE(model::route_preserving(
      delta_of("retune,iso=5;remove-host,h1")));
}

// ---------------------------------------------------------------------
// Sub-digest sensitivity (the tier-classification oracle)
// ---------------------------------------------------------------------

/// Which cs-spec-v1 sections a delta is expected to move.
struct Moved {
  bool topology = false;
  bool flows = false;
  bool uics = false;
  bool thresholds = false;
  bool budget = false;
};

void expect_sections_moved(const model::ProblemSpec& base,
                           std::string_view delta_text, const Moved& want) {
  const model::SpecDigests a = model::fingerprint_sections(base);
  const model::SpecDigests b =
      model::fingerprint_sections(apply_delta(base, delta_of(delta_text)));
  EXPECT_EQ(a.topology != b.topology, want.topology) << delta_text;
  EXPECT_EQ(a.flows != b.flows, want.flows) << delta_text;
  EXPECT_EQ(a.uics != b.uics, want.uics) << delta_text;
  EXPECT_EQ(a.thresholds != b.thresholds, want.thresholds) << delta_text;
  EXPECT_EQ(a.budget != b.budget, want.budget) << delta_text;
  // The shape digest moves iff a shape section moved, and any move at
  // all moves the combined digest.
  EXPECT_EQ(a.shape() != b.shape(),
            want.topology || want.flows || want.uics)
      << delta_text;
  EXPECT_NE(a.combined, b.combined) << delta_text;
}

TEST(DeltaDigests, EachOpClassMovesExactlyItsSections) {
  const model::ProblemSpec spec = make_example_spec();
  expect_sections_moved(spec, "retune,iso=4", {.thresholds = true});
  expect_sections_moved(spec, "retune,usab=3.5", {.thresholds = true});
  expect_sections_moved(spec, "retune,budget=70", {.budget = true});
  expect_sections_moved(spec, "retune,iso=4,budget=70",
                        {.thresholds = true, .budget = true});
  expect_sections_moved(spec, "add-uic,forbid-flow,h1,h2,svc,proxy",
                        {.uics = true});
  expect_sections_moved(spec, "remove-flow,h1,h2,svc", {.flows = true});
  expect_sections_moved(spec, "add-host,nh,r1", {.topology = true});
  expect_sections_moved(spec, "fail-link,r1,r2", {.topology = true});
  expect_sections_moved(spec, "restore-link,r5,r7", {.topology = true});
  expect_sections_moved(spec, "remove-host,h1",
                        {.topology = true, .flows = true});

  // add-flow needs a hole in the example's full mesh to land in.
  const model::ProblemSpec holed =
      apply_delta(spec, delta_of("remove-flow,h1,h2,svc"));
  expect_sections_moved(holed, "add-flow,h1,h2,svc", {.flows = true});
  expect_sections_moved(holed, "add-flow,h1,h2,svc,cr", {.flows = true});
}

// ---------------------------------------------------------------------
// Incremental vs cold re-synthesis
// ---------------------------------------------------------------------

/// One churn step: the delta text and the tier apply_delta must pick for
/// it (uncapped checks, retractable sections, assumption thresholds).
struct Step {
  const char* delta;
  const char* path;
};

/// Applies each step to a shared Synthesizer chain and asserts the
/// incremental verdict (and on replay/full, the design) is byte-identical
/// to a cold Synthesizer on the post-delta spec with the same options.
void run_churn_chain(const model::ProblemSpec& start,
                     const std::vector<Step>& steps,
                     const synth::SynthesisOptions& options,
                     bool check_designs = true) {
  synth::Synthesizer inc(
      std::make_shared<const model::ProblemSpec>(start), options);
  ASSERT_NE(inc.synthesize().status, CheckResult::kUnknown);

  for (const Step& step : steps) {
    const SpecDelta delta = delta_of(step.delta);
    const synth::DeltaApplyReport report = inc.apply_delta(delta);
    EXPECT_EQ(report.path, step.path) << step.delta;

    synth::Synthesizer cold(inc.spec(), options);
    const synth::SynthesisResult cold_result = cold.synthesize();
    EXPECT_EQ(report.result.status, cold_result.status) << step.delta;
    if (report.result.design.has_value()) {
      EXPECT_TRUE(analysis::check_design(inc.spec(), *report.result.design,
                                         /*check_thresholds=*/false)
                      .ok())
          << step.delta;
    }
    if (check_designs &&
        (report.path == "replay" || report.path == "full") &&
        report.result.design.has_value() &&
        cold_result.design.has_value()) {
      // Replay/full rebuild deterministically: the witness, not just the
      // verdict, matches the cold one.
      EXPECT_TRUE(*report.result.design == *cold_result.design)
          << step.delta;
    }
  }
}

class BackendDeltaTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  synth::SynthesisOptions options() const {
    synth::SynthesisOptions opts;
    opts.backend = GetParam();
    opts.retractable_sections = true;
    return opts;
  }
};

TEST_P(BackendDeltaTest, EveryTierMatchesColdOnTheExample) {
  run_churn_chain(
      make_example_spec(),
      {
          {"retune,iso=4,usab=3.5", "warm"},
          {"add-uic,forbid-flow,h1,h5,svc,proxy", "retract"},
          {"remove-flow,h9,h10,svc", "replay"},
          {"add-host,churn-a,r5;add-flow,churn-a,h5,svc,cr", "replay"},
          {"fail-link,r1,r2", "full"},
          {"retune,budget=40", "warm"},
          {"remove-uic,forbid-flow,h1,h5,svc,proxy", "retract"},
          {"restore-link,r1,r2", "full"},
          {"remove-host,churn-a", "full"},
      },
      options());
}

TEST_P(BackendDeltaTest, WithoutRetractableSectionsPolicyDeltasReplay) {
  synth::SynthesisOptions opts = options();
  opts.retractable_sections = false;
  run_churn_chain(make_example_spec(),
                  {{"add-uic,forbid-service,svc,trusted-comm", "replay"}},
                  opts);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendDeltaTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

TEST(DeltaSynthesis, FailedDeltaLeavesSynthesizerUsable) {
  synth::SynthesisOptions opts;
  opts.backend = BackendKind::kMiniPb;
  opts.retractable_sections = true;
  synth::Synthesizer inc(
      std::make_shared<const model::ProblemSpec>(make_example_spec()), opts);
  const synth::SynthesisResult before = inc.synthesize();
  const model::Fingerprint spec_before =
      model::fingerprint_spec(inc.spec());

  EXPECT_THROW(inc.apply_delta(delta_of("remove-host,ghost")),
               util::SpecError);
  EXPECT_EQ(model::fingerprint_spec(inc.spec()), spec_before);
  EXPECT_EQ(inc.synthesize().status, before.status);

  // And a valid delta still works after the failure.
  const synth::DeltaApplyReport report =
      inc.apply_delta(delta_of("retune,iso=4"));
  EXPECT_EQ(report.path, "warm");
  EXPECT_NE(report.result.status, CheckResult::kUnknown);
}

TEST(DeltaSynthesis, FatTreeChurnMatchesCold) {
  // A structured fabric with the locality workload (the bench_fig7
  // shape), small enough for uncapped MiniPB solves in a unit test.
  const model::ProblemSpec start = bench::make_locality_spec(
      topology::TopologyKind::kFatTree, 16, /*seed=*/9016);
  synth::SynthesisOptions opts;
  opts.backend = BackendKind::kMiniPb;
  opts.retractable_sections = true;
  const std::string grow = "add-host,churn-a," +
                           start.network.node(start.network.routers()[0]).name +
                           ";add-flow,churn-a,h1,WEB";
  run_churn_chain(start,
                  {
                      {"retune,iso=6", "warm"},
                      {"add-uic,forbid-service,WEB,proxy", "retract"},
                      {grow.c_str(), "replay"},
                      {"remove-host,churn-a", "full"},
                  },
                  opts);
}

// ---------------------------------------------------------------------
// Concurrency (TSan target)
// ---------------------------------------------------------------------

TEST(DeltaSynthesisParallel, IndependentChurnStreamsOnThreads) {
  // Two synthesizer chains churning concurrently — the bench_fig7
  // threading model. The chains share no state; TSan verifies the
  // solver/encoder layers underneath really are instance-confined.
  synth::SynthesisOptions opts;
  opts.backend = BackendKind::kMiniPb;
  opts.retractable_sections = true;

  const std::vector<Step> plan_a = {
      {"retune,iso=4", "warm"},
      {"add-uic,forbid-flow,h1,h5,svc,proxy", "retract"},
      {"fail-link,r1,r2", "full"},
  };
  const std::vector<Step> plan_b = {
      {"add-host,churn-b,r8;add-flow,churn-b,h9,svc,cr", "replay"},
      {"retune,usab=3,budget=45", "warm"},
      {"remove-host,churn-b", "full"},
  };
  std::thread a([&] {
    run_churn_chain(make_example_spec(), plan_a, opts);
  });
  std::thread b([&] {
    run_churn_chain(make_example_spec(), plan_b, opts);
  });
  a.join();
  b.join();
}

}  // namespace
}  // namespace cs
