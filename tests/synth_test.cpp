// Integration and property tests for the ConfigSynth core: encoder,
// synthesizer, optimizer, unsat analysis, assistance, baseline.
#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "analysis/report.h"
#include "smt/ir.h"
#include "spec_helpers.h"
#include "synth/assistance.h"
#include "synth/baseline.h"
#include "synth/metrics.h"
#include "synth/optimizer.h"
#include "synth/synthesizer.h"
#include "synth/unsat_analysis.h"
#include "util/error.h"

namespace cs::synth {
namespace {

using cs::testing::make_example_spec;
using cs::testing::make_random_spec;
using smt::BackendKind;
using smt::CheckResult;

/// Options with a per-check cap for tests that probe threshold boundaries,
/// where instances are genuinely exponential (paper Fig. 5a).
SynthesisOptions capped_options(
    BackendKind kind = BackendKind::kZ3,
    std::int64_t limit_ms = 8000) {
  SynthesisOptions opts;
  opts.backend = kind;
  opts.check_time_limit_ms = limit_ms;
  return opts;
}

class BackendSynthTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  SynthesisOptions options() const { return SynthesisOptions{GetParam()}; }
};

TEST_P(BackendSynthTest, ExampleIsSatAndChecks) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, options());
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  ASSERT_TRUE(result.design.has_value());

  const analysis::CheckReport report =
      analysis::check_design(spec, *result.design);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(report.metrics.isolation, spec.sliders.isolation);
  EXPECT_GE(report.metrics.usability, spec.sliders.usability);
  EXPECT_LE(report.metrics.cost, spec.sliders.budget);
}

TEST_P(BackendSynthTest, ImpossibleSlidersAreUnsatWithCore) {
  model::ProblemSpec spec = make_example_spec();
  // Full isolation and full usability cannot hold at once.
  spec.sliders.isolation = util::Fixed::from_int(10);
  spec.sliders.usability = util::Fixed::from_int(10);
  Synthesizer synth(spec, options());
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kUnsat);
  EXPECT_FALSE(result.conflicting.empty());
  for (const ThresholdKind k : result.conflicting) {
    EXPECT_TRUE(k == ThresholdKind::kIsolation ||
                k == ThresholdKind::kUsability || k == ThresholdKind::kCost);
  }
}

TEST_P(BackendSynthTest, HardThresholdModeMatchesAssumptionVerdict) {
  // kHard bakes the thresholds into the formula instead of guarding them
  // with selector assumptions; both modes must agree on the verdict.
  const model::ProblemSpec spec = make_example_spec();
  SynthesisOptions hard = options();
  hard.threshold_mode = ThresholdMode::kHard;
  Synthesizer synth(spec, hard);
  EXPECT_EQ(synth.synthesize().status, CheckResult::kSat);
  // Re-solving the same triple is fine — the asserted values match.
  EXPECT_EQ(synth.synthesize().status, CheckResult::kSat);
  // A different value cannot be expressed against the asserted one.
  model::Sliders shifted = spec.sliders;
  shifted.isolation = shifted.isolation + util::Fixed::from_int(1);
  EXPECT_THROW(synth.synthesize(shifted), util::Error);
  // Warm re-solves require retractable thresholds.
  EXPECT_THROW(synth.resolve(spec.sliders), util::Error);
}

TEST_P(BackendSynthTest, HardThresholdModeUnsatHasNoCore) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed::from_int(10);
  spec.sliders.usability = util::Fixed::from_int(10);
  SynthesisOptions hard = options();
  hard.threshold_mode = ThresholdMode::kHard;
  Synthesizer synth(spec, hard);
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kUnsat);
  // No selector guards exist, so no threshold core can be extracted —
  // the documented trade-off of the hard mode.
  EXPECT_TRUE(result.conflicting.empty());
}

TEST_P(BackendSynthTest, ResolveSwapsThresholdsWithoutReencoding) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, options());
  ASSERT_EQ(synth.synthesize().status, CheckResult::kSat);
  model::Sliders relaxed = spec.sliders;
  relaxed.isolation = util::Fixed::from_int(0);
  const SynthesisResult warm = synth.resolve(relaxed);
  EXPECT_EQ(warm.status, CheckResult::kSat);
  EXPECT_EQ(warm.encode_seconds, 0.0);
  EXPECT_EQ(synth.resolves(), 1);
  // The verdict matches a cold solve of the same triple.
  Synthesizer cold(spec, options());
  EXPECT_EQ(cold.synthesize(relaxed).status, warm.status);
}

TEST_P(BackendSynthTest, SolverStatisticsGrowMonotonically) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, options());
  const smt::SolverStats before = synth.solver_statistics();
  ASSERT_EQ(synth.synthesize().status, CheckResult::kSat);
  const smt::SolverStats after = synth.solver_statistics();
  // Counters are cumulative: a real check can only move them forward.
  EXPECT_GE(after.conflicts, before.conflicts);
  EXPECT_GE(after.propagations, before.propagations);
  EXPECT_GE(after.decisions, before.decisions);
  EXPECT_GT(after.propagations + after.decisions + after.conflicts, 0);
}

TEST_P(BackendSynthTest, ZeroBudgetForcesNoDevices) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed{};
  spec.sliders.usability = util::Fixed{};
  spec.sliders.budget = util::Fixed{};
  Synthesizer synth(spec, options());
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  const DesignMetrics m = compute_metrics(spec, *result.design);
  EXPECT_EQ(m.cost, util::Fixed{});
}

TEST_P(BackendSynthTest, HighIsolationNeedsDevices) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed::from_int(6);
  spec.sliders.usability = util::Fixed{};
  spec.sliders.budget = util::Fixed::from_int(200);
  Synthesizer synth(spec, options());
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  EXPECT_GT(result.design->device_count(), 0u);
  EXPECT_TRUE(analysis::check_design(spec, *result.design).ok());
}

TEST_P(BackendSynthTest, ConnectivityRequirementsNeverDenied) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed::from_int(8);  // pressure to deny
  spec.sliders.usability = util::Fixed{};
  spec.sliders.budget = util::Fixed::from_int(300);
  Synthesizer synth(spec, options());
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  for (const model::FlowId f : spec.connectivity.sorted()) {
    EXPECT_NE(result.design->pattern(f),
              std::optional(model::IsolationPattern::kAccessDeny));
  }
}

TEST_P(BackendSynthTest, UserConstraintsRespected) {
  model::ProblemSpec spec = make_example_spec();
  const model::ServiceId svc = 0;
  const auto& hosts = spec.network.hosts();
  const model::Flow pinned{hosts[0], hosts[4], svc};
  spec.user_constraints.push_back(model::ForbidPatternForService{
      svc, model::IsolationPattern::kTrustedComm});
  spec.user_constraints.push_back(model::RequirePatternForFlow{
      pinned, model::IsolationPattern::kPayloadInspection});
  spec.sliders.isolation = util::Fixed::from_int(1);
  spec.sliders.budget = util::Fixed::from_int(150);
  Synthesizer synth(spec, SynthesisOptions{GetParam()});
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  const analysis::CheckReport report =
      analysis::check_design(spec, *result.design);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(result.design->pattern(*spec.flows.find(pinned)),
            model::IsolationPattern::kPayloadInspection);
}

TEST_P(BackendSynthTest, DenyOneOfEnforced) {
  model::ProblemSpec spec = make_example_spec();
  const auto& hosts = spec.network.hosts();
  const model::Flow open{hosts[0], hosts[6], 0};
  const model::Flow guard{hosts[9], hosts[0], 0};
  spec.user_constraints.push_back(model::DenyOneOf{open, guard});
  Synthesizer synth(spec, options());
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  const bool open_denied = result.design->pattern(*spec.flows.find(open)) ==
                           model::IsolationPattern::kAccessDeny;
  const bool guard_denied =
      result.design->pattern(*spec.flows.find(guard)) ==
      model::IsolationPattern::kAccessDeny;
  EXPECT_TRUE(open_denied || guard_denied);
}

TEST_P(BackendSynthTest, RandomSpecsSatisfyCheckerWhenSat) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const model::ProblemSpec spec = make_random_spec(seed, 8, 6);
    Synthesizer synth(spec, options());
    const SynthesisResult result = synth.synthesize();
    if (result.status == CheckResult::kSat) {
      const analysis::CheckReport report =
          analysis::check_design(spec, *result.design);
      EXPECT_TRUE(report.ok()) << "seed " << seed << "\n"
                               << report.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSynthTest,
                         ::testing::Values(BackendKind::kZ3,
                                           BackendKind::kMiniPb),
                         [](const auto& info) {
                           return info.param == BackendKind::kZ3 ? "z3"
                                                                 : "minipb";
                         });

TEST(CrossBackend, VerdictsAgreeOnRandomSpecs) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const model::ProblemSpec spec = make_random_spec(seed, 7, 5);
    Synthesizer z3(spec, SynthesisOptions{BackendKind::kZ3});
    Synthesizer mini(spec, SynthesisOptions{BackendKind::kMiniPb});
    const auto rz = z3.synthesize().status;
    const auto rm = mini.synthesize().status;
    EXPECT_EQ(rz, rm) << "seed " << seed;
  }
}

TEST(Optimizer, FindsMaximumOnExample) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const BoundSearchResult best = maximize_isolation(
      synth, spec, util::Fixed::from_int(5), util::Fixed::from_int(60));
  ASSERT_TRUE(best.feasible);
  EXPECT_GE(best.metrics.isolation, best.bound);
  EXPECT_GE(best.metrics.usability, util::Fixed::from_int(5));
  EXPECT_LE(best.metrics.cost, util::Fixed::from_int(60));
  if (best.exact) {
    // One step above the proven maximum must not be satisfiable.
    const SynthesisResult above = synth.synthesize_partial(
        best.bound + util::Fixed::from_raw(50),
        util::Fixed::from_int(5), util::Fixed::from_int(60));
    EXPECT_NE(above.status, CheckResult::kSat);
  }
}

TEST(Optimizer, MonotoneInUsability) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const auto budget = util::Fixed::from_int(100);
  const BoundSearchResult loose =
      maximize_isolation(synth, spec, util::Fixed::from_int(2), budget);
  const BoundSearchResult tight =
      maximize_isolation(synth, spec, util::Fixed::from_int(8), budget);
  ASSERT_TRUE(loose.feasible);
  ASSERT_TRUE(tight.feasible);
  if (loose.exact && tight.exact) {
    EXPECT_GE(loose.bound, tight.bound);
  }
}

TEST(Optimizer, MonotoneInBudget) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const auto usability = util::Fixed::from_int(5);
  const BoundSearchResult poor = maximize_isolation(
      synth, spec, usability, util::Fixed::from_int(20));
  const BoundSearchResult rich = maximize_isolation(
      synth, spec, usability, util::Fixed::from_int(200));
  ASSERT_TRUE(poor.feasible);
  ASSERT_TRUE(rich.feasible);
  if (poor.exact && rich.exact) {
    EXPECT_LE(poor.bound, rich.bound);
  }
}

TEST(MinCost, FindsCheapestDeployment) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const BoundSearchResult r = minimize_cost(synth, spec,
                                        util::Fixed::from_int(3),
                                        util::Fixed::from_int(4));
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.metrics.isolation, util::Fixed::from_int(3));
  EXPECT_GE(r.metrics.usability, util::Fixed::from_int(4));
  EXPECT_LE(r.metrics.cost, r.bound);
  if (r.exact) {
    // One grid step below the minimum must not be satisfiable.
    const SynthesisResult below = synth.synthesize_partial(
        util::Fixed::from_int(3), util::Fixed::from_int(4),
        r.bound - util::Fixed::from_int(1));
    EXPECT_NE(below.status, CheckResult::kSat);
  }
}

TEST(MinCost, ZeroFloorsCostNothing) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const BoundSearchResult r =
      minimize_cost(synth, spec, util::Fixed{}, util::Fixed{});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.bound, util::Fixed{});
}

TEST(MinCost, InfeasibleFloorsReported) {
  // Full isolation conflicts with connectivity requirements at any budget.
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const BoundSearchResult r = minimize_cost(
      synth, spec, util::Fixed::from_int(10), util::Fixed{});
  EXPECT_FALSE(r.feasible);
}

TEST(MinCost, MonotoneInIsolationFloor) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec, capped_options());
  const BoundSearchResult low = minimize_cost(
      synth, spec, util::Fixed::from_int(2), util::Fixed::from_int(4));
  const BoundSearchResult high = minimize_cost(
      synth, spec, util::Fixed::from_int(5), util::Fixed::from_int(4));
  ASSERT_TRUE(low.feasible);
  ASSERT_TRUE(high.feasible);
  if (low.exact && high.exact) {
    EXPECT_LE(low.bound, high.bound);
  }
}

TEST(UnsatAnalysis, SuggestsRelaxations) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed::from_int(9);
  spec.sliders.usability = util::Fixed::from_int(9);
  spec.sliders.budget = util::Fixed::from_int(5);
  Synthesizer synth(spec, capped_options());
  const UnsatReport report = analyze_unsat(synth, spec);
  ASSERT_TRUE(report.was_unsat);
  EXPECT_FALSE(report.core.empty());
  EXPECT_FALSE(report.relaxations.empty());
  // Dropping everything in the core must be satisfiable (hard constraints
  // alone admit the all-open design).
  bool full_drop_found = false;
  for (const Relaxation& r : report.relaxations)
    full_drop_found |= r.dropped.size() == report.core.size();
  EXPECT_TRUE(full_drop_found);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(UnsatAnalysis, SatInputShortCircuits) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec);
  const UnsatReport report = analyze_unsat(synth, spec);
  EXPECT_FALSE(report.was_unsat);
  EXPECT_TRUE(report.core.empty());
}

TEST(Assistance, EndpointsMatchPaperScale) {
  const model::ProblemSpec spec = make_example_spec();
  const std::vector<SliderChoice> rows = slider_assistance(spec);
  ASSERT_GE(rows.size(), 4u);
  // Row 0: everything denied -> isolation 10, usability 0.
  EXPECT_EQ(rows[0].isolation, util::Fixed::from_int(10));
  EXPECT_EQ(rows[0].usability, util::Fixed::from_int(0));
  // Row 1: nothing isolated -> isolation 0, usability 10.
  EXPECT_EQ(rows[1].isolation, util::Fixed::from_int(0));
  EXPECT_EQ(rows[1].usability, util::Fixed::from_int(10));
  // Deny-except-CR sits between, high isolation.
  EXPECT_GT(rows[2].isolation, util::Fixed::from_int(7));
  EXPECT_LT(rows[2].isolation, util::Fixed::from_int(10));
  EXPECT_FALSE(render_assistance(rows).empty());
}

TEST(Baseline, ProducesStructurallyValidDesign) {
  model::ProblemSpec spec = make_example_spec();
  spec.sliders.isolation = util::Fixed::from_int(2);
  spec.sliders.usability = util::Fixed::from_int(3);
  spec.sliders.budget = util::Fixed::from_int(80);
  const BaselineResult result = greedy_baseline(spec);
  const analysis::CheckReport report =
      analysis::check_design(spec, result.design,
                             /*check_thresholds=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Budget and usability honored by construction.
  EXPECT_LE(result.metrics.cost, spec.sliders.budget);
  EXPECT_GE(result.metrics.usability, spec.sliders.usability);
}

TEST(Baseline, NeverBeatsOptimalIsolation) {
  for (std::uint64_t seed = 21; seed < 24; ++seed) {
    model::ProblemSpec spec = make_random_spec(seed, 6, 5);
    spec.sliders.usability = util::Fixed::from_int(4);
    spec.sliders.budget = util::Fixed::from_int(60);
    const BaselineResult greedy = greedy_baseline(spec);
    Synthesizer synth(spec, capped_options());
    const BoundSearchResult best = maximize_isolation(
        synth, spec, spec.sliders.usability, spec.sliders.budget);
    ASSERT_TRUE(best.feasible);
    if (best.exact) {
      EXPECT_LE(greedy.metrics.isolation.raw(),
                best.metrics.isolation.raw() + 50)  // grid slack
          << "seed " << seed;
    }
  }
}

TEST(Metrics, AllDenyScoresFullIsolationZeroUsability) {
  model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  for (std::size_t f = 0; f < spec.flows.size(); ++f)
    design.set_pattern(static_cast<model::FlowId>(f),
                       model::IsolationPattern::kAccessDeny);
  const DesignMetrics m = compute_metrics(spec, design);
  EXPECT_EQ(m.isolation, util::Fixed::from_int(10));
  EXPECT_EQ(m.usability, util::Fixed::from_int(0));
  EXPECT_EQ(m.cost, util::Fixed::from_int(0));  // no devices placed
}

TEST(Metrics, EmptyDesignScoresZeroIsolationFullUsability) {
  const model::ProblemSpec spec = make_example_spec();
  const SecurityDesign design(spec.flows.size(), spec.network.link_count());
  const DesignMetrics m = compute_metrics(spec, design);
  EXPECT_EQ(m.isolation, util::Fixed::from_int(0));
  EXPECT_EQ(m.usability, util::Fixed::from_int(10));
}

TEST(Metrics, HostIsolationTracksProtection) {
  model::ProblemSpec spec = make_example_spec();
  SecurityDesign design(spec.flows.size(), spec.network.link_count());
  // Deny all traffic towards host[4] (h5) only.
  const topology::NodeId h5 = spec.network.hosts()[4];
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows.flow(static_cast<model::FlowId>(f)).dst == h5)
      design.set_pattern(static_cast<model::FlowId>(f),
                         model::IsolationPattern::kAccessDeny);
  }
  const DesignMetrics m = compute_metrics(spec, design);
  // h5's isolation must exceed h1's.
  EXPECT_GT(m.host_isolation[4], m.host_isolation[0]);
}

TEST(MinimizePlacements, RemovesSlackKeepsValidity) {
  model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec);
  SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  SecurityDesign design = *result.design;
  const util::Fixed cost_before = compute_metrics(spec, design).cost;
  analysis::minimize_placements(spec, design);
  const analysis::CheckReport report = analysis::check_design(spec, design,
                                                              false);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_LE(compute_metrics(spec, design).cost, cost_before);
}

TEST(Report, RendersForSatAndUnsat) {
  model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec);
  const SynthesisResult sat = synth.synthesize();
  EXPECT_NE(analysis::render_report(spec, sat).find("SAT"),
            std::string::npos);
  const SynthesisResult unsat = synth.synthesize_partial(
      util::Fixed::from_int(10), util::Fixed::from_int(10),
      util::Fixed::from_int(1));
  EXPECT_NE(analysis::render_report(spec, unsat).find("UNSAT"),
            std::string::npos);
}

TEST(Design, TableAndLabels) {
  const model::ProblemSpec spec = make_example_spec();
  Synthesizer synth(spec);
  const SynthesisResult result = synth.synthesize();
  ASSERT_EQ(result.status, CheckResult::kSat);
  EXPECT_FALSE(result.design->isolation_table(spec).empty());
  EXPECT_FALSE(result.design->to_string(spec).empty());
}

}  // namespace
}  // namespace cs::synth
