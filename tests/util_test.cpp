// Unit tests for the utility substrate.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/fixed.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace cs::util {
namespace {

TEST(Fixed, BasicArithmetic) {
  const Fixed a = Fixed::from_int(3);
  const Fixed b = Fixed::from_double(1.5);
  EXPECT_EQ((a + b).to_string(), "4.5");
  EXPECT_EQ((a - b).to_string(), "1.5");
  EXPECT_EQ((a * 2).to_string(), "6");
  EXPECT_EQ((a / 2).to_string(), "1.5");
  EXPECT_EQ((-b).to_string(), "-1.5");
}

TEST(Fixed, FixedTimesFixedRounds) {
  const Fixed half = Fixed::from_double(0.5);
  const Fixed third = Fixed::from_raw(333);  // 0.333
  EXPECT_EQ((half * third).raw(), 167);      // 0.1665 -> 0.167
  EXPECT_EQ((half * half).raw(), 250);
}

TEST(Fixed, ComparisonAndOrdering) {
  EXPECT_LT(Fixed::from_int(1), Fixed::from_int(2));
  EXPECT_EQ(Fixed::from_double(2.0), Fixed::from_int(2));
  EXPECT_GT(Fixed::from_raw(1), Fixed{});
}

TEST(Fixed, ToStringEdgeCases) {
  EXPECT_EQ(Fixed{}.to_string(), "0");
  EXPECT_EQ(Fixed::from_raw(-500).to_string(), "-0.5");
  EXPECT_EQ(Fixed::from_raw(1200).to_string(), "1.2");
  EXPECT_EQ(Fixed::from_raw(1001).to_string(), "1.001");
}

TEST(Fixed, RoundDiv) {
  EXPECT_EQ(round_div(10, 3), 3);
  EXPECT_EQ(round_div(11, 3), 4);
  EXPECT_EQ(round_div(0, 7), 0);
}

TEST(Fixed, SaturatesAtTheRails) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const Fixed top = Fixed::from_raw(kMax);
  const Fixed bottom = Fixed::from_raw(kMin);
  const Fixed one = Fixed::from_int(1);

  // Addition/subtraction past the rails clamps instead of wrapping: a
  // giant cost sum must stay "very large", never flip sign.
  EXPECT_EQ((top + one).raw(), kMax);
  EXPECT_EQ((bottom - one).raw(), kMin);
  EXPECT_EQ((bottom + (-one)).raw(), kMin);
  Fixed acc = top;
  acc += top;
  EXPECT_EQ(acc.raw(), kMax);
  acc = bottom;
  acc -= top;
  EXPECT_EQ(acc.raw(), kMin);

  // Exactly at the boundary is still exact, one unit over clamps.
  EXPECT_EQ((Fixed::from_raw(kMax - 1) + Fixed::from_raw(1)).raw(), kMax);
  EXPECT_EQ((Fixed::from_raw(kMax - 1) + Fixed::from_raw(2)).raw(), kMax);

  // Negating the minimum clamps to the maximum (|kMin| is unrepresentable).
  EXPECT_EQ((-bottom).raw(), kMax);

  // Multiplication saturates with the algebraic sign.
  EXPECT_EQ((top * 2).raw(), kMax);
  EXPECT_EQ((top * -2).raw(), kMin);
  EXPECT_EQ((bottom * 2).raw(), kMin);
  EXPECT_EQ((top * top).raw(), kMax);
  EXPECT_EQ((top * bottom).raw(), kMin);
  EXPECT_EQ((bottom * bottom).raw(), kMax);

  // Saturation keeps ordering monotone: clamped sums compare as maximal.
  EXPECT_GE(top + one, top);
  EXPECT_LE(bottom - one, bottom);

  // In-range arithmetic is untouched by the saturation paths.
  EXPECT_EQ((Fixed::from_int(3) + Fixed::from_int(4)).to_string(), "7");
  EXPECT_EQ((Fixed::from_int(-3) * 5).to_string(), "-15");
}

TEST(Fixed, EuclideanDivMod) {
  // Quotient rounds toward -inf, remainder is always in [0, |b|).
  EXPECT_EQ(euclidean_div(7, 3), 2);
  EXPECT_EQ(euclidean_mod(7, 3), 1);
  EXPECT_EQ(euclidean_div(-7, 3), -3);
  EXPECT_EQ(euclidean_mod(-7, 3), 2);
  EXPECT_EQ(euclidean_div(7, -3), -2);
  EXPECT_EQ(euclidean_mod(7, -3), 1);
  EXPECT_EQ(euclidean_div(-7, -3), 3);
  EXPECT_EQ(euclidean_mod(-7, -3), 2);
  // Identity a == b * div + mod holds for every sign combination.
  for (std::int64_t a : {-9, -1, 0, 1, 9})
    for (std::int64_t b : {-4, -1, 1, 4})
      EXPECT_EQ(a, b * euclidean_div(a, b) + euclidean_mod(a, b));
  // Division by zero is total (Halide semantics), not a trap.
  EXPECT_EQ(euclidean_div(5, 0), 0);
  EXPECT_EQ(euclidean_mod(5, 0), 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform(4, 4), 4);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimAndJoin) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, ParseIntErrors) {
  EXPECT_EQ(parse_int("42", "n"), 42);
  EXPECT_EQ(parse_int("-7", "n"), -7);
  EXPECT_THROW(parse_int("4x", "n"), SpecError);
  EXPECT_THROW(parse_int("", "n"), SpecError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "d"), 2.5);
  EXPECT_THROW(parse_double("abc", "d"), SpecError);
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| alpha | 1 "), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), SpecError);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/cs_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    ASSERT_TRUE(w.ok());
    w.add_row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Memory, RssIsPositiveOnLinux) {
  EXPECT_GT(current_rss_bytes(), 0);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(Timer, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.elapsed_seconds(), 0.0);
  EXPECT_GE(w.elapsed_ms(), 0.0);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed levels must not crash (and must not emit).
  log_debug() << "suppressed " << 42;
  log_info() << "suppressed";
  set_log_level(LogLevel::kOff);
  log_error() << "also suppressed";
  set_log_level(before);
}

TEST(Fixed, DivisionByNegative) {
  EXPECT_EQ((Fixed::from_int(3) / -2).to_string(), "-1.5");
}

TEST(Fixed, FromDoubleRounding) {
  EXPECT_EQ(Fixed::from_double(0.0004).raw(), 0);
  EXPECT_EQ(Fixed::from_double(0.0006).raw(), 1);
  EXPECT_EQ(Fixed::from_double(-0.0006).raw(), -1);
}

TEST(Error, RequireThrowsSpecError) {
  EXPECT_THROW(CS_REQUIRE(false, "boom"), SpecError);
  EXPECT_NO_THROW(CS_REQUIRE(true, "fine"));
  EXPECT_THROW(CS_ENSURE(false, "bug"), InternalError);
}

}  // namespace
}  // namespace cs::util
