// Quickstart: synthesize a security design for the paper's running example
// (Fig. 2, Tables IV-V).
//
// Builds the 10-host / 8-router example network, one service between every
// host pair, a handful of connectivity requirements, and slider values
// (isolation 3, usability 4, budget $60K); then solves, verifies the
// design with the independent checker, and prints the paper's artifacts:
// the Table V isolation classification, the device placements, and DOT
// renderings of the network before and after synthesis.
//
// Usage: quickstart [z3|minipb]
#include <fstream>
#include <iostream>

#include "analysis/checker.h"
#include "analysis/report.h"
#include "model/input_file.h"
#include "synth/assistance.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"
#include "topology/graphviz.h"

namespace {

cs::model::ProblemSpec build_example() {
  using namespace cs;
  model::ProblemSpec spec;
  spec.network = topology::make_paper_example();
  const model::ServiceId svc = spec.services.add("svc");
  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts)
    for (const topology::NodeId j : hosts)
      if (i != j) spec.flows.add(model::Flow{i, j, svc});

  const auto require = [&](int from, int to) {
    spec.connectivity.add(*spec.flows.find(
        model::Flow{hosts[static_cast<std::size_t>(from - 1)],
                    hosts[static_cast<std::size_t>(to - 1)], svc}));
  };
  // The user subnets must reach the server subnet; the DMZ serves h5/h6.
  require(1, 5);
  require(1, 6);
  require(2, 5);
  require(3, 7);
  require(4, 8);
  require(9, 5);
  require(10, 6);

  spec.sliders = cs::model::Sliders{cs::util::Fixed::from_int(3),
                                    cs::util::Fixed::from_int(4),
                                    cs::util::Fixed::from_int(60)};
  spec.finalize();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs;
  try {
    synth::SynthesisOptions options;
    if (argc > 1) options.backend = smt::backend_from_name(argv[1]);

    const model::ProblemSpec spec = build_example();
    std::cout << "=== Input (paper Table IV format) ===\n"
              << model::serialize_input(spec) << "\n";

    std::cout << "=== Slider assistance (paper Table III) ===\n"
              << synth::render_assistance(synth::slider_assistance(spec))
              << "\n";

    synth::Synthesizer synthesizer(spec, options);
    const synth::SynthesisResult result = synthesizer.synthesize();
    std::cout << analysis::render_report(spec, result) << "\n";

    if (result.status != smt::CheckResult::kSat) return 1;

    synth::SecurityDesign design = *result.design;
    analysis::minimize_placements(spec, design);

    std::cout << "=== Isolation patterns (paper Table V) ===\n"
              << design.isolation_table(spec) << "\n";
    std::cout << "=== Placements ===\n" << design.to_string(spec);

    std::ofstream("quickstart_before.dot") << topology::to_dot(spec.network);
    std::ofstream("quickstart_after.dot")
        << topology::to_dot(spec.network, design.link_labels());
    std::cout << "\nWrote quickstart_before.dot / quickstart_after.dot "
                 "(paper Fig. 2a/2b).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
