// Enterprise campus scenario: a realistic multi-service synthesis.
//
// A two-tier campus network (topology/structured.h: 2 core routers, 5
// buildings with one access router each — 12 routers, 20 host groups,
// Internet uplink on core 1) runs the standard service catalog. The
// generator is deterministic, so every run synthesizes for the exact
// same fabric. The organization specifies:
//   * service demand ranks (WEB and DB matter most),
//   * UIC1: no IPSec tunneling for SSH (it is already encrypted),
//   * UIC3: no trusted-communication pattern for WEB,
//   * UIC2: workstation h1 may reach the DB server only if the Internet
//     cannot reach h1 (conditional access via DenyOneOf),
//   * connectivity requirements for the business-critical flows.
// The example synthesizes a design, verifies it, and then uses the
// optimizer to report the best reachable isolation under the same budget.
//
// Usage: enterprise_campus [z3|minipb]
#include <iostream>

#include "analysis/checker.h"
#include "analysis/exposure.h"
#include "analysis/report.h"
#include "synth/optimizer.h"
#include "synth/synthesizer.h"
#include "topology/structured.h"

int main(int argc, char** argv) {
  using namespace cs;
  try {
    synth::SynthesisOptions options;
    options.check_time_limit_ms = 20000;     // boundary probes are hard
    options.check_conflict_limit = 200'000;  // keep them bounded anywhere
    if (argc > 1) options.backend = smt::backend_from_name(argv[1]);

    model::ProblemSpec spec;

    topology::CampusConfig net_cfg;
    net_cfg.cores = 2;
    net_cfg.buildings = 5;
    net_cfg.access_per_building = 1;
    net_cfg.hosts = 20;
    net_cfg.include_internet = true;
    spec.network = topology::make_campus(net_cfg);

    model::add_standard_services(spec.services);
    const model::ServiceId web = *spec.services.find("WEB");
    const model::ServiceId ssh = *spec.services.find("SSH");
    const model::ServiceId db = *spec.services.find("DB");
    const model::ServiceId dns = *spec.services.find("DNS");

    // Flows: every host group consumes WEB+DNS from two server groups,
    // admins (first two groups) get SSH everywhere, the app tier talks DB.
    const auto& hosts = spec.network.hosts();
    const topology::NodeId web_srv = hosts[18];
    const topology::NodeId db_srv = hosts[19];
    topology::NodeId internet = topology::kInvalidNode;
    for (const topology::NodeId h : hosts)
      if (spec.network.node(h).is_internet) internet = h;

    for (const topology::NodeId h : hosts) {
      if (h == web_srv || h == db_srv || h == internet) continue;
      spec.flows.add(model::Flow{h, web_srv, web});
      spec.flows.add(model::Flow{h, web_srv, dns});
      spec.flows.add(model::Flow{h, db_srv, db});
    }
    for (int admin = 0; admin < 2; ++admin) {
      for (const topology::NodeId h : hosts) {
        if (h == hosts[static_cast<std::size_t>(admin)] || h == internet)
          continue;
        spec.flows.add(
            model::Flow{hosts[static_cast<std::size_t>(admin)], h, ssh});
      }
    }
    // The Internet reaches the public web server, and may probe h1.
    spec.flows.add(model::Flow{internet, web_srv, web});
    spec.flows.add(model::Flow{internet, hosts[0], web});

    // Connectivity requirements: all WEB flows to the public server plus
    // the admins' SSH into the server groups.
    for (std::size_t f = 0; f < spec.flows.size(); ++f) {
      const model::Flow& flow =
          spec.flows.flow(static_cast<model::FlowId>(f));
      if (flow.dst == web_srv && flow.service == web)
        spec.connectivity.add(static_cast<model::FlowId>(f));
      if (flow.service == ssh && (flow.dst == web_srv || flow.dst == db_srv))
        spec.connectivity.add(static_cast<model::FlowId>(f));
    }

    // Demand ranks: WEB=DB > SSH > DNS and the rest.
    std::vector<model::OrderConstraint> demand;
    demand.push_back({static_cast<std::size_t>(web),
                      static_cast<std::size_t>(db),
                      model::OrderRelation::kEqual});
    demand.push_back({static_cast<std::size_t>(web),
                      static_cast<std::size_t>(ssh),
                      model::OrderRelation::kGreater});
    demand.push_back({static_cast<std::size_t>(ssh),
                      static_cast<std::size_t>(dns),
                      model::OrderRelation::kGreater});
    spec.ranks = model::FlowRanks::from_service_order(
        spec.flows, spec.services.size(), demand);

    // User-defined isolation policies.
    spec.user_constraints.push_back(model::ForbidPatternForService{
        ssh, model::IsolationPattern::kTrustedComm});  // UIC1
    spec.user_constraints.push_back(model::ForbidPatternForService{
        web, model::IsolationPattern::kTrustedComm});  // UIC3
    spec.user_constraints.push_back(model::DenyOneOf{
        model::Flow{hosts[0], db_srv, db},
        model::Flow{internet, hosts[0], web}});  // UIC2

    // Risk-based constraint: the DB server is the crown jewel — its
    // per-host isolation must reach at least 5 regardless of the global
    // slider (RMC).
    spec.host_requirements.push_back(model::HostIsolationRequirement{
        db_srv, util::Fixed::from_int(5)});

    spec.sliders = model::Sliders{util::Fixed::from_int(3),
                                  util::Fixed::from_int(5),
                                  util::Fixed::from_int(120)};
    spec.finalize();

    std::cout << "campus: " << spec.network.host_count() << " host groups, "
              << spec.network.router_count() << " routers, "
              << spec.flows.size() << " flows, "
              << spec.connectivity.size() << " connectivity requirements\n\n";

    synth::Synthesizer synthesizer(spec, options);
    const synth::SynthesisResult result = synthesizer.synthesize();
    std::cout << analysis::render_report(spec, result) << "\n";
    if (result.status != smt::CheckResult::kSat) return 1;

    std::cout << "=== Exposure (worst first) ===\n"
              << analysis::render_exposure(
                     analysis::compute_exposure(spec, *result.design))
              << "\n";

    const synth::BoundSearchResult best = synth::maximize_isolation(
        synthesizer, spec, spec.sliders.usability, spec.sliders.budget);
    std::cout << "max isolation under usability>="
              << spec.sliders.usability << ", budget<=" << spec.sliders.budget
              << ": " << best.metrics.isolation << " (threshold "
              << best.bound << ", " << best.probes << " probes, "
              << best.solve_seconds << "s)\n";
    std::cout << "optimal design: usability=" << best.metrics.usability
              << " cost=" << best.metrics.cost << " devices="
              << best.design->device_count() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
