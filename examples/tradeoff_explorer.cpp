// Trade-off explorer: the isolation/usability/cost frontier of a network.
//
// Uses the frontier API to sweep usability floors under two budgets — an
// interactive version of the paper's Fig. 3(a) analysis, runnable on any
// generated network.
//
// Usage: tradeoff_explorer [z3|minipb] [hosts] [routers] [seed]
#include <iostream>

#include "model/spec.h"
#include "synth/frontier.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace cs;
  try {
    synth::SynthesisOptions options;
    options.check_time_limit_ms = 20000;  // boundary probes are hard
    if (argc > 1) options.backend = smt::backend_from_name(argv[1]);
    const int hosts =
        argc > 2 ? static_cast<int>(util::parse_int(argv[2], "hosts")) : 10;
    const int routers =
        argc > 3 ? static_cast<int>(util::parse_int(argv[3], "routers")) : 8;
    const std::uint64_t seed =
        argc > 4
            ? static_cast<std::uint64_t>(util::parse_int(argv[4], "seed"))
            : 7;

    util::Rng rng(seed);
    model::ProblemSpec spec;
    topology::GeneratorConfig net_cfg;
    net_cfg.hosts = hosts;
    net_cfg.routers = routers;
    spec.network = topology::generate_topology(net_cfg, rng);
    model::WorkloadConfig wl;
    wl.cr_fraction = 0.1;
    model::populate_random_workload(spec, wl, rng);
    spec.sliders.budget = util::Fixed::from_int(100);

    std::cout << "network: " << hosts << " hosts, " << routers
              << " routers, " << spec.flows.size() << " flows ("
              << spec.connectivity.size() << " required)\n\n";

    const synth::FrontierOptions fopts =
        synth::FrontierOptions::fig3_defaults(util::Fixed::from_int(60),
                                              util::Fixed::from_int(150));
    const auto points = synth::explore_frontier(spec, options, fopts);
    std::cout << synth::render_frontier(points);
    std::cout << "\nReading: isolation falls as the usability floor rises; "
                 "the larger budget dominates row by row (paper Fig. 3a). "
                 "A '+' marks a capped probe (value is a lower bound).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
