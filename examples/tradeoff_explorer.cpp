// Trade-off explorer: the isolation/usability/cost frontier of a network.
//
// Uses the frontier API to sweep usability floors under two budgets — an
// interactive version of the paper's Fig. 3(a) analysis, runnable on any
// generated network.
//
// Usage: tradeoff_explorer [z3|minipb] [hosts] [routers] [seed] [--jobs N]
//                          [--trace-out <file>]
//
// The sweep runs on one worker per hardware thread by default; --jobs 1
// forces a serial run (the results are identical either way).
// --trace-out records a Chrome-trace-event JSON timeline (per-worker
// sweep-point spans; open in Perfetto).
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "model/spec.h"
#include "obs/trace.h"
#include "synth/frontier.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace cs;
  try {
    // Split off the flags, keep the positional arguments.
    int jobs = 0;  // 0 = one worker per hardware thread
    std::string trace_path;
    std::vector<std::string_view> args;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--jobs" && i + 1 < argc) {
        jobs = static_cast<int>(util::parse_int(argv[++i], "--jobs"));
      } else if (std::string_view(argv[i]) == "--trace-out" && i + 1 < argc) {
        trace_path = argv[++i];
      } else {
        args.push_back(argv[i]);
      }
    }
    if (!trace_path.empty()) {
      obs::session().enable();
      obs::session().set_thread_name("main");
    }

    synth::SynthesisOptions options;
    options.check_time_limit_ms = 20000;  // boundary probes are hard
    if (args.size() > 0)
      options.backend = smt::backend_from_name(std::string(args[0]));
    const int hosts =
        args.size() > 1
            ? static_cast<int>(util::parse_int(args[1], "hosts"))
            : 10;
    const int routers =
        args.size() > 2
            ? static_cast<int>(util::parse_int(args[2], "routers"))
            : 8;
    const std::uint64_t seed =
        args.size() > 3
            ? static_cast<std::uint64_t>(util::parse_int(args[3], "seed"))
            : 7;

    util::Rng rng(seed);
    model::ProblemSpec spec;
    topology::GeneratorConfig net_cfg;
    net_cfg.hosts = hosts;
    net_cfg.routers = routers;
    spec.network = topology::generate_topology(net_cfg, rng);
    model::WorkloadConfig wl;
    wl.cr_fraction = 0.1;
    model::populate_random_workload(spec, wl, rng);
    spec.sliders.budget = util::Fixed::from_int(100);

    std::cout << "network: " << hosts << " hosts, " << routers
              << " routers, " << spec.flows.size() << " flows ("
              << spec.connectivity.size() << " required)\n\n";

    synth::FrontierOptions fopts =
        synth::FrontierOptions::fig3_defaults(util::Fixed::from_int(60),
                                              util::Fixed::from_int(150));
    fopts.jobs = jobs;
    const auto points = synth::explore_frontier(spec, options, fopts);
    std::cout << synth::render_frontier(points);
    std::cout << "\nReading: isolation falls as the usability floor rises; "
                 "the larger budget dominates row by row (paper Fig. 3a). "
                 "A '+' marks a capped probe (value is a lower bound).\n";
    if (!trace_path.empty()) {
      obs::session().disable();
      obs::session().write_json(trace_path);
      std::cout << "trace written to " << trace_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
