// Trade-off explorer: the isolation/usability/cost frontier of a network.
//
// Uses the frontier API to sweep usability floors under two budgets — an
// interactive version of the paper's Fig. 3(a) analysis, runnable on any
// generated network.
//
// Usage: tradeoff_explorer [z3|minipb] [hosts] [routers] [seed] [flags]
//
// Flags are the shared surface of net/options.h (the positional backend,
// when given, wins over --backend; --jobs picks the sweep workers, 0 = one per
// hardware thread and 1 forces a serial run with identical results;
// --time-limit/--conflict-limit cap each probe; --trace-out records a
// Chrome-trace-event JSON timeline with per-worker sweep-point spans).
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "model/spec.h"
#include "net/options.h"
#include "obs/trace.h"
#include "synth/frontier.h"
#include "synth/synthesizer.h"
#include "topology/generator.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace cs;
  try {
    // Split off the flags, keep the positional arguments.
    net::CommonOptions opts;
    opts.synthesis.check_time_limit_ms = 20000;  // boundary probes are hard
    opts.service.workers = 0;  // one sweep worker per hardware thread
    std::vector<std::string_view> args;
    for (int i = 1; i < argc; ++i) {
      if (net::consume_common_flag(opts, argc, argv, i)) continue;
      args.push_back(argv[i]);
    }
    if (!opts.trace_path.empty()) {
      obs::session().enable();
      obs::session().set_thread_name("main");
    }

    if (args.size() > 0)
      opts.synthesis.backend = smt::backend_from_name(std::string(args[0]));
    const int hosts =
        args.size() > 1
            ? static_cast<int>(util::parse_int(args[1], "hosts"))
            : 10;
    const int routers =
        args.size() > 2
            ? static_cast<int>(util::parse_int(args[2], "routers"))
            : 8;
    const std::uint64_t seed =
        args.size() > 3
            ? static_cast<std::uint64_t>(util::parse_int(args[3], "seed"))
            : 7;

    util::Rng rng(seed);
    model::ProblemSpec spec;
    topology::GeneratorConfig net_cfg;
    net_cfg.hosts = hosts;
    net_cfg.routers = routers;
    spec.network = topology::generate_topology(net_cfg, rng);
    model::WorkloadConfig wl;
    wl.cr_fraction = 0.1;
    model::populate_random_workload(spec, wl, rng);
    spec.sliders.budget = util::Fixed::from_int(100);

    std::cout << "network: " << hosts << " hosts, " << routers
              << " routers, " << spec.flows.size() << " flows ("
              << spec.connectivity.size() << " required)\n\n";

    synth::FrontierOptions fopts =
        synth::FrontierOptions::fig3_defaults(util::Fixed::from_int(60),
                                              util::Fixed::from_int(150));
    fopts.jobs = opts.service.workers;
    const auto points = synth::explore_frontier(spec, opts.synthesis, fopts);
    std::cout << synth::render_frontier(points);
    std::cout << "\nReading: isolation falls as the usability floor rises; "
                 "the larger budget dominates row by row (paper Fig. 3a). "
                 "A '+' marks a capped probe (value is a lower bound).\n";
    if (!opts.trace_path.empty()) {
      obs::session().disable();
      obs::session().write_json(opts.trace_path);
      std::cout << "trace written to " << opts.trace_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
