// UNSAT analysis demo (paper §IV-B, Algorithm 1).
//
// Loads the running example with deliberately conflicting sliders —
// isolation 9, usability 9, budget $5K — and shows how ConfigSynth
// explains the failure: the unsat core names the clashing threshold
// constraints, and Algorithm 1 re-solves with subsets of the core dropped
// to suggest satisfiable slider values.
//
// Usage: unsat_analysis_demo [z3|minipb]
#include <iostream>

#include "model/spec.h"
#include "synth/synthesizer.h"
#include "synth/unsat_analysis.h"
#include "topology/generator.h"

int main(int argc, char** argv) {
  using namespace cs;
  try {
    synth::SynthesisOptions options;
    options.check_time_limit_ms = 15000;  // some relaxations stay hard
    if (argc > 1) options.backend = smt::backend_from_name(argv[1]);

    model::ProblemSpec spec;
    spec.network = topology::make_paper_example();
    const model::ServiceId svc = spec.services.add("svc");
    const auto& hosts = spec.network.hosts();
    for (const topology::NodeId i : hosts)
      for (const topology::NodeId j : hosts)
        if (i != j) spec.flows.add(model::Flow{i, j, svc});
    // Quarter of the flows are business-critical.
    for (std::size_t f = 0; f < spec.flows.size(); f += 4)
      spec.connectivity.add(static_cast<model::FlowId>(f));

    spec.sliders = model::Sliders{util::Fixed::from_int(9),
                                  util::Fixed::from_int(9),
                                  util::Fixed::from_int(5)};
    spec.finalize();

    std::cout << "sliders: isolation>=" << spec.sliders.isolation
              << " usability>=" << spec.sliders.usability << " budget<=$"
              << spec.sliders.budget << "K\n\n";

    synth::Synthesizer synthesizer(spec, options);
    const synth::UnsatReport report =
        synth::analyze_unsat(synthesizer, spec);
    std::cout << report.to_string();

    if (report.was_unsat && !report.relaxations.empty()) {
      std::cout << "\nPick any suggested relaxation, adjust the sliders to "
                   "the achievable values, and re-run synthesis.\n";
    }
    return report.was_unsat ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
