// Synthesize directly from a paper-format input file (Table IV).
//
// Usage: from_input_file <input.cfg> [z3|minipb]
//
// Try it on the bundled running example:
//   ./from_input_file ../examples/data/paper_example.cfg
#include <iostream>

#include "analysis/checker.h"
#include "analysis/report.h"
#include "model/input_file.h"
#include "synth/synthesizer.h"
#include "synth/unsat_analysis.h"

int main(int argc, char** argv) {
  using namespace cs;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <input.cfg> [z3|minipb]\n";
    return 2;
  }
  try {
    synth::SynthesisOptions options;
    if (argc > 2) options.backend = smt::backend_from_name(argv[2]);

    const model::ProblemSpec spec = model::parse_input_file(argv[1]);
    std::cout << "loaded: " << spec.network.host_count() << " hosts, "
              << spec.network.router_count() << " routers, "
              << spec.flows.size() << " flows, "
              << spec.connectivity.size() << " connectivity requirements\n"
              << "sliders: isolation>=" << spec.sliders.isolation
              << " usability>=" << spec.sliders.usability << " budget<=$"
              << spec.sliders.budget << "K\n\n";

    synth::Synthesizer synthesizer(spec, options);
    const synth::SynthesisResult result = synthesizer.synthesize();
    std::cout << analysis::render_report(spec, result);

    if (result.status == smt::CheckResult::kSat) {
      synth::SecurityDesign design = *result.design;
      analysis::minimize_placements(spec, design);
      std::cout << "\n" << design.isolation_table(spec) << "\n"
                << design.to_string(spec);
      return 0;
    }
    if (result.status == smt::CheckResult::kUnsat) {
      // Explain the conflict (Algorithm 1).
      std::cout << "\n"
                << synth::analyze_unsat(synthesizer, spec).to_string();
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
