// configsynth_cli — the command-line face of the library.
//
// Subcommands:
//   synth <input.cfg>            synthesize for the file's slider values,
//                                print report, Table V, placements,
//                                exposure, and save the design
//   optimize <input.cfg>         maximize isolation under the file's
//                                usability/budget sliders
//   frontier <input.cfg>         sweep the usability/budget trade-off grid
//   assist <input.cfg>           print the Table III slider assistance
//   explain <input.cfg>          run Algorithm 1 on an UNSAT slider triple
//   check <input.cfg> <design>   re-validate a saved design file
//
// Common flags (after the subcommand arguments) are the shared surface
// of net/options.h — --backend, --time-limit, --conflict-limit, --jobs
// (sweep workers for `frontier`; 0 = one per hardware thread), and
// --trace-out; the service-only flags (--queue-limit, --cache-capacity,
// --metrics-*) are accepted for uniformity but only apply to the
// service-backed binaries. `synth` honors --shard/--shard-regions by
// solving through shard::ShardedSynthesizer (region solves run on
// --jobs workers) and prints the partition/stitch summary before the
// usual report. Plus:
//   --out <file>          where `synth` writes the design (default
//                         design.txt)
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/checker.h"
#include "analysis/design_io.h"
#include "analysis/exposure.h"
#include "analysis/report.h"
#include "model/input_file.h"
#include "net/options.h"
#include "obs/trace.h"
#include "shard/sharded.h"
#include "synth/assistance.h"
#include "synth/frontier.h"
#include "synth/optimizer.h"
#include "synth/synthesizer.h"
#include "synth/unsat_analysis.h"
#include "util/strings.h"

namespace {

using namespace cs;

struct CliOptions {
  /// Shared flag surface; `common.service.workers` doubles as the sweep
  /// worker count for `frontier`.
  net::CommonOptions common;
  std::string out_path = "design.txt";
};

CliOptions parse_flags(int argc, char** argv, int first_flag) {
  CliOptions opts;
  opts.common.synthesis.check_time_limit_ms = 20000;
  opts.common.service.workers = 0;  // frontier: one per hardware thread
  for (int i = first_flag; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      CS_REQUIRE(i + 1 < argc, "flag " + flag + " needs a value");
      return argv[++i];
    };
    if (net::consume_common_flag(opts.common, argc, argv, i)) {
    } else if (flag == "--out") {
      opts.out_path = next();
    } else {
      throw util::SpecError("unknown flag '" + flag + "'");
    }
  }
  return opts;
}

/// `synth` with --shard/--shard-regions: solve through the shard
/// pipeline (partition → per-region solves → stitch, monolithic
/// fallback on a failed stitch) and render the same report from the
/// merged design. Verdicts match the monolithic path by construction.
int cmd_synth_sharded(const model::ProblemSpec& spec,
                      const CliOptions& opts) {
  shard::ShardOptions shard_options;
  shard_options.synthesis = opts.common.synthesis;
  shard_options.regions = opts.common.service.shard_regions < 0
                              ? 0
                              : opts.common.service.shard_regions;
  shard_options.jobs = opts.common.service.workers;
  shard::ShardedOutcome outcome =
      shard::ShardedSynthesizer(spec, shard_options).synthesize();

  std::cout << "=== Sharded synthesis ===\n"
            << "regions " << outcome.regions << ", cut links "
            << outcome.cut_links << ", cross-region flows "
            << outcome.cross_flows << "\n";
  if (outcome.used_fallback) {
    std::cout << "fallback to monolithic solve (" << outcome.fallback_reason
              << ")\n";
  } else {
    std::cout << "stitched: " << outcome.escalated_flows
              << " cross flows escalated, " << outcome.repair_placements
              << " repair placements\n";
  }
  std::cout << "plan " << outcome.plan_seconds << "s, regions "
            << outcome.region_wall_seconds << "s, stitch "
            << outcome.stitch_seconds << "s, total " << outcome.wall_seconds
            << "s\n\n";

  synth::SynthesisResult result;
  result.status = outcome.status;
  result.design = std::move(outcome.design);
  result.conflicting = std::move(outcome.conflicting);
  result.solve_seconds = outcome.wall_seconds;
  std::cout << analysis::render_report(spec, result);
  if (result.status != smt::CheckResult::kSat) {
    if (result.status == smt::CheckResult::kUnsat) {
      synth::Synthesizer explainer(spec, opts.common.synthesis);
      std::cout << "\n" << synth::analyze_unsat(explainer, spec).to_string();
    }
    return 1;
  }
  synth::SecurityDesign design = *result.design;
  analysis::minimize_placements(spec, design);
  std::cout << "\n" << design.isolation_table(spec);
  std::cout << "\n" << design.to_string(spec);
  std::cout << "\n=== Exposure ===\n"
            << analysis::render_exposure(
                   analysis::compute_exposure(spec, design));
  std::ofstream out(opts.out_path);
  analysis::save_design(out, design);
  std::cout << "\ndesign saved to " << opts.out_path << "\n";
  return 0;
}

int cmd_synth(const model::ProblemSpec& spec, const CliOptions& opts) {
  if (opts.common.service.shard_regions != 0)
    return cmd_synth_sharded(spec, opts);
  synth::Synthesizer synthesizer(spec, opts.common.synthesis);
  const synth::SynthesisResult result = synthesizer.synthesize();
  std::cout << analysis::render_report(spec, result);
  if (result.status != smt::CheckResult::kSat) {
    if (result.status == smt::CheckResult::kUnsat)
      std::cout << "\n" << synth::analyze_unsat(synthesizer, spec).to_string();
    return 1;
  }
  synth::SecurityDesign design = *result.design;
  analysis::minimize_placements(spec, design);
  std::cout << "\n" << design.isolation_table(spec);
  std::cout << "\n" << design.to_string(spec);
  std::cout << "\n=== Exposure ===\n"
            << analysis::render_exposure(
                   analysis::compute_exposure(spec, design));
  std::ofstream out(opts.out_path);
  analysis::save_design(out, design);
  std::cout << "\ndesign saved to " << opts.out_path << "\n";
  return 0;
}

int cmd_optimize(const model::ProblemSpec& spec, const CliOptions& opts) {
  synth::Synthesizer synthesizer(spec, opts.common.synthesis);
  const synth::BoundSearchResult best = synth::maximize_isolation(
      synthesizer, spec, spec.sliders.usability, spec.sliders.budget);
  if (!best.feasible) {
    std::cout << "infeasible: usability/budget constraints conflict with "
                 "the hard requirements\n";
    return 1;
  }
  std::cout << "max isolation " << best.metrics.isolation
            << (best.exact ? "" : " (lower bound, probes capped)")
            << " at usability " << best.metrics.usability << ", cost $"
            << best.metrics.cost << "K, " << best.design->device_count()
            << " devices (" << best.probes << " probes, "
            << best.solve_seconds << "s)\n";
  return 0;
}

int cmd_mincost(const model::ProblemSpec& spec, const CliOptions& opts) {
  synth::Synthesizer synthesizer(spec, opts.common.synthesis);
  const synth::BoundSearchResult r = synth::minimize_cost(
      synthesizer, spec, spec.sliders.isolation, spec.sliders.usability);
  if (!r.feasible) {
    std::cout << "infeasible: the isolation/usability floors cannot be met "
                 "at any budget\n";
    return 1;
  }
  std::cout << "cheapest deployment: $" << r.bound << "K"
            << (r.exact ? "" : " (upper bound, probes capped)")
            << " — isolation " << r.metrics.isolation << ", usability "
            << r.metrics.usability << ", " << r.design->device_count()
            << " devices (" << r.probes << " probes, " << r.solve_seconds
            << "s)\n";
  return 0;
}

int cmd_frontier(const model::ProblemSpec& spec, const CliOptions& opts) {
  synth::FrontierOptions fopts = synth::FrontierOptions::fig3_defaults(
      spec.sliders.budget / 2, spec.sliders.budget);
  fopts.jobs = opts.common.service.workers;  // 0 = one per hardware thread
  const auto points = synth::explore_frontier(spec, opts.common.synthesis, fopts);
  std::cout << synth::render_frontier(points);
  return 0;
}

int cmd_assist(const model::ProblemSpec& spec) {
  std::cout << synth::render_assistance(synth::slider_assistance(spec));
  return 0;
}

int cmd_explain(const model::ProblemSpec& spec, const CliOptions& opts) {
  synth::Synthesizer synthesizer(spec, opts.common.synthesis);
  std::cout << synth::analyze_unsat(synthesizer, spec).to_string();
  return 0;
}

int cmd_check(const model::ProblemSpec& spec, const std::string& path) {
  std::ifstream in(path);
  CS_REQUIRE(static_cast<bool>(in), "cannot open design '" + path + "'");
  const synth::SecurityDesign design = analysis::load_design(in);
  const analysis::CheckReport report = analysis::check_design(spec, design);
  std::cout << report.to_string();
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) {
      std::cerr
          << "usage: " << argv[0]
          << " synth|optimize|frontier|assist|explain <input.cfg> [flags]\n"
          << "       " << argv[0] << " check <input.cfg> <design> [flags]\n";
      return 2;
    }
    const std::string cmd = argv[1];
    const model::ProblemSpec spec = model::parse_input_file(argv[2]);

    if (cmd == "check") CS_REQUIRE(argc >= 4, "check needs a design file");
    const CliOptions opts = parse_flags(argc, argv, cmd == "check" ? 4 : 3);
    if (!opts.common.trace_path.empty()) {
      obs::session().enable();
      obs::session().set_thread_name("main");
    }
    const auto run = [&]() -> int {
      if (cmd == "check") return cmd_check(spec, argv[3]);
      if (cmd == "synth") return cmd_synth(spec, opts);
      if (cmd == "optimize") return cmd_optimize(spec, opts);
      if (cmd == "mincost") return cmd_mincost(spec, opts);
      if (cmd == "frontier") return cmd_frontier(spec, opts);
      if (cmd == "assist") return cmd_assist(spec);
      if (cmd == "explain") return cmd_explain(spec, opts);
      std::cerr << "unknown subcommand '" << cmd << "'\n";
      return 2;
    };
    const int code = run();
    if (!opts.common.trace_path.empty()) {
      obs::session().disable();
      obs::session().write_json(opts.common.trace_path);
      std::cerr << "trace written to " << opts.common.trace_path << "\n";
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
