// configsynth_server — many clients, one warm synthesis service.
//
// Reads a newline-delimited request file and drives service::SynthService
// with every request, printing per-request outcomes and the service
// metrics dump. Each line is:
//
//   <spec.cfg> <objective> <isolation> <usability> <budget>
//
// where <spec.cfg> is a paper Table IV input file (resolved relative to
// the request file), <objective> is feasibility | max-isolation |
// min-cost, and the three sliders are the request's thresholds (each
// objective reads the subset it needs). '#' starts a comment. Specs are
// parsed once per distinct path and shared across requests — repeated
// lines exercise the result cache.
//
// Flags:
//   --backend z3|minipb     solver backend (default z3)
//   --jobs <N>              service workers (default 2; 0 = hardware)
//   --queue-limit <N>       admission-control queue depth (default 64)
//   --cache-capacity <N>    LRU result-cache entries (default 256)
//   --time-limit <ms>       per-check wall cap (default 20000)
//   --conflict-limit <n>    per-check deterministic effort cap (default 0)
//   --metrics-csv <file>    also dump the metrics registry as CSV
//   --metrics-prom <file>   also dump the metrics in Prometheus text
//                           exposition format
//   --trace-out <file>      record a Chrome-trace-event JSON timeline of
//                           the run (open in Perfetto)
//
// A request line consisting of the single word `metrics` is a command,
// not a request: the server prints a metrics snapshot once every request
// above that line has completed (results stream in submission order).
//
// SIGINT/SIGTERM cancel queued requests cooperatively: in-flight solves
// finish, and the metrics dump (table, CSV, Prometheus, trace) still
// happens, so an interrupted run is observable rather than silent.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/input_file.h"
#include "obs/trace.h"
#include "service/synth_service.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace cs;

struct ServerOptions {
  synth::SynthesisOptions synthesis;
  service::ServiceConfig service;
  std::string metrics_csv;
  std::string metrics_prom;
  std::string trace_path;
};

/// Raised by the SIGINT/SIGTERM handler; the collection loop polls it.
std::atomic<bool> g_interrupted{false};

void handle_signal(int) { g_interrupted.store(true); }

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

synth::SweepObjective objective_from_name(const std::string& name) {
  for (const synth::SweepObjective o :
       {synth::SweepObjective::kFeasibility,
        synth::SweepObjective::kMaxIsolation,
        synth::SweepObjective::kMinCost}) {
    if (name == synth::sweep_objective_name(o)) return o;
  }
  throw util::SpecError("unknown objective '" + name +
                        "' (want feasibility|max-isolation|min-cost)");
}

std::string status_name(smt::CheckResult s) {
  switch (s) {
    case smt::CheckResult::kSat:
      return "sat";
    case smt::CheckResult::kUnsat:
      return "unsat";
    case smt::CheckResult::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::cerr << "usage: " << argv[0] << " <requests.txt> [flags]\n";
      return 2;
    }
    const std::string requests_path = argv[1];

    ServerOptions opts;
    opts.synthesis.check_time_limit_ms = 20000;
    opts.service.workers = 2;
    for (int i = 2; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        CS_REQUIRE(i + 1 < argc, "flag " + flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--backend") {
        opts.synthesis.backend = smt::backend_from_name(next());
      } else if (flag == "--jobs") {
        opts.service.workers =
            static_cast<int>(util::parse_int(next(), "jobs"));
      } else if (flag == "--queue-limit") {
        opts.service.queue_limit =
            static_cast<std::size_t>(util::parse_int(next(), "queue limit"));
      } else if (flag == "--cache-capacity") {
        opts.service.cache_capacity = static_cast<std::size_t>(
            util::parse_int(next(), "cache capacity"));
      } else if (flag == "--time-limit") {
        opts.synthesis.check_time_limit_ms =
            util::parse_int(next(), "time limit");
      } else if (flag == "--conflict-limit") {
        opts.synthesis.check_conflict_limit =
            util::parse_int(next(), "conflict limit");
      } else if (flag == "--metrics-csv") {
        opts.metrics_csv = next();
      } else if (flag == "--metrics-prom") {
        opts.metrics_prom = next();
      } else if (flag == "--trace-out") {
        opts.trace_path = next();
      } else {
        throw util::SpecError("unknown flag '" + flag + "'");
      }
    }

    // Parse the request file; specs load once per distinct path.
    std::ifstream in(requests_path);
    CS_REQUIRE(static_cast<bool>(in),
               "cannot open request file '" + requests_path + "'");
    const std::string base_dir = dirname_of(requests_path);
    std::map<std::string, std::shared_ptr<const model::ProblemSpec>> specs;
    std::vector<std::pair<std::string, service::ServiceRequest>> requests;
    /// 1-based request counts after which a `metrics` command line asks
    /// for a snapshot (0 = before any request completed).
    std::vector<std::size_t> metrics_after;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::string text = util::trim(line);
      if (text.empty() || text[0] == '#') continue;
      const std::vector<std::string> tok = util::split_ws(text);
      if (tok.size() == 1 && tok[0] == "metrics") {
        metrics_after.push_back(requests.size());
        continue;
      }
      CS_REQUIRE(tok.size() == 5,
                 "request line " + std::to_string(line_no) +
                     ": want '<spec.cfg> <objective> <I> <U> <B>' "
                     "or the command 'metrics'");
      std::string path = tok[0];
      if (path[0] != '/') path = base_dir + "/" + path;
      auto& spec = specs[path];
      if (!spec) {
        spec = std::make_shared<const model::ProblemSpec>(
            model::parse_input_file(path));
      }
      service::ServiceRequest req;
      req.spec = spec;
      req.point.objective = objective_from_name(tok[1]);
      req.point.isolation =
          util::Fixed::from_double(util::parse_double(tok[2], "isolation"));
      req.point.usability =
          util::Fixed::from_double(util::parse_double(tok[3], "usability"));
      req.point.budget =
          util::Fixed::from_double(util::parse_double(tok[4], "budget"));
      req.synthesis = opts.synthesis;
      requests.emplace_back(tok[0], std::move(req));
    }
    CS_REQUIRE(!requests.empty(), "request file has no requests");

    if (!opts.trace_path.empty()) {
      obs::session().enable();
      obs::session().set_thread_name("main");
    }
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // Drive the service: submit everything, then collect in order.
    service::SynthService service(opts.service);
    std::vector<std::future<service::ServiceOutcome>> pending;
    pending.reserve(requests.size());
    util::Stopwatch watch;
    for (auto& [name, req] : requests)
      pending.push_back(service.submit(req));

    const auto metrics_snapshot = [&](std::size_t done) {
      std::cout << "--- metrics after " << done << " request"
                << (done == 1 ? "" : "s") << " ---\n"
                << service.metrics().render() << "\n";
    };
    const auto emit_markers = [&](std::size_t done) {
      for (const std::size_t after : metrics_after)
        if (after == done) metrics_snapshot(done);
    };
    emit_markers(0);

    util::TextTable table({"#", "spec", "objective", "status", "bound",
                           "source", "probes", "ms"});
    int failures = 0;
    bool cancelled = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      // Poll instead of blocking so a SIGINT/SIGTERM can cancel the
      // still-queued tail while in-flight solves finish normally.
      while (pending[i].wait_for(std::chrono::milliseconds(50)) !=
             std::future_status::ready) {
        if (g_interrupted.load() && !cancelled) {
          cancelled = true;
          std::cerr << "\ninterrupted: cancelling queued requests "
                       "(in-flight solves finish; metrics still dumped)\n";
          service.cancel_pending();
        }
      }
      const service::ServiceOutcome out = pending[i].get();
      const auto& [name, req] = requests[i];
      std::string status, bound = "-";
      if (out.rejected) {
        status = "rejected";
        ++failures;
      } else if (out.result.skipped) {
        status = "skipped";
      } else {
        status = status_name(out.result.status);
        if (out.result.search.feasible)
          bound = req.point.objective == synth::SweepObjective::kFeasibility
                      ? out.result.search.metrics.isolation.to_string()
                      : out.result.search.bound.to_string();
        else if (out.result.status == smt::CheckResult::kUnsat &&
                 !out.result.conflicting.empty()) {
          bound = "core:";
          for (const synth::ThresholdKind k : out.result.conflicting)
            bound += " " + std::string(synth::threshold_name(k));
        }
      }
      table.add_row({std::to_string(i + 1), name,
                     std::string(sweep_objective_name(req.point.objective)),
                     status, bound,
                     out.rejected || out.result.skipped ? "-"
                     : out.cache_hit ? (out.coalesced ? "coalesced" : "cache")
                                     : "solved",
                     std::to_string(out.result.search.probes),
                     fmt_ms(out.total_ms)});
      emit_markers(i + 1);
    }
    const double wall = watch.elapsed_seconds();

    std::cout << table.render() << "\n"
              << requests.size() << " requests in " << fmt_ms(wall * 1000)
              << " ms ("
              << fmt_ms(static_cast<double>(requests.size()) / wall)
              << " req/s), " << service.workers() << " workers\n\n"
              << service.metrics().render();
    if (!opts.metrics_csv.empty()) {
      service.metrics().write_csv(opts.metrics_csv);
      std::cout << "\nmetrics csv written to " << opts.metrics_csv << "\n";
    }
    if (!opts.metrics_prom.empty()) {
      std::ofstream prom(opts.metrics_prom);
      CS_REQUIRE(static_cast<bool>(prom), "cannot open metrics-prom file '" +
                                              opts.metrics_prom + "'");
      prom << service.metrics().render_prometheus();
      std::cout << "metrics prometheus written to " << opts.metrics_prom
                << "\n";
    }
    if (!opts.trace_path.empty()) {
      // All futures have resolved and the pool is idle, so the export
      // cannot race with recording.
      obs::session().disable();
      obs::session().write_json(opts.trace_path);
      std::cout << "trace written to " << opts.trace_path << "\n";
    }
    if (cancelled) return 130;  // conventional fatal-signal exit
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
