// configsynth_server — many clients, one warm synthesis service.
//
// Two front-ends over the same service::SynthService and the same
// cs-req-v1 codec (net/request_codec.h, docs/PROTOCOL.md):
//
//   configsynth_server <requests.txt> [flags]
//     File mode. Reads a newline-delimited cs-req-v1 request file and
//     prints one cs-resp-v1 response line per request, in submission
//     order, followed by a summary and the service metrics dump. `file:`
//     spec paths resolve relative to the request file; a line consisting
//     of the single word `metrics` prints a snapshot once every request
//     above it has completed. Malformed lines get a structured
//     `status=error` response instead of aborting the batch.
//
//   configsynth_server --listen <port> [--spec-root <dir>] [flags]
//     TCP mode. Serves cs-req-v1 over keep-alive connections on an
//     epoll loop (net/server.h), with HTTP `GET /metrics` on the same
//     port. `file:` spec paths resolve under --spec-root (default ".").
//     Port 0 picks an ephemeral port (printed on startup).
//
// Both modes accept the shared flag surface (net/options.h):
// --backend, --jobs, --queue-limit, --cache-capacity, --time-limit,
// --conflict-limit, --metrics-csv, --metrics-prom, --trace-out.
//
// SIGINT/SIGTERM drain gracefully in both modes: queued requests are
// cancelled cooperatively, in-flight solves finish and answer, and the
// metrics dump (summary, CSV, Prometheus, trace) still happens before
// the conventional fatal-signal exit code 130 — an interrupted run is
// observable rather than silent.
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "model/delta.h"
#include "model/input_file.h"
#include "net/options.h"
#include "net/request_codec.h"
#include "net/server.h"
#include "obs/trace.h"
#include "service/synth_service.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace cs;

/// Raised by the SIGINT/SIGTERM handler. File mode polls the flag; TCP
/// mode additionally gets a write to the drain eventfd (write(2) is
/// async-signal-safe, so the epoll loop wakes immediately).
std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal_fd{-1};

void handle_signal(int) {
  g_interrupted.store(true);
  const int fd = g_signal_fd.load();
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

void dump_metrics(const service::MetricsRegistry& metrics,
                  const net::CommonOptions& opts) {
  std::cout << metrics.render();
  if (!opts.metrics_csv.empty()) {
    metrics.write_csv(opts.metrics_csv);
    std::cout << "\nmetrics csv written to " << opts.metrics_csv << "\n";
  }
  if (!opts.metrics_prom.empty()) {
    std::ofstream prom(opts.metrics_prom);
    CS_REQUIRE(static_cast<bool>(prom), "cannot open metrics-prom file '" +
                                            opts.metrics_prom + "'");
    prom << metrics.render_prometheus();
    std::cout << "metrics prometheus written to " << opts.metrics_prom
              << "\n";
  }
  if (!opts.trace_path.empty()) {
    // The pool is idle by the time either mode dumps, so the export
    // cannot race with recording.
    obs::session().disable();
    obs::session().write_json(opts.trace_path);
    std::cout << "trace written to " << opts.trace_path << "\n";
  }
}

/// One response-in-submission-order slot: already answered (parse
/// errors, hello acks) or waiting on a service future.
struct Slot {
  bool ready = false;
  net::WireResponse response;           // ready slots
  std::size_t future_index = 0;         // pending slots
  std::string id;
  synth::SweepPoint point;
};

int run_file_mode(const std::string& requests_path,
                  const net::CommonOptions& opts) {
  std::ifstream in(requests_path);
  CS_REQUIRE(static_cast<bool>(in),
             "cannot open request file '" + requests_path + "'");
  const std::string base_dir = dirname_of(requests_path);

  service::SynthService service(opts.service);
  std::map<std::string, std::shared_ptr<const model::ProblemSpec>> specs;
  /// Base for `delta:` spec-refs: the spec of the most recent request
  /// line whose spec-ref resolved, in file order (docs/DELTAS.md).
  std::shared_ptr<const model::ProblemSpec> last_spec;
  std::vector<Slot> slots;
  std::vector<std::future<service::ServiceOutcome>> pending;
  /// Slot counts after which a `metrics` command line asks for a
  /// snapshot (0 = before any line answered).
  std::vector<std::size_t> metrics_after;
  std::uint64_t next_auto_id = 1;
  util::Stopwatch watch;

  std::string line;
  while (std::getline(in, line)) {
    net::ParsedLine parsed;
    try {
      parsed = net::RequestCodec::parse_line(line);
    } catch (const util::Error& e) {
      Slot slot;
      slot.ready = true;
      slot.response = net::RequestCodec::error_response("-", e.what());
      slots.push_back(std::move(slot));
      continue;
    }
    switch (parsed.kind) {
      case net::LineKind::kBlank:
        continue;
      case net::LineKind::kHello: {
        Slot slot;
        slot.ready = true;
        slot.response.status = net::WireStatus::kOk;
        slot.response.message = std::string(net::RequestCodec::kVersion);
        slots.push_back(std::move(slot));
        continue;
      }
      case net::LineKind::kMetrics:
        metrics_after.push_back(slots.size());
        continue;
      case net::LineKind::kRequest:
        break;
    }

    net::WireRequest& request = parsed.request;
    const std::string id = request.id.empty()
                               ? std::to_string(next_auto_id++)
                               : request.id;
    Slot slot;
    slot.id = id;
    slot.point = request.point;
    try {
      std::shared_ptr<const model::ProblemSpec> spec;
      if (request.spec_kind == net::SpecRefKind::kDelta) {
        CS_REQUIRE(last_spec != nullptr,
                   "delta: spec-ref needs a previous spec in this request "
                   "file (put a file:/inline: request first)");
        spec = std::make_shared<const model::ProblemSpec>(model::apply_delta(
            *last_spec, model::parse_delta(request.spec)));
      } else if (request.spec_kind == net::SpecRefKind::kInline) {
        auto& cached = specs["inline\n" + request.spec];
        if (!cached) {
          std::istringstream spec_in(request.spec);
          cached = std::make_shared<const model::ProblemSpec>(
              model::parse_input(spec_in));
        }
        spec = cached;
      } else {
        const std::string path = request.spec[0] == '/'
                                     ? request.spec
                                     : base_dir + "/" + request.spec;
        auto& cached = specs[path];
        if (!cached)
          cached = std::make_shared<const model::ProblemSpec>(
              model::parse_input_file(path));
        spec = cached;
      }
      last_spec = spec;
      service::ServiceRequest sreq;
      sreq.spec = std::move(spec);
      sreq.point = request.point;
      sreq.synthesis = opts.synthesis;
      sreq.deadline_ms = request.deadline_ms;
      slot.future_index = pending.size();
      pending.push_back(service.submit(std::move(sreq)));
    } catch (const util::Error& e) {
      slot.ready = true;
      slot.response = net::RequestCodec::error_response(id, e.what());
    }
    slots.push_back(std::move(slot));
  }
  CS_REQUIRE(!slots.empty(), "request file has no requests");

  const auto emit_markers = [&](std::size_t done) {
    for (const std::size_t after : metrics_after) {
      if (after != done) continue;
      std::cout << "--- metrics after " << done << " request"
                << (done == 1 ? "" : "s") << " ---\n"
                << service.metrics().render() << "\n";
    }
  };
  emit_markers(0);

  int failures = 0;
  bool cancelled = false;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.ready) {
      auto& fut = pending[slot.future_index];
      // Poll instead of blocking so a SIGINT/SIGTERM can cancel the
      // still-queued tail while in-flight solves finish normally.
      while (fut.wait_for(std::chrono::milliseconds(50)) !=
             std::future_status::ready) {
        if (g_interrupted.load() && !cancelled) {
          cancelled = true;
          std::cerr << "\ninterrupted: cancelling queued requests "
                       "(in-flight solves finish; metrics still dumped)\n";
          service.cancel_pending();
        }
      }
      slot.response = net::RequestCodec::response_from_outcome(
          slot.id, slot.point, fut.get());
      slot.ready = true;
    }
    if (slot.response.status == net::WireStatus::kError ||
        slot.response.status == net::WireStatus::kRejected)
      ++failures;
    std::cout << net::RequestCodec::render_response(slot.response) << "\n";
    emit_markers(i + 1);
  }
  const double wall = watch.elapsed_seconds();

  std::cout << "\n"
            << slots.size() << " requests in " << fmt_ms(wall * 1000)
            << " ms ("
            << fmt_ms(static_cast<double>(slots.size()) / wall)
            << " req/s), " << service.workers() << " workers\n\n";
  dump_metrics(service.metrics(), opts);
  if (cancelled) return 130;  // conventional fatal-signal exit
  return failures == 0 ? 0 : 1;
}

int run_tcp_mode(int port, const std::string& spec_root,
                 const net::CommonOptions& opts) {
  net::ServerConfig config;
  config.port = port;
  config.spec_root = spec_root;
  config.service = opts.service;
  config.synthesis = opts.synthesis;
  net::TcpServer server(std::move(config));

  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  CS_ENSURE(efd >= 0, "eventfd failed");
  g_signal_fd.store(efd);
  server.drain_on(efd);

  std::cout << "listening on 127.0.0.1:" << server.port()
            << " (cs-req-v1; HTTP GET /metrics on the same port)\n"
            << std::flush;
  server.run();  // returns once a drain completes

  g_signal_fd.store(-1);
  ::close(efd);
  std::cout << "\ndrained; final metrics:\n\n";
  dump_metrics(server.metrics(), opts);
  return g_interrupted.load() ? 130 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    net::CommonOptions opts;
    opts.synthesis.check_time_limit_ms = 20000;
    opts.service.workers = 2;
    std::string requests_path;
    std::string spec_root = ".";
    int listen_port = -1;

    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        CS_REQUIRE(i + 1 < argc, "flag " + flag + " needs a value");
        return argv[++i];
      };
      if (net::consume_common_flag(opts, argc, argv, i)) {
        continue;
      } else if (flag == "--listen") {
        listen_port =
            static_cast<int>(util::parse_int(next(), "listen port"));
        CS_REQUIRE(listen_port >= 0 && listen_port <= 65535,
                   "--listen wants a port in [0, 65535]");
      } else if (flag == "--spec-root") {
        spec_root = next();
      } else if (!flag.empty() && flag[0] != '-' && requests_path.empty()) {
        requests_path = flag;
      } else {
        throw util::SpecError("unknown flag '" + flag + "'");
      }
    }
    if (listen_port < 0 && requests_path.empty()) {
      std::cerr << "usage: " << argv[0] << " <requests.txt> [flags]\n"
                << "       " << argv[0]
                << " --listen <port> [--spec-root <dir>] [flags]\n"
                << "common flags:\n"
                << net::common_flags_help();
      return 2;
    }
    CS_REQUIRE(listen_port < 0 || requests_path.empty(),
               "--listen and a request file are mutually exclusive");

    if (!opts.trace_path.empty()) {
      obs::session().enable();
      obs::session().set_thread_name("main");
    }
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    return listen_port >= 0 ? run_tcp_mode(listen_port, spec_root, opts)
                            : run_file_mode(requests_path, opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
