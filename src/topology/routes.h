// Flow-route enumeration (paper §III-C, "Modeling Flow Routes").
//
// A flow route F^z_{i,j} is a loop-free path of links from source host i to
// destination host j whose intermediate nodes are routers (traffic never
// transits another host). The device-placement constraints quantify over
// *all* routes of a pair, so the encoder needs the complete (or bounded)
// route set per ordered host pair.
//
// Enumerating all simple paths is exponential in dense cores, so the default
// policy enumerates the k shortest loop-free routes (Yen's algorithm over
// unit link weights); `kAllRoutes` removes the bound (subject to a safety
// cap). DESIGN.md §6.2 discusses the trade-off and bench A3 measures it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/network.h"

namespace cs::topology {

/// One loop-free path: nodes[0] = src, nodes.back() = dst,
/// links[t] joins nodes[t] and nodes[t+1].
struct Route {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  /// Path length |F^z_{i,j}| — the number of links (hops).
  std::size_t length() const { return links.size(); }

  /// Same path traversed dst→src.
  Route reversed() const;

  bool operator==(const Route&) const = default;
};

struct RouteOptions {
  /// Maximum number of routes kept per ordered pair.
  std::size_t max_routes = 4;
  /// Hard cap on path length in links; 0 = no limit.
  std::size_t max_hops = 0;

  /// Sentinel for "enumerate every simple route" (still bounded by an
  /// internal safety cap of 1024 to keep the encoder finite).
  static constexpr std::size_t kAllRoutes = 1024;
};

/// BFS shortest path from src to dst through router-only interiors.
/// Empty result if unreachable.
Route shortest_route(const Network& net, NodeId src, NodeId dst);

/// Yen's k-shortest loop-free routes (unit weights), sorted by length then
/// discovery order. Honors opts.max_hops.
std::vector<Route> k_shortest_routes(const Network& net, NodeId src,
                                     NodeId dst, const RouteOptions& opts);

/// Exhaustive DFS over simple router-interior paths, capped at
/// opts.max_routes results (use RouteOptions::kAllRoutes for "all").
std::vector<Route> all_simple_routes(const Network& net, NodeId src,
                                     NodeId dst, const RouteOptions& opts);

/// Caches routes per ordered host pair. The reverse direction of a pair is
/// served by reversing the forward routes (valid for undirected links), so
/// each unordered pair is enumerated once.
class RouteTable {
 public:
  RouteTable(const Network& net, RouteOptions opts);

  /// Routes from src to dst (both must be hosts). Computed lazily.
  const std::vector<Route>& routes(NodeId src, NodeId dst);

  const RouteOptions& options() const { return opts_; }

  /// Number of distinct unordered pairs enumerated so far.
  std::size_t pairs_computed() const { return cache_.size() / 2; }

  /// Adopts another table's enumerated routes. The caller asserts that
  /// every cached pair has the same route set in this table's network —
  /// true when the networks differ only by appended leaf hosts (node and
  /// link ids of shared elements unchanged, and a new leaf's only link
  /// can appear on no pre-existing pair's routes). Used by the
  /// incremental synthesizer's replay path (docs/DELTAS.md); options
  /// must match.
  void adopt_cache(const RouteTable& donor);

 private:
  const Network& net_;
  RouteOptions opts_;
  std::unordered_map<std::uint64_t, std::vector<Route>> cache_;
};

}  // namespace cs::topology
