#include "topology/network.h"

#include <algorithm>

namespace cs::topology {

NodeId Network::add_node(NodeKind kind, std::string name, int group_size,
                         bool is_internet) {
  CS_REQUIRE(group_size >= 1, "host group size must be >= 1");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, kind, std::move(name), group_size, is_internet});
  adjacency_.emplace_back();
  if (kind == NodeKind::kHost)
    hosts_.push_back(id);
  else
    routers_.push_back(id);
  return id;
}

NodeId Network::add_host(std::string name, int group_size) {
  return add_node(NodeKind::kHost, std::move(name), group_size, false);
}

NodeId Network::add_internet(std::string name) {
  return add_node(NodeKind::kHost, std::move(name), 1, true);
}

NodeId Network::add_router(std::string name) {
  return add_node(NodeKind::kRouter, std::move(name), 1, false);
}

LinkId Network::add_link(NodeId a, NodeId b) {
  CS_REQUIRE(a >= 0 && a < static_cast<NodeId>(nodes_.size()),
             "add_link: bad endpoint a");
  CS_REQUIRE(b >= 0 && b < static_cast<NodeId>(nodes_.size()),
             "add_link: bad endpoint b");
  CS_REQUIRE(a != b, "add_link: self-loop");
  CS_REQUIRE(!has_link(a, b), "add_link: parallel link");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b});
  adjacency_[static_cast<std::size_t>(a)].push_back(Adjacency{id, b});
  adjacency_[static_cast<std::size_t>(b)].push_back(Adjacency{id, a});
  return id;
}

bool Network::has_link(NodeId a, NodeId b) const {
  return find_link(a, b).has_value();
}

std::optional<LinkId> Network::find_link(NodeId a, NodeId b) const {
  if (a < 0 || a >= static_cast<NodeId>(nodes_.size())) return std::nullopt;
  for (const Adjacency& adj : adjacency_[static_cast<std::size_t>(a)])
    if (adj.peer == b) return adj.link;
  return std::nullopt;
}

const Node& Network::node(NodeId id) const {
  CS_ENSURE(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
            "Network::node: bad id");
  return nodes_[static_cast<std::size_t>(id)];
}

const Link& Network::link(LinkId id) const {
  CS_ENSURE(id >= 0 && id < static_cast<LinkId>(links_.size()),
            "Network::link: bad id");
  return links_[static_cast<std::size_t>(id)];
}

const std::vector<Adjacency>& Network::neighbors(NodeId id) const {
  CS_ENSURE(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
            "Network::neighbors: bad id");
  return adjacency_[static_cast<std::size_t>(id)];
}

bool Network::connected() const {
  if (nodes_.empty()) return true;
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const Adjacency& adj : adjacency_[static_cast<std::size_t>(n)]) {
      if (!seen[static_cast<std::size_t>(adj.peer)]) {
        seen[static_cast<std::size_t>(adj.peer)] = 1;
        ++visited;
        stack.push_back(adj.peer);
      }
    }
  }
  return visited == nodes_.size();
}

void Network::validate() const {
  CS_REQUIRE(host_count() >= 2, "topology needs at least two hosts");
  CS_REQUIRE(connected(), "topology must be connected");
  for (const NodeId h : hosts_) {
    CS_REQUIRE(!neighbors(h).empty(),
               "host '" + node(h).name + "' has no link");
  }
}

}  // namespace cs::topology
