#include "topology/structured.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.h"

namespace cs::topology {
namespace {

// Attaches `hosts` logical hosts named h1..hN under `switches` in
// contiguous blocks: host h (0-based) uplinks to switch h*S/H. Block
// assignment keeps adjacent host indices on the same (or a neighboring)
// switch, which is what gives the scale workloads their locality.
void attach_hosts_in_blocks(Network& net, const std::vector<NodeId>& switches,
                            int hosts) {
  CS_REQUIRE(!switches.empty(), "structured topology has no access switches");
  const auto count = static_cast<long long>(switches.size());
  for (int h = 0; h < hosts; ++h) {
    const auto sw = static_cast<std::size_t>(
        static_cast<long long>(h) * count / std::max(1, hosts));
    const NodeId id = net.add_host("h" + std::to_string(h + 1));
    net.add_link(id, switches[std::min<std::size_t>(sw, switches.size() - 1)]);
  }
}

}  // namespace

std::string_view topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh:
      return "mesh";
    case TopologyKind::kFatTree:
      return "fat-tree";
    case TopologyKind::kCampus:
      return "campus";
    case TopologyKind::kIsp:
      return "isp";
  }
  throw util::InternalError("unknown TopologyKind");
}

TopologyKind topology_kind_from_name(std::string_view name) {
  if (name == "mesh") return TopologyKind::kMesh;
  if (name == "fat-tree" || name == "fattree") return TopologyKind::kFatTree;
  if (name == "campus") return TopologyKind::kCampus;
  if (name == "isp") return TopologyKind::kIsp;
  throw util::SpecError("unknown topology kind: " + std::string(name) +
                        " (expected mesh, fat-tree, campus, or isp)");
}

Network make_fat_tree(const FatTreeConfig& config) {
  CS_REQUIRE(config.k >= 2 && config.k % 2 == 0,
             "fat-tree arity k must be even and >= 2");
  CS_REQUIRE(config.hosts >= 0, "fat-tree host count must be >= 0");
  const int k = config.k;
  const int half = k / 2;
  Network net;

  // (k/2)^2 core switches, grouped so group g serves aggregation slot g of
  // every pod.
  std::vector<NodeId> cores;
  cores.reserve(static_cast<std::size_t>(half) * half);
  for (int c = 0; c < half * half; ++c)
    cores.push_back(net.add_router("c" + std::to_string(c + 1)));

  std::vector<NodeId> edges;
  edges.reserve(static_cast<std::size_t>(k) * half);
  for (int p = 0; p < k; ++p) {
    const std::string pod = "p" + std::to_string(p + 1);
    std::vector<NodeId> aggs;
    aggs.reserve(half);
    for (int a = 0; a < half; ++a) {
      const NodeId agg = net.add_router(pod + "a" + std::to_string(a + 1));
      aggs.push_back(agg);
      // Aggregation slot a uplinks to core group a.
      for (int c = 0; c < half; ++c)
        net.add_link(agg, cores[static_cast<std::size_t>(a) * half + c]);
    }
    for (int e = 0; e < half; ++e) {
      const NodeId edge = net.add_router(pod + "e" + std::to_string(e + 1));
      edges.push_back(edge);
      for (const NodeId agg : aggs) net.add_link(edge, agg);
    }
  }

  attach_hosts_in_blocks(net, edges, config.hosts);
  net.validate();
  return net;
}

Network make_campus(const CampusConfig& config) {
  CS_REQUIRE(config.cores >= 1, "campus needs at least one core router");
  CS_REQUIRE(config.buildings >= 1, "campus needs at least one building");
  CS_REQUIRE(config.access_per_building >= 1,
             "campus needs at least one access router per building");
  CS_REQUIRE(config.hosts >= 0, "campus host count must be >= 0");
  Network net;

  std::vector<NodeId> cores;
  cores.reserve(config.cores);
  for (int c = 0; c < config.cores; ++c)
    cores.push_back(net.add_router("core" + std::to_string(c + 1)));
  // Core ring (a single link when cores == 2, nothing when cores == 1).
  if (config.cores == 2) {
    net.add_link(cores[0], cores[1]);
  } else if (config.cores > 2) {
    for (int c = 0; c < config.cores; ++c)
      net.add_link(cores[c], cores[(c + 1) % config.cores]);
  }

  std::vector<NodeId> access;
  access.reserve(static_cast<std::size_t>(config.buildings) *
                 config.access_per_building);
  for (int b = 0; b < config.buildings; ++b) {
    const std::string bld = "b" + std::to_string(b + 1);
    const NodeId dist = net.add_router(bld + "d");
    // Dual-home each distribution router to two (distinct, when possible)
    // cores.
    net.add_link(dist, cores[b % config.cores]);
    if (config.cores > 1) net.add_link(dist, cores[(b + 1) % config.cores]);
    for (int a = 0; a < config.access_per_building; ++a) {
      const NodeId acc = net.add_router(bld + "a" + std::to_string(a + 1));
      net.add_link(acc, dist);
      access.push_back(acc);
    }
  }

  attach_hosts_in_blocks(net, access, config.hosts);
  if (config.include_internet) {
    const NodeId inet = net.add_internet();
    net.add_link(inet, cores[0]);
  }
  net.validate();
  return net;
}

Network make_isp(const IspConfig& config) {
  CS_REQUIRE(config.core >= 1, "isp needs at least one backbone router");
  CS_REQUIRE(config.aggregation >= 1,
             "isp needs at least one aggregation router");
  CS_REQUIRE(config.edge >= 1, "isp needs at least one edge router");
  CS_REQUIRE(config.hosts >= 0, "isp host count must be >= 0");
  Network net;

  std::vector<NodeId> backbone;
  backbone.reserve(config.core);
  for (int c = 0; c < config.core; ++c)
    backbone.push_back(net.add_router("bb" + std::to_string(c + 1)));
  for (int a = 0; a < config.core; ++a)
    for (int b = a + 1; b < config.core; ++b)
      net.add_link(backbone[a], backbone[b]);

  std::vector<NodeId> aggs;
  aggs.reserve(config.aggregation);
  for (int a = 0; a < config.aggregation; ++a) {
    const NodeId agg = net.add_router("agg" + std::to_string(a + 1));
    aggs.push_back(agg);
    net.add_link(agg, backbone[a % config.core]);
    if (config.core > 1) net.add_link(agg, backbone[(a + 1) % config.core]);
  }

  std::vector<NodeId> edges;
  edges.reserve(config.edge);
  for (int e = 0; e < config.edge; ++e) {
    const NodeId edge = net.add_router("e" + std::to_string(e + 1));
    edges.push_back(edge);
    net.add_link(edge, aggs[e % config.aggregation]);
    if (config.aggregation > 1)
      net.add_link(edge, aggs[(e + 1) % config.aggregation]);
  }

  attach_hosts_in_blocks(net, edges, config.hosts);
  if (config.include_internet) {
    const NodeId inet = net.add_internet();
    net.add_link(inet, backbone[0]);
  }
  net.validate();
  return net;
}

Network make_structured(TopologyKind kind, int hosts, std::uint64_t seed) {
  CS_REQUIRE(hosts >= 1, "structured topology needs at least one host");
  switch (kind) {
    case TopologyKind::kMesh: {
      GeneratorConfig config;
      config.hosts = hosts;
      config.routers = std::clamp(8 + hosts / 5, 8, 64);
      util::Rng rng(seed);
      return generate_topology(config, rng);
    }
    case TopologyKind::kFatTree: {
      // Smallest even k whose edge layer (k^2/2 switches) keeps the
      // per-switch host block modest (<= k/2 hosts per edge switch, the
      // classic full fat-tree fill of k^3/4 hosts).
      int k = 4;
      while (k < 64 && k * k * k / 4 < hosts) k += 2;
      return make_fat_tree({.k = k, .hosts = hosts});
    }
    case TopologyKind::kCampus: {
      CampusConfig config;
      config.cores = hosts >= 200 ? 4 : 2;
      config.buildings = std::clamp(hosts / 24 + 1, 2, 40);
      config.access_per_building = 2;
      config.hosts = hosts;
      return make_campus(config);
    }
    case TopologyKind::kIsp: {
      IspConfig config;
      config.core = std::clamp(3 + hosts / 150, 3, 12);
      config.aggregation = 2 * config.core;
      config.edge = std::clamp(hosts / 8 + 2, 4, 256);
      config.hosts = hosts;
      return make_isp(config);
    }
  }
  throw util::InternalError("unknown TopologyKind");
}

}  // namespace cs::topology
