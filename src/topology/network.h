// Network topology model (paper §III, "N,L" with N = H ∪ R).
//
// A `Network` is an undirected multigraph of hosts and routers joined by
// links. Hosts are traffic endpoints; routers form the core. A host may
// stand for a *group* of identically-configured machines (paper §V-B): the
// synthesis treats the group as one logical endpoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace cs::topology {

/// Dense node index; hosts and routers share the same id space.
using NodeId = std::int32_t;
/// Dense link index.
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t { kHost, kRouter };

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  std::string name;
  /// Number of physical machines this logical host stands for (≥1).
  int group_size = 1;
  /// True for the logical "Internet" host (used by UIC2-style policies).
  bool is_internet = false;
};

/// Undirected link between two nodes.
struct Link {
  LinkId id = kInvalidLink;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  /// The endpoint that is not `n`; requires n ∈ {a, b}.
  NodeId other(NodeId n) const {
    CS_ENSURE(n == a || n == b, "Link::other: node not on link");
    return n == a ? b : a;
  }
};

/// One edge of a node's adjacency list.
struct Adjacency {
  LinkId link = kInvalidLink;
  NodeId peer = kInvalidNode;
};

class Network {
 public:
  /// Adds a host; returns its id. `group_size` counts collapsed machines.
  NodeId add_host(std::string name, int group_size = 1);

  /// Adds the logical Internet endpoint (a host flagged `is_internet`).
  NodeId add_internet(std::string name = "Internet");

  /// Adds a router; returns its id.
  NodeId add_router(std::string name);

  /// Adds an undirected link; parallel links and self-loops are rejected.
  LinkId add_link(NodeId a, NodeId b);

  /// True if an a–b link already exists.
  bool has_link(NodeId a, NodeId b) const;

  /// Link joining a and b, if any.
  std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<Adjacency>& neighbors(NodeId id) const;

  /// Ids of all hosts, in insertion order.
  const std::vector<NodeId>& hosts() const { return hosts_; }
  /// Ids of all routers, in insertion order.
  const std::vector<NodeId>& routers() const { return routers_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t router_count() const { return routers_.size(); }

  bool is_host(NodeId id) const { return node(id).kind == NodeKind::kHost; }
  bool is_router(NodeId id) const {
    return node(id).kind == NodeKind::kRouter;
  }

  /// True if every node can reach every other node.
  bool connected() const;

  /// Throws SpecError when the topology cannot carry any traffic
  /// (disconnected, or a host with no link).
  void validate() const;

 private:
  NodeId add_node(NodeKind kind, std::string name, int group_size,
                  bool is_internet);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> routers_;
};

}  // namespace cs::topology
