#include "topology/generator.h"

#include <string>
#include <vector>

namespace cs::topology {

Network generate_topology(const GeneratorConfig& config, util::Rng& rng) {
  CS_REQUIRE(config.hosts >= 2, "generator: need at least 2 hosts");
  CS_REQUIRE(config.routers >= 1, "generator: need at least 1 router");
  CS_REQUIRE(config.extra_core_link_ratio >= 0,
             "generator: negative link ratio");

  Network net;
  std::vector<NodeId> routers;
  routers.reserve(static_cast<std::size_t>(config.routers));
  for (int r = 0; r < config.routers; ++r)
    routers.push_back(net.add_router("r" + std::to_string(r + 1)));

  // Random spanning tree over routers: attach each new router to a random
  // earlier one (uniform random recursive tree).
  for (int r = 1; r < config.routers; ++r) {
    const auto parent = static_cast<std::size_t>(rng.uniform(0, r - 1));
    net.add_link(routers[static_cast<std::size_t>(r)], routers[parent]);
  }

  // Extra core links create alternative routing paths.
  const int extras = static_cast<int>(config.extra_core_link_ratio *
                                          config.routers +
                                      0.5);
  int added = 0;
  int attempts = 0;
  const int max_attempts = 50 * (extras + 1);
  while (added < extras && attempts++ < max_attempts &&
         config.routers >= 2) {
    const NodeId a = rng.pick(routers);
    const NodeId b = rng.pick(routers);
    if (a == b || net.has_link(a, b)) continue;
    net.add_link(a, b);
    ++added;
  }

  // Hosts attach to edge routers.
  for (int h = 0; h < config.hosts; ++h) {
    const NodeId host = net.add_host("h" + std::to_string(h + 1));
    const NodeId uplink = rng.pick(routers);
    net.add_link(host, uplink);
    if (config.routers >= 2 && rng.chance(config.dual_homing_prob)) {
      NodeId second = uplink;
      for (int tries = 0; tries < 8 && second == uplink; ++tries)
        second = rng.pick(routers);
      if (second != uplink) net.add_link(host, second);
    }
  }

  if (config.include_internet) {
    const NodeId inet = net.add_internet();
    net.add_link(inet, routers.front());
  }

  net.validate();
  return net;
}

Network make_paper_example() {
  Network net;
  // Core: 8 routers. r1-r2-r3-r4 form a ring (redundant core paths);
  // r5..r8 are edge routers.
  std::vector<NodeId> r;
  r.push_back(kInvalidNode);  // 1-based indexing convenience
  for (int i = 1; i <= 8; ++i)
    r.push_back(net.add_router("r" + std::to_string(i)));
  net.add_link(r[1], r[2]);
  net.add_link(r[2], r[3]);
  net.add_link(r[3], r[4]);
  net.add_link(r[4], r[1]);
  net.add_link(r[1], r[5]);
  net.add_link(r[2], r[6]);
  net.add_link(r[3], r[7]);
  net.add_link(r[4], r[8]);
  // A cross link so some pairs have three distinct core routes.
  net.add_link(r[5], r[6]);

  // Hosts: h1..h4 on r5/r6 (user subnets), h5..h8 on r7 (server subnet),
  // h9..h10 on r8 (DMZ).
  std::vector<NodeId> h;
  h.push_back(kInvalidNode);
  for (int i = 1; i <= 10; ++i)
    h.push_back(net.add_host("h" + std::to_string(i)));
  net.add_link(h[1], r[5]);
  net.add_link(h[2], r[5]);
  net.add_link(h[3], r[6]);
  net.add_link(h[4], r[6]);
  net.add_link(h[5], r[7]);
  net.add_link(h[6], r[7]);
  net.add_link(h[7], r[7]);
  net.add_link(h[8], r[7]);
  net.add_link(h[9], r[8]);
  net.add_link(h[10], r[8]);

  net.validate();
  return net;
}

}  // namespace cs::topology
