#include "topology/graphviz.h"

#include <sstream>

namespace cs::topology {

std::string to_dot(const Network& net,
                   const std::map<LinkId, std::string>& link_labels) {
  std::ostringstream out;
  out << "graph network {\n";
  out << "  overlap=false;\n  splines=true;\n";
  for (const Node& n : net.nodes()) {
    out << "  n" << n.id << " [label=\"" << n.name << "\"";
    if (n.kind == NodeKind::kRouter)
      out << ", shape=diamond, style=filled, fillcolor=lightgray";
    else if (n.is_internet)
      out << ", shape=doublecircle";
    else
      out << ", shape=box";
    out << "];\n";
  }
  for (const Link& l : net.links()) {
    out << "  n" << l.a << " -- n" << l.b;
    if (const auto it = link_labels.find(l.id); it != link_labels.end())
      out << " [label=\"" << it->second << "\", fontcolor=red, color=red]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace cs::topology
