// Graphviz (DOT) export of a topology, optionally decorated with device
// placements — the textual equivalent of the paper's Fig. 2(a)/(b).
#pragma once

#include <map>
#include <string>

#include "topology/network.h"

namespace cs::topology {

/// Renders the network as an undirected DOT graph. `link_labels` decorates
/// links (e.g. "FW,IDS" for placed devices); missing entries are unlabeled.
std::string to_dot(const Network& net,
                   const std::map<LinkId, std::string>& link_labels = {});

}  // namespace cs::topology
