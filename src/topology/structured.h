// Structured topology generators (fat-tree, campus, ISP-like).
//
// The random mesh in generator.h reproduces the paper's evaluation
// methodology; these generators build the network shapes real deployments
// actually have, so the scale experiments (bench_fig6_scale) and the
// sharded synthesizer (src/shard) run against topologies with exploitable
// locality. NetGAP's graph-grammar construction (PAPERS.md) grounds the
// approach: each family is a small deterministic production rule set
// parameterized by size.
//
// All three builders are fully deterministic functions of their config —
// no RNG — so generated specs fingerprint identically across runs and the
// shard partitioner sees the same cut for the same parameters. Hosts are
// attached in contiguous blocks (host h1..hN fills the first access
// switch, then the next), so nearby host indices are topologically close;
// the scale workloads rely on that to build locality-weighted flow sets.
#pragma once

#include <cstdint>
#include <string_view>

#include "topology/generator.h"
#include "topology/network.h"

namespace cs::topology {

/// The generator families surfaced on bench/CLI `--topology` flags.
enum class TopologyKind {
  kMesh,     // generator.h random mesh (the paper's methodology)
  kFatTree,  // k-ary Clos fat-tree: core / aggregation / edge
  kCampus,   // two-tier campus: core ring, per-building distribution+access
  kIsp,      // ISP-like: full-mesh backbone, aggregation, customer edge
};

/// Stable lowercase spelling ("mesh", "fat-tree", "campus", "isp").
std::string_view topology_kind_name(TopologyKind kind);

/// Parses a `topology_kind_name` spelling; throws SpecError on anything
/// else.
TopologyKind topology_kind_from_name(std::string_view name);

/// k-ary fat-tree: k pods of k/2 edge + k/2 aggregation switches, each
/// pod's aggregation layer fully meshed to its edge layer, (k/2)² core
/// switches with aggregation switch a of every pod uplinked to core group
/// a. Hosts are spread over the edge switches in contiguous blocks.
struct FatTreeConfig {
  /// Pod arity; must be even and >= 2. Routers = (k/2)² + k².
  int k = 4;
  /// Logical hosts, attached under the edge switches.
  int hosts = 16;
};

Network make_fat_tree(const FatTreeConfig& config);

/// Two-tier campus: a ring of core routers; each building has one
/// distribution router dual-homed to two cores and `access_per_building`
/// access routers under it; hosts fill the access layer in blocks.
struct CampusConfig {
  int cores = 2;                // >= 1; >= 2 gives redundant core paths
  int buildings = 4;            // >= 1
  int access_per_building = 2;  // >= 1
  int hosts = 24;
  /// Adds the logical Internet endpoint on the first core router.
  bool include_internet = false;
};

Network make_campus(const CampusConfig& config);

/// ISP-like core/aggregation: a fully meshed backbone, aggregation
/// routers dual-homed to adjacent backbone routers, customer-edge routers
/// dual-homed to adjacent aggregation routers, hosts in blocks under the
/// edge.
struct IspConfig {
  int core = 4;          // backbone routers (full mesh), >= 1
  int aggregation = 8;   // >= 1
  int edge = 16;         // >= 1
  int hosts = 48;
  /// Adds the logical Internet endpoint on the first backbone router.
  bool include_internet = false;
};

Network make_isp(const IspConfig& config);

/// Size-parameterized convenience entry: derives a family config from a
/// host budget (exact host count, family-appropriate switch counts) and
/// builds it. `seed` only matters for kMesh — the structured families are
/// deterministic — so one seed reproduces any kind.
Network make_structured(TopologyKind kind, int hosts, std::uint64_t seed);

}  // namespace cs::topology
