#include "topology/routes.h"

#include <algorithm>
#include <deque>
#include <set>

namespace cs::topology {

Route Route::reversed() const {
  Route r;
  r.nodes.assign(nodes.rbegin(), nodes.rend());
  r.links.assign(links.rbegin(), links.rend());
  return r;
}

namespace {

/// True if `n` may appear strictly inside a path: routers only.
bool interior_ok(const Network& net, NodeId n) { return net.is_router(n); }

/// BFS shortest path with per-call banned nodes/links (for Yen's spur
/// computation). Returns an empty route when dst is unreachable.
Route bfs_route(const Network& net, NodeId src, NodeId dst,
                const std::vector<char>& banned_node,
                const std::vector<char>& banned_link) {
  std::vector<NodeId> parent_node(net.node_count(), kInvalidNode);
  std::vector<LinkId> parent_link(net.node_count(), kInvalidLink);
  std::vector<char> seen(net.node_count(), 0);
  std::deque<NodeId> queue;
  queue.push_back(src);
  seen[static_cast<std::size_t>(src)] = 1;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    if (n == dst) break;
    for (const Adjacency& adj : net.neighbors(n)) {
      if (banned_link[static_cast<std::size_t>(adj.link)]) continue;
      if (banned_node[static_cast<std::size_t>(adj.peer)]) continue;
      if (seen[static_cast<std::size_t>(adj.peer)]) continue;
      if (adj.peer != dst && !interior_ok(net, adj.peer)) continue;
      seen[static_cast<std::size_t>(adj.peer)] = 1;
      parent_node[static_cast<std::size_t>(adj.peer)] = n;
      parent_link[static_cast<std::size_t>(adj.peer)] = adj.link;
      queue.push_back(adj.peer);
    }
  }
  if (!seen[static_cast<std::size_t>(dst)]) return {};
  Route r;
  for (NodeId n = dst; n != kInvalidNode;
       n = parent_node[static_cast<std::size_t>(n)]) {
    r.nodes.push_back(n);
    const LinkId l = parent_link[static_cast<std::size_t>(n)];
    if (l != kInvalidLink) r.links.push_back(l);
  }
  std::reverse(r.nodes.begin(), r.nodes.end());
  std::reverse(r.links.begin(), r.links.end());
  return r;
}

}  // namespace

Route shortest_route(const Network& net, NodeId src, NodeId dst) {
  const std::vector<char> no_nodes(net.node_count(), 0);
  const std::vector<char> no_links(net.link_count(), 0);
  return bfs_route(net, src, dst, no_nodes, no_links);
}

std::vector<Route> k_shortest_routes(const Network& net, NodeId src,
                                     NodeId dst, const RouteOptions& opts) {
  CS_REQUIRE(net.is_host(src) && net.is_host(dst),
             "routes are defined between hosts");
  CS_REQUIRE(src != dst, "route endpoints must differ");
  const std::size_t k = std::max<std::size_t>(opts.max_routes, 1);

  std::vector<Route> result;
  const Route first = shortest_route(net, src, dst);
  if (first.nodes.empty()) return result;
  result.push_back(first);

  // Candidate pool ordered by (length, path) so ties are deterministic.
  const auto cmp = [](const Route& a, const Route& b) {
    if (a.length() != b.length()) return a.length() < b.length();
    return a.nodes < b.nodes;
  };
  std::set<Route, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Route& prev = result.back();
    // Spur from every node of the previous route except the destination.
    for (std::size_t spur_idx = 0; spur_idx + 1 < prev.nodes.size();
         ++spur_idx) {
      const NodeId spur_node = prev.nodes[spur_idx];
      std::vector<char> banned_node(net.node_count(), 0);
      std::vector<char> banned_link(net.link_count(), 0);
      // Ban links that would recreate an already-accepted route sharing
      // this root.
      for (const Route& r : result) {
        if (r.nodes.size() > spur_idx &&
            std::equal(prev.nodes.begin(),
                       prev.nodes.begin() +
                           static_cast<std::ptrdiff_t>(spur_idx + 1),
                       r.nodes.begin())) {
          banned_link[static_cast<std::size_t>(r.links[spur_idx])] = 1;
        }
      }
      // Ban the root path's interior nodes so the spur stays loop-free.
      for (std::size_t t = 0; t < spur_idx; ++t)
        banned_node[static_cast<std::size_t>(prev.nodes[t])] = 1;

      const Route spur = bfs_route(net, spur_node, dst, banned_node,
                                   banned_link);
      if (spur.nodes.empty()) continue;

      Route total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() +
                             static_cast<std::ptrdiff_t>(spur_idx));
      total.links.assign(prev.links.begin(),
                         prev.links.begin() +
                             static_cast<std::ptrdiff_t>(spur_idx));
      total.nodes.insert(total.nodes.end(), spur.nodes.begin(),
                         spur.nodes.end());
      total.links.insert(total.links.end(), spur.links.begin(),
                         spur.links.end());
      if (opts.max_hops != 0 && total.length() > opts.max_hops) continue;
      if (std::find(result.begin(), result.end(), total) == result.end())
        candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }

  if (opts.max_hops != 0) {
    std::erase_if(result,
                  [&](const Route& r) { return r.length() > opts.max_hops; });
  }
  return result;
}

std::vector<Route> all_simple_routes(const Network& net, NodeId src,
                                     NodeId dst, const RouteOptions& opts) {
  CS_REQUIRE(net.is_host(src) && net.is_host(dst),
             "routes are defined between hosts");
  CS_REQUIRE(src != dst, "route endpoints must differ");
  const std::size_t cap =
      std::min<std::size_t>(opts.max_routes, RouteOptions::kAllRoutes);

  std::vector<Route> result;
  std::vector<char> on_path(net.node_count(), 0);
  Route current;
  current.nodes.push_back(src);
  on_path[static_cast<std::size_t>(src)] = 1;

  // Iterative DFS with explicit neighbor cursors.
  std::vector<std::size_t> cursor{0};
  while (!cursor.empty()) {
    if (result.size() >= cap) break;
    const NodeId n = current.nodes.back();
    const auto& adj = net.neighbors(n);
    if (cursor.back() >= adj.size()) {
      on_path[static_cast<std::size_t>(n)] = 0;
      current.nodes.pop_back();
      if (!current.links.empty()) current.links.pop_back();
      cursor.pop_back();
      continue;
    }
    const Adjacency edge = adj[cursor.back()++];
    if (on_path[static_cast<std::size_t>(edge.peer)]) continue;
    if (opts.max_hops != 0 && current.links.size() + 1 > opts.max_hops)
      continue;
    if (edge.peer == dst) {
      Route done = current;
      done.nodes.push_back(dst);
      done.links.push_back(edge.link);
      result.push_back(std::move(done));
      continue;
    }
    if (!interior_ok(net, edge.peer)) continue;
    current.nodes.push_back(edge.peer);
    current.links.push_back(edge.link);
    on_path[static_cast<std::size_t>(edge.peer)] = 1;
    cursor.push_back(0);
  }

  std::sort(result.begin(), result.end(),
            [](const Route& a, const Route& b) {
              if (a.length() != b.length()) return a.length() < b.length();
              return a.nodes < b.nodes;
            });
  return result;
}

RouteTable::RouteTable(const Network& net, RouteOptions opts)
    : net_(net), opts_(opts) {}

const std::vector<Route>& RouteTable::routes(NodeId src, NodeId dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  std::vector<Route> fwd = k_shortest_routes(net_, src, dst, opts_);
  std::vector<Route> rev;
  rev.reserve(fwd.size());
  for (const Route& r : fwd) rev.push_back(r.reversed());

  const std::uint64_t rkey =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32) |
      static_cast<std::uint32_t>(src);
  cache_.emplace(rkey, std::move(rev));
  return cache_.emplace(key, std::move(fwd)).first->second;
}

void RouteTable::adopt_cache(const RouteTable& donor) {
  CS_REQUIRE(donor.opts_.max_routes == opts_.max_routes &&
                 donor.opts_.max_hops == opts_.max_hops,
             "RouteTable::adopt_cache: route options differ");
  for (const auto& [key, routes] : donor.cache_) cache_.emplace(key, routes);
}

}  // namespace cs::topology
