// Random enterprise-style topology generator (paper §V "Methodology").
//
// The paper evaluates on randomly generated test networks parameterized by
// the number of hosts and routers. We reproduce that: a connected random
// core of routers (spanning tree + extra links, which create the alternative
// routing paths the placement model must secure), with each logical host
// attached to one edge router (optionally dual-homed).
#pragma once

#include <cstdint>

#include "topology/network.h"
#include "util/rng.h"

namespace cs::topology {

struct GeneratorConfig {
  /// Number of logical hosts (host groups, §V-B discussion).
  int hosts = 10;
  /// Number of core routers.
  int routers = 8;
  /// Extra router-router links beyond the spanning tree, as a fraction of
  /// the router count. These create alternative flow routes.
  double extra_core_link_ratio = 0.5;
  /// Probability that a host gets a second uplink to a different router.
  double dual_homing_prob = 0.15;
  /// Adds a logical "Internet" host attached to one border router.
  bool include_internet = false;
};

/// Generates a connected topology; throws SpecError for degenerate configs.
Network generate_topology(const GeneratorConfig& config, util::Rng& rng);

/// The fixed 10-host / 8-router example network of the paper's Fig. 2(a),
/// reconstructed: three subnets of hosts hanging off a partially meshed
/// core with redundant paths. Host names are "h1".."h10", routers
/// "r1".."r8". Deterministic.
Network make_paper_example();

}  // namespace cs::topology
