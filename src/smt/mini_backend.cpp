#include "smt/mini_backend.h"

#include <cstdlib>
#include <string_view>

#include "obs/trace.h"
#include "util/error.h"

namespace cs::smt {

namespace {

/// Counter-sampling cadence while tracing: every this many conflicts the
/// solver's progress callback streams its cumulative counters into the
/// tracer. Coarse enough to stay invisible next to conflict analysis,
/// fine enough that the Fig. 4/5 workloads draw smooth timelines.
constexpr std::int64_t kProgressSampleConflicts = 4096;

void emit_progress_sample(const minisolver::Solver::Stats& s) {
  obs::counter("solver", "minipb/conflicts", s.conflicts);
  obs::counter("solver", "minipb/propagations",
               s.propagations + s.pb_propagations);
  obs::counter("solver", "minipb/restarts", s.restarts);
  obs::counter("solver", "minipb/learned", s.learned_clauses);
  // Clause-DB composition: Perfetto draws the three tiers as stacked
  // timelines, making reduce/simplify epochs visible over a solve.
  obs::counter("solver", "minipb/lbd_core", s.lbd_core);
  obs::counter("solver", "minipb/lbd_tier2", s.lbd_tier2);
  obs::counter("solver", "minipb/lbd_local", s.lbd_local);
  obs::counter("solver", "minipb/db_simplify", s.db_simplify_rounds);
  // Heuristic activity: which restart policy is firing and how much the
  // minimizer is shaving off learnt clauses.
  obs::counter("solver", "minipb/glucose_restarts", s.glucose_restarts);
  obs::counter("solver", "minipb/rephases", s.rephases);
  obs::counter("solver", "minipb/minimized_lits", s.minimized_literals);
}

std::vector<minisolver::PbTerm> to_mini_terms(const std::vector<Term>& terms) {
  std::vector<minisolver::PbTerm> out;
  out.reserve(terms.size());
  for (const Term& t : terms) {
    out.push_back(minisolver::PbTerm{
        t.lit.negated ? minisolver::Lit::neg(t.lit.var)
                      : minisolver::Lit::pos(t.lit.var),
        t.coeff});
  }
  return out;
}

/// Minimum possible value of Σ terms (negative coefficients contribute).
std::int64_t min_sum(const std::vector<Term>& terms) {
  std::int64_t s = 0;
  for (const Term& t : terms)
    if (t.coeff < 0) s += t.coeff;
  return s;
}

/// Maximum possible value of Σ terms.
std::int64_t max_sum(const std::vector<Term>& terms) {
  std::int64_t s = 0;
  for (const Term& t : terms)
    if (t.coeff > 0) s += t.coeff;
  return s;
}

}  // namespace

MiniBackend::MiniBackend() {
  const char* mode = std::getenv("CS_MINIPB_PB_MODE");
  if (mode != nullptr && std::string_view(mode) == "counter")
    solver_.set_pb_mode(minisolver::Solver::PbMode::kCounter);
  const char* restart = std::getenv("CS_MINIPB_RESTART_MODE");
  if (restart != nullptr && std::string_view(restart) == "luby")
    solver_.set_restart_mode(minisolver::Solver::RestartMode::kLuby);
  const char* minimize = std::getenv("CS_MINIPB_MINIMIZE");
  if (minimize != nullptr && std::string_view(minimize) == "local")
    solver_.set_minimize_mode(minisolver::Solver::MinimizeMode::kLocal);
  const char* rephase = std::getenv("CS_MINIPB_REPHASE");
  if (rephase != nullptr && std::string_view(rephase) == "0")
    solver_.set_rephase(false);
}

BoolVar MiniBackend::new_bool(const std::string& name) {
  (void)name;  // MiniPB variables are anonymous
  return solver_.new_var();
}

void MiniBackend::add_clause(const std::vector<Lit>& lits) {
  CS_REQUIRE(!lits.empty(), "empty clause");
  std::vector<minisolver::Lit> mini;
  mini.reserve(lits.size());
  for (const Lit l : lits) mini.push_back(to_mini(l));
  solver_.add_clause(std::move(mini));
}

void MiniBackend::add_linear_ge(const std::vector<Term>& terms,
                                std::int64_t bound) {
  solver_.add_linear_ge(to_mini_terms(terms), bound);
}

void MiniBackend::add_linear_le(const std::vector<Term>& terms,
                                std::int64_t bound) {
  solver_.add_linear_le(to_mini_terms(terms), bound);
}

void MiniBackend::add_guarded_linear_ge(Lit guard,
                                        const std::vector<Term>& terms,
                                        std::int64_t bound) {
  // guard=false must satisfy the constraint vacuously: add ¬guard with a
  // coefficient that lifts the sum above the bound on its own.
  const std::int64_t relax = bound - min_sum(terms);
  if (relax <= 0) {
    // Constraint holds for every assignment; nothing to add.
    return;
  }
  std::vector<Term> relaxed = terms;
  relaxed.push_back(Term{!guard, relax});
  add_linear_ge(relaxed, bound);
}

void MiniBackend::add_guarded_linear_le(Lit guard,
                                        const std::vector<Term>& terms,
                                        std::int64_t bound) {
  const std::int64_t relax = max_sum(terms) - bound;
  if (relax <= 0) return;  // holds unconditionally
  std::vector<Term> relaxed = terms;
  relaxed.push_back(Term{!guard, -relax});
  add_linear_le(relaxed, bound);
}

CheckResult MiniBackend::check(const std::vector<Lit>& assumptions) {
  std::vector<minisolver::Lit> mini;
  mini.reserve(assumptions.size());
  for (const Lit l : assumptions) mini.push_back(to_mini(l));
  // Stream progress samples while tracing (installed per check so the
  // solver pays nothing when the tracer is off); one closing sample makes
  // even sub-cadence checks visible in the timeline.
  const bool tracing = obs::TraceSession::enabled();
  if (tracing)
    solver_.set_progress_callback(kProgressSampleConflicts,
                                  emit_progress_sample);
  const minisolver::Solver::Result result = solver_.solve(mini);
  if (tracing) {
    emit_progress_sample(solver_.stats());
    solver_.set_progress_callback(0, nullptr);
  }
  switch (result) {
    case minisolver::Solver::Result::kSat:
      return CheckResult::kSat;
    case minisolver::Solver::Result::kUnsat:
      return CheckResult::kUnsat;
    case minisolver::Solver::Result::kUnknown:
      return CheckResult::kUnknown;
  }
  return CheckResult::kUnknown;
}

bool MiniBackend::model_value(BoolVar v) const {
  return solver_.model_value(v);
}

std::vector<Lit> MiniBackend::unsat_core() const {
  std::vector<Lit> core;
  core.reserve(solver_.unsat_core().size());
  for (const minisolver::Lit l : solver_.unsat_core())
    core.push_back(from_mini(l));
  return core;
}

}  // namespace cs::smt
