#include "smt/ir.h"
#include "smt/mini_backend.h"
#include "smt/race_backend.h"
#include "smt/z3_backend.h"
#include "util/error.h"

namespace cs::smt {

std::unique_ptr<Backend> make_backend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kZ3:
      return std::make_unique<Z3Backend>();
    case BackendKind::kMiniPb:
      return std::make_unique<MiniBackend>();
    case BackendKind::kRace:
      return std::make_unique<RaceBackend>();
  }
  throw util::InternalError("unknown backend kind");
}

BackendKind backend_from_name(const std::string& name) {
  if (name == "z3") return BackendKind::kZ3;
  if (name == "minipb" || name == "mini") return BackendKind::kMiniPb;
  if (name == "race") return BackendKind::kRace;
  throw util::SpecError("unknown backend '" + name +
                        "' (use z3|minipb|race)");
}

}  // namespace cs::smt
