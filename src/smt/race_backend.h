// Deterministic portfolio backend: MiniPB and Z3 race per check.
//
// Both inner backends receive every constraint (variables are created in
// lockstep, so BoolVar indices coincide). The first check() races the two
// solvers in effort-cap rounds — deterministic search-effort slices, never
// wall clock — and the first backend to decide (kSat/kUnsat) becomes the
// *anchor*: all later checks on this backend instance go straight to the
// winner. A sweep's cold/full tiers construct fresh backends per point and
// therefore re-race; warm tiers reuse the instance and keep the anchor,
// which is exactly the tier policy the sweep engine wants (synth/sweep.h).
//
// Determinism contract: the round schedule is fixed (cumulative target
// 4096·4^r race units per round), the tie-break is fixed (MiniPB runs its
// slice first each round and so wins ties), and both slices are effort
// caps (CDCL conflicts for MiniPB, rlimit for Z3). The race verdict is a
// pure function of the formula — byte-identical at any --jobs value and
// across machines. Loser cancellation is cooperative: the loser's slice
// simply never grows again once the winner decides.
//
// Effort units: the racer's set_conflict_limit is denominated in MiniPB
// conflicts ("race units"); Z3 slices scale by kZ3UnitsPerConflict,
// calibrated so one race unit costs both solvers comparable wall time on
// the synthesis encodings (Z3's QF_FD core burns rlimit ~150x faster
// than MiniPB burns conflicts there). Z3 also sits out rounds whose
// target is below kZ3MinTarget: its QF_FD core restarts from scratch
// after every capped check, so tiny early slices are pure waste on
// points MiniPB anchors immediately — Z3 joins once the point has
// proven non-trivial (or in the final caller-capped round, so it always
// gets at least one shot).
#pragma once

#include <memory>
#include <vector>

#include "smt/ir.h"

namespace cs::smt {

class RaceBackend final : public Backend {
 public:
  RaceBackend();

  BoolVar new_bool(const std::string& name) override;
  std::size_t num_vars() const override;

  void add_clause(const std::vector<Lit>& lits) override;
  void add_linear_ge(const std::vector<Term>& terms,
                     std::int64_t bound) override;
  void add_linear_le(const std::vector<Term>& terms,
                     std::int64_t bound) override;
  void add_guarded_linear_ge(Lit guard, const std::vector<Term>& terms,
                             std::int64_t bound) override;
  void add_guarded_linear_le(Lit guard, const std::vector<Term>& terms,
                             std::int64_t bound) override;

  using Backend::check;
  CheckResult check(const std::vector<Lit>& assumptions) override;
  void set_time_limit_ms(std::int64_t ms) override;
  void set_conflict_limit(std::int64_t limit) override;
  bool model_value(BoolVar v) const override;
  std::vector<Lit> unsat_core() const override;
  std::size_t memory_bytes() const override;
  SolverStats statistics() const override;
  std::string name() const override { return "race"; }

  /// Anchored winner after the first decided check: "minipb", "z3", or ""
  /// while still unanchored (no decided check yet).
  std::string anchored() const;

  /// Z3 rlimit units granted per race unit (MiniPB conflict). Public so
  /// tests and drivers can convert race caps into single-Z3 caps.
  static constexpr std::int64_t kZ3UnitsPerConflict = 150;
  /// Z3 skips rounds with a cumulative target below this (in race
  /// units), except the final caller-capped round — its QF_FD core
  /// restarts from scratch per check, so tiny slices are pure waste.
  static constexpr std::int64_t kZ3MinTarget = 32768;
  /// First round's cumulative effort target, in race units.
  static constexpr std::int64_t kRound0 = 4096;
  /// Per-round growth factor of the cumulative target.
  static constexpr std::int64_t kRoundGrowth = 4;

 private:
  CheckResult race(const std::vector<Lit>& assumptions);

  std::unique_ptr<Backend> mini_;
  std::unique_ptr<Backend> z3_;
  /// Winner of the first decided race; nullptr until anchored. Points at
  /// mini_ or z3_.
  Backend* anchor_ = nullptr;
  /// Backend that produced the latest verdict (model/core source).
  Backend* decider_ = nullptr;
  /// Caller's effort cap in race units; 0 = unlimited. Applied as-is to
  /// MiniPB and scaled by kZ3UnitsPerConflict for Z3.
  std::int64_t caller_cap_ = 0;
  std::int64_t time_limit_ms_ = 0;
  std::int64_t race_rounds_ = 0;
  std::int64_t race_wins_minipb_ = 0;
  std::int64_t race_wins_z3_ = 0;
};

}  // namespace cs::smt
