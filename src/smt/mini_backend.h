// Backend adapter over the from-scratch MiniPB CDCL solver.
//
// Guarded linear constraints are realized by big-M relaxation: the guard's
// negation enters the constraint with a coefficient large enough to satisfy
// it vacuously, which is the standard PB encoding of an indicator.
#pragma once

#include <vector>

#include "minisolver/solver.h"
#include "smt/ir.h"

namespace cs::smt {

class MiniBackend final : public Backend {
 public:
  /// Honors the heuristic-ablation environment variables so whole-stack
  /// A/B runs — benches, differential sweeps — need no API plumbing:
  ///   CS_MINIPB_PB_MODE       "counter" selects the reference counter
  ///                           propagator (default watched-sum)
  ///   CS_MINIPB_RESTART_MODE  "luby" | "glucose" (default glucose)
  ///   CS_MINIPB_MINIMIZE      "local" | "recursive" (default recursive)
  ///   CS_MINIPB_REPHASE       "0" disables rephasing (default on)
  MiniBackend();

  BoolVar new_bool(const std::string& name) override;
  std::size_t num_vars() const override { return solver_.num_vars(); }

  void add_clause(const std::vector<Lit>& lits) override;
  void add_linear_ge(const std::vector<Term>& terms,
                     std::int64_t bound) override;
  void add_linear_le(const std::vector<Term>& terms,
                     std::int64_t bound) override;
  void add_guarded_linear_ge(Lit guard, const std::vector<Term>& terms,
                             std::int64_t bound) override;
  void add_guarded_linear_le(Lit guard, const std::vector<Term>& terms,
                             std::int64_t bound) override;

  CheckResult check(const std::vector<Lit>& assumptions) override;
  void set_time_limit_ms(std::int64_t ms) override {
    solver_.set_time_limit_ms(ms);
  }
  void set_conflict_limit(std::int64_t limit) override {
    solver_.set_conflict_limit(limit);
  }
  bool model_value(BoolVar v) const override;
  std::vector<Lit> unsat_core() const override;
  std::size_t memory_bytes() const override {
    return solver_.memory_estimate_bytes();
  }
  SolverStats statistics() const override {
    const minisolver::Solver::Stats& s = solver_.stats();
    SolverStats out;
    out.conflicts = s.conflicts;
    out.propagations = s.propagations + s.pb_propagations;
    out.decisions = s.decisions;
    out.restarts = s.restarts;
    out.learned_clauses = s.learned_clauses;
    out.lbd_core = s.lbd_core;
    out.lbd_tier2 = s.lbd_tier2;
    out.lbd_local = s.lbd_local;
    out.db_simplify_rounds = s.db_simplify_rounds;
    out.glucose_restarts = s.glucose_restarts;
    out.rephases = s.rephases;
    out.minimized_literals = s.minimized_literals;
    return out;
  }
  std::string name() const override { return "minipb"; }

  const minisolver::Solver::Stats& solver_stats() const {
    return solver_.stats();
  }

  /// Testing access to the underlying solver (debug hooks).
  minisolver::Solver& solver_for_testing() { return solver_; }

 private:
  static minisolver::Lit to_mini(Lit l) {
    return l.negated ? minisolver::Lit::neg(l.var)
                     : minisolver::Lit::pos(l.var);
  }
  static Lit from_mini(minisolver::Lit l) {
    return Lit{l.var(), l.is_neg()};
  }

  minisolver::Solver solver_;
};

}  // namespace cs::smt
