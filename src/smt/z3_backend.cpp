#include "smt/z3_backend.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "obs/trace.h"
#include "util/error.h"

namespace cs::smt {

namespace {

/// Normalizes to positive coefficients over literals: merges duplicate
/// variables, flips negative coefficients (a·x = a − a·(¬x)), adjusts the
/// bound. Mirrors minisolver::normalize_pb so both backends see the same
/// constraint.
struct NormalizedGe {
  std::vector<Term> terms;  // all coeff > 0
  std::int64_t bound = 0;
};

NormalizedGe normalize_ge(const std::vector<Term>& terms,
                          std::int64_t bound) {
  std::unordered_map<BoolVar, std::int64_t> signed_coeff;
  signed_coeff.reserve(terms.size());
  for (const Term& t : terms) {
    CS_REQUIRE(t.lit.var != kNoVar, "linear term without variable");
    if (t.coeff == 0) continue;
    if (t.lit.negated) {
      signed_coeff[t.lit.var] -= t.coeff;
      bound -= t.coeff;
    } else {
      signed_coeff[t.lit.var] += t.coeff;
    }
  }
  NormalizedGe out;
  out.terms.reserve(signed_coeff.size());
  for (const auto& [var, coeff] : signed_coeff) {
    if (coeff == 0) continue;
    if (coeff > 0) {
      out.terms.push_back(Term{pos(var), coeff});
    } else {
      out.terms.push_back(Term{neg(var), -coeff});
      bound += -coeff;
    }
  }
  out.bound = bound;
  std::sort(out.terms.begin(), out.terms.end(),
            [](const Term& a, const Term& b) { return a.lit.var < b.lit.var; });
  return out;
}

}  // namespace

// "QF_FD" selects Z3's finite-domain solver: a CDCL SAT core with native
// counter-based pseudo-Boolean propagation, which handles the model's few
// large weighted constraints orders of magnitude faster than the default
// SMT core's PB compilation. All ConfigSynth constraints are Bool/PB, so
// the restricted logic suffices.
Z3Backend::Z3Backend() : solver_(ctx_, "QF_FD") {}

BoolVar Z3Backend::new_bool(const std::string& name) {
  const BoolVar id = static_cast<BoolVar>(vars_.size());
  const std::string unique =
      name.empty() ? ("b" + std::to_string(id))
                   : (name + "#" + std::to_string(id));
  vars_.push_back(ctx_.bool_const(unique.c_str()));
  var_by_ast_id_.emplace(Z3_get_ast_id(ctx_, vars_.back()), id);
  return id;
}

z3::expr Z3Backend::lit_expr(Lit l) const {
  CS_ENSURE(l.var >= 0 && static_cast<std::size_t>(l.var) < vars_.size(),
            "literal references unknown variable");
  const z3::expr& v = vars_[static_cast<std::size_t>(l.var)];
  return l.negated ? !v : v;
}

void Z3Backend::add_clause(const std::vector<Lit>& lits) {
  CS_REQUIRE(!lits.empty(), "empty clause");
  if (lits.size() == 1) {
    assert_expr(lit_expr(lits[0]));
    return;
  }
  z3::expr_vector disj(ctx_);
  for (const Lit l : lits) disj.push_back(lit_expr(l));
  assert_expr(z3::mk_or(disj));
}

z3::expr Z3Backend::linear_ge_expr(const std::vector<Term>& terms,
                                   std::int64_t bound) {
  const NormalizedGe n = normalize_ge(terms, bound);
  if (n.bound <= 0) return ctx_.bool_val(true);
  std::int64_t total = 0;
  for (const Term& t : n.terms) total += t.coeff;
  if (total < n.bound) return ctx_.bool_val(false);

  // Z3's native PB atoms handle weighted Boolean sums far better than an
  // ite-based integer-arithmetic encoding (which forces per-term case
  // splits); arithmetic is only the fallback for coefficients beyond the
  // PB API's int parameters.
  const bool use_pb =
      n.bound <= std::numeric_limits<int>::max() &&
      std::all_of(n.terms.begin(), n.terms.end(), [](const Term& t) {
        return t.coeff <= std::numeric_limits<int>::max();
      });
  if (use_pb) {
    z3::expr_vector lits(ctx_);
    std::vector<int> coeffs;
    coeffs.reserve(n.terms.size());
    for (const Term& t : n.terms) {
      lits.push_back(lit_expr(t.lit));
      coeffs.push_back(static_cast<int>(t.coeff));
    }
    return z3::pbge(lits, coeffs.data(), static_cast<int>(n.bound));
  }
  // Integer arithmetic over indicators.
  z3::expr sum = ctx_.int_val(0);
  for (const Term& t : n.terms) {
    sum = sum + z3::ite(lit_expr(t.lit),
                        ctx_.int_val(static_cast<std::int64_t>(t.coeff)),
                        ctx_.int_val(0));
  }
  return sum >= ctx_.int_val(static_cast<std::int64_t>(n.bound));
}

void Z3Backend::add_linear_ge(const std::vector<Term>& terms,
                              std::int64_t bound) {
  assert_expr(linear_ge_expr(terms, bound));
}

void Z3Backend::add_linear_le(const std::vector<Term>& terms,
                              std::int64_t bound) {
  // Σ t ≤ b  ≡  Σ (−t) ≥ −b.
  std::vector<Term> negated = terms;
  for (Term& t : negated) t.coeff = -t.coeff;
  assert_expr(linear_ge_expr(negated, -bound));
}

void Z3Backend::add_guarded_linear_ge(Lit guard,
                                      const std::vector<Term>& terms,
                                      std::int64_t bound) {
  assert_expr(z3::implies(lit_expr(guard), linear_ge_expr(terms, bound)));
}

void Z3Backend::add_guarded_linear_le(Lit guard,
                                      const std::vector<Term>& terms,
                                      std::int64_t bound) {
  std::vector<Term> negated = terms;
  for (Term& t : negated) t.coeff = -t.coeff;
  assert_expr(z3::implies(lit_expr(guard), linear_ge_expr(negated, -bound)));
}

void Z3Backend::assert_expr(const z3::expr& e) {
  asserted_.push_back(e);
  solver_.add(e);
}

SolverStats Z3Backend::read_live_stats() const {
  // Key names vary across Z3 versions and tactics ("sat conflicts",
  // "conflicts", "sat propagations 2ary", ...); match by substring and sum
  // every flavour, so absent keys simply contribute nothing.
  SolverStats out;
  try {
    const z3::stats st = solver_.statistics();
    for (unsigned i = 0; i < st.size(); ++i) {
      const std::string key = st.key(i);
      const std::int64_t value =
          st.is_uint(i) ? static_cast<std::int64_t>(st.uint_value(i))
                        : static_cast<std::int64_t>(st.double_value(i));
      if (key.find("conflicts") != std::string::npos) {
        out.conflicts += value;
      } else if (key.find("propagations") != std::string::npos) {
        out.propagations += value;
      } else if (key.find("decisions") != std::string::npos) {
        out.decisions += value;
      } else if (key.find("restarts") != std::string::npos) {
        out.restarts += value;
      }
    }
  } catch (const z3::exception&) {
    // No statistics available (e.g. before the first check): report zero.
    return SolverStats{};
  }
  return out;
}

SolverStats Z3Backend::statistics() const {
  SolverStats total = stats_before_rebuilds_;
  total += read_live_stats();
  return total;
}

void Z3Backend::rebuild_solver() {
  stats_before_rebuilds_ += read_live_stats();
  solver_ = z3::solver(ctx_, "QF_FD");
  for (const z3::expr& e : asserted_) solver_.add(e);
  if (time_limit_ms_ > 0 || conflict_limit_ > 0) {
    z3::params p(ctx_);
    if (time_limit_ms_ > 0)
      p.set("timeout", static_cast<unsigned>(time_limit_ms_));
    if (conflict_limit_ > 0)
      p.set("rlimit", static_cast<unsigned>(conflict_limit_));
    solver_.set(p);
  }
  needs_rebuild_ = false;
}

void Z3Backend::set_time_limit_ms(std::int64_t ms) {
  time_limit_ms_ = ms;
  z3::params p(ctx_);
  p.set("timeout", ms <= 0 ? 4294967295u : static_cast<unsigned>(ms));
  solver_.set(p);
}

void Z3Backend::set_conflict_limit(std::int64_t limit) {
  // Z3's deterministic effort counter is the resource limit ("rlimit",
  // per-check); a check that exhausts it answers unknown, after which the
  // QF_FD core needs the same rebuild as after a timeout.
  conflict_limit_ = limit;
  z3::params p(ctx_);
  p.set("rlimit", limit <= 0 ? 0u : static_cast<unsigned>(limit));
  solver_.set(p);
}

CheckResult Z3Backend::check(const std::vector<Lit>& assumptions) {
  if (needs_rebuild_) rebuild_solver();
  z3::expr_vector assume(ctx_);
  for (const Lit l : assumptions) assume.push_back(lit_expr(l));
  // Z3 exposes no in-search hook, so the counter timeline is sampled at
  // check granularity: one cumulative sample before and after each call
  // brackets the check's effort on the trace's counter tracks.
  const bool tracing = obs::TraceSession::enabled();
  const auto emit_sample = [&] {
    const SolverStats s = statistics();
    obs::counter("solver", "z3/conflicts", s.conflicts);
    obs::counter("solver", "z3/propagations", s.propagations);
    obs::counter("solver", "z3/decisions", s.decisions);
    obs::counter("solver", "z3/restarts", s.restarts);
  };
  if (tracing) emit_sample();
  const z3::check_result r = solver_.check(assume);
  if (tracing) emit_sample();

  if (r == z3::sat) {
    const z3::model m = solver_.get_model();
    model_.assign(vars_.size(), 0);
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      const z3::expr value = m.eval(vars_[v], /*model_completion=*/true);
      model_[v] = value.is_true() ? 1 : 0;
    }
    core_.clear();
    return CheckResult::kSat;
  }
  if (r == z3::unsat) {
    core_.clear();
    const z3::expr_vector z3core = solver_.unsat_core();
    for (unsigned i = 0; i < z3core.size(); ++i) {
      z3::expr e = z3core[static_cast<int>(i)];
      bool negated = false;
      if (e.is_app() && e.decl().decl_kind() == Z3_OP_NOT) {
        negated = true;
        e = e.arg(0);
      }
      const auto it = var_by_ast_id_.find(Z3_get_ast_id(ctx_, e));
      CS_ENSURE(it != var_by_ast_id_.end(),
                "unsat core entry is not an assumption literal");
      core_.push_back(Lit{it->second, negated});
    }
    return CheckResult::kUnsat;
  }
  // A timed-out QF_FD check leaves the solver cancelled; rebuild before
  // the next query.
  needs_rebuild_ = true;
  return CheckResult::kUnknown;
}

bool Z3Backend::model_value(BoolVar v) const {
  CS_ENSURE(v >= 0 && static_cast<std::size_t>(v) < model_.size(),
            "model_value before a SAT result");
  return model_[static_cast<std::size_t>(v)] != 0;
}

std::vector<Lit> Z3Backend::unsat_core() const { return core_; }

std::size_t Z3Backend::memory_bytes() const {
  return static_cast<std::size_t>(Z3_get_estimated_alloc_size());
}

}  // namespace cs::smt
