// Backend adapter over the Z3 SMT solver (the paper's solver), using the
// native C++ API.
//
// Linear constraints are emitted as Z3 pseudo-Boolean atoms (pbge/pble)
// when coefficients and bounds fit the API's int parameters, and as integer
// linear arithmetic over ite-terms otherwise. Guarded constraints become
// implications, and the paper's threshold assumptions map directly onto
// Z3's assumption-based unsat cores.
#pragma once

#include <unordered_map>
#include <vector>

#include <z3++.h>

#include "smt/ir.h"

namespace cs::smt {

class Z3Backend final : public Backend {
 public:
  Z3Backend();

  BoolVar new_bool(const std::string& name) override;
  std::size_t num_vars() const override { return vars_.size(); }

  void add_clause(const std::vector<Lit>& lits) override;
  void add_linear_ge(const std::vector<Term>& terms,
                     std::int64_t bound) override;
  void add_linear_le(const std::vector<Term>& terms,
                     std::int64_t bound) override;
  void add_guarded_linear_ge(Lit guard, const std::vector<Term>& terms,
                             std::int64_t bound) override;
  void add_guarded_linear_le(Lit guard, const std::vector<Term>& terms,
                             std::int64_t bound) override;

  CheckResult check(const std::vector<Lit>& assumptions) override;
  void set_time_limit_ms(std::int64_t ms) override;
  void set_conflict_limit(std::int64_t limit) override;
  bool model_value(BoolVar v) const override;
  std::vector<Lit> unsat_core() const override;
  std::size_t memory_bytes() const override;
  SolverStats statistics() const override;
  std::string name() const override { return "z3"; }

 private:
  z3::expr lit_expr(Lit l) const;

  /// Σ terms ≥ bound as a Z3 expression (after positive normalization).
  z3::expr linear_ge_expr(const std::vector<Term>& terms,
                          std::int64_t bound);

  /// Asserts into the solver and records for rebuilds.
  void assert_expr(const z3::expr& e);

  /// Recreates the solver from the recorded assertions. Z3's QF_FD core
  /// stays in a cancelled state after a timed-out check (subsequent checks
  /// return unknown immediately), so the backend rebuilds after every
  /// kUnknown result.
  void rebuild_solver();

  /// Reads the live solver's statistics into a SolverStats (0 on any Z3
  /// error — statistics are observability, never worth an exception).
  SolverStats read_live_stats() const;

  z3::context ctx_;
  z3::solver solver_;
  std::vector<z3::expr> vars_;
  std::vector<z3::expr> asserted_;
  std::unordered_map<unsigned, BoolVar> var_by_ast_id_;
  std::vector<char> model_;
  std::vector<Lit> core_;
  std::int64_t time_limit_ms_ = 0;
  std::int64_t conflict_limit_ = 0;
  bool needs_rebuild_ = false;
  /// Counters of solvers discarded by rebuild_solver(); statistics() adds
  /// the live solver's counters on top so the total stays monotone.
  SolverStats stats_before_rebuilds_;
};

}  // namespace cs::smt
