// Backend-neutral constraint interface.
//
// The ConfigSynth encoder (synth/encoder.h) emits three constraint shapes:
// Boolean clauses, linear "at least" constraints and linear "at most"
// constraints over Boolean decision variables — plus *guarded* linear
// constraints whose guard literal can be assumed or dropped per check,
// which is how the paper's threshold constraints become retractable
// assumptions for unsat-core analysis (Algorithm 1).
//
// Three interchangeable backends implement the interface:
//   * Z3Backend   — the paper's actual solver, via the native z3++ API.
//   * MiniBackend — this repo's from-scratch CDCL PB solver.
//   * RaceBackend — a deterministic portfolio racing the two above in
//     effort-cap rounds (smt/race_backend.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cs::smt {

/// Dense Boolean decision-variable index within a backend.
using BoolVar = std::int32_t;
inline constexpr BoolVar kNoVar = -1;

/// Literal: a variable or its negation.
struct Lit {
  BoolVar var = kNoVar;
  bool negated = false;

  friend Lit operator!(Lit l) { return Lit{l.var, !l.negated}; }
  bool operator==(const Lit&) const = default;
};

inline Lit pos(BoolVar v) { return Lit{v, false}; }
inline Lit neg(BoolVar v) { return Lit{v, true}; }

/// Weighted literal of a linear constraint: coeff · [lit is true].
struct Term {
  Lit lit;
  std::int64_t coeff = 0;
};

enum class CheckResult { kSat, kUnsat, kUnknown };

/// Cumulative search-effort counters of a backend since its construction.
/// Backend-neutral observability for warm-started sweeps: subtracting two
/// snapshots yields the effort of the checks in between, which is how the
/// sweep engine and the service attribute conflicts/propagations to a
/// single grid point even on 1-core machines where wall clock is noisy.
/// Not every backend fills every field (Z3 reports no learned-clause
/// count; fields it cannot observe stay 0).
struct SolverStats {
  std::int64_t conflicts = 0;
  std::int64_t propagations = 0;
  std::int64_t decisions = 0;
  std::int64_t restarts = 0;
  std::int64_t learned_clauses = 0;
  // Clause-DB composition (MiniPB only; Z3 leaves them 0): monotone
  // counts of learnt clauses entering each LBD tier, plus the number of
  // root-level database simplification rounds.
  std::int64_t lbd_core = 0;
  std::int64_t lbd_tier2 = 0;
  std::int64_t lbd_local = 0;
  std::int64_t db_simplify_rounds = 0;
  // Search-heuristic counters (MiniPB only): restarts fired by the
  // Glucose LBD condition, polarity rephase events, and literals removed
  // by learned-clause minimization.
  std::int64_t glucose_restarts = 0;
  std::int64_t rephases = 0;
  std::int64_t minimized_literals = 0;
  // Portfolio racing (RaceBackend only): completed race rounds and which
  // backend decided first, per race.
  std::int64_t race_rounds = 0;
  std::int64_t race_wins_minipb = 0;
  std::int64_t race_wins_z3 = 0;

  SolverStats& operator+=(const SolverStats& o) {
    conflicts += o.conflicts;
    propagations += o.propagations;
    decisions += o.decisions;
    restarts += o.restarts;
    learned_clauses += o.learned_clauses;
    lbd_core += o.lbd_core;
    lbd_tier2 += o.lbd_tier2;
    lbd_local += o.lbd_local;
    db_simplify_rounds += o.db_simplify_rounds;
    glucose_restarts += o.glucose_restarts;
    rephases += o.rephases;
    minimized_literals += o.minimized_literals;
    race_rounds += o.race_rounds;
    race_wins_minipb += o.race_wins_minipb;
    race_wins_z3 += o.race_wins_z3;
    return *this;
  }
  /// Delta between two cumulative snapshots (this − o).
  SolverStats operator-(const SolverStats& o) const {
    SolverStats d = *this;
    d.conflicts -= o.conflicts;
    d.propagations -= o.propagations;
    d.decisions -= o.decisions;
    d.restarts -= o.restarts;
    d.learned_clauses -= o.learned_clauses;
    d.lbd_core -= o.lbd_core;
    d.lbd_tier2 -= o.lbd_tier2;
    d.lbd_local -= o.lbd_local;
    d.db_simplify_rounds -= o.db_simplify_rounds;
    d.glucose_restarts -= o.glucose_restarts;
    d.rephases -= o.rephases;
    d.minimized_literals -= o.minimized_literals;
    d.race_rounds -= o.race_rounds;
    d.race_wins_minipb -= o.race_wins_minipb;
    d.race_wins_z3 -= o.race_wins_z3;
    return d;
  }
  bool operator==(const SolverStats&) const = default;
};

/// Solver backend interface. All constraint additions happen before (or
/// between) `check` calls; models and cores are valid until the next call
/// that mutates the backend.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Creates a fresh Boolean variable. `name` aids debugging/dumps only.
  virtual BoolVar new_bool(const std::string& name) = 0;

  virtual std::size_t num_vars() const = 0;

  /// Adds a disjunction of literals (must be non-empty).
  virtual void add_clause(const std::vector<Lit>& lits) = 0;

  /// Adds Σ terms ≥ bound.
  virtual void add_linear_ge(const std::vector<Term>& terms,
                             std::int64_t bound) = 0;

  /// Adds Σ terms ≤ bound.
  virtual void add_linear_le(const std::vector<Term>& terms,
                             std::int64_t bound) = 0;

  /// Adds guard ⇒ (Σ terms ≥ bound). Assume `guard` in check() to enable.
  virtual void add_guarded_linear_ge(Lit guard,
                                     const std::vector<Term>& terms,
                                     std::int64_t bound) = 0;

  /// Adds guard ⇒ (Σ terms ≤ bound).
  virtual void add_guarded_linear_le(Lit guard,
                                     const std::vector<Term>& terms,
                                     std::int64_t bound) = 0;

  /// Solves under the given assumptions.
  virtual CheckResult check(const std::vector<Lit>& assumptions) = 0;
  CheckResult check() { return check({}); }

  /// Caps each subsequent check's wall-clock time; 0 = unlimited. A capped
  /// check returns kUnknown when the budget runs out. Near-boundary
  /// threshold probes are genuinely exponential (the paper's Fig. 5a), so
  /// drivers that sweep thresholds set this.
  virtual void set_time_limit_ms(std::int64_t ms) = 0;

  /// Caps each subsequent check's search effort in deterministic,
  /// backend-specific units (CDCL conflicts for MiniPB, resource units for
  /// Z3); 0 = unlimited. A capped check returns kUnknown — but unlike the
  /// wall-clock cap, expiry does not depend on machine load or thread
  /// scheduling: the same formula under the same limit always yields the
  /// same verdict. Parallel sweeps that must reproduce their serial results
  /// bit-for-bit cap probes this way (synth/sweep.h).
  virtual void set_conflict_limit(std::int64_t limit) = 0;

  /// Model value of a variable after kSat.
  virtual bool model_value(BoolVar v) const = 0;

  /// After kUnsat under assumptions: a subset of the assumptions that is
  /// jointly inconsistent with the constraints.
  virtual std::vector<Lit> unsat_core() const = 0;

  /// Rough memory footprint of the solver state, in bytes.
  virtual std::size_t memory_bytes() const = 0;

  /// Cumulative search-effort counters since construction (monotone across
  /// checks; Z3 keeps counting across its internal post-timeout rebuilds).
  virtual SolverStats statistics() const = 0;

  /// Backend identifier ("z3", "minipb", "race").
  virtual std::string name() const = 0;

  // ---- convenience helpers built on the primitives ---------------------

  /// a ⇒ b.
  void add_implies(Lit a, Lit b) { add_clause({!a, b}); }

  /// At most one of the literals is true (pairwise encoding; the pattern
  /// sets here are ≤5 wide, where pairwise is optimal).
  void add_at_most_one(const std::vector<Lit>& lits) {
    for (std::size_t i = 0; i < lits.size(); ++i)
      for (std::size_t j = i + 1; j < lits.size(); ++j)
        add_clause({!lits[i], !lits[j]});
  }

  /// Fixes a literal true.
  void add_unit(Lit l) { add_clause({l}); }
};

enum class BackendKind { kZ3, kMiniPb, kRace };

/// Creates a backend instance. kRace is the deterministic portfolio
/// racer (smt/race_backend.h): MiniPB and Z3 race in effort-cap rounds
/// with a fixed schedule and MiniPB-first tie-break, then the winner is
/// anchored for the backend's remaining checks.
std::unique_ptr<Backend> make_backend(BackendKind kind);

/// Parses "z3" / "minipb" / "race" (for CLI flags); throws SpecError
/// otherwise.
BackendKind backend_from_name(const std::string& name);

}  // namespace cs::smt
