#include "smt/race_backend.h"

#include <limits>

#include "obs/trace.h"
#include "smt/mini_backend.h"
#include "smt/z3_backend.h"

namespace cs::smt {

RaceBackend::RaceBackend()
    : mini_(std::make_unique<MiniBackend>()),
      z3_(std::make_unique<Z3Backend>()) {}

BoolVar RaceBackend::new_bool(const std::string& name) {
  const BoolVar v = mini_->new_bool(name);
  const BoolVar v2 = z3_->new_bool(name);
  (void)v2;  // lockstep creation keeps the indices equal by construction
  return v;
}

std::size_t RaceBackend::num_vars() const { return mini_->num_vars(); }

void RaceBackend::add_clause(const std::vector<Lit>& lits) {
  mini_->add_clause(lits);
  z3_->add_clause(lits);
}

void RaceBackend::add_linear_ge(const std::vector<Term>& terms,
                                std::int64_t bound) {
  mini_->add_linear_ge(terms, bound);
  z3_->add_linear_ge(terms, bound);
}

void RaceBackend::add_linear_le(const std::vector<Term>& terms,
                                std::int64_t bound) {
  mini_->add_linear_le(terms, bound);
  z3_->add_linear_le(terms, bound);
}

void RaceBackend::add_guarded_linear_ge(Lit guard,
                                        const std::vector<Term>& terms,
                                        std::int64_t bound) {
  mini_->add_guarded_linear_ge(guard, terms, bound);
  z3_->add_guarded_linear_ge(guard, terms, bound);
}

void RaceBackend::add_guarded_linear_le(Lit guard,
                                        const std::vector<Term>& terms,
                                        std::int64_t bound) {
  mini_->add_guarded_linear_le(guard, terms, bound);
  z3_->add_guarded_linear_le(guard, terms, bound);
}

void RaceBackend::set_time_limit_ms(std::int64_t ms) {
  // Forwarded for parity with the single backends, but note a wall-clock
  // cap reintroduces machine-dependence; deterministic drivers use
  // set_conflict_limit instead.
  time_limit_ms_ = ms;
  mini_->set_time_limit_ms(ms);
  z3_->set_time_limit_ms(ms);
}

void RaceBackend::set_conflict_limit(std::int64_t limit) {
  caller_cap_ = limit;
}

CheckResult RaceBackend::check(const std::vector<Lit>& assumptions) {
  if (anchor_ != nullptr) {
    // Warm path: the race is settled for this instance; delegate to the
    // winner under the caller's cap (scaled into the winner's units).
    anchor_->set_conflict_limit(
        anchor_ == z3_.get() && caller_cap_ > 0
            ? caller_cap_ * kZ3UnitsPerConflict
            : caller_cap_);
    const CheckResult r = anchor_->check(assumptions);
    decider_ = anchor_;
    return r;
  }
  return race(assumptions);
}

CheckResult RaceBackend::race(const std::vector<Lit>& assumptions) {
  obs::Span race_span("solver", "race");
  // Cumulative per-round effort targets: MiniPB keeps its learnt clauses
  // across rounds, so its slice is the *increment* to the target; Z3's
  // QF_FD core restarts from scratch after every capped (kUnknown) check,
  // so its slice is the full cumulative target each round.
  std::int64_t target = kRound0;
  std::int64_t mini_spent = 0;
  for (;;) {
    const bool capped = caller_cap_ > 0 && target >= caller_cap_;
    const std::int64_t round_target =
        capped ? caller_cap_ : target;

    ++race_rounds_;
    {
      obs::Span round_span("solver", "race/round");
      // MiniPB slice first — the fixed tie-break: if both backends could
      // decide within this round's target, MiniPB's verdict lands first.
      const std::int64_t mini_slice = round_target - mini_spent;
      if (mini_slice > 0) {
        mini_->set_conflict_limit(mini_slice);
        const CheckResult r = mini_->check(assumptions);
        mini_spent = round_target;
        if (r != CheckResult::kUnknown) {
          anchor_ = decider_ = mini_.get();
          ++race_wins_minipb_;
          return r;
        }
      }
      // Z3 sits out tiny early rounds (it restarts from scratch per
      // capped check, so small slices are waste on points MiniPB
      // anchors immediately) but always races the final capped round.
      if (round_target >= kZ3MinTarget || capped) {
        z3_->set_conflict_limit(round_target * kZ3UnitsPerConflict);
        const CheckResult r = z3_->check(assumptions);
        if (r != CheckResult::kUnknown) {
          anchor_ = decider_ = z3_.get();
          ++race_wins_z3_;
          return r;
        }
      }
    }
    if (capped) {
      // Both solvers exhausted the caller's effort cap undecided: report
      // kUnknown exactly like a capped single backend. No anchor — a
      // later uncapped check on this instance races again.
      decider_ = nullptr;
      return CheckResult::kUnknown;
    }
    if (target > std::numeric_limits<std::int64_t>::max() / kRoundGrowth)
      target = std::numeric_limits<std::int64_t>::max();
    else
      target *= kRoundGrowth;
  }
}

bool RaceBackend::model_value(BoolVar v) const {
  return decider_ != nullptr ? decider_->model_value(v)
                             : mini_->model_value(v);
}

std::vector<Lit> RaceBackend::unsat_core() const {
  return decider_ != nullptr ? decider_->unsat_core()
                             : mini_->unsat_core();
}

std::size_t RaceBackend::memory_bytes() const {
  return mini_->memory_bytes() + z3_->memory_bytes();
}

SolverStats RaceBackend::statistics() const {
  // Total effort spent by the instance — both racers, not just the
  // winner — so sweep effort attribution reflects the race's real cost.
  SolverStats s = mini_->statistics();
  s += z3_->statistics();
  s.race_rounds = race_rounds_;
  s.race_wins_minipb = race_wins_minipb_;
  s.race_wins_z3 = race_wins_z3_;
  return s;
}

std::string RaceBackend::anchored() const {
  if (anchor_ == nullptr) return "";
  return anchor_ == mini_.get() ? "minipb" : "z3";
}

}  // namespace cs::smt
