#include "shard/sharded.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cs::shard {
namespace {

// One region solve: a fresh Synthesizer per region keeps the single-owner
// backend rule (sweep.h determinism contract) — no solver state is ever
// shared across threads, and caps are deterministic functions of the
// region formula.
void solve_region(const RegionPlan& region,
                  const synth::SynthesisOptions& synthesis,
                  RegionOutcome& outcome,
                  std::optional<synth::SecurityDesign>& design) {
  obs::Span span("shard", "shard/region");
  span.arg("region", std::to_string(region.index));
  span.arg("flows", std::to_string(region.projection.spec.flows.size()));
  util::Stopwatch timer;
  outcome.index = region.index;
  outcome.trivial = region.trivial;
  outcome.hosts = region.projection.spec.network.host_count();
  outcome.flows = region.projection.spec.flows.size();
  outcome.sub_digest = region.projection.sub_digest;
  if (region.trivial) {
    // No flows to decide: the empty design satisfies the region
    // vacuously (and is not a valid solver input — validate() rejects
    // empty flow sets).
    outcome.status = smt::CheckResult::kSat;
    design.emplace(region.projection.spec.flows.size(),
                   region.projection.spec.network.link_count());
    outcome.wall_seconds = timer.elapsed_seconds();
    return;
  }
  synth::Synthesizer synth(region.projection.spec, synthesis);
  synth::SynthesisResult result = synth.synthesize();
  outcome.status = result.status;
  if (result.status == smt::CheckResult::kSat) design = result.design;
  outcome.wall_seconds = timer.elapsed_seconds();
  span.arg("status", result.status == smt::CheckResult::kSat     ? "sat"
                     : result.status == smt::CheckResult::kUnsat ? "unsat"
                                                                 : "unknown");
}

}  // namespace

ShardedSynthesizer::ShardedSynthesizer(const model::ProblemSpec& spec,
                                       ShardOptions options)
    : spec_(spec), options_(options) {
  spec_.validate();
}

ShardedOutcome ShardedSynthesizer::synthesize() {
  util::Stopwatch total;
  ShardedOutcome out;

  util::Stopwatch plan_timer;
  ShardPlan plan;
  {
    obs::Span span("shard", "shard/plan");
    plan = plan_shards(spec_, ShardPlannerOptions{options_.regions});
    span.arg("regions", std::to_string(plan.partition.regions));
    span.arg("cut_links", std::to_string(plan.partition.cut_links.size()));
    span.arg("cross_flows", std::to_string(plan.cross_flows.size()));
  }
  out.plan_seconds = plan_timer.elapsed_seconds();
  out.regions = plan.partition.regions;
  out.cut_links = plan.partition.cut_links.size();
  out.cross_flows = plan.cross_flows.size();

  const auto fallback = [&](const std::string& reason) {
    obs::Span span("shard", "shard/fallback");
    span.arg("reason", reason);
    util::Stopwatch timer;
    out.used_fallback = true;
    out.fallback_reason = reason;
    synth::Synthesizer synth(spec_, options_.synthesis);
    synth::SynthesisResult result = synth.synthesize();
    out.status = result.status;
    out.design = result.design;
    out.conflicting = result.conflicting;
    out.fallback_seconds = timer.elapsed_seconds();
    out.wall_seconds = total.elapsed_seconds();
    return out;
  };

  if (plan.partition.regions < 2) return fallback("single-region");

  // Region solves, in parallel when asked. Results land in index-ordered
  // slots, so collection order — and therefore everything downstream —
  // is independent of scheduling.
  const std::size_t count = plan.regions.size();
  out.region_outcomes.assign(count, RegionOutcome{});
  std::vector<std::optional<synth::SecurityDesign>> designs(count);
  const int jobs = std::min<int>(
      options_.jobs <= 0 ? static_cast<int>(util::ThreadPool::hardware_jobs())
                         : options_.jobs,
      static_cast<int>(count));
  if (jobs <= 1) {
    for (std::size_t r = 0; r < count; ++r) {
      solve_region(plan.regions[r], options_.synthesis,
                   out.region_outcomes[r], designs[r]);
    }
  } else {
    util::ThreadPool pool(static_cast<std::size_t>(jobs));
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t r = 0; r < count; ++r) {
      futures.push_back(pool.submit([&, r] {
        solve_region(plan.regions[r], options_.synthesis,
                     out.region_outcomes[r], designs[r]);
      }));
    }
    for (auto& f : futures) f.get();
  }
  for (const RegionOutcome& ro : out.region_outcomes)
    out.region_wall_seconds += ro.wall_seconds;

  for (const RegionOutcome& ro : out.region_outcomes) {
    if (ro.status == smt::CheckResult::kUnsat) return fallback("region-unsat");
    if (ro.status == smt::CheckResult::kUnknown)
      return fallback("region-unknown");
  }

  util::Stopwatch stitch_timer;
  StitchResult stitched;
  {
    obs::Span span("shard", "shard/stitch");
    stitched = stitch_designs(spec_, plan, designs);
    span.arg("ok", stitched.ok ? "1" : "0");
    span.arg("escalated", std::to_string(stitched.escalated_flows));
    span.arg("repairs", std::to_string(stitched.repair_placements));
    if (!stitched.ok) span.arg("issue", stitched.failure);
  }
  out.stitch_seconds = stitch_timer.elapsed_seconds();
  out.escalated_flows = stitched.escalated_flows;
  out.repair_placements = stitched.repair_placements;

  if (!stitched.ok) {
    out.stitch_failure = stitched.failure;
    return fallback("stitch-failed");
  }

  out.status = smt::CheckResult::kSat;
  out.design = std::move(stitched.design);
  out.sharded = true;
  out.wall_seconds = total.elapsed_seconds();
  return out;
}

}  // namespace cs::shard
