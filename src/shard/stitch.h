// Stitcher: merging per-region designs into one global SecurityDesign.
//
// Region solves decide intra-region flows and intra-region device
// placements; the stitcher lifts them into the global id space and then
// resolves everything only the global view can see:
//
//   1. cross-region flows pinned by RequirePatternForFlow constraints;
//   2. DenyOneOf constraints spanning regions (prefer denying the guard
//      flow, then the open flow, whichever is deniable);
//   3. the global isolation threshold — cross flows default to open,
//      which drags the pair average, so the stitcher escalates them in
//      deterministic batches: first usability-neutral non-deny patterns
//      (IPSec-family patterns are avoided — tunnel-margin rules rarely
//      hold on arbitrary cross-cut routes), then denies on non-CR flows
//      while the usability threshold still holds;
//   4. device coverage (eq. 1/7) over the *global* route set: any route
//      a region solver never saw — cross-cut routes, and intra-pair
//      detours through other regions — gets its missing devices placed,
//      preferring cut links so one device covers many cross routes.
//
// The stitched design is then re-validated by the authoritative
// analysis::check_design against the full spec, thresholds included.
// `ok == false` means the sharded pipeline must fall back to the
// monolithic solve — the stitcher never guesses SAT.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "shard/planner.h"
#include "synth/design.h"

namespace cs::shard {

struct StitchResult {
  /// True when the stitched design passes the global checker.
  bool ok = false;
  synth::SecurityDesign design;
  /// The authoritative global check (thresholds included).
  analysis::CheckReport report;
  /// Cross flows the isolation-threshold escalation assigned a pattern.
  int escalated_flows = 0;
  /// Device placements added by global route-coverage repair.
  int repair_placements = 0;
  /// First checker issue when !ok (empty otherwise).
  std::string failure;
};

/// `region_designs[r]` is region r's solved design (nullopt for trivial
/// regions, which contribute nothing). Indices must match plan.regions.
StitchResult stitch_designs(
    const model::ProblemSpec& spec, const ShardPlan& plan,
    const std::vector<std::optional<synth::SecurityDesign>>& region_designs);

}  // namespace cs::shard
