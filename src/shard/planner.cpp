#include "shard/planner.h"

#include <string>

#include "util/error.h"

namespace cs::shard {

ShardPlan plan_shards(const model::ProblemSpec& spec,
                      const ShardPlannerOptions& options) {
  CS_REQUIRE(spec.ranks.size() == spec.flows.size(),
             "plan_shards requires a finalized spec");
  ShardPlan plan;
  plan.partition = partition_topology(spec.network, options.regions);

  // Intra-region flow counts drive the budget split; cross flows are
  // listed for the stitcher.
  std::vector<long long> region_flows(
      static_cast<std::size_t>(plan.partition.regions), 0);
  const auto flow_count = static_cast<model::FlowId>(spec.flows.size());
  for (model::FlowId f = 0; f < flow_count; ++f) {
    const model::Flow& fl = spec.flows.flow(f);
    const int src = plan.partition.region_of[static_cast<std::size_t>(fl.src)];
    const int dst = plan.partition.region_of[static_cast<std::size_t>(fl.dst)];
    if (src == dst) {
      ++region_flows[static_cast<std::size_t>(src)];
    } else {
      plan.cross_flows.push_back(f);
    }
  }
  const long long intra_total =
      static_cast<long long>(spec.flows.size()) -
      static_cast<long long>(plan.cross_flows.size());

  model::FingerprintHasher plan_hash;
  plan_hash.mix_string("cs-shard-plan-v1");
  plan_hash.mix_i64(plan.partition.regions);
  for (int r = 0; r < plan.partition.regions; ++r) {
    RegionPlan region;
    region.index = r;
    region.projection = model::project_spec(
        spec, plan.partition.members[static_cast<std::size_t>(r)]);
    // Proportional budget share, floored so the shares never overshoot
    // the global budget; the remainder (including the cross-flow share)
    // stays unallocated as stitch headroom.
    model::ProblemSpec& sub = region.projection.spec;
    if (intra_total > 0) {
      sub.sliders.budget = util::Fixed::from_raw(
          spec.sliders.budget.raw() *
          region_flows[static_cast<std::size_t>(r)] / intra_total);
    }
    region.trivial =
        sub.flows.empty() || sub.network.host_count() < 2;
    // The budget rewrite changed the spec; re-digest so sub_digest stays
    // the canonical digest of the problem the region solver actually sees.
    region.projection.sub_digest = model::fingerprint_spec(sub);
    plan_hash.mix_digest(region.projection.sub_digest);
    plan.regions.push_back(std::move(region));
  }
  plan.plan_digest = plan_hash.digest();
  return plan;
}

}  // namespace cs::shard
