#include "shard/stitch.h"

#include <algorithm>
#include <cstdint>
#include <variant>

#include "synth/metrics.h"
#include "util/error.h"

namespace cs::shard {
namespace {

using model::IsolationPattern;

constexpr std::uint8_t pattern_bit(IsolationPattern p) {
  return static_cast<std::uint8_t>(1u << model::pattern_index(p));
}

}  // namespace

StitchResult stitch_designs(
    const model::ProblemSpec& spec, const ShardPlan& plan,
    const std::vector<std::optional<synth::SecurityDesign>>& region_designs) {
  CS_REQUIRE(region_designs.size() == plan.regions.size(),
             "stitch_designs: one design slot per region");
  StitchResult out;
  out.design = synth::SecurityDesign(spec.flows.size(),
                                     spec.network.link_count());

  // 1. Lift each region's decisions into global ids.
  for (std::size_t r = 0; r < plan.regions.size(); ++r) {
    if (!region_designs[r].has_value()) continue;
    const synth::SecurityDesign& rd = *region_designs[r];
    const model::SpecProjection& proj = plan.regions[r].projection;
    for (std::size_t lf = 0; lf < proj.flows.size(); ++lf) {
      out.design.set_pattern(proj.flows[lf],
                             rd.pattern(static_cast<model::FlowId>(lf)));
    }
    for (std::size_t ll = 0; ll < proj.links.size(); ++ll) {
      for (const model::DeviceType d : model::kAllDevices) {
        if (rd.placed(static_cast<topology::LinkId>(ll), d))
          out.design.set_placed(proj.links[ll], d, true);
      }
    }
    for (std::size_t ln = 0; ln < proj.nodes.size(); ++ln) {
      const auto hp = rd.host_pattern(static_cast<topology::NodeId>(ln));
      if (hp.has_value()) out.design.set_host_pattern(proj.nodes[ln], hp);
    }
    for (const auto& [lhost, service, ap] : rd.app_patterns()) {
      out.design.set_app_pattern(proj.nodes[static_cast<std::size_t>(lhost)],
                                 service, ap);
    }
  }

  // Constraint lookups for the cross-flow decisions below. `forbid[f]`
  // is a bitmask of patterns some UIC forbids on flow f; `pinned[f]`
  // marks flows a RequirePatternForFlow owns — the stitcher never
  // overrides those.
  const std::size_t flow_count = spec.flows.size();
  std::vector<std::uint8_t> service_forbid(spec.services.size(), 0);
  std::vector<std::uint8_t> flow_forbid(flow_count, 0);
  std::vector<bool> pinned(flow_count, false);
  for (const model::UserConstraint& uc : spec.user_constraints) {
    if (const auto* fs = std::get_if<model::ForbidPatternForService>(&uc)) {
      service_forbid[static_cast<std::size_t>(fs->service)] |=
          pattern_bit(fs->pattern);
    } else if (const auto* ff = std::get_if<model::ForbidPatternForFlow>(&uc)) {
      if (const auto f = spec.flows.find(ff->flow); f.has_value())
        flow_forbid[static_cast<std::size_t>(*f)] |= pattern_bit(ff->pattern);
    } else if (const auto* rf =
                   std::get_if<model::RequirePatternForFlow>(&uc)) {
      if (const auto f = spec.flows.find(rf->flow); f.has_value()) {
        pinned[static_cast<std::size_t>(*f)] = true;
        out.design.set_pattern(*f, rf->pattern);
      }
    }
  }
  const auto forbidden = [&](model::FlowId f, IsolationPattern p) {
    const std::uint8_t bit = pattern_bit(p);
    return (flow_forbid[static_cast<std::size_t>(f)] & bit) != 0 ||
           (service_forbid[static_cast<std::size_t>(
                spec.flows.flow(f).service)] &
            bit) != 0;
  };
  const auto deniable = [&](model::FlowId f) {
    return spec.isolation.is_enabled(IsolationPattern::kAccessDeny) &&
           !spec.connectivity.required(f) &&
           !forbidden(f, IsolationPattern::kAccessDeny) &&
           !pinned[static_cast<std::size_t>(f)];
  };

  // 2. DenyOneOf constraints the region solves could not see (the ones
  // they could see were projected and already hold). Prefer denying the
  // guard flow — the paper's UIC2 reading, "close the inbound door".
  for (const model::UserConstraint& uc : spec.user_constraints) {
    const auto* dn = std::get_if<model::DenyOneOf>(&uc);
    if (dn == nullptr) continue;
    const auto open = spec.flows.find(dn->open_flow);
    const auto guard = spec.flows.find(dn->guard_flow);
    if (!open.has_value() || !guard.has_value()) continue;
    const auto denied = [&](model::FlowId f) {
      return out.design.pattern(f) == IsolationPattern::kAccessDeny;
    };
    if (denied(*open) || denied(*guard)) continue;
    if (deniable(*guard)) {
      out.design.set_pattern(*guard, IsolationPattern::kAccessDeny);
    } else if (deniable(*open)) {
      out.design.set_pattern(*open, IsolationPattern::kAccessDeny);
    }
    // Neither deniable: leave it; the final check fails and the sharded
    // pipeline falls back to the monolithic solve.
  }

  // 3. Isolation-threshold escalation over the cross flows. Cross flows
  // start open (score 0) and drag the global pair average below what the
  // regions achieved, so assign patterns in deterministic flow-id-order
  // batches until the global threshold holds. Non-deny patterns first:
  // with the paper's default usability impacts (b = 1 for everything but
  // deny) they raise isolation without usability cost. IPSec-family
  // patterns are skipped — their tunnel-margin rule must hold on every
  // global route, which arbitrary cross-cut routes rarely satisfy.
  const auto best_soft_pattern =
      [&](model::FlowId f) -> std::optional<IsolationPattern> {
    std::optional<IsolationPattern> best;
    for (const IsolationPattern p : spec.isolation.enabled()) {
      if (model::denies_flow(p) || p == IsolationPattern::kTrustedComm ||
          p == IsolationPattern::kProxyTrusted) {
        continue;
      }
      if (forbidden(f, p)) continue;
      if (!best.has_value() ||
          spec.isolation.score(p) > spec.isolation.score(*best)) {
        best = p;
      }
    }
    return best;
  };

  synth::DesignMetrics metrics = synth::compute_metrics(spec, out.design);
  std::vector<model::FlowId> soft;
  for (const model::FlowId f : plan.cross_flows) {
    if (!out.design.pattern(f).has_value() &&
        !pinned[static_cast<std::size_t>(f)]) {
      soft.push_back(f);
    }
  }
  std::size_t next = 0;
  while (metrics.isolation < spec.sliders.isolation && next < soft.size()) {
    const std::size_t batch =
        std::max<std::size_t>(1, (soft.size() - next) / 4);
    for (std::size_t i = 0; i < batch && next < soft.size(); ++i, ++next) {
      if (const auto p = best_soft_pattern(soft[next]); p.has_value()) {
        out.design.set_pattern(soft[next], *p);
        ++out.escalated_flows;
      }
    }
    metrics = synth::compute_metrics(spec, out.design);
  }
  // Still short: denies on whatever cross flows may be denied, batched,
  // backing the whole batch out if it sinks usability below threshold.
  std::vector<model::FlowId> deny_pool;
  for (const model::FlowId f : plan.cross_flows) {
    if (!out.design.pattern(f).has_value() && deniable(f))
      deny_pool.push_back(f);
  }
  next = 0;
  while (metrics.isolation < spec.sliders.isolation &&
         next < deny_pool.size()) {
    const std::size_t start = next;
    const std::size_t batch =
        std::max<std::size_t>(1, (deny_pool.size() - next) / 4);
    for (std::size_t i = 0; i < batch && next < deny_pool.size();
         ++i, ++next) {
      out.design.set_pattern(deny_pool[next], IsolationPattern::kAccessDeny);
    }
    metrics = synth::compute_metrics(spec, out.design);
    if (metrics.usability < spec.sliders.usability) {
      for (std::size_t i = start; i < next; ++i)
        out.design.set_pattern(deny_pool[i], std::nullopt);
      metrics = synth::compute_metrics(spec, out.design);
      break;
    }
    out.escalated_flows += static_cast<int>(next - start);
  }

  // 4. Global route-coverage repair (eq. 1/7). Region solves covered the
  // routes of their own route tables; the global table adds cross-cut
  // routes and inter-region detours of intra pairs. Prefer placing on a
  // cut link: every cross-region route crosses at least one, so a single
  // device there covers many flows.
  std::vector<bool> is_cut(spec.network.link_count(), false);
  for (const topology::LinkId l : plan.partition.cut_links)
    is_cut[static_cast<std::size_t>(l)] = true;
  const auto place = [&](topology::LinkId link, model::DeviceType d) {
    if (out.design.placed(link, d)) return;
    out.design.set_placed(link, d, true);
    ++out.repair_placements;
  };
  const auto pick_link = [&](const topology::Route& r, std::size_t from,
                             std::size_t count) {
    for (std::size_t t = from; t < from + count; ++t)
      if (is_cut[static_cast<std::size_t>(r.links[t])]) return r.links[t];
    return r.links[from + count / 2];
  };
  topology::RouteTable routes(spec.network, spec.route_options);
  const auto margin = static_cast<std::size_t>(spec.isolation.tunnel_margin());
  for (std::size_t fi = 0; fi < flow_count; ++fi) {
    const auto f = static_cast<model::FlowId>(fi);
    const auto chosen = out.design.pattern(f);
    if (!chosen.has_value()) continue;
    const model::Flow& flow = spec.flows.flow(f);
    for (const model::DeviceType d : model::devices_for(*chosen)) {
      for (const topology::Route& r : routes.routes(flow.src, flow.dst)) {
        if (d == model::DeviceType::kIpsec) {
          // A global route shorter than 2T+1 is unfixable here; the
          // final check reports it and the pipeline falls back.
          if (r.length() < 2 * margin + 1) continue;
          const auto any_in = [&](std::size_t from, std::size_t count) {
            for (std::size_t t = from; t < from + count; ++t)
              if (out.design.placed(r.links[t], d)) return true;
            return false;
          };
          if (!any_in(0, margin)) place(pick_link(r, 0, margin), d);
          if (!any_in(r.length() - margin, margin))
            place(pick_link(r, r.length() - margin, margin), d);
        } else {
          const bool covered = std::any_of(
              r.links.begin(), r.links.end(),
              [&](topology::LinkId e) { return out.design.placed(e, d); });
          if (!covered) place(pick_link(r, 0, r.length()), d);
        }
      }
    }
  }

  // 5. The authoritative global verdict.
  out.report = analysis::check_design(spec, out.design, true);
  out.ok = out.report.ok();
  if (!out.ok) out.failure = out.report.issues.front();
  return out;
}

}  // namespace cs::shard
