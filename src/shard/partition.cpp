#include "shard/partition.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.h"

namespace cs::shard {
namespace {

constexpr int kUnassigned = -1;
constexpr int kInfinity = std::numeric_limits<int>::max();

// BFS hop distances from `start` over the router-induced subgraph (hosts
// never carry transit traffic, so the cut we care about is over the core).
std::vector<int> router_bfs(const topology::Network& net,
                            topology::NodeId start) {
  std::vector<int> dist(net.node_count(), kInfinity);
  std::queue<topology::NodeId> frontier;
  dist[static_cast<std::size_t>(start)] = 0;
  frontier.push(start);
  while (!frontier.empty()) {
    const topology::NodeId at = frontier.front();
    frontier.pop();
    for (const topology::Adjacency& adj : net.neighbors(at)) {
      if (!net.is_router(adj.peer)) continue;
      auto& d = dist[static_cast<std::size_t>(adj.peer)];
      if (d != kInfinity) continue;
      d = dist[static_cast<std::size_t>(at)] + 1;
      frontier.push(adj.peer);
    }
  }
  return dist;
}

}  // namespace

int default_region_count(const topology::Network& net) {
  const auto routers = static_cast<int>(net.router_count());
  return std::max(2, routers / 16);
}

Partition partition_topology(const topology::Network& net, int regions) {
  CS_REQUIRE(net.router_count() > 0,
             "partition_topology needs at least one router");
  if (regions <= 0) regions = default_region_count(net);
  regions = std::min(regions, static_cast<int>(net.router_count()));

  Partition out;
  out.regions = regions;
  out.region_of.assign(net.node_count(), kUnassigned);

  // k-center seeds: start from the lowest-id router, then repeatedly take
  // the router farthest (BFS hops over the core) from every seed so far.
  // Ties break toward the lower id; routers a seed cannot reach count as
  // infinitely far, so disconnected core components get their own seed
  // before any connected refinement happens.
  std::vector<topology::NodeId> seeds;
  std::vector<std::vector<int>> seed_dist;
  seeds.push_back(*std::min_element(net.routers().begin(),
                                    net.routers().end()));
  seed_dist.push_back(router_bfs(net, seeds.back()));
  while (static_cast<int>(seeds.size()) < regions) {
    topology::NodeId best = topology::kInvalidNode;
    long long best_score = -1;
    for (const topology::NodeId r : net.routers()) {
      long long nearest = std::numeric_limits<long long>::max();
      for (const auto& dist : seed_dist)
        nearest = std::min(
            nearest,
            static_cast<long long>(dist[static_cast<std::size_t>(r)]));
      if (nearest == 0) continue;  // already a seed
      if (nearest > best_score ||
          (nearest == best_score && r < best)) {
        best_score = nearest;
        best = r;
      }
    }
    CS_ENSURE(best != topology::kInvalidNode,
              "partition: fewer distinct routers than regions");
    seeds.push_back(best);
    seed_dist.push_back(router_bfs(net, best));
  }

  // Region growth: host-weighted multi-source BFS from the seeds. On
  // every step the lightest region (1 per router + 1 per attached host,
  // ties toward the lower index) claims one unassigned router adjacent
  // to its frontier, so the regions converge to equal host counts — the
  // quantity that actually drives per-region solver work — and stay
  // connected. A plain nearest-seed rule is useless on symmetric
  // fabrics: in a fat-tree every edge switch is equidistant from every
  // core, so with ties broken by region index the whole fabric collapses
  // into region 0. Routers no seed can reach (a core component smaller
  // than the seed surplus) land in region 0.
  const auto node_weight = [&](topology::NodeId r) {
    long long w = 1;
    for (const topology::Adjacency& adj : net.neighbors(r))
      if (!net.is_router(adj.peer)) ++w;
    return w;
  };
  std::vector<std::queue<topology::NodeId>> frontiers(
      static_cast<std::size_t>(regions));
  std::vector<long long> weight(static_cast<std::size_t>(regions), 0);
  std::vector<char> live(static_cast<std::size_t>(regions), 1);
  for (int s = 0; s < regions; ++s) {
    const topology::NodeId seed = seeds[static_cast<std::size_t>(s)];
    out.region_of[static_cast<std::size_t>(seed)] = s;
    frontiers[static_cast<std::size_t>(s)].push(seed);
    weight[static_cast<std::size_t>(s)] = node_weight(seed);
  }
  int live_count = regions;
  while (live_count > 0) {
    int s = -1;
    for (int i = 0; i < regions; ++i)
      if (live[static_cast<std::size_t>(i)] &&
          (s < 0 ||
           weight[static_cast<std::size_t>(i)] <
               weight[static_cast<std::size_t>(s)]))
        s = i;
    auto& frontier = frontiers[static_cast<std::size_t>(s)];
    topology::NodeId claimed = topology::kInvalidNode;
    while (!frontier.empty()) {
      const topology::NodeId at = frontier.front();
      for (const topology::Adjacency& adj : net.neighbors(at)) {
        if (!net.is_router(adj.peer)) continue;
        if (out.region_of[static_cast<std::size_t>(adj.peer)] ==
            kUnassigned) {
          claimed = adj.peer;
          break;
        }
      }
      if (claimed != topology::kInvalidNode) break;
      frontier.pop();  // every neighbor is taken; retire the node
    }
    if (claimed == topology::kInvalidNode) {
      live[static_cast<std::size_t>(s)] = 0;  // frontier exhausted
      --live_count;
      continue;
    }
    out.region_of[static_cast<std::size_t>(claimed)] = s;
    frontier.push(claimed);
    weight[static_cast<std::size_t>(s)] += node_weight(claimed);
  }
  for (const topology::NodeId r : net.routers())
    if (out.region_of[static_cast<std::size_t>(r)] == kUnassigned)
      out.region_of[static_cast<std::size_t>(r)] = 0;

  // Boundary refinement: move a router to the neighboring region holding
  // the strict majority of its core links (smaller edge cut), unless it
  // is its region's last router or one of the seeds (keeping every seed
  // pins region count and keeps the pass deterministic and terminating).
  // A move is also vetoed when it would drop the source region below
  // half the average weight — without the guard, majority pulls hollow
  // out small regions on dense fabrics until only the pinned seed is
  // left.
  std::vector<int> region_size(static_cast<std::size_t>(regions), 0);
  for (const topology::NodeId r : net.routers())
    ++region_size[static_cast<std::size_t>(
        out.region_of[static_cast<std::size_t>(r)])];
  long long total_weight = 0;
  for (int s = 0; s < regions; ++s)
    total_weight += weight[static_cast<std::size_t>(s)];
  const long long min_weight = total_weight / (2 * regions);
  std::vector<bool> is_seed(net.node_count(), false);
  for (const topology::NodeId s : seeds)
    is_seed[static_cast<std::size_t>(s)] = true;
  for (int round = 0; round < 2; ++round) {
    bool moved = false;
    for (const topology::NodeId r : net.routers()) {
      if (is_seed[static_cast<std::size_t>(r)]) continue;
      const int current = out.region_of[static_cast<std::size_t>(r)];
      if (region_size[static_cast<std::size_t>(current)] <= 1) continue;
      const long long w = node_weight(r);
      if (weight[static_cast<std::size_t>(current)] - w < min_weight)
        continue;
      std::vector<int> pull(static_cast<std::size_t>(regions), 0);
      for (const topology::Adjacency& adj : net.neighbors(r)) {
        if (!net.is_router(adj.peer)) continue;
        ++pull[static_cast<std::size_t>(
            out.region_of[static_cast<std::size_t>(adj.peer)])];
      }
      int target = current;
      for (int s = 0; s < regions; ++s)
        if (pull[static_cast<std::size_t>(s)] >
            pull[static_cast<std::size_t>(target)])
          target = s;
      if (target != current) {
        out.region_of[static_cast<std::size_t>(r)] = target;
        --region_size[static_cast<std::size_t>(current)];
        ++region_size[static_cast<std::size_t>(target)];
        weight[static_cast<std::size_t>(current)] -= w;
        weight[static_cast<std::size_t>(target)] += w;
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Hosts follow their first-listed uplink router (adjacency insertion
  // order is deterministic). A host with no router neighbor can only be
  // linked to other hosts; validate() guarantees it has some link, and
  // such degenerate chains follow the first neighbor's eventual region
  // (resolved iteratively; region 0 as a last resort).
  for (const topology::NodeId h : net.hosts()) {
    int region = kUnassigned;
    for (const topology::Adjacency& adj : net.neighbors(h)) {
      if (!net.is_router(adj.peer)) continue;
      region = out.region_of[static_cast<std::size_t>(adj.peer)];
      break;
    }
    out.region_of[static_cast<std::size_t>(h)] = region;
  }
  for (const topology::NodeId h : net.hosts()) {
    if (out.region_of[static_cast<std::size_t>(h)] != kUnassigned) continue;
    int region = 0;
    for (const topology::Adjacency& adj : net.neighbors(h)) {
      const int peer = out.region_of[static_cast<std::size_t>(adj.peer)];
      if (peer != kUnassigned) {
        region = peer;
        break;
      }
    }
    out.region_of[static_cast<std::size_t>(h)] = region;
  }

  out.members.assign(static_cast<std::size_t>(regions), {});
  for (std::size_t n = 0; n < net.node_count(); ++n)
    out.members[static_cast<std::size_t>(out.region_of[n])].push_back(
        static_cast<topology::NodeId>(n));
  for (const topology::Link& l : net.links()) {
    if (out.region_of[static_cast<std::size_t>(l.a)] !=
        out.region_of[static_cast<std::size_t>(l.b)])
      out.cut_links.push_back(l.id);
  }
  return out;
}

}  // namespace cs::shard
