// ShardedSynthesizer: divide-and-conquer synthesis for large topologies.
//
// The monolithic encoding grows super-linearly with topology size (the
// paper's evaluation tops out near 100 hosts); sharding changes the
// asymptotics for workloads with locality. Pipeline:
//
//   partition (partition.h)  — RNG-free edge-cut regions over the router
//                              core;
//   plan      (planner.h)    — per-region sub-specs + the cross-flow
//                              interface set;
//   solve                    — one fresh Synthesizer per region, run on
//                              util::ThreadPool;
//   stitch    (stitch.h)     — lift region designs, resolve cross flows,
//                              repair global route coverage, re-check
//                              against the full spec.
//
// Verdict contract: the sharded path returns kSat ONLY when the stitched
// design passes the authoritative analysis::check_design on the global
// spec. On any other outcome — a region UNSAT or unknown, a failed
// stitch — it falls back to the monolithic solve and returns *its*
// verdict. Sharded and monolithic verdicts are therefore identical by
// construction; sharding can only change how fast a design is found and
// which satisfying design it is. The fallback decision is recorded in
// the outcome, in cs_obs trace spans ("shard" category) and in the
// service metrics when driven through SynthService.
//
// Determinism: the same rules as synth/sweep.h. The partitioner is
// RNG-free, each region gets a fresh single-owner Synthesizer (caps are
// deterministic functions of the formula), and results are collected by
// region index — so the outcome, design included, is byte-identical at
// any `jobs` value.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/fingerprint.h"
#include "model/spec.h"
#include "shard/planner.h"
#include "shard/stitch.h"
#include "smt/ir.h"
#include "synth/synthesizer.h"

namespace cs::shard {

struct ShardOptions {
  /// Backend and per-check caps for the region solves (and the fallback).
  synth::SynthesisOptions synthesis;
  /// Region count; 0 = auto (~16 routers per region, min 2).
  int regions = 0;
  /// Worker threads for region solves; 0 = one per hardware thread.
  /// The result is byte-identical for every value.
  int jobs = 1;
};

/// Per-region solve telemetry.
struct RegionOutcome {
  int index = 0;
  smt::CheckResult status = smt::CheckResult::kUnknown;
  bool trivial = false;
  std::size_t hosts = 0;
  std::size_t flows = 0;
  double wall_seconds = 0;
  /// cs-spec-v1 digest of the region sub-spec (cache key material).
  model::Fingerprint sub_digest;
};

struct ShardedOutcome {
  smt::CheckResult status = smt::CheckResult::kUnknown;
  std::optional<synth::SecurityDesign> design;
  /// True when the returned design came from the stitched region solves.
  bool sharded = false;
  /// True when the pipeline fell back to the monolithic solve.
  bool used_fallback = false;
  /// Why: "", "single-region", "region-unsat", "region-unknown",
  /// "stitch-failed".
  std::string fallback_reason;
  /// First check_design issue when the stitch failed (empty otherwise).
  std::string stitch_failure;
  /// UNSAT threshold core from the fallback solve (empty otherwise).
  std::vector<synth::ThresholdKind> conflicting;

  int regions = 0;
  std::size_t cut_links = 0;
  std::size_t cross_flows = 0;
  int escalated_flows = 0;
  int repair_placements = 0;
  std::vector<RegionOutcome> region_outcomes;

  double plan_seconds = 0;
  /// Sum of per-region solver walls (CPU view; wall view is wall_seconds).
  double region_wall_seconds = 0;
  double stitch_seconds = 0;
  double fallback_seconds = 0;
  double wall_seconds = 0;
};

class ShardedSynthesizer {
 public:
  /// `spec` must be finalized and valid, and outlive the synthesizer.
  explicit ShardedSynthesizer(const model::ProblemSpec& spec,
                              ShardOptions options = {});

  /// Runs the full pipeline with the spec's own sliders.
  ShardedOutcome synthesize();

 private:
  const model::ProblemSpec& spec_;
  ShardOptions options_;
};

}  // namespace cs::shard
