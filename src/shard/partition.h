// Deterministic topology partitioner (the first stage of sharded
// synthesis — see sharded.h for the pipeline).
//
// Cuts the router core into `regions` connected regions by k-center
// seeding plus host-weighted multi-source BFS growth (the lightest
// region claims the next router, so regions converge to equal host
// counts — the quantity that drives per-region solver work), then runs a
// boundary-refinement pass that greedily moves routers to the neighboring
// region holding most of their links — a small-edge-cut heuristic, so as
// few links (and therefore as few flows) as possible cross regions.
// Hosts join the region of their first-listed uplink router.
//
// The whole computation is RNG-free and a pure function of the network's
// node/link insertion order: the same topology always partitions the same
// way, which the sharded synthesizer's byte-identical-at-any---jobs
// guarantee builds on.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/network.h"

namespace cs::shard {

struct Partition {
  /// Number of regions actually produced (>= 1; capped by router count).
  int regions = 0;
  /// Node id -> region index.
  std::vector<int> region_of;
  /// Region index -> member node ids, ascending.
  std::vector<std::vector<topology::NodeId>> members;
  /// Links whose endpoints lie in different regions, ascending by id.
  std::vector<topology::LinkId> cut_links;
};

/// The auto rule used when no explicit region count is given: one region
/// per ~16 core routers, at least 2 (a single region would just be the
/// monolithic solve with extra steps).
int default_region_count(const topology::Network& net);

/// Partitions `net` into at most `regions` regions (0 = auto rule). The
/// network must have at least one router.
Partition partition_topology(const topology::Network& net, int regions);

}  // namespace cs::shard
