// ShardPlanner: turning a partition into per-region synthesis problems.
//
// For each region of the partition the planner projects the global
// ProblemSpec onto the region's nodes (model/subspec.h) and rewrites the
// region's budget slider to its proportional share of the global budget
// (by intra-region flow count, floored — the unassigned remainder is the
// stitcher's headroom for cross-region devices). Flows whose endpoints
// live in different regions cannot be decided by any region solve; they
// are collected as `cross_flows`, the interface-constraint set the
// stitcher resolves globally.
//
// Regions with no flows or fewer than two hosts are marked `trivial`:
// their sub-spec is not a valid synthesis problem (validate() rejects
// empty flow sets) and an empty design is vacuously optimal, so the
// sharded synthesizer skips the solver for them.
#pragma once

#include <vector>

#include "model/fingerprint.h"
#include "model/spec.h"
#include "model/subspec.h"
#include "shard/partition.h"

namespace cs::shard {

struct ShardPlannerOptions {
  /// Region count; 0 = partition.h auto rule.
  int regions = 0;
};

struct RegionPlan {
  int index = 0;
  /// Region sub-spec plus local->global id maps and its cs-spec-v1
  /// sub-digest.
  model::SpecProjection projection;
  /// True when the region needs no solver (no flows / fewer than two
  /// hosts): its contribution to the global design is empty.
  bool trivial = false;
};

struct ShardPlan {
  Partition partition;
  std::vector<RegionPlan> regions;
  /// Global ids of flows whose endpoints lie in different regions,
  /// ascending.
  std::vector<model::FlowId> cross_flows;
  /// Order-sensitive fold of the region sub-digests — one digest that
  /// changes iff any region's problem changes.
  model::Fingerprint plan_digest;
};

/// Builds the plan. `spec` must be finalized and valid.
ShardPlan plan_shards(const model::ProblemSpec& spec,
                      const ShardPlannerOptions& options = {});

}  // namespace cs::shard
