#include "synth/frontier.h"

#include <map>
#include <sstream>

#include "synth/sweep.h"
#include "util/error.h"
#include "util/table.h"

namespace cs::synth {

namespace {

FrontierPoint to_frontier_point(util::Fixed floor, util::Fixed budget,
                                const BoundSearchResult& best) {
  FrontierPoint p;
  p.usability_floor = floor;
  p.budget = budget;
  p.feasible = best.feasible;
  p.exact = best.exact;
  if (best.feasible) {
    p.max_isolation = best.metrics.isolation;
    p.metrics = best.metrics;
    p.devices = best.design->device_count();
  }
  return p;
}

/// Incremental mode: the whole grid against one synthesizer, guard
/// constraints accumulating across points.
std::vector<FrontierPoint> explore_incremental(
    const model::ProblemSpec& spec, const SynthesisOptions& synth_options,
    const FrontierOptions& options) {
  Synthesizer synth(spec, synth_options);
  std::vector<FrontierPoint> points;
  points.reserve(options.usability_floors.size() * options.budgets.size());
  for (const util::Fixed floor : options.usability_floors) {
    for (const util::Fixed budget : options.budgets) {
      const BoundSearchResult best = maximize_isolation(
          synth, spec, floor, budget, options.optimize);
      points.push_back(to_frontier_point(floor, budget, best));
    }
  }
  return points;
}

}  // namespace

FrontierOptions FrontierOptions::fig3_defaults(util::Fixed low_budget,
                                               util::Fixed high_budget) {
  FrontierOptions opts;
  for (int u = 0; u <= 10; u += 2)
    opts.usability_floors.push_back(util::Fixed::from_int(u));
  opts.budgets = {low_budget, high_budget};
  return opts;
}

std::vector<FrontierPoint> explore_frontier(
    const model::ProblemSpec& spec, const SynthesisOptions& synth_options,
    const FrontierOptions& options) {
  CS_REQUIRE(!options.usability_floors.empty(),
             "frontier needs at least one usability floor");
  CS_REQUIRE(!options.budgets.empty(),
             "frontier needs at least one budget");
  CS_REQUIRE(!(options.reuse_synthesizer && options.jobs != 1),
             "reuse_synthesizer is serial-only; it conflicts with jobs");

  if (options.reuse_synthesizer)
    return explore_incremental(spec, synth_options, options);

  SweepRequest request = SweepRequest::max_isolation_grid(
      options.usability_floors, options.budgets);
  request.synthesis = synth_options;
  request.optimize = options.optimize;
  request.jobs = options.jobs;
  request.deadline_ms = options.deadline_ms;

  const SweepResult sweep = SweepEngine(spec).run(request);
  std::vector<FrontierPoint> points;
  points.reserve(sweep.points.size());
  for (const SweepPointResult& p : sweep.points)
    points.push_back(
        to_frontier_point(p.point.usability, p.point.budget, p.search));
  return points;
}

std::string render_frontier(const std::vector<FrontierPoint>& points) {
  // Group by floor; one column per distinct budget (insertion order).
  std::vector<util::Fixed> budgets;
  for (const FrontierPoint& p : points) {
    bool known = false;
    for (const util::Fixed b : budgets) known = known || b == p.budget;
    if (!known) budgets.push_back(p.budget);
  }
  std::vector<std::string> header{"usability >="};
  for (const util::Fixed b : budgets)
    header.push_back("max isolation ($" + b.to_string() + "K)");
  util::TextTable table(header);

  std::map<std::int64_t, std::vector<std::string>> rows;  // by floor raw
  for (const FrontierPoint& p : points) {
    auto& row = rows[p.usability_floor.raw()];
    if (row.empty()) {
      row.push_back(p.usability_floor.to_string());
      row.resize(1 + budgets.size());
    }
    std::size_t col = 0;
    while (col < budgets.size() && !(budgets[col] == p.budget)) ++col;
    row[1 + col] = p.feasible
                       ? p.max_isolation.to_string() + (p.exact ? "" : "+")
                       : "infeasible";
  }
  for (auto& [floor, row] : rows) {
    (void)floor;
    for (std::string& cell : row)
      if (cell.empty()) cell = "-";
    table.add_row(row);
  }
  return table.render();
}

}  // namespace cs::synth
