#include "synth/frontier.h"

#include <map>
#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace cs::synth {

FrontierOptions FrontierOptions::fig3_defaults(util::Fixed low_budget,
                                               util::Fixed high_budget) {
  FrontierOptions opts;
  for (int u = 0; u <= 10; u += 2)
    opts.usability_floors.push_back(util::Fixed::from_int(u));
  opts.budgets = {low_budget, high_budget};
  return opts;
}

std::vector<FrontierPoint> explore_frontier(Synthesizer& synth,
                                            const model::ProblemSpec& spec,
                                            const FrontierOptions& options) {
  CS_REQUIRE(!options.usability_floors.empty(),
             "frontier needs at least one usability floor");
  CS_REQUIRE(!options.budgets.empty(),
             "frontier needs at least one budget");

  std::vector<FrontierPoint> points;
  points.reserve(options.usability_floors.size() * options.budgets.size());
  for (const util::Fixed floor : options.usability_floors) {
    for (const util::Fixed budget : options.budgets) {
      const OptimizeResult best = maximize_isolation(
          synth, spec, floor, budget, options.optimize);
      FrontierPoint p;
      p.usability_floor = floor;
      p.budget = budget;
      p.feasible = best.feasible;
      p.exact = best.exact;
      if (best.feasible) {
        p.max_isolation = best.metrics.isolation;
        p.metrics = best.metrics;
        p.devices = best.design->device_count();
      }
      points.push_back(std::move(p));
    }
  }
  return points;
}

std::vector<FrontierPoint> explore_frontier(
    const model::ProblemSpec& spec, const SynthesisOptions& synth_options,
    const FrontierOptions& options) {
  CS_REQUIRE(!options.usability_floors.empty(),
             "frontier needs at least one usability floor");
  CS_REQUIRE(!options.budgets.empty(),
             "frontier needs at least one budget");
  std::vector<FrontierPoint> points;
  for (const util::Fixed floor : options.usability_floors) {
    for (const util::Fixed budget : options.budgets) {
      Synthesizer synth(spec, synth_options);
      FrontierOptions one;
      one.usability_floors = {floor};
      one.budgets = {budget};
      one.optimize = options.optimize;
      const auto sub = explore_frontier(synth, spec, one);
      points.push_back(sub.front());
    }
  }
  return points;
}

std::string render_frontier(const std::vector<FrontierPoint>& points) {
  // Group by floor; one column per distinct budget (insertion order).
  std::vector<util::Fixed> budgets;
  for (const FrontierPoint& p : points) {
    bool known = false;
    for (const util::Fixed b : budgets) known = known || b == p.budget;
    if (!known) budgets.push_back(p.budget);
  }
  std::vector<std::string> header{"usability >="};
  for (const util::Fixed b : budgets)
    header.push_back("max isolation ($" + b.to_string() + "K)");
  util::TextTable table(header);

  std::map<std::int64_t, std::vector<std::string>> rows;  // by floor raw
  for (const FrontierPoint& p : points) {
    auto& row = rows[p.usability_floor.raw()];
    if (row.empty()) {
      row.push_back(p.usability_floor.to_string());
      row.resize(1 + budgets.size());
    }
    std::size_t col = 0;
    while (col < budgets.size() && !(budgets[col] == p.budget)) ++col;
    row[1 + col] = p.feasible
                       ? p.max_isolation.to_string() + (p.exact ? "" : "+")
                       : "infeasible";
  }
  for (auto& [floor, row] : rows) {
    (void)floor;
    for (std::string& cell : row)
      if (cell.empty()) cell = "-";
    table.add_row(row);
  }
  return table.render();
}

}  // namespace cs::synth
