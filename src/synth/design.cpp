#include "synth/design.h"

#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace cs::synth {

SecurityDesign::SecurityDesign(std::size_t flow_count,
                               std::size_t link_count,
                               std::size_t node_count)
    : patterns_(flow_count, -1),
      placements_(link_count, std::array<bool, model::kDeviceCount>{}),
      host_patterns_(node_count, -1) {}

std::optional<model::HostPattern> SecurityDesign::host_pattern(
    topology::NodeId n) const {
  if (n < 0 || static_cast<std::size_t>(n) >= host_patterns_.size())
    return std::nullopt;  // node outside the (optional) host-pattern layer
  const std::int8_t p = host_patterns_[static_cast<std::size_t>(n)];
  if (p < 0) return std::nullopt;
  return static_cast<model::HostPattern>(p);
}

void SecurityDesign::set_host_pattern(topology::NodeId n,
                                      std::optional<model::HostPattern> p) {
  if (static_cast<std::size_t>(n) >= host_patterns_.size())
    host_patterns_.resize(static_cast<std::size_t>(n) + 1, -1);
  host_patterns_[static_cast<std::size_t>(n)] =
      p.has_value()
          ? static_cast<std::int8_t>(model::host_pattern_index(*p))
          : -1;
}

std::size_t SecurityDesign::host_pattern_count() const {
  std::size_t count = 0;
  for (const std::int8_t p : host_patterns_) count += p >= 0 ? 1 : 0;
  return count;
}

std::optional<model::AppPattern> SecurityDesign::app_pattern(
    topology::NodeId host, model::ServiceId service) const {
  const auto it = app_patterns_.find({host, service});
  if (it == app_patterns_.end()) return std::nullopt;
  return static_cast<model::AppPattern>(it->second);
}

void SecurityDesign::set_app_pattern(topology::NodeId host,
                                     model::ServiceId service,
                                     std::optional<model::AppPattern> p) {
  if (p.has_value()) {
    app_patterns_[{host, service}] =
        static_cast<std::int8_t>(model::app_pattern_index(*p));
  } else {
    app_patterns_.erase({host, service});
  }
}

std::vector<std::tuple<topology::NodeId, model::ServiceId,
                       model::AppPattern>>
SecurityDesign::app_patterns() const {
  std::vector<std::tuple<topology::NodeId, model::ServiceId,
                         model::AppPattern>>
      out;
  out.reserve(app_patterns_.size());
  for (const auto& [key, p] : app_patterns_)
    out.emplace_back(key.first, key.second,
                     static_cast<model::AppPattern>(p));
  return out;
}

std::optional<model::IsolationPattern> SecurityDesign::pattern(
    model::FlowId f) const {
  CS_ENSURE(f >= 0 && static_cast<std::size_t>(f) < patterns_.size(),
            "pattern: bad flow id");
  const std::int8_t p = patterns_[static_cast<std::size_t>(f)];
  if (p < 0) return std::nullopt;
  return static_cast<model::IsolationPattern>(p);
}

void SecurityDesign::set_pattern(model::FlowId f,
                                 std::optional<model::IsolationPattern> p) {
  CS_ENSURE(f >= 0 && static_cast<std::size_t>(f) < patterns_.size(),
            "set_pattern: bad flow id");
  patterns_[static_cast<std::size_t>(f)] =
      p.has_value() ? static_cast<std::int8_t>(model::pattern_index(*p)) : -1;
}

bool SecurityDesign::placed(topology::LinkId link, model::DeviceType d) const {
  CS_ENSURE(link >= 0 && static_cast<std::size_t>(link) < placements_.size(),
            "placed: bad link id");
  return placements_[static_cast<std::size_t>(link)]
                    [static_cast<std::size_t>(model::device_index(d))];
}

void SecurityDesign::set_placed(topology::LinkId link, model::DeviceType d,
                                bool value) {
  CS_ENSURE(link >= 0 && static_cast<std::size_t>(link) < placements_.size(),
            "set_placed: bad link id");
  placements_[static_cast<std::size_t>(link)]
             [static_cast<std::size_t>(model::device_index(d))] = value;
}

std::size_t SecurityDesign::device_count() const {
  std::size_t count = 0;
  for (const auto& link : placements_)
    for (const bool placed : link) count += placed ? 1 : 0;
  return count;
}

std::array<std::size_t, model::kPatternCount + 1>
SecurityDesign::pattern_histogram() const {
  std::array<std::size_t, model::kPatternCount + 1> hist{};
  for (const std::int8_t p : patterns_) {
    if (p < 0)
      ++hist[model::kPatternCount];
    else
      ++hist[static_cast<std::size_t>(p)];
  }
  return hist;
}

std::map<topology::LinkId, std::string> SecurityDesign::link_labels() const {
  std::map<topology::LinkId, std::string> labels;
  for (std::size_t l = 0; l < placements_.size(); ++l) {
    std::string tag;
    for (const model::DeviceType d : model::kAllDevices) {
      if (placements_[l][static_cast<std::size_t>(model::device_index(d))]) {
        if (!tag.empty()) tag += ",";
        tag += model::device_tag(d);
      }
    }
    if (!tag.empty())
      labels.emplace(static_cast<topology::LinkId>(l), std::move(tag));
  }
  return labels;
}

std::string SecurityDesign::to_string(const model::ProblemSpec& spec) const {
  std::ostringstream out;
  out << "Isolation decisions:\n";
  for (std::size_t f = 0; f < patterns_.size(); ++f) {
    const model::Flow& flow =
        spec.flows.flow(static_cast<model::FlowId>(f));
    out << "  " << spec.network.node(flow.src).name << " -> "
        << spec.network.node(flow.dst).name << " ["
        << spec.services.service(flow.service).name << "]: ";
    const std::int8_t p = patterns_[f];
    out << (p < 0 ? "no isolation"
                  : std::string(model::pattern_name(
                        static_cast<model::IsolationPattern>(p))));
    out << "\n";
  }
  out << "Device placements:\n";
  for (const auto& [link, tag] : link_labels()) {
    const topology::Link& l = spec.network.link(link);
    out << "  link " << spec.network.node(l.a).name << " -- "
        << spec.network.node(l.b).name << ": " << tag << "\n";
  }
  if (host_pattern_count() > 0) {
    out << "Host-level patterns:\n";
    for (const topology::NodeId j : spec.network.hosts()) {
      if (const auto t = host_pattern(j); t.has_value()) {
        out << "  " << spec.network.node(j).name << ": "
            << model::host_pattern_name(*t) << "\n";
      }
    }
  }
  if (app_pattern_count() > 0) {
    out << "Application-level patterns:\n";
    for (const auto& [host, service, p] : app_patterns()) {
      out << "  " << spec.network.node(host).name << ":"
          << spec.services.service(service).name << ": "
          << model::app_pattern_name(p) << "\n";
    }
  }
  return out.str();
}

std::string SecurityDesign::isolation_table(
    const model::ProblemSpec& spec) const {
  std::vector<std::string> headers{"Destination"};
  for (const model::IsolationPattern p : model::kAllPatterns)
    if (spec.isolation.is_enabled(p))
      headers.emplace_back(model::pattern_name(p));
  headers.emplace_back("No Isolation");
  util::TextTable table(std::move(headers));

  for (const topology::NodeId j : spec.network.hosts()) {
    std::vector<std::string> row;
    row.push_back(spec.network.node(j).name);
    // Column per enabled pattern, in kAllPatterns order.
    std::vector<std::string> cells;
    const auto cell_for = [&](std::optional<model::IsolationPattern> want) {
      std::string cell;
      for (const topology::NodeId i : spec.network.hosts()) {
        if (i == j) continue;
        for (const model::FlowId f : spec.flows.directed(i, j)) {
          if (pattern(f) == want) {
            if (!cell.empty()) cell += ", ";
            cell += spec.network.node(i).name;
            break;  // one mention per source
          }
        }
      }
      return cell;
    };
    for (const model::IsolationPattern p : model::kAllPatterns)
      if (spec.isolation.is_enabled(p)) row.push_back(cell_for(p));
    row.push_back(cell_for(std::nullopt));
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace cs::synth
