// Isolation/usability/cost trade-off frontier exploration.
//
// ConfigSynth is a decision-support system (paper §I): administrators want
// to see the achievable operating points before committing to slider
// values. `explore_frontier` sweeps a usability grid and, for each floor,
// maximizes isolation under each budget of interest — the computation
// behind the paper's Fig. 3 — returning the frontier as data the caller
// can render or serialize.
//
// Execution modes — the guard-accumulation trade-off. A frontier point is
// one binary search whose probes add guard literals to the synthesizer.
// Two ways to run the grid:
//   * `reuse_synthesizer = true`: every point runs on ONE incremental
//     synthesizer. Each point reuses the backend's learnt state, but the
//     guard constraints of all earlier points stay asserted, so late
//     points probe an ever-larger formula — worthwhile only for small
//     grids on hard specs where learnt-clause reuse dominates.
//   * `reuse_synthesizer = false` (default): each point gets a fresh
//     synthesizer. Every point pays one (cheap) re-encoding but no point
//     inherits another's guard pile — and because points are then fully
//     independent, the grid can run on `jobs` parallel workers (one
//     backend per worker; see synth/sweep.h) with byte-identical results
//     to a serial run.
#pragma once

#include <vector>

#include "synth/optimizer.h"
#include "synth/synthesizer.h"

namespace cs::synth {

struct FrontierPoint {
  util::Fixed usability_floor;
  util::Fixed budget;
  /// False when the floor itself is infeasible under the budget.
  bool feasible = false;
  /// False when a capped probe left the maximum a lower bound.
  bool exact = true;
  /// Maximum isolation threshold proven reachable.
  util::Fixed max_isolation;
  /// Metrics of the witnessing design.
  DesignMetrics metrics;
  std::size_t devices = 0;

  bool operator==(const FrontierPoint&) const = default;
};

struct FrontierOptions {
  /// Usability floors to sweep (0..10 scale).
  std::vector<util::Fixed> usability_floors;
  /// Budgets of interest.
  std::vector<util::Fixed> budgets;
  OptimizeOptions optimize;
  /// Serial, incremental mode: one synthesizer for the whole sweep (see
  /// the header comment). Mutually exclusive with jobs > 1.
  bool reuse_synthesizer = false;
  /// Worker count for the fresh-per-point mode; 0 = one per hardware
  /// thread, 1 = serial.
  int jobs = 1;
  /// Whole-sweep wall-clock cap in ms (0 = none); see SweepRequest.
  std::int64_t deadline_ms = 0;

  /// Fig. 3(a)-style defaults: floors 0,2,...,10.
  static FrontierOptions fig3_defaults(util::Fixed low_budget,
                                       util::Fixed high_budget);
};

/// Sweeps the grid. Points are ordered floor-major, budget-minor,
/// independent of `jobs`.
std::vector<FrontierPoint> explore_frontier(
    const model::ProblemSpec& spec, const SynthesisOptions& synth_options,
    const FrontierOptions& options);

/// Renders the frontier as an aligned table (one row per floor, one
/// isolation column per budget).
std::string render_frontier(const std::vector<FrontierPoint>& points);

}  // namespace cs::synth
