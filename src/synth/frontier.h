// Isolation/usability/cost trade-off frontier exploration.
//
// ConfigSynth is a decision-support system (paper §I): administrators want
// to see the achievable operating points before committing to slider
// values. `explore_frontier` sweeps a usability grid and, for each floor,
// maximizes isolation under each budget of interest — the computation
// behind the paper's Fig. 3 — returning the frontier as data the caller
// can render or serialize.
#pragma once

#include <vector>

#include "synth/optimizer.h"
#include "synth/synthesizer.h"

namespace cs::synth {

struct FrontierPoint {
  util::Fixed usability_floor;
  util::Fixed budget;
  /// False when the floor itself is infeasible under the budget.
  bool feasible = false;
  /// False when a capped probe left the maximum a lower bound.
  bool exact = true;
  /// Maximum isolation threshold proven reachable.
  util::Fixed max_isolation;
  /// Metrics of the witnessing design.
  DesignMetrics metrics;
  std::size_t devices = 0;
};

struct FrontierOptions {
  /// Usability floors to sweep (0..10 scale).
  std::vector<util::Fixed> usability_floors;
  /// Budgets of interest.
  std::vector<util::Fixed> budgets;
  OptimizeOptions optimize;

  /// Fig. 3(a)-style defaults: floors 0,2,...,10.
  static FrontierOptions fig3_defaults(util::Fixed low_budget,
                                       util::Fixed high_budget);
};

/// Sweeps the grid against one incremental synthesizer. Points are ordered
/// floor-major, budget-minor. Guard constraints accumulate across the
/// sweep; for large grids prefer the overload below.
std::vector<FrontierPoint> explore_frontier(Synthesizer& synth,
                                            const model::ProblemSpec& spec,
                                            const FrontierOptions& options);

/// Same sweep with a fresh synthesizer per grid point — each point pays
/// one (cheap) re-encoding but no point inherits another's guard pile.
std::vector<FrontierPoint> explore_frontier(
    const model::ProblemSpec& spec, const SynthesisOptions& synth_options,
    const FrontierOptions& options);

/// Renders the frontier as an aligned table (one row per floor, one
/// isolation column per budget).
std::string render_frontier(const std::vector<FrontierPoint>& points);

}  // namespace cs::synth
