// The synthesis output: isolation decisions per flow plus security-device
// placements per link (the paper's SAT-instance content, §IV-B).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "model/spec.h"
#include "topology/network.h"

namespace cs::synth {

class SecurityDesign {
 public:
  SecurityDesign() = default;
  SecurityDesign(std::size_t flow_count, std::size_t link_count,
                 std::size_t node_count = 0);

  /// Pattern chosen for a flow; nullopt = no isolation measure.
  std::optional<model::IsolationPattern> pattern(model::FlowId f) const;
  void set_pattern(model::FlowId f,
                   std::optional<model::IsolationPattern> p);

  /// Host-level pattern deployed at a node (§VII extension); nullopt =
  /// none. Only meaningful for host nodes.
  std::optional<model::HostPattern> host_pattern(topology::NodeId n) const;
  void set_host_pattern(topology::NodeId n,
                        std::optional<model::HostPattern> p);

  /// Number of deployed host-level patterns.
  std::size_t host_pattern_count() const;

  /// Application-level pattern at a (destination host, service) endpoint
  /// (§VII extension); nullopt = none.
  std::optional<model::AppPattern> app_pattern(topology::NodeId host,
                                               model::ServiceId service)
      const;
  void set_app_pattern(topology::NodeId host, model::ServiceId service,
                       std::optional<model::AppPattern> p);

  /// Number of deployed application-level patterns.
  std::size_t app_pattern_count() const { return app_patterns_.size(); }

  /// All deployed endpoint patterns, sorted (host, service).
  std::vector<std::tuple<topology::NodeId, model::ServiceId,
                         model::AppPattern>>
  app_patterns() const;

  /// Whether a device of type d is deployed on the link.
  bool placed(topology::LinkId link, model::DeviceType d) const;
  void set_placed(topology::LinkId link, model::DeviceType d, bool value);

  std::size_t flow_count() const { return patterns_.size(); }
  std::size_t link_count() const { return placements_.size(); }
  /// Size of the (optional) host-pattern layer; 0 when unused.
  std::size_t node_count() const { return host_patterns_.size(); }

  /// Total number of deployed devices (links × types).
  std::size_t device_count() const;

  /// Number of flows assigned each pattern (index by pattern_index; the
  /// last slot counts unprotected flows).
  std::array<std::size_t, model::kPatternCount + 1> pattern_histogram()
      const;

  /// Graphviz link decorations ("FW,IDS") for topology::to_dot.
  std::map<topology::LinkId, std::string> link_labels() const;

  /// Multi-line textual summary of decisions and placements.
  std::string to_string(const model::ProblemSpec& spec) const;

  /// The paper's Table V: one row per destination host, sources classified
  /// by the selected isolation pattern. Single-service specs only.
  std::string isolation_table(const model::ProblemSpec& spec) const;

  bool operator==(const SecurityDesign&) const = default;

 private:
  // patterns_[f]: -1 = none, otherwise pattern_index.
  std::vector<std::int8_t> patterns_;
  std::vector<std::array<bool, model::kDeviceCount>> placements_;
  // host_patterns_[node]: -1 = none, otherwise host_pattern_index.
  std::vector<std::int8_t> host_patterns_;
  // (host, service) -> app_pattern_index; absent = none.
  std::map<std::pair<topology::NodeId, model::ServiceId>, std::int8_t>
      app_patterns_;
};

}  // namespace cs::synth
