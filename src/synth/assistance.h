// Slider-value assistance (paper §IV-A, Table III).
//
// A raw slider number is hard to interpret, so ConfigSynth shows the
// administrator representative operating points: characteristic security
// configurations together with the isolation and usability scores they
// yield under the loaded requirements. Each row is computed by building
// the described concrete design and measuring it with compute_metrics — no
// solving involved.
#pragma once

#include <string>
#include <vector>

#include "model/spec.h"
#include "util/fixed.h"

namespace cs::synth {

struct SliderChoice {
  std::string description;
  util::Fixed isolation;
  util::Fixed usability;
};

/// Computes the paper's assistance rows for a spec: full isolation, no
/// isolation, deny-all-but-connectivity-requirements, 50% deny, and the
/// 25% deny + 25% trusted mix.
std::vector<SliderChoice> slider_assistance(const model::ProblemSpec& spec);

/// Renders rows as a Table III-style text table.
std::string render_assistance(const std::vector<SliderChoice>& rows);

}  // namespace cs::synth
