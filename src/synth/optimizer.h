// Threshold-bound search (used by the paper's Fig. 3 experiments).
//
// The core solver answers feasibility for a slider triple; "maximum
// possible isolation under a usability and budget constraint" (and its
// dual, "cheapest deployment meeting the floors") is obtained by binary
// search over one threshold, accelerated by jumping to the value actually
// achieved by each SAT model (often far beyond the probed threshold). All
// probes of one search run against one incremental Synthesizer, so the
// backend keeps its learnt state across the search.
#pragma once

#include <optional>

#include "synth/metrics.h"
#include "synth/synthesizer.h"

namespace cs::synth {

struct OptimizeOptions {
  /// Search grid granularity on the 0..10 slider scale.
  util::Fixed resolution = util::Fixed::from_raw(50);  // 0.05
};

struct MinCostOptions {
  /// Budget search grid in the cost unit ($K).
  util::Fixed resolution = util::Fixed::from_int(1);
  /// Upper bound of the search; infeasible above this means "infeasible".
  util::Fixed max_budget = util::Fixed::from_int(1000);
};

/// Outcome of a one-dimensional threshold search. Both directions —
/// maximizing isolation and minimizing cost — share this shape; `objective`
/// names the searched threshold and fixes the reading of `bound`.
struct BoundSearchResult {
  /// Which threshold was searched: kIsolation (maximized) or kCost
  /// (minimized).
  ThresholdKind objective = ThresholdKind::kIsolation;
  /// False when even the loosest probe is unsatisfiable (the fixed
  /// thresholds conflict with the hard requirements).
  bool feasible = false;
  /// True when every probe returned SAT/UNSAT; false when a time-capped
  /// probe returned unknown, making `bound` a certified one-sided bound
  /// (lower for kIsolation, upper for kCost) rather than the exact optimum.
  bool exact = true;
  /// The grid-aligned optimum proven satisfiable: largest isolation
  /// threshold for kIsolation, smallest budget for kCost.
  util::Fixed bound;
  /// Metrics of the witnessing design (they meet `bound`).
  DesignMetrics metrics;
  std::optional<SecurityDesign> design;
  int probes = 0;
  double solve_seconds = 0;
};

/// Maximizes network isolation subject to usability ≥ `usability` and
/// cost ≤ `budget`. Returns objective = kIsolation; `bound` is the largest
/// isolation threshold proven satisfiable.
BoundSearchResult maximize_isolation(Synthesizer& synth,
                                     const model::ProblemSpec& spec,
                                     util::Fixed usability, util::Fixed budget,
                                     const OptimizeOptions& options = {});

/// Finds the cheapest deployment meeting isolation ≥ `isolation` and
/// usability ≥ `usability` — the "cost-effective" side of the paper's
/// objective. Uses the same incremental probing as maximize_isolation,
/// jumping down to each SAT model's actual cost. Returns objective = kCost;
/// `bound` is the smallest budget proven satisfiable.
BoundSearchResult minimize_cost(Synthesizer& synth,
                                const model::ProblemSpec& spec,
                                util::Fixed isolation, util::Fixed usability,
                                const MinCostOptions& options = {});

}  // namespace cs::synth
