// Max-isolation optimization (used by the paper's Fig. 3 experiments).
//
// The core solver answers feasibility for a slider triple; "maximum
// possible isolation under a usability and budget constraint" is obtained
// by binary search over the isolation threshold, accelerated by jumping to
// the isolation actually achieved by each SAT model (often far above the
// probed threshold). All probes run against one incremental Synthesizer,
// so the backend keeps its learnt state across the search.
#pragma once

#include <optional>

#include "synth/metrics.h"
#include "synth/synthesizer.h"

namespace cs::synth {

struct OptimizeOptions {
  /// Search grid granularity on the 0..10 slider scale.
  util::Fixed resolution = util::Fixed::from_raw(50);  // 0.05
};

struct OptimizeResult {
  /// False when even isolation ≥ 0 is unsatisfiable (thresholds conflict).
  bool feasible = false;
  /// True when every probe returned SAT/UNSAT; false when a time-capped
  /// probe returned unknown, making max_threshold a certified lower bound
  /// rather than the exact maximum.
  bool exact = true;
  /// Largest isolation threshold proven satisfiable (grid-aligned).
  util::Fixed max_threshold;
  /// Metrics of the best design found (metrics.isolation ≥ max_threshold).
  DesignMetrics metrics;
  std::optional<SecurityDesign> design;
  int probes = 0;
  double solve_seconds = 0;
};

/// Maximizes network isolation subject to usability ≥ `usability` and
/// cost ≤ `budget`.
OptimizeResult maximize_isolation(Synthesizer& synth,
                                  const model::ProblemSpec& spec,
                                  util::Fixed usability, util::Fixed budget,
                                  const OptimizeOptions& options = {});

struct MinCostResult {
  /// False when the isolation/usability floors are infeasible at any cost.
  bool feasible = false;
  /// False when a capped probe made min_budget an upper bound only.
  bool exact = true;
  /// Smallest budget (grid-aligned) proven satisfiable.
  util::Fixed min_budget;
  DesignMetrics metrics;
  std::optional<SecurityDesign> design;
  int probes = 0;
  double solve_seconds = 0;
};

struct MinCostOptions {
  /// Budget search grid in the cost unit ($K).
  util::Fixed resolution = util::Fixed::from_int(1);
  /// Upper bound of the search; infeasible above this means "infeasible".
  util::Fixed max_budget = util::Fixed::from_int(1000);
};

/// Finds the cheapest deployment meeting isolation ≥ `isolation` and
/// usability ≥ `usability` — the "cost-effective" side of the paper's
/// objective. Uses the same incremental probing as maximize_isolation,
/// jumping down to each SAT model's actual cost.
MinCostResult minimize_cost(Synthesizer& synth,
                            const model::ProblemSpec& spec,
                            util::Fixed isolation, util::Fixed usability,
                            const MinCostOptions& options = {});

}  // namespace cs::synth
