#include "synth/sweep.h"

#include <algorithm>
#include <future>

#include "util/error.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cs::synth {

SweepPointResult solve_sweep_point(const model::ProblemSpec& spec,
                                   const SweepRequest& request,
                                   const SweepPoint& point,
                                   std::int64_t remaining_ms) {
  SweepPointResult out;
  out.point = point;

  SynthesisOptions options = request.synthesis;
  if (remaining_ms > 0) {
    options.check_time_limit_ms =
        options.check_time_limit_ms > 0
            ? std::min(options.check_time_limit_ms, remaining_ms)
            : remaining_ms;
  }

  util::Stopwatch watch;
  Synthesizer synth(spec, options);
  out.encode_seconds = synth.encode_seconds();

  switch (point.objective) {
    case SweepObjective::kMaxIsolation:
      out.search = maximize_isolation(synth, spec, point.usability,
                                      point.budget, request.optimize);
      out.status = out.search.feasible ? smt::CheckResult::kSat
                   : out.search.exact  ? smt::CheckResult::kUnsat
                                       : smt::CheckResult::kUnknown;
      break;
    case SweepObjective::kMinCost:
      out.search = minimize_cost(synth, spec, point.isolation,
                                 point.usability, request.min_cost);
      out.status = out.search.feasible ? smt::CheckResult::kSat
                   : out.search.exact  ? smt::CheckResult::kUnsat
                                       : smt::CheckResult::kUnknown;
      break;
    case SweepObjective::kFeasibility: {
      SynthesisResult r = synth.synthesize(
          model::Sliders{point.isolation, point.usability, point.budget});
      out.status = r.status;
      out.conflicting = std::move(r.conflicting);
      out.search.feasible = r.status == smt::CheckResult::kSat;
      out.search.exact = r.status != smt::CheckResult::kUnknown;
      out.search.probes = 1;
      out.search.solve_seconds = r.solve_seconds;
      if (r.design) {
        out.search.metrics = compute_metrics(spec, *r.design);
        out.search.design = std::move(r.design);
      }
      break;
    }
  }
  out.wall_seconds = watch.elapsed_seconds();
  out.solver_memory_bytes = synth.backend().memory_bytes();
  return out;
}

std::string_view sweep_objective_name(SweepObjective objective) {
  switch (objective) {
    case SweepObjective::kMaxIsolation:
      return "max-isolation";
    case SweepObjective::kMinCost:
      return "min-cost";
    case SweepObjective::kFeasibility:
      return "feasibility";
  }
  return "?";
}

SweepRequest SweepRequest::max_isolation_grid(
    const std::vector<util::Fixed>& usability_floors,
    const std::vector<util::Fixed>& budgets) {
  SweepRequest request;
  request.points.reserve(usability_floors.size() * budgets.size());
  for (const util::Fixed floor : usability_floors) {
    for (const util::Fixed budget : budgets) {
      SweepPoint p;
      p.objective = SweepObjective::kMaxIsolation;
      p.usability = floor;
      p.budget = budget;
      request.points.push_back(p);
    }
  }
  return request;
}

SweepRequest SweepRequest::feasibility_grid(
    const std::vector<model::Sliders>& sliders) {
  SweepRequest request;
  request.points.reserve(sliders.size());
  for (const model::Sliders& s : sliders) {
    SweepPoint p;
    p.objective = SweepObjective::kFeasibility;
    p.isolation = s.isolation;
    p.usability = s.usability;
    p.budget = s.budget;
    request.points.push_back(p);
  }
  return request;
}

SweepResult SweepEngine::run(const SweepRequest& request) const {
  CS_REQUIRE(request.jobs >= 0, "sweep jobs must be >= 0");
  const int jobs =
      request.jobs == 0
          ? static_cast<int>(util::ThreadPool::hardware_jobs())
          : request.jobs;

  SweepResult result;
  result.jobs = jobs;
  result.points.resize(request.points.size());
  if (request.points.empty()) return result;  // nothing to schedule

  util::Stopwatch sweep_watch;
  // Remaining budget when a point starts; < 0 means "skip it". 0 from the
  // caller means "no deadline" and stays 0 through the clamp in
  // solve_sweep_point; a negative caller deadline is already expired, so
  // every point skips (grid shape preserved).
  const auto remaining_ms = [&]() -> std::int64_t {
    if (request.deadline_ms == 0) return 0;
    if (request.deadline_ms < 0) return -1;
    const std::int64_t left =
        request.deadline_ms -
        static_cast<std::int64_t>(sweep_watch.elapsed_ms());
    return left > 0 ? left : -1;
  };
  const auto cancelled = [&] {
    return request.cancel != nullptr &&
           request.cancel->load(std::memory_order_relaxed);
  };

  // Each worker task claims one point. Results land in index-addressed
  // slots, so completion order never leaks into the output.
  const auto run_point = [&](std::size_t index) {
    const std::int64_t left = remaining_ms();
    if (left < 0 || cancelled()) {
      result.points[index].point = request.points[index];
      result.points[index].skipped = true;
      result.points[index].search.exact = false;
      return;
    }
    result.points[index] =
        solve_sweep_point(spec_, request, request.points[index], left);
  };

  if (jobs <= 1 || request.points.size() <= 1) {
    for (std::size_t i = 0; i < request.points.size(); ++i) run_point(i);
  } else {
    util::ThreadPool pool(static_cast<std::size_t>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs),
                              request.points.size())));
    std::vector<std::future<void>> pending;
    pending.reserve(request.points.size());
    for (std::size_t i = 0; i < request.points.size(); ++i)
      pending.push_back(pool.submit([&run_point, i] { run_point(i); }));
    for (std::future<void>& f : pending) f.get();  // rethrows task errors
  }

  result.wall_seconds = sweep_watch.elapsed_seconds();
  for (const SweepPointResult& p : result.points) {
    result.total_probes += p.search.probes;
    result.peak_solver_memory_bytes =
        std::max(result.peak_solver_memory_bytes, p.solver_memory_bytes);
    result.deadline_expired = result.deadline_expired || p.skipped;
  }
  return result;
}

}  // namespace cs::synth
