#include "synth/sweep.h"

#include <algorithm>
#include <future>
#include <memory>

#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cs::synth {

namespace {

/// Objective dispatch shared by the cold and warm paths: runs the point on
/// `synth` and fills everything except wall_seconds (the caller owns the
/// watch, so cold points can include synthesizer construction).
void run_point_objective(Synthesizer& synth, const model::ProblemSpec& spec,
                         const SweepRequest& request, const SweepPoint& point,
                         SweepPointResult& out) {
  switch (point.objective) {
    case SweepObjective::kMaxIsolation:
      out.search = maximize_isolation(synth, spec, point.usability,
                                      point.budget, request.optimize);
      out.status = out.search.feasible ? smt::CheckResult::kSat
                   : out.search.exact  ? smt::CheckResult::kUnsat
                                       : smt::CheckResult::kUnknown;
      break;
    case SweepObjective::kMinCost:
      out.search = minimize_cost(synth, spec, point.isolation,
                                 point.usability, request.min_cost);
      out.status = out.search.feasible ? smt::CheckResult::kSat
                   : out.search.exact  ? smt::CheckResult::kUnsat
                                       : smt::CheckResult::kUnknown;
      break;
    case SweepObjective::kFeasibility: {
      const model::Sliders sliders{point.isolation, point.usability,
                                   point.budget};
      SynthesisResult r =
          out.warm ? synth.resolve(sliders) : synth.synthesize(sliders);
      out.status = r.status;
      out.conflicting = std::move(r.conflicting);
      out.search.feasible = r.status == smt::CheckResult::kSat;
      out.search.exact = r.status != smt::CheckResult::kUnknown;
      out.search.probes = 1;
      out.search.solve_seconds = r.solve_seconds;
      if (r.design) {
        out.search.metrics = compute_metrics(spec, *r.design);
        out.search.design = std::move(r.design);
      }
      break;
    }
  }
}

}  // namespace

SweepPointResult solve_sweep_point_on(Synthesizer& synth,
                                      const model::ProblemSpec& spec,
                                      const SweepRequest& request,
                                      const SweepPoint& point,
                                      std::int64_t remaining_ms,
                                      bool charge_encode) {
  SweepPointResult out;
  out.point = point;
  out.warm = !charge_encode;
  out.encode_seconds = charge_encode ? synth.encode_seconds() : 0;

  synth.set_check_budget(remaining_ms > 0 ? remaining_ms : 0);
  const smt::SolverStats before = synth.solver_statistics();
  util::Stopwatch watch;
  run_point_objective(synth, spec, request, point, out);
  out.wall_seconds = watch.elapsed_seconds();
  out.solver = synth.solver_statistics() - before;
  out.solver_memory_bytes = synth.backend().memory_bytes();
  return out;
}

SweepPointResult solve_sweep_point(const model::ProblemSpec& spec,
                                   const SweepRequest& request,
                                   const SweepPoint& point,
                                   std::int64_t remaining_ms) {
  SynthesisOptions options = request.synthesis;
  if (remaining_ms > 0) {
    options.check_time_limit_ms =
        options.check_time_limit_ms > 0
            ? std::min(options.check_time_limit_ms, remaining_ms)
            : remaining_ms;
  }

  util::Stopwatch watch;
  Synthesizer synth(spec, options);
  SweepPointResult out =
      solve_sweep_point_on(synth, spec, request, point, remaining_ms,
                           /*charge_encode=*/true);
  // The cold point's wall clock includes synthesizer construction (the
  // encode), matching the paper's cold-solve timing definition.
  out.wall_seconds = watch.elapsed_seconds();
  return out;
}

std::string_view sweep_objective_name(SweepObjective objective) {
  switch (objective) {
    case SweepObjective::kMaxIsolation:
      return "max-isolation";
    case SweepObjective::kMinCost:
      return "min-cost";
    case SweepObjective::kFeasibility:
      return "feasibility";
  }
  return "?";
}

SweepRequest SweepRequest::max_isolation_grid(
    const std::vector<util::Fixed>& usability_floors,
    const std::vector<util::Fixed>& budgets) {
  SweepRequest request;
  request.points.reserve(usability_floors.size() * budgets.size());
  for (const util::Fixed floor : usability_floors) {
    for (const util::Fixed budget : budgets) {
      SweepPoint p;
      p.objective = SweepObjective::kMaxIsolation;
      p.usability = floor;
      p.budget = budget;
      request.points.push_back(p);
    }
  }
  return request;
}

SweepRequest SweepRequest::feasibility_grid(
    const std::vector<model::Sliders>& sliders) {
  SweepRequest request;
  request.points.reserve(sliders.size());
  for (const model::Sliders& s : sliders) {
    SweepPoint p;
    p.objective = SweepObjective::kFeasibility;
    p.isolation = s.isolation;
    p.usability = s.usability;
    p.budget = s.budget;
    request.points.push_back(p);
  }
  return request;
}

SweepResult SweepEngine::run(const SweepRequest& request) const {
  CS_REQUIRE(request.jobs >= 0, "sweep jobs must be >= 0");
  const int jobs =
      request.jobs == 0
          ? static_cast<int>(util::ThreadPool::hardware_jobs())
          : request.jobs;
  // Warm reuse needs retractable thresholds; kHard requests fall back to
  // the cold fresh-per-point path (see sweep.h).
  const bool warm =
      request.warm_start &&
      request.synthesis.threshold_mode == ThresholdMode::kAssumption;

  SweepResult result;
  result.jobs = jobs;
  result.points.resize(request.points.size());
  if (request.points.empty()) return result;  // nothing to schedule

  obs::Span sweep_span("sweep", "sweep/run");
  sweep_span.arg("jobs", std::to_string(jobs));
  sweep_span.arg("points", std::to_string(request.points.size()));
  sweep_span.arg("warm", warm ? "1" : "0");

  util::Stopwatch sweep_watch;
  // Remaining budget when a point starts; < 0 means "skip it". 0 from the
  // caller means "no deadline" and stays 0 through the clamp in
  // solve_sweep_point; a negative caller deadline is already expired, so
  // every point skips (grid shape preserved).
  const auto remaining_ms = [&]() -> std::int64_t {
    if (request.deadline_ms == 0) return 0;
    if (request.deadline_ms < 0) return -1;
    const std::int64_t left =
        request.deadline_ms -
        static_cast<std::int64_t>(sweep_watch.elapsed_ms());
    return left > 0 ? left : -1;
  };
  const auto cancelled = [&] {
    return request.cancel != nullptr &&
           request.cancel->load(std::memory_order_relaxed);
  };
  const auto mark_skipped = [&](std::size_t index) {
    result.points[index].point = request.points[index];
    result.points[index].skipped = true;
    result.points[index].search.exact = false;
  };

  // Cold worker task: claims one point on a fresh synthesizer. Results
  // land in index-addressed slots, so completion order never leaks into
  // the output.
  const auto run_point = [&](std::size_t index) {
    const std::int64_t left = remaining_ms();
    if (left < 0 || cancelled()) {
      mark_skipped(index);
      return;
    }
    obs::Span span("sweep", "sweep/point");
    span.arg("index", std::to_string(index));
    span.arg("warm", "0");
    span.arg("objective",
             std::string(sweep_objective_name(request.points[index].objective)));
    result.points[index] =
        solve_sweep_point(spec_, request, request.points[index], left);
  };

  // Warm worker task: one synthesizer for a contiguous chunk, constructed
  // at the chunk's first live point and reused (assumption swap only) for
  // the rest. The partition is static, so a warm sweep at a fixed jobs
  // value always solves the same instance sequence.
  const auto run_chunk = [&](std::size_t begin, std::size_t end) {
    std::unique_ptr<Synthesizer> synth;
    for (std::size_t i = begin; i < end; ++i) {
      const std::int64_t left = remaining_ms();
      if (left < 0 || cancelled()) {
        mark_skipped(i);
        continue;
      }
      util::Stopwatch watch;
      const bool first_use = synth == nullptr;
      obs::Span span("sweep", "sweep/point");
      span.arg("index", std::to_string(i));
      span.arg("warm", first_use ? "0" : "1");
      span.arg("objective",
               std::string(sweep_objective_name(request.points[i].objective)));
      if (first_use)
        synth = std::make_unique<Synthesizer>(spec_, request.synthesis);
      result.points[i] =
          solve_sweep_point_on(*synth, spec_, request, request.points[i],
                               left, /*charge_encode=*/first_use);
      // First-use wall clock includes the (chunk-amortized) encode.
      if (first_use) result.points[i].wall_seconds = watch.elapsed_seconds();
    }
  };

  const std::size_t n = request.points.size();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  if (warm) {
    const std::size_t chunk = (n + workers - 1) / workers;
    if (workers <= 1) {
      run_chunk(0, n);
    } else {
      util::ThreadPool pool(workers);
      std::vector<std::future<void>> pending;
      for (std::size_t begin = 0; begin < n; begin += chunk)
        pending.push_back(pool.submit([&run_chunk, begin, chunk, n] {
          obs::set_thread_name("sweep-worker");
          run_chunk(begin, std::min(begin + chunk, n));
        }));
      for (std::future<void>& f : pending) f.get();  // rethrows task errors
    }
  } else if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_point(i);
  } else {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      pending.push_back(pool.submit([&run_point, i] {
        obs::set_thread_name("sweep-worker");
        run_point(i);
      }));
    for (std::future<void>& f : pending) f.get();  // rethrows task errors
  }

  result.wall_seconds = sweep_watch.elapsed_seconds();
  for (const SweepPointResult& p : result.points) {
    result.total_probes += p.search.probes;
    result.total_encode_seconds += p.encode_seconds;
    result.total_solver += p.solver;
    result.warm_reuses += p.warm ? 1 : 0;
    result.peak_solver_memory_bytes =
        std::max(result.peak_solver_memory_bytes, p.solver_memory_bytes);
    result.deadline_expired = result.deadline_expired || p.skipped;
  }
  return result;
}

}  // namespace cs::synth
