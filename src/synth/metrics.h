// Metric computation for a concrete SecurityDesign (paper §III eqs. 2-8).
//
// Computes the three slider metrics — network isolation I, network
// usability U and deployment cost C — directly from the design, using the
// same fixed-point rounding as the SMT encoding. This is the ground truth
// the threshold constraints talk about: for every model the backend
// returns, `compute_metrics(spec, design)` satisfies the asserted slider
// bounds exactly (tested in tests/synth_test.cpp).
#pragma once

#include <vector>

#include "model/spec.h"
#include "synth/design.h"
#include "util/fixed.h"

namespace cs::synth {

struct DesignMetrics {
  /// Network isolation I on the 0..10 slider scale (eq. 4).
  util::Fixed isolation;
  /// Network usability U on the 0..10 slider scale (eq. 6).
  util::Fixed usability;
  /// Total deployment cost C in the budget unit ($K) (eq. 8).
  util::Fixed cost;
  /// Per-host isolation scores I_j (eq. 3), α-weighted between incoming
  /// and outgoing traffic, normalized to 0..10; indexed by position in
  /// network.hosts().
  std::vector<util::Fixed> host_isolation;

  bool operator==(const DesignMetrics&) const = default;
};

DesignMetrics compute_metrics(const model::ProblemSpec& spec,
                              const SecurityDesign& design);

}  // namespace cs::synth
