#include "synth/synthesizer.h"

#include <algorithm>

#include "model/fingerprint.h"
#include "obs/trace.h"
#include "util/error.h"

namespace cs::synth {

namespace {

const char* status_tag(smt::CheckResult status) {
  switch (status) {
    case smt::CheckResult::kSat:
      return "sat";
    case smt::CheckResult::kUnsat:
      return "unsat";
    case smt::CheckResult::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace

Synthesizer::Synthesizer(const model::ProblemSpec& spec,
                         SynthesisOptions options)
    : spec_(&spec),
      options_(options),
      routes_(std::make_unique<topology::RouteTable>(spec.network,
                                                     spec.route_options)),
      backend_(smt::make_backend(options.backend)) {
  util::Stopwatch watch;
  {
    obs::Span span("synth", "synth/encode");
    encoding_ = std::make_unique<Encoding>(*spec_, *routes_, *backend_,
                                           options_.retractable_sections);
  }
  encode_seconds_ = watch.elapsed_seconds();
  if (options_.check_time_limit_ms > 0)
    backend_->set_time_limit_ms(options_.check_time_limit_ms);
  if (options_.check_conflict_limit > 0)
    backend_->set_conflict_limit(options_.check_conflict_limit);
}

Synthesizer::Synthesizer(std::shared_ptr<const model::ProblemSpec> spec,
                         SynthesisOptions options)
    : Synthesizer(*spec, options) {
  spec_owner_ = std::move(spec);
}

void Synthesizer::adopt_spec(
    std::shared_ptr<const model::ProblemSpec> next) {
  encoding_->rebind_spec(*next);
  if (spec_owner_) retired_specs_.push_back(std::move(spec_owner_));
  spec_owner_ = std::move(next);
  spec_ = spec_owner_.get();
}

void Synthesizer::rebuild(std::shared_ptr<const model::ProblemSpec> next,
                          bool reuse_routes) {
  auto routes = std::make_unique<topology::RouteTable>(
      next->network, next->route_options);
  if (reuse_routes) routes->adopt_cache(*routes_);
  auto backend = smt::make_backend(options_.backend);
  util::Stopwatch watch;
  std::unique_ptr<Encoding> encoding;
  {
    obs::Span span("synth", "synth/re-encode");
    encoding = std::make_unique<Encoding>(*next, *routes, *backend,
                                          options_.retractable_sections);
  }
  // Commit: everything referencing the old spec is gone, so the retired
  // chain can be released.
  encoding_ = std::move(encoding);
  backend_ = std::move(backend);
  routes_ = std::move(routes);
  retired_specs_.clear();
  spec_owner_ = std::move(next);
  spec_ = spec_owner_.get();
  guard_cache_.clear();
  guard_kind_.clear();
  hard_values_.clear();
  encode_seconds_ = watch.elapsed_seconds();
  if (options_.check_time_limit_ms > 0)
    backend_->set_time_limit_ms(options_.check_time_limit_ms);
  if (options_.check_conflict_limit > 0)
    backend_->set_conflict_limit(options_.check_conflict_limit);
}

DeltaApplyReport Synthesizer::apply_delta(const model::SpecDelta& delta) {
  obs::Span span("synth", "synth/apply-delta");
  // Transactional: model::apply_delta throws before anything here
  // mutates, so a bad delta leaves this synthesizer fully usable.
  auto next = std::make_shared<const model::ProblemSpec>(
      model::apply_delta(*spec_, delta));
  const model::SpecDigests before = model::fingerprint_sections(*spec_);
  const model::SpecDigests after = model::fingerprint_sections(*next);
  const bool topo_clean = before.topology == after.topology;
  const bool flows_clean = before.flows == after.flows;
  const bool uics_clean = before.uics == after.uics;
  const bool warm_capable =
      options_.threshold_mode == ThresholdMode::kAssumption;

  DeltaApplyReport report;
  if (topo_clean && flows_clean && uics_clean && warm_capable) {
    // Thresholds/budget-only: the formula is untouched; swap specs and
    // re-solve at the new query point on the live solver.
    adopt_spec(std::move(next));
    report.path = "warm";
    report.result = resolve(spec_->sliders);
  } else if (topo_clean && flows_clean && warm_capable &&
             encoding_->retractable_sections()) {
    // Policy-only: retire the guarded UIC/RMC sections, re-emit them
    // from the post-delta spec, and re-solve warm. Equisatisfiable with
    // a cold encode of the new spec by construction — the sections only
    // constrain pre-existing y/ladder variables.
    adopt_spec(std::move(next));
    encoding_->reemit_policy_sections();
    report.path = "retract";
    report.result = resolve(spec_->sliders);
  } else if (model::route_preserving(delta)) {
    // Flow or leaf-host changes reshape the formula, but every
    // pre-existing pair keeps its route set: rebuild the encoding with
    // the enumerated routes transplanted.
    report.path = "replay";
    report.fallback_reason = !topo_clean || !flows_clean
                                 ? "flows-or-topology-dirty"
                                 : (!warm_capable ? "hard-thresholds"
                                                  : "non-retractable-sections");
    rebuild(std::move(next), /*reuse_routes=*/true);
    report.result = synthesize();
  } else {
    // Link failures/restores and host removals can reroute arbitrary
    // pairs; stale route sets would leave over- or under-strong eq. 7
    // clauses, so nothing survives.
    report.path = "full";
    report.fallback_reason = "routes-invalidated";
    rebuild(std::move(next), /*reuse_routes=*/false);
    report.result = synthesize();
  }

  if ((report.path == "warm" || report.path == "retract") &&
      report.result.status == smt::CheckResult::kUnknown) {
    // A capped probe on the shared learnt state ran out of budget; a
    // cold solve may still decide it. Rebuild so the reported verdict
    // is the cold verdict by construction.
    report.path = "full";
    report.fallback_reason = "capped-probe";
    rebuild(spec_owner_ ? spec_owner_
                        : std::make_shared<const model::ProblemSpec>(*spec_),
            /*reuse_routes=*/true);
    report.result = synthesize();
  }
  span.arg("path", report.path.c_str());
  return report;
}

smt::Lit Synthesizer::guard_for(ThresholdKind kind, util::Fixed value) {
  const std::pair<int, std::int64_t> key{static_cast<int>(kind),
                                         value.raw()};
  if (const auto it = guard_cache_.find(key); it != guard_cache_.end())
    return it->second;
  const std::optional<smt::Lit> guard =
      encoding_->add_threshold(kind, value, ThresholdMode::kAssumption);
  CS_ENSURE(guard.has_value(), "assumption mode must return a selector");
  guard_cache_.emplace(key, *guard);
  guard_kind_.emplace(guard->var, kind);
  return *guard;
}

SynthesisResult Synthesizer::synthesize() {
  return synthesize(spec_->sliders);
}

SynthesisResult Synthesizer::synthesize(const model::Sliders& sliders) {
  return synthesize_partial(sliders.isolation, sliders.usability,
                            sliders.budget);
}

SynthesisResult Synthesizer::resolve(const model::Sliders& sliders) {
  CS_REQUIRE(options_.threshold_mode == ThresholdMode::kAssumption,
             "resolve() needs retractable thresholds "
             "(ThresholdMode::kAssumption)");
  ++resolves_;
  obs::Span span("synth", "synth/resolve");
  SynthesisResult result = synthesize(sliders);
  span.arg("status", status_tag(result.status));
  result.encode_seconds = 0;  // amortized: nothing was re-encoded
  return result;
}

void Synthesizer::set_check_budget(std::int64_t remaining_ms) {
  std::int64_t time_ms = options_.check_time_limit_ms;
  if (remaining_ms > 0)
    time_ms = time_ms > 0 ? std::min(time_ms, remaining_ms) : remaining_ms;
  backend_->set_time_limit_ms(time_ms);
  backend_->set_conflict_limit(
      options_.check_conflict_limit > 0 ? options_.check_conflict_limit : 0);
}

SynthesisResult Synthesizer::synthesize_partial(
    std::optional<util::Fixed> isolation, std::optional<util::Fixed> usability,
    std::optional<util::Fixed> budget) {
  // Retractable policy sections are enabled by their guard on every
  // check (no-op when sections are hard).
  std::vector<smt::Lit> assumptions = encoding_->section_assumptions();
  const auto enforce = [&](ThresholdKind kind, util::Fixed value) {
    if (options_.threshold_mode == ThresholdMode::kAssumption) {
      assumptions.push_back(guard_for(kind, value));
      return;
    }
    // kHard: assert once, permanently; a second distinct value cannot be
    // expressed against a hard constraint already in the store.
    const auto [it, inserted] =
        hard_values_.emplace(static_cast<int>(kind), value.raw());
    if (inserted) {
      encoding_->add_threshold(kind, value, ThresholdMode::kHard);
      return;
    }
    CS_REQUIRE(it->second == value.raw(),
               "ThresholdMode::kHard cannot re-solve with a different " +
                   std::string(threshold_name(kind)) + " threshold");
  };
  if (isolation) enforce(ThresholdKind::kIsolation, *isolation);
  if (usability) enforce(ThresholdKind::kUsability, *usability);
  if (budget) enforce(ThresholdKind::kCost, *budget);

  SynthesisResult result;
  result.encode_seconds = encode_seconds_;
  result.encoding = encoding_->stats();

  util::Stopwatch watch;
  {
    obs::Span span("synth", "synth/check");
    result.status = backend_->check(assumptions);
    span.arg("status", status_tag(result.status));
  }
  result.solve_seconds = watch.elapsed_seconds();
  result.solver_memory_bytes = backend_->memory_bytes();

  if (result.status == smt::CheckResult::kSat) {
    result.design = encoding_->decode();
  } else if (result.status == smt::CheckResult::kUnsat) {
    for (const smt::Lit l : backend_->unsat_core()) {
      const auto it = guard_kind_.find(l.var);
      if (it != guard_kind_.end())
        result.conflicting.push_back(it->second);
    }
  }
  return result;
}

}  // namespace cs::synth
