#include "synth/synthesizer.h"

#include "util/error.h"

namespace cs::synth {

std::string_view threshold_name(ThresholdKind kind) {
  switch (kind) {
    case ThresholdKind::kIsolation:
      return "isolation";
    case ThresholdKind::kUsability:
      return "usability";
    case ThresholdKind::kCost:
      return "cost";
  }
  return "?";
}

Synthesizer::Synthesizer(const model::ProblemSpec& spec,
                         SynthesisOptions options)
    : spec_(spec),
      options_(options),
      routes_(spec.network, spec.route_options),
      backend_(smt::make_backend(options.backend)) {
  util::Stopwatch watch;
  encoding_ = std::make_unique<Encoding>(spec_, routes_, *backend_);
  encode_seconds_ = watch.elapsed_seconds();
  if (options_.check_time_limit_ms > 0)
    backend_->set_time_limit_ms(options_.check_time_limit_ms);
  if (options_.check_conflict_limit > 0)
    backend_->set_conflict_limit(options_.check_conflict_limit);
}

smt::Lit Synthesizer::guard_for(ThresholdKind kind, util::Fixed value) {
  const std::pair<int, std::int64_t> key{static_cast<int>(kind),
                                         value.raw()};
  if (const auto it = guard_cache_.find(key); it != guard_cache_.end())
    return it->second;
  smt::Lit guard;
  switch (kind) {
    case ThresholdKind::kIsolation:
      guard = encoding_->isolation_guard(value);
      break;
    case ThresholdKind::kUsability:
      guard = encoding_->usability_guard(value);
      break;
    case ThresholdKind::kCost:
      guard = encoding_->cost_guard(value);
      break;
  }
  guard_cache_.emplace(key, guard);
  guard_kind_.emplace(guard.var, kind);
  return guard;
}

SynthesisResult Synthesizer::synthesize() {
  return synthesize(spec_.sliders);
}

SynthesisResult Synthesizer::synthesize(const model::Sliders& sliders) {
  return synthesize_partial(sliders.isolation, sliders.usability,
                            sliders.budget);
}

SynthesisResult Synthesizer::synthesize_partial(
    std::optional<util::Fixed> isolation, std::optional<util::Fixed> usability,
    std::optional<util::Fixed> budget) {
  std::vector<smt::Lit> assumptions;
  if (isolation)
    assumptions.push_back(guard_for(ThresholdKind::kIsolation, *isolation));
  if (usability)
    assumptions.push_back(guard_for(ThresholdKind::kUsability, *usability));
  if (budget)
    assumptions.push_back(guard_for(ThresholdKind::kCost, *budget));

  SynthesisResult result;
  result.encode_seconds = encode_seconds_;
  result.encoding = encoding_->stats();

  util::Stopwatch watch;
  result.status = backend_->check(assumptions);
  result.solve_seconds = watch.elapsed_seconds();
  result.solver_memory_bytes = backend_->memory_bytes();

  if (result.status == smt::CheckResult::kSat) {
    result.design = encoding_->decode();
  } else if (result.status == smt::CheckResult::kUnsat) {
    for (const smt::Lit l : backend_->unsat_core()) {
      const auto it = guard_kind_.find(l.var);
      if (it != guard_kind_.end())
        result.conflicting.push_back(it->second);
    }
  }
  return result;
}

}  // namespace cs::synth
