#include "synth/synthesizer.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/error.h"

namespace cs::synth {

namespace {

const char* status_tag(smt::CheckResult status) {
  switch (status) {
    case smt::CheckResult::kSat:
      return "sat";
    case smt::CheckResult::kUnsat:
      return "unsat";
    case smt::CheckResult::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace

Synthesizer::Synthesizer(const model::ProblemSpec& spec,
                         SynthesisOptions options)
    : spec_(spec),
      options_(options),
      routes_(spec.network, spec.route_options),
      backend_(smt::make_backend(options.backend)) {
  util::Stopwatch watch;
  {
    obs::Span span("synth", "synth/encode");
    encoding_ = std::make_unique<Encoding>(spec_, routes_, *backend_);
  }
  encode_seconds_ = watch.elapsed_seconds();
  if (options_.check_time_limit_ms > 0)
    backend_->set_time_limit_ms(options_.check_time_limit_ms);
  if (options_.check_conflict_limit > 0)
    backend_->set_conflict_limit(options_.check_conflict_limit);
}

smt::Lit Synthesizer::guard_for(ThresholdKind kind, util::Fixed value) {
  const std::pair<int, std::int64_t> key{static_cast<int>(kind),
                                         value.raw()};
  if (const auto it = guard_cache_.find(key); it != guard_cache_.end())
    return it->second;
  const std::optional<smt::Lit> guard =
      encoding_->add_threshold(kind, value, ThresholdMode::kAssumption);
  CS_ENSURE(guard.has_value(), "assumption mode must return a selector");
  guard_cache_.emplace(key, *guard);
  guard_kind_.emplace(guard->var, kind);
  return *guard;
}

SynthesisResult Synthesizer::synthesize() {
  return synthesize(spec_.sliders);
}

SynthesisResult Synthesizer::synthesize(const model::Sliders& sliders) {
  return synthesize_partial(sliders.isolation, sliders.usability,
                            sliders.budget);
}

SynthesisResult Synthesizer::resolve(const model::Sliders& sliders) {
  CS_REQUIRE(options_.threshold_mode == ThresholdMode::kAssumption,
             "resolve() needs retractable thresholds "
             "(ThresholdMode::kAssumption)");
  ++resolves_;
  obs::Span span("synth", "synth/resolve");
  SynthesisResult result = synthesize(sliders);
  span.arg("status", status_tag(result.status));
  result.encode_seconds = 0;  // amortized: nothing was re-encoded
  return result;
}

void Synthesizer::set_check_budget(std::int64_t remaining_ms) {
  std::int64_t time_ms = options_.check_time_limit_ms;
  if (remaining_ms > 0)
    time_ms = time_ms > 0 ? std::min(time_ms, remaining_ms) : remaining_ms;
  backend_->set_time_limit_ms(time_ms);
  backend_->set_conflict_limit(
      options_.check_conflict_limit > 0 ? options_.check_conflict_limit : 0);
}

SynthesisResult Synthesizer::synthesize_partial(
    std::optional<util::Fixed> isolation, std::optional<util::Fixed> usability,
    std::optional<util::Fixed> budget) {
  std::vector<smt::Lit> assumptions;
  const auto enforce = [&](ThresholdKind kind, util::Fixed value) {
    if (options_.threshold_mode == ThresholdMode::kAssumption) {
      assumptions.push_back(guard_for(kind, value));
      return;
    }
    // kHard: assert once, permanently; a second distinct value cannot be
    // expressed against a hard constraint already in the store.
    const auto [it, inserted] =
        hard_values_.emplace(static_cast<int>(kind), value.raw());
    if (inserted) {
      encoding_->add_threshold(kind, value, ThresholdMode::kHard);
      return;
    }
    CS_REQUIRE(it->second == value.raw(),
               "ThresholdMode::kHard cannot re-solve with a different " +
                   std::string(threshold_name(kind)) + " threshold");
  };
  if (isolation) enforce(ThresholdKind::kIsolation, *isolation);
  if (usability) enforce(ThresholdKind::kUsability, *usability);
  if (budget) enforce(ThresholdKind::kCost, *budget);

  SynthesisResult result;
  result.encode_seconds = encode_seconds_;
  result.encoding = encoding_->stats();

  util::Stopwatch watch;
  {
    obs::Span span("synth", "synth/check");
    result.status = backend_->check(assumptions);
    span.arg("status", status_tag(result.status));
  }
  result.solve_seconds = watch.elapsed_seconds();
  result.solver_memory_bytes = backend_->memory_bytes();

  if (result.status == smt::CheckResult::kSat) {
    result.design = encoding_->decode();
  } else if (result.status == smt::CheckResult::kUnsat) {
    for (const smt::Lit l : backend_->unsat_core()) {
      const auto it = guard_kind_.find(l.var);
      if (it != guard_kind_.end())
        result.conflicting.push_back(it->second);
    }
  }
  return result;
}

}  // namespace cs::synth
