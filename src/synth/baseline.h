// Greedy bottom-up baseline synthesizer (ablation A1 in DESIGN.md).
//
// The paper argues for top-down constraint solving against the traditional
// bottom-up practice of assigning protections flow-by-flow. This baseline
// implements a competent version of bottom-up: walk patterns from the
// strongest isolation score downward, greedily protect flows while local
// usability and budget accounting permits, and place devices with greedy
// route covering. It has no global view — device sharing across host pairs
// is opportunistic, and a flow protected early can exhaust budget needed by
// a cheaper global design — which is exactly the gap the ablation bench
// measures.
#pragma once

#include "synth/metrics.h"
#include "topology/routes.h"

namespace cs::synth {

struct BaselineResult {
  SecurityDesign design;
  DesignMetrics metrics;
  /// Whether the produced design meets all three of the spec's sliders.
  bool meets_thresholds = false;
  double seconds = 0;
};

/// Runs the greedy bottom-up synthesis against spec.sliders.
BaselineResult greedy_baseline(const model::ProblemSpec& spec);

}  // namespace cs::synth
