// The synthesis driver: encode once, probe thresholds incrementally.
//
// A `Synthesizer` owns the backend, the route table and the encoding for
// one ProblemSpec. Every distinct slider value becomes a named guard
// literal (cached), so repeated checks — the optimizer's binary search,
// Algorithm 1's subset re-solves — reuse the learnt state of the backend
// instead of re-encoding the network.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "model/spec.h"
#include "smt/ir.h"
#include "synth/design.h"
#include "synth/encoder.h"
#include "util/timer.h"

namespace cs::synth {

enum class ThresholdKind { kIsolation, kUsability, kCost };

std::string_view threshold_name(ThresholdKind kind);

struct SynthesisOptions {
  smt::BackendKind backend = smt::BackendKind::kZ3;
  /// Per-check wall-clock cap in milliseconds (0 = unlimited). Checks that
  /// exceed it return kUnknown — expected near threshold boundaries, where
  /// the problem is genuinely hard (paper Fig. 5a).
  std::int64_t check_time_limit_ms = 0;
  /// Per-check deterministic effort cap in backend-specific units (CDCL
  /// conflicts for MiniPB, Z3 resource units; 0 = unlimited). Like the
  /// wall-clock cap a capped check returns kUnknown, but expiry is a pure
  /// function of the formula — independent of machine load — so capped
  /// sweeps stay bit-for-bit reproducible across serial and parallel runs.
  std::int64_t check_conflict_limit = 0;
};

struct SynthesisResult {
  smt::CheckResult status = smt::CheckResult::kUnknown;
  std::optional<SecurityDesign> design;           // set on kSat
  std::vector<ThresholdKind> conflicting;         // unsat core on kUnsat
  double encode_seconds = 0;
  double solve_seconds = 0;
  std::size_t solver_memory_bytes = 0;
  EncodingStats encoding;
};

class Synthesizer {
 public:
  /// Encodes the structural constraints immediately; `spec` must outlive
  /// the synthesizer.
  explicit Synthesizer(const model::ProblemSpec& spec,
                       SynthesisOptions options = {});

  /// Solves with the spec's own slider values (paper eq. 12).
  SynthesisResult synthesize();

  /// Solves with explicit slider values (reusing the encoding).
  SynthesisResult synthesize(const model::Sliders& sliders);

  /// Solves with an arbitrary subset of thresholds enforced — the re-solve
  /// primitive of Algorithm 1. Absent optionals drop that assumption.
  SynthesisResult synthesize_partial(
      std::optional<util::Fixed> isolation,
      std::optional<util::Fixed> usability,
      std::optional<util::Fixed> budget);

  double encode_seconds() const { return encode_seconds_; }
  const EncodingStats& encoding_stats() const { return encoding_->stats(); }
  const smt::Backend& backend() const { return *backend_; }

 private:
  smt::Lit guard_for(ThresholdKind kind, util::Fixed value);

  const model::ProblemSpec& spec_;
  SynthesisOptions options_;
  topology::RouteTable routes_;
  std::unique_ptr<smt::Backend> backend_;
  std::unique_ptr<Encoding> encoding_;
  double encode_seconds_ = 0;

  std::map<std::pair<int, std::int64_t>, smt::Lit> guard_cache_;
  std::unordered_map<smt::BoolVar, ThresholdKind> guard_kind_;
};

}  // namespace cs::synth
