// The synthesis driver: encode once, probe thresholds incrementally.
//
// A `Synthesizer` owns the backend, the route table and the encoding for
// one ProblemSpec. Every distinct slider value becomes a named guard
// literal (cached), so repeated checks — the optimizer's binary search,
// Algorithm 1's subset re-solves — reuse the learnt state of the backend
// instead of re-encoding the network.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "model/delta.h"
#include "model/spec.h"
#include "smt/ir.h"
#include "synth/design.h"
#include "synth/encoder.h"
#include "util/timer.h"

namespace cs::synth {

struct SynthesisOptions {
  smt::BackendKind backend = smt::BackendKind::kZ3;
  /// Per-check wall-clock cap in milliseconds (0 = unlimited). Checks that
  /// exceed it return kUnknown — expected near threshold boundaries, where
  /// the problem is genuinely hard (paper Fig. 5a).
  std::int64_t check_time_limit_ms = 0;
  /// Per-check deterministic effort cap in backend-specific units (CDCL
  /// conflicts for MiniPB, Z3 resource units; 0 = unlimited). Like the
  /// wall-clock cap a capped check returns kUnknown, but expiry is a pure
  /// function of the formula — independent of machine load — so capped
  /// sweeps stay bit-for-bit reproducible across serial and parallel runs.
  std::int64_t check_conflict_limit = 0;
  /// How the three slider thresholds enter the encoding (encoder.h).
  /// kAssumption (default) keeps them retractable selector guards — the
  /// incremental probing and unsat-core machinery require it. kHard
  /// asserts them permanently: marginally smaller formulas for one-shot
  /// solves, but each threshold kind accepts only a single value per
  /// synthesizer and UNSAT results carry no threshold core.
  ThresholdMode threshold_mode = ThresholdMode::kAssumption;
  /// Emit the UIC + RMC sections under a retractable guard (encoder.h),
  /// enabling apply_delta's "retract" tier for policy-only deltas. Off
  /// by default: guarded sections cost one extra literal per clause.
  bool retractable_sections = false;
};

struct SynthesisResult {
  smt::CheckResult status = smt::CheckResult::kUnknown;
  std::optional<SecurityDesign> design;           // set on kSat
  std::vector<ThresholdKind> conflicting;         // unsat core on kUnsat
  double encode_seconds = 0;
  double solve_seconds = 0;
  std::size_t solver_memory_bytes = 0;
  EncodingStats encoding;
};

/// Outcome of Synthesizer::apply_delta: which tier served the delta,
/// why a slower tier was chosen (empty when the fastest eligible tier
/// ran), and the re-synthesis result on the post-delta spec.
///
///   "warm"    thresholds/budget-only delta — assumption swap, no
///             re-encoding (the existing resolve() path).
///   "retract" UIC/RMC-only delta — retire the guarded policy sections,
///             re-emit from the new spec, warm re-solve.
///   "replay"  flows or route-preserving topology changes — fresh
///             encoding, but the enumerated route table is transplanted
///             (routes dominate encode cost at scale).
///   "full"    route-invalidating delta (link fail/restore, host
///             removal) — cold rebuild, identical to a fresh
///             Synthesizer on the post-delta spec.
///
/// Verdict contract (docs/DELTAS.md): on every tier the verdict equals
/// a cold solve of the post-delta spec by construction when checks are
/// uncapped; under effort caps, a fast-tier kUnknown falls back to an
/// internal cold rebuild (reason "capped-probe"), so the reported
/// verdict is still the cold one.
struct DeltaApplyReport {
  std::string path;
  std::string fallback_reason;
  SynthesisResult result;
};

class Synthesizer {
 public:
  /// Encodes the structural constraints immediately; `spec` must outlive
  /// the synthesizer.
  explicit Synthesizer(const model::ProblemSpec& spec,
                       SynthesisOptions options = {});

  /// Shared-ownership variant: apply_delta keeps the chain of specs it
  /// creates alive internally, so this is the natural form for churn.
  explicit Synthesizer(std::shared_ptr<const model::ProblemSpec> spec,
                       SynthesisOptions options = {});

  /// Solves with the spec's own slider values (paper eq. 12).
  SynthesisResult synthesize();

  /// Solves with explicit slider values (reusing the encoding).
  SynthesisResult synthesize(const model::Sliders& sliders);

  /// Solves with an arbitrary subset of thresholds enforced — the re-solve
  /// primitive of Algorithm 1. Absent optionals drop that assumption.
  SynthesisResult synthesize_partial(
      std::optional<util::Fixed> isolation,
      std::optional<util::Fixed> usability,
      std::optional<util::Fixed> budget);

  /// Warm re-solve: swaps the threshold assumptions without re-encoding
  /// (requires ThresholdMode::kAssumption). Identical verdict semantics to
  /// synthesize(sliders); the returned encode_seconds is 0 because the
  /// encoding is amortized over the synthesizer's lifetime — warm-started
  /// sweeps use this to attribute encode cost to the first point only.
  SynthesisResult resolve(const model::Sliders& sliders);

  /// Re-applies per-check caps on the backend, clamping the wall-clock cap
  /// to `remaining_ms` when positive (0 keeps the constructor options'
  /// caps). Warm sweep workers call this before every point so a shared
  /// solver still honors each point's deadline budget.
  void set_check_budget(std::int64_t remaining_ms);

  double encode_seconds() const { return encode_seconds_; }
  const EncodingStats& encoding_stats() const { return encoding_->stats(); }
  const smt::Backend& backend() const { return *backend_; }
  /// Cumulative backend effort counters (conflicts, propagations, ...);
  /// snapshot before/after a probe to attribute effort to it.
  smt::SolverStats solver_statistics() const {
    return backend_->statistics();
  }
  /// Warm re-solves served since construction (resolve() calls).
  int resolves() const { return resolves_; }
  const SynthesisOptions& options() const { return options_; }

  /// The spec currently synthesized against (post-delta after
  /// apply_delta calls).
  const model::ProblemSpec& spec() const { return *spec_; }

  /// Applies `delta` to the current spec (transactionally — a SpecError
  /// leaves the synthesizer untouched) and re-synthesizes on the
  /// cheapest sound tier, classified by which cs-spec-v1 sub-digests
  /// moved (model/fingerprint.h) plus route-preservation analysis of
  /// the ops. See DeltaApplyReport for the tier and verdict contract.
  DeltaApplyReport apply_delta(const model::SpecDelta& delta);

 private:
  smt::Lit guard_for(ThresholdKind kind, util::Fixed value);

  /// Swaps in `next` without touching the encoding (same shape); the
  /// old spec stays owned because routes_ references its network.
  void adopt_spec(std::shared_ptr<const model::ProblemSpec> next);

  /// Cold rebuild against `next`; when `reuse_routes`, the new route
  /// table adopts the already-enumerated pairs (sound only for
  /// route-preserving deltas).
  void rebuild(std::shared_ptr<const model::ProblemSpec> next,
               bool reuse_routes);

  const model::ProblemSpec* spec_;
  /// Owner of spec_ when constructed from (or churned onto) a shared
  /// spec; null for the borrowed-reference constructor.
  std::shared_ptr<const model::ProblemSpec> spec_owner_;
  /// Pre-delta specs still referenced by routes_/encoding internals
  /// (cleared on every rebuild, which re-seats those references).
  std::vector<std::shared_ptr<const model::ProblemSpec>> retired_specs_;
  SynthesisOptions options_;
  std::unique_ptr<topology::RouteTable> routes_;
  std::unique_ptr<smt::Backend> backend_;
  std::unique_ptr<Encoding> encoding_;
  double encode_seconds_ = 0;
  int resolves_ = 0;

  std::map<std::pair<int, std::int64_t>, smt::Lit> guard_cache_;
  std::unordered_map<smt::BoolVar, ThresholdKind> guard_kind_;
  /// kHard mode: the single permanent value asserted per threshold kind
  /// (raw Fixed units); a second distinct value is a usage error.
  std::map<int, std::int64_t> hard_values_;
};

}  // namespace cs::synth
