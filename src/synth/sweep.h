// Parallel sweep engine: grids of independent synthesis probes.
//
// Every decision-support workload in the paper — the Fig. 3 frontiers, the
// Fig. 4/5 scaling sweeps, Table III slider assistance — is a grid of
// feasibility or bound-search probes that share one ProblemSpec but nothing
// else. `SweepEngine` runs such a grid on a fixed-size worker pool
// (util/thread_pool.h) and returns the points in deterministic grid order
// regardless of completion order, so serial and parallel runs produce
// byte-identical output.
//
// Threading model — one backend per worker task. A `ProblemSpec` is
// read-only after `finalize()`, so all workers share it; Z3 contexts and
// MiniPB solver state are NOT thread-safe, so every grid point is solved on
// a Synthesizer (and therefore a backend) constructed inside the worker
// that owns the point. Fresh-per-point construction is also what makes the
// results independent of the partition: no point inherits another point's
// guard literals or learnt clauses, so `jobs = 1` and `jobs = N` solve
// identical instances.
//
// Warm start (`SweepRequest::warm_start`) — encode once per worker, not
// once per point. The slider thresholds are assumption-guarded selector
// constraints (encoder.h, ThresholdMode::kAssumption), so one solver can
// re-solve every grid point by swapping assumptions: learnt clauses,
// variable activity and the PB encoding survive between points; only the
// selectors change. The grid is split into contiguous chunks, one warm
// Synthesizer per chunk, each chunk solved in request order — a static,
// deterministic partition, so a warm sweep at a fixed `jobs` value always
// re-solves the same instance sequence. Warm and cold sweeps return the
// same verdicts and bounds whenever every probe is decided (SAT/UNSAT are
// properties of the formula, and bound searches converge on monotone
// predicates regardless of probe order); only effort caps that actually
// expire can differ, because a warm solver's learnt state changes where a
// capped probe gives up. Requests whose threshold mode is kHard cannot
// retract thresholds and silently fall back to the cold fresh-per-point
// path.
//
// Deadlines are cooperative: `SweepRequest::deadline_ms` caps the whole
// sweep's wall clock by clamping each point's
// `SynthesisOptions::check_time_limit_ms` to the time remaining when the
// point starts. Points that start after the deadline (or after `cancel` is
// raised) are returned with `skipped = true` and kUnknown status — the
// grid shape is always preserved. A deadline that has already expired at
// submit time (`deadline_ms < 0`) skips every point immediately, and an
// empty grid returns at once; neither hangs or asserts.
//
// Caps and reproducibility. A wall-clock cap (`check_time_limit_ms`,
// `deadline_ms`) expires under scheduler load, so a capped probe can
// resolve serially yet expire when workers contend — use it for
// latency-bounded interactive sweeps. When serial/parallel byte-identity
// matters (regression baselines, the determinism tests), cap probes with
// `SynthesisOptions::check_conflict_limit` instead: its expiry is a pure
// function of the formula, so every probe returns the same verdict at any
// worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "synth/optimizer.h"
#include "synth/synthesizer.h"

namespace cs::synth {

/// What a grid point asks of the solver.
enum class SweepObjective {
  /// Maximize the isolation threshold s.t. usability ≥ `usability`,
  /// cost ≤ `budget` (paper Fig. 3).
  kMaxIsolation,
  /// Minimize the budget s.t. isolation ≥ `isolation`,
  /// usability ≥ `usability`.
  kMinCost,
  /// One feasibility check of the full slider triple (paper Fig. 4/5
  /// timing points).
  kFeasibility,
};

/// Stable lowercase name ("max-isolation", "min-cost", "feasibility") —
/// the spelling the CLI, server request files and CSVs use.
std::string_view sweep_objective_name(SweepObjective objective);

/// One grid point. Field meaning depends on `objective` (see above);
/// unused thresholds are ignored.
struct SweepPoint {
  SweepObjective objective = SweepObjective::kMaxIsolation;
  util::Fixed isolation;
  util::Fixed usability;
  util::Fixed budget;

  bool operator==(const SweepPoint&) const = default;
};

/// A grid of independent probes against one shared ProblemSpec.
struct SweepRequest {
  std::vector<SweepPoint> points;
  /// Backend and per-check cap; each worker task builds its own
  /// Synthesizer from these options (never shared across threads).
  SynthesisOptions synthesis;
  /// Search options for kMaxIsolation / kMinCost points.
  OptimizeOptions optimize;
  MinCostOptions min_cost;
  /// Worker count; 0 = one per hardware thread, 1 = run on the calling
  /// thread (no pool).
  int jobs = 1;
  /// Reuse one warm Synthesizer per worker across that worker's chunk of
  /// the grid (encode once, swap threshold assumptions — see the header
  /// comment). false = fresh synthesizer per point (the cold path).
  bool warm_start = false;
  /// Whole-sweep wall-clock cap in milliseconds (0 = none; negative =
  /// already expired, all points skipped), enforced cooperatively through
  /// SynthesisOptions::check_time_limit_ms.
  std::int64_t deadline_ms = 0;
  /// Optional cancellation token: set it (from any thread) to skip all
  /// points that have not started yet.
  const std::atomic<bool>* cancel = nullptr;

  /// Floor-major, budget-minor kMaxIsolation grid — the Fig. 3(a) shape.
  static SweepRequest max_isolation_grid(
      const std::vector<util::Fixed>& usability_floors,
      const std::vector<util::Fixed>& budgets);

  /// One kFeasibility point per slider triple, in the given order.
  static SweepRequest feasibility_grid(
      const std::vector<model::Sliders>& sliders);
};

/// Outcome of one grid point, in the request's order.
struct SweepPointResult {
  SweepPoint point;
  /// Bound-search outcome; for kFeasibility points only `feasible`,
  /// `metrics`, `design` and `probes` (= 1) are meaningful.
  BoundSearchResult search;
  /// Verdict of the last probe: kSat iff feasible, kUnknown when capped
  /// or skipped.
  smt::CheckResult status = smt::CheckResult::kUnknown;
  /// For kFeasibility points that came back kUnsat: the threshold
  /// assumptions in the solver's unsat core (the service layer caches
  /// these as the negative-result explanation).
  std::vector<ThresholdKind> conflicting;
  /// Wall time of this point (encoding + all probes) on its worker.
  double wall_seconds = 0;
  /// Encode time charged to this point: the full encode on the cold path,
  /// 0 for warm re-solves (the worker's first point carries the encode).
  double encode_seconds = 0;
  /// Peak backend footprint of this point's solver.
  std::size_t solver_memory_bytes = 0;
  /// Backend effort spent on this point (conflicts, propagations, ...):
  /// the delta of the solver's cumulative counters across the point.
  smt::SolverStats solver;
  /// True when this point was re-solved on a reused warm synthesizer
  /// (no re-encoding happened).
  bool warm = false;
  /// True when the deadline/cancellation fired before the point started;
  /// the point was not solved.
  bool skipped = false;
};

/// Whole-sweep outcome: per-point results in grid order plus effort
/// aggregates for the cold-vs-warm comparisons the benches print.
struct SweepResult {
  /// One entry per requested point, in request order (deterministic
  /// regardless of worker completion order).
  std::vector<SweepPointResult> points;
  /// Workers actually used.
  int jobs = 1;
  /// Whole-sweep wall clock.
  double wall_seconds = 0;
  /// Solver probes summed over all points.
  int total_probes = 0;
  /// Encode time summed over all points — the cost warm start amortizes:
  /// cold pays one encode per point, warm one per worker chunk.
  double total_encode_seconds = 0;
  /// Backend effort summed over all points (comparable cold vs warm even
  /// on 1-core machines where wall-clock speedups are noisy).
  smt::SolverStats total_solver;
  /// Points that were re-solved on a warm synthesizer (0 on cold sweeps).
  int warm_reuses = 0;
  /// Peak per-worker solver footprint: the maximum over points, not the
  /// sum — concurrent workers each hold one backend, so the sum would
  /// overstate a machine-wide peak that the max bounds per worker.
  std::size_t peak_solver_memory_bytes = 0;
  /// True when any point was skipped by the deadline or cancellation.
  bool deadline_expired = false;
};

/// Solves one grid point on a fresh Synthesizer owned by the calling
/// thread — the worker-task body of SweepEngine::run, exposed so request
/// servers (src/service) solve exactly what a sweep would. `remaining_ms`
/// > 0 clamps the per-check wall cap to that budget; 0 leaves the
/// request's own caps in force.
SweepPointResult solve_sweep_point(const model::ProblemSpec& spec,
                                   const SweepRequest& request,
                                   const SweepPoint& point,
                                   std::int64_t remaining_ms = 0);

/// Solves one grid point on a caller-provided (possibly warm) Synthesizer:
/// re-applies the per-check caps clamped to `remaining_ms`, then runs the
/// point's objective. `charge_encode` controls whether the synthesizer's
/// encode time is attributed to this point (true for its first use, false
/// for warm re-solves). The synthesizer's options must match the request's
/// backend/caps semantics — the service layer guarantees this by keying
/// warm synthesizers on the spec fingerprint and backend.
SweepPointResult solve_sweep_point_on(Synthesizer& synth,
                                      const model::ProblemSpec& spec,
                                      const SweepRequest& request,
                                      const SweepPoint& point,
                                      std::int64_t remaining_ms = 0,
                                      bool charge_encode = true);

/// Runs sweep grids against one read-only ProblemSpec. The spec must
/// outlive the engine and must not be mutated while a sweep runs.
class SweepEngine {
 public:
  explicit SweepEngine(const model::ProblemSpec& spec) : spec_(spec) {}

  /// Executes the request. Safe to call repeatedly; each call owns its
  /// workers. Throws only on malformed requests or internal errors —
  /// solver timeouts are reported per point, never thrown.
  SweepResult run(const SweepRequest& request) const;

 private:
  const model::ProblemSpec& spec_;
};

}  // namespace cs::synth
