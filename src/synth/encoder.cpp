#include "synth/encoder.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/error.h"

namespace cs::synth {

namespace {

/// Rounded division for non-negative operands.
std::int64_t round_div(std::int64_t num, std::int64_t den) {
  CS_ENSURE(den > 0 && num >= 0, "round_div domain");
  return (num + den / 2) / den;
}

}  // namespace

std::uint64_t Encoding::pair_key(topology::NodeId a, topology::NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

Encoding::Encoding(const model::ProblemSpec& spec,
                   topology::RouteTable& routes, smt::Backend& backend,
                   bool retractable_sections)
    : spec_(&spec),
      routes_(routes),
      backend_(backend),
      retractable_(retractable_sections) {
  // One span per constraint family, so a trace shows where encode time
  // goes as the topology/CR parameters scale (the paper's Fig. 4 axis).
  const auto phase = [](const char* name, auto&& body) {
    obs::Span span("encode", name);
    body();
  };
  phase("encode/validate", [&] { this->spec().validate(); });
  phase("encode/flow-vars", [&] { create_flow_vars(); });
  phase("encode/pair-link-vars", [&] { create_pair_and_link_vars(); });
  phase("encode/host-pattern-vars", [&] { create_host_pattern_vars(); });
  phase("encode/app-pattern-vars", [&] { create_app_pattern_vars(); });
  phase("encode/pattern-constraints", [&] { add_pattern_constraints(); });
  phase("encode/score-ladders", [&] { create_score_ladders(); });
  phase("encode/placement-constraints",
        [&] { add_placement_constraints(); });
  if (retractable_)
    section_guard_ = smt::pos(backend_.new_bool("section-guard-0"));
  phase("encode/user-constraints", [&] { add_user_constraints(); });
  phase("encode/host-requirements", [&] { add_host_requirements(); });
  phase("encode/metric-terms", [&] { build_metric_terms(); });
}

void Encoding::rebind_spec(const model::ProblemSpec& spec) {
  CS_REQUIRE(spec.flows.size() == this->spec().flows.size() &&
                 spec.network.node_count() ==
                     this->spec().network.node_count() &&
                 spec.network.link_count() ==
                     this->spec().network.link_count() &&
                 spec.services.size() == this->spec().services.size(),
             "rebind_spec: encoding shape differs");
  spec_ = &spec;
}

std::vector<smt::Lit> Encoding::section_assumptions() const {
  if (!retractable_) return {};
  return {section_guard_};
}

void Encoding::reemit_policy_sections() {
  CS_REQUIRE(retractable_,
             "reemit_policy_sections requires retractable sections");
  // Retire the old round: with ¬guard asserted, every clause of the old
  // sections is satisfied and every guarded linear constraint disabled;
  // learnt clauses stay implied because they were derived with the guard
  // as an assumption, never as a fact.
  backend_.add_clause({!section_guard_});
  section_guard_ = smt::pos(
      backend_.new_bool("section-guard-" + std::to_string(++section_round_)));
  obs::Span span("encode", "encode/reemit-policy-sections");
  add_user_constraints();
  add_host_requirements();
}

void Encoding::counted_clause(const std::vector<smt::Lit>& lits) {
  backend_.add_clause(lits);
  ++stats_.clauses;
}

void Encoding::counted_unit(smt::Lit l) { counted_clause({l}); }

void Encoding::section_clause(std::vector<smt::Lit> lits) {
  if (retractable_) lits.insert(lits.begin(), !section_guard_);
  counted_clause(lits);
}

void Encoding::section_linear_ge(const std::vector<smt::Term>& terms,
                                 std::int64_t bound) {
  if (retractable_) {
    backend_.add_guarded_linear_ge(section_guard_, terms, bound);
  } else {
    backend_.add_linear_ge(terms, bound);
  }
  ++stats_.linear_constraints;
}

void Encoding::create_flow_vars() {
  const std::size_t n = spec().flows.size();
  y_.assign(n, {});
  for (auto& row : y_) row.fill(smt::kNoVar);
  for (std::size_t f = 0; f < n; ++f) {
    for (const model::IsolationPattern k : spec().isolation.enabled()) {
      y_[f][static_cast<std::size_t>(model::pattern_index(k))] =
          backend_.new_bool("y_f" + std::to_string(f) + "_k" +
                            std::to_string(model::paper_id(k)));
      ++stats_.flow_vars;
    }
  }
}

void Encoding::create_pair_and_link_vars() {
  // Which device types any enabled pattern can demand.
  device_used_.fill(false);
  for (const model::IsolationPattern k : spec().isolation.enabled())
    for (const model::DeviceType d : model::devices_for(k))
      device_used_[static_cast<std::size_t>(model::device_index(d))] = true;

  // x vars per unordered host pair that carries flows (placement is
  // direction-agnostic: the reverse of a route uses the same links).
  for (const model::Flow& f : spec().flows.all()) {
    const std::uint64_t key = pair_key(f.src, f.dst);
    if (x_.contains(key)) continue;
    DeviceArray arr;
    arr.fill(smt::kNoVar);
    for (const model::DeviceType d : model::kAllDevices) {
      const auto di = static_cast<std::size_t>(model::device_index(d));
      if (!device_used_[di]) continue;
      arr[di] = backend_.new_bool("x_p" + std::to_string(key) + "_d" +
                                  std::to_string(model::paper_id(d)));
      ++stats_.pair_device_vars;
    }
    x_.emplace(key, arr);
  }

  // l vars per link and used device type.
  l_.assign(spec().network.link_count(), DeviceArray{});
  for (auto& arr : l_) arr.fill(smt::kNoVar);
  for (std::size_t e = 0; e < spec().network.link_count(); ++e) {
    for (const model::DeviceType d : model::kAllDevices) {
      const auto di = static_cast<std::size_t>(model::device_index(d));
      if (!device_used_[di]) continue;
      l_[e][di] = backend_.new_bool("l_e" + std::to_string(e) + "_d" +
                                    std::to_string(model::paper_id(d)));
      ++stats_.placement_vars;
    }
  }
}

void Encoding::create_host_pattern_vars() {
  if (!spec().host_patterns.any()) return;
  const auto& hcfg = spec().host_patterns;

  hp_.assign(spec().network.node_count(), {});
  for (auto& row : hp_) row.fill(smt::kNoVar);
  for (const topology::NodeId j : spec().network.hosts()) {
    std::vector<smt::Lit> at_most;
    for (const model::HostPattern t : hcfg.enabled()) {
      const auto ti = static_cast<std::size_t>(model::host_pattern_index(t));
      hp_[static_cast<std::size_t>(j)][ti] =
          backend_.new_bool("hp_n" + std::to_string(j) + "_t" +
                            std::to_string(model::host_pattern_index(t)));
      ++stats_.host_pattern_vars;
      at_most.push_back(
          smt::pos(hp_[static_cast<std::size_t>(j)][ti]));
    }
    backend_.add_at_most_one(at_most);
    stats_.clauses += at_most.size() * (at_most.size() - 1) / 2;
  }

  // z[f][t] ≡ hp[dst(f)][t] ∧ (no network pattern on f).
  z_.assign(spec().flows.size(), {});
  for (auto& row : z_) row.fill(smt::kNoVar);
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    const model::Flow& flow =
        spec().flows.flow(static_cast<model::FlowId>(f));
    for (const model::HostPattern t : hcfg.enabled()) {
      const auto ti = static_cast<std::size_t>(model::host_pattern_index(t));
      const smt::BoolVar z = backend_.new_bool(
          "z_f" + std::to_string(f) + "_t" +
          std::to_string(model::host_pattern_index(t)));
      ++stats_.host_pattern_vars;
      z_[f][ti] = z;
      const smt::BoolVar hp =
          hp_[static_cast<std::size_t>(flow.dst)][ti];
      counted_clause({smt::neg(z), smt::pos(hp)});
      std::vector<smt::Lit> back{smt::pos(z), smt::neg(hp)};
      for (const model::IsolationPattern k : spec().isolation.enabled()) {
        const smt::BoolVar y =
            y_[f][static_cast<std::size_t>(model::pattern_index(k))];
        counted_clause({smt::neg(z), smt::neg(y)});
        back.push_back(smt::pos(y));
      }
      counted_clause(back);
    }
  }
}

void Encoding::add_pattern_constraints() {
  const auto& enabled = spec().isolation.enabled();
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    // IIC1: at most one isolation pattern per flow.
    std::vector<smt::Lit> ys;
    for (const model::IsolationPattern k : enabled)
      ys.push_back(smt::pos(
          y_[f][static_cast<std::size_t>(model::pattern_index(k))]));
    backend_.add_at_most_one(ys);
    stats_.clauses += ys.size() * (ys.size() - 1) / 2;

    // eq. 1: pattern selection requires its devices between the pair.
    const model::Flow& flow =
        spec().flows.flow(static_cast<model::FlowId>(f));
    const DeviceArray& xs = x_.at(pair_key(flow.src, flow.dst));
    for (const model::IsolationPattern k : enabled) {
      const smt::BoolVar y =
          y_[f][static_cast<std::size_t>(model::pattern_index(k))];
      for (const model::DeviceType d : model::devices_for(k)) {
        const smt::BoolVar x =
            xs[static_cast<std::size_t>(model::device_index(d))];
        CS_ENSURE(x != smt::kNoVar, "missing pair-device variable");
        counted_clause({smt::neg(y), smt::pos(x)});
      }
    }

    // CR + IIC2: a connectivity-required flow cannot be denied.
    if (spec().connectivity.required(static_cast<model::FlowId>(f)) &&
        spec().isolation.is_enabled(model::IsolationPattern::kAccessDeny)) {
      counted_unit(smt::neg(
          y_[f][static_cast<std::size_t>(model::pattern_index(
              model::IsolationPattern::kAccessDeny))]));
    }
  }
}

void Encoding::create_app_pattern_vars() {
  if (!spec().app_patterns.any()) return;
  const auto& acfg = spec().app_patterns;

  // Endpoint variables for (destination, service) pairs that carry flows,
  // restricted to applicable patterns; at most one pattern per endpoint.
  for (const model::Flow& flow : spec().flows.all()) {
    const std::pair<topology::NodeId, model::ServiceId> key{flow.dst,
                                                            flow.service};
    if (ap_.contains(key)) continue;
    std::array<smt::BoolVar, model::kAppPatternCount> arr;
    arr.fill(smt::kNoVar);
    std::vector<smt::Lit> at_most;
    for (const model::AppPattern t : acfg.enabled()) {
      if (!acfg.applicable(t, flow.service)) continue;
      const auto ti = static_cast<std::size_t>(model::app_pattern_index(t));
      arr[ti] = backend_.new_bool(
          "ap_n" + std::to_string(flow.dst) + "_g" +
          std::to_string(flow.service) + "_t" + std::to_string(ti));
      ++stats_.app_pattern_vars;
      at_most.push_back(smt::pos(arr[ti]));
    }
    if (at_most.size() > 1) {
      backend_.add_at_most_one(at_most);
      stats_.clauses += at_most.size() * (at_most.size() - 1) / 2;
    }
    ap_.emplace(key, arr);
  }

  // w[f][t] ⇔ ap[endpoint][t] ∧ no network pattern ∧ no host coverage.
  w_.assign(spec().flows.size(), {});
  for (auto& row : w_) row.fill(smt::kNoVar);
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    const model::Flow& flow =
        spec().flows.flow(static_cast<model::FlowId>(f));
    const auto& arr = ap_.at({flow.dst, flow.service});
    for (const model::AppPattern t : acfg.enabled()) {
      const auto ti = static_cast<std::size_t>(model::app_pattern_index(t));
      if (arr[ti] == smt::kNoVar) continue;
      const smt::BoolVar w = backend_.new_bool(
          "w_f" + std::to_string(f) + "_t" + std::to_string(ti));
      ++stats_.app_pattern_vars;
      w_[f][ti] = w;
      counted_clause({smt::neg(w), smt::pos(arr[ti])});
      std::vector<smt::Lit> back{smt::pos(w), smt::neg(arr[ti])};
      for (const model::IsolationPattern k : spec().isolation.enabled()) {
        const smt::BoolVar y =
            y_[f][static_cast<std::size_t>(model::pattern_index(k))];
        counted_clause({smt::neg(w), smt::neg(y)});
        back.push_back(smt::pos(y));
      }
      if (spec().host_patterns.any()) {
        for (const model::HostPattern ht : spec().host_patterns.enabled()) {
          const smt::BoolVar z =
              z_[f][static_cast<std::size_t>(model::host_pattern_index(ht))];
          counted_clause({smt::neg(w), smt::neg(z)});
          back.push_back(smt::pos(z));
        }
      }
      counted_clause(back);
    }
  }
}

void Encoding::create_score_ladders() {
  // Collect the candidate (score, selector) protections of each flow and
  // emit the order encoding described in encoder.h.
  ladder_.assign(spec().flows.size(), {});
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    // Candidate selectors with their scores (y patterns, z host patterns).
    std::vector<std::pair<std::int64_t, smt::BoolVar>> candidates;
    for (const model::IsolationPattern k : spec().isolation.enabled()) {
      candidates.emplace_back(
          spec().isolation.score(k).raw(),
          y_[f][static_cast<std::size_t>(model::pattern_index(k))]);
    }
    if (spec().host_patterns.any()) {
      for (const model::HostPattern t : spec().host_patterns.enabled()) {
        candidates.emplace_back(
            spec().host_patterns.score(t).raw(),
            z_[f][static_cast<std::size_t>(model::host_pattern_index(t))]);
      }
    }
    if (spec().app_patterns.any()) {
      for (const model::AppPattern t : spec().app_patterns.enabled()) {
        const smt::BoolVar w =
            w_[f][static_cast<std::size_t>(model::app_pattern_index(t))];
        if (w != smt::kNoVar)
          candidates.emplace_back(spec().app_patterns.score(t).raw(), w);
      }
    }

    // Ascending distinct positive levels.
    std::vector<std::int64_t> levels;
    for (const auto& [score, var] : candidates)
      if (score > 0) levels.push_back(score);
    std::sort(levels.begin(), levels.end());
    levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

    std::vector<LadderStep>& steps = ladder_[f];
    steps.reserve(levels.size());
    for (const std::int64_t level : levels) {
      const smt::BoolVar u = backend_.new_bool(
          "u_f" + std::to_string(f) + "_l" + std::to_string(level));
      steps.push_back(LadderStep{level, u});
    }
    for (std::size_t j = 0; j + 1 < steps.size(); ++j)
      counted_clause({smt::neg(steps[j + 1].var), smt::pos(steps[j].var)});

    for (std::size_t j = 0; j < steps.size(); ++j) {
      // Support: u_j holds only if some protection of level >= ℓj is on.
      std::vector<smt::Lit> support{smt::neg(steps[j].var)};
      for (const auto& [score, var] : candidates) {
        if (score >= steps[j].level_raw)
          support.push_back(smt::pos(var));
        else
          // A weaker protection caps the ladder below ℓj.
          counted_clause({smt::neg(var), smt::neg(steps[j].var)});
      }
      counted_clause(support);
    }
    // Selecting a protection raises the ladder to its own level.
    for (const auto& [score, var] : candidates) {
      for (std::size_t j = 0; j < steps.size(); ++j) {
        if (steps[j].level_raw <= score)
          counted_clause({smt::neg(var), smt::pos(steps[j].var)});
      }
    }
  }
}

void Encoding::add_placement_constraints() {
  const int margin = spec().isolation.tunnel_margin();
  const auto ipsec_idx =
      static_cast<std::size_t>(model::device_index(model::DeviceType::kIpsec));

  for (const auto& [key, xs] : x_) {
    const auto a = static_cast<topology::NodeId>(key >> 32);
    const auto b = static_cast<topology::NodeId>(key & 0xffffffffu);
    const std::vector<topology::Route>& route_set = routes_.routes(a, b);

    for (const model::DeviceType d : model::kAllDevices) {
      const auto di = static_cast<std::size_t>(model::device_index(d));
      const smt::BoolVar x = xs[di];
      if (x == smt::kNoVar) continue;

      if (d == model::DeviceType::kIpsec) {
        // Tunnel feasibility: every route must be at least 2T+1 links.
        const bool feasible = std::all_of(
            route_set.begin(), route_set.end(),
            [&](const topology::Route& r) {
              return r.length() >=
                     static_cast<std::size_t>(2 * margin + 1);
            });
        if (!feasible) {
          counted_unit(smt::neg(x));
          continue;
        }
        // Source-side gateway within the first T links and
        // destination-side gateway within the last T links of each route.
        for (const topology::Route& r : route_set) {
          std::vector<smt::Lit> head{smt::neg(x)};
          std::vector<smt::Lit> tail{smt::neg(x)};
          const std::size_t len = r.length();
          for (std::size_t t = 0; t < static_cast<std::size_t>(margin);
               ++t) {
            head.push_back(smt::pos(
                l_[static_cast<std::size_t>(r.links[t])][ipsec_idx]));
            tail.push_back(smt::pos(
                l_[static_cast<std::size_t>(r.links[len - 1 - t])]
                  [ipsec_idx]));
          }
          counted_clause(head);
          counted_clause(tail);
        }
      } else {
        // eq. 7: the device must sit on some link of every route.
        for (const topology::Route& r : route_set) {
          std::vector<smt::Lit> clause{smt::neg(x)};
          for (const topology::LinkId e : r.links)
            clause.push_back(
                smt::pos(l_[static_cast<std::size_t>(e)][di]));
          counted_clause(clause);
        }
      }
    }
  }
}

void Encoding::add_user_constraints() {
  const auto y_of = [&](const model::Flow& flow,
                        model::IsolationPattern k) -> smt::BoolVar {
    const auto id = spec().flows.find(flow);
    CS_ENSURE(id.has_value(), "UIC references unknown flow");
    return y_[static_cast<std::size_t>(*id)]
             [static_cast<std::size_t>(model::pattern_index(k))];
  };

  for (const model::UserConstraint& uc : spec().user_constraints) {
    if (const auto* fs = std::get_if<model::ForbidPatternForService>(&uc)) {
      if (!spec().isolation.is_enabled(fs->pattern)) continue;
      for (std::size_t f = 0; f < spec().flows.size(); ++f) {
        if (spec().flows.flow(static_cast<model::FlowId>(f)).service ==
            fs->service) {
          section_clause({smt::neg(
              y_[f][static_cast<std::size_t>(
                  model::pattern_index(fs->pattern))])});
        }
      }
    } else if (const auto* ff =
                   std::get_if<model::ForbidPatternForFlow>(&uc)) {
      if (!spec().isolation.is_enabled(ff->pattern)) continue;
      section_clause({smt::neg(y_of(ff->flow, ff->pattern))});
    } else if (const auto* rf =
                   std::get_if<model::RequirePatternForFlow>(&uc)) {
      CS_REQUIRE(spec().isolation.is_enabled(rf->pattern),
                 "RequirePatternForFlow uses a disabled pattern");
      section_clause({smt::pos(y_of(rf->flow, rf->pattern))});
    } else if (const auto* dn = std::get_if<model::DenyOneOf>(&uc)) {
      CS_REQUIRE(
          spec().isolation.is_enabled(model::IsolationPattern::kAccessDeny),
          "DenyOneOf requires the access-deny pattern");
      section_clause(
          {smt::pos(y_of(dn->open_flow,
                         model::IsolationPattern::kAccessDeny)),
           smt::pos(y_of(dn->guard_flow,
                         model::IsolationPattern::kAccessDeny))});
    }
  }
}

void Encoding::add_host_requirements() {
  // RMC (risk-based constraints): per-host minimum isolation I_j ≥ min
  // (eqs. 2-3), with incoming traffic weighted α and outgoing 1−α. These
  // are hard constraints, mirrored exactly by compute_metrics'
  // host_isolation arithmetic.
  const std::int64_t alpha = spec().alpha.raw();
  const std::int64_t one = util::Fixed::from_int(1).raw();

  for (const model::HostIsolationRequirement& req :
       spec().host_requirements) {
    std::vector<smt::Term> terms;
    std::int64_t constant = 0;
    std::int64_t counted = 0;

    const auto add_direction = [&](topology::NodeId src,
                                   topology::NodeId dst,
                                   std::int64_t weight) {
      const auto& group = spec().flows.directed(src, dst);
      if (group.empty()) {
        constant +=
            util::round_div(weight * model::kSliderMax.raw(), one);
        return;
      }
      for (const model::FlowId f : group) {
        // α-weighted ladder increments; telescopes to
        // round_div(weight · round_div(score, |G|), 1) exactly as the
        // metrics compute the host score.
        std::int64_t prev = 0;
        for (const LadderStep& step :
             ladder_[static_cast<std::size_t>(f)]) {
          const std::int64_t contrib = util::round_div(
              step.level_raw, static_cast<std::int64_t>(group.size()));
          const std::int64_t weighted =
              util::round_div(weight * contrib, one);
          const std::int64_t delta = weighted - prev;
          prev = weighted;
          if (delta == 0) continue;
          terms.push_back(smt::Term{smt::pos(step.var), delta});
        }
      }
    };

    for (const topology::NodeId i : spec().network.hosts()) {
      if (i == req.host) continue;
      if (spec().flows.directed(i, req.host).empty() &&
          spec().flows.directed(req.host, i).empty())
        continue;
      ++counted;
      add_direction(i, req.host, alpha);        // incoming to the host
      add_direction(req.host, i, one - alpha);  // outgoing from the host
    }
    if (counted == 0) continue;  // isolated host: vacuously at maximum

    section_linear_ge(terms,
                      req.min_isolation.raw() * counted - constant);
  }
}

void Encoding::build_metric_terms() {
  // --- isolation (eqs. 2-4) --------------------------------------------
  // Network isolation I = (Σ over ordered flow-bearing pairs p of Ī_p)/|Q|
  // where Ī_{i,j} = Σ_{f ∈ G_ij} Σ_k y·L_k / |G_ij| and a direction with
  // no flows counts as fully isolated (Ī = 10). The α/(1−α) incoming/
  // outgoing weights cancel over the symmetric pair set Q (each direction
  // appears once with weight α and once with weight 1−α); they still
  // matter for the per-host scores reported by analysis::metrics.
  std::unordered_map<std::uint64_t, bool> seen_pair;
  for (const model::Flow& f : spec().flows.all())
    seen_pair[pair_key(f.src, f.dst)] = true;
  iso_pairs_ = 2 * static_cast<std::int64_t>(seen_pair.size());
  stats_.directed_pairs = static_cast<std::size_t>(iso_pairs_);

  iso_const_ = 0;
  for (const auto& [key, used] : seen_pair) {
    (void)used;
    const auto a = static_cast<topology::NodeId>(key >> 32);
    const auto b = static_cast<topology::NodeId>(key & 0xffffffffu);
    if (spec().flows.directed(a, b).empty())
      iso_const_ += model::kSliderMax.raw();
    if (spec().flows.directed(b, a).empty())
      iso_const_ += model::kSliderMax.raw();
  }

  // Per-flow score through the order-encoded ladder: summing level
  // increments Δj = round_div(ℓj,|G|) − round_div(ℓ{j−1},|G|) over the u
  // variables telescopes to round_div(selected score, |G|) — exactly the
  // value compute_metrics assigns the flow.
  iso_terms_.clear();
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    const model::Flow& flow =
        spec().flows.flow(static_cast<model::FlowId>(f));
    const auto group_size = static_cast<std::int64_t>(
        spec().flows.directed(flow.src, flow.dst).size());
    std::int64_t prev = 0;
    for (const LadderStep& step : ladder_[f]) {
      const std::int64_t delta =
          round_div(step.level_raw, group_size) - prev;
      prev = round_div(step.level_raw, group_size);
      if (delta == 0) continue;
      iso_terms_.push_back(smt::Term{smt::pos(step.var), delta});
    }
  }

  // --- usability (eqs. 5-6) ---------------------------------------------
  // U = 10 · Σ_f a_f·b(pattern_f) / Σ_f a_f, with b(none) = 1. Selecting
  // pattern k on flow f costs penalty a_f − a_f·b_k(g) relative to the
  // all-open maximum.
  usab_total_rank_raw_ = spec().ranks.total().raw();
  usab_penalty_terms_.clear();
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    const model::Flow& flow =
        spec().flows.flow(static_cast<model::FlowId>(f));
    const util::Fixed rank =
        spec().ranks.rank(static_cast<model::FlowId>(f));
    for (const model::IsolationPattern k : spec().isolation.enabled()) {
      const util::Fixed kept = rank * spec().isolation.usability(k, flow.service);
      const std::int64_t penalty = rank.raw() - kept.raw();
      if (penalty == 0) continue;
      usab_penalty_terms_.push_back(smt::Term{
          smt::pos(y_[f][static_cast<std::size_t>(
              model::pattern_index(k))]),
          penalty});
    }
  }

  // --- cost (eq. 8, plus per-host pattern costs) --------------------------
  cost_terms_.clear();
  for (std::size_t e = 0; e < l_.size(); ++e) {
    for (const model::DeviceType d : model::kAllDevices) {
      const auto di = static_cast<std::size_t>(model::device_index(d));
      if (l_[e][di] == smt::kNoVar) continue;
      const std::int64_t c = spec().device_costs.cost(d).raw();
      if (c == 0) continue;
      cost_terms_.push_back(smt::Term{smt::pos(l_[e][di]), c});
    }
  }
  if (spec().host_patterns.any()) {
    for (const topology::NodeId j : spec().network.hosts()) {
      for (const model::HostPattern t : spec().host_patterns.enabled()) {
        const std::int64_t c = spec().host_patterns.cost(t).raw();
        if (c == 0) continue;
        cost_terms_.push_back(smt::Term{
            smt::pos(hp_[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(
                            model::host_pattern_index(t))]),
            c});
      }
    }
  }
  for (const auto& [endpoint, arr] : ap_) {
    (void)endpoint;
    for (const model::AppPattern t : spec().app_patterns.enabled()) {
      const auto ti = static_cast<std::size_t>(model::app_pattern_index(t));
      if (arr[ti] == smt::kNoVar) continue;
      const std::int64_t c = spec().app_patterns.cost(t).raw();
      if (c == 0) continue;
      cost_terms_.push_back(smt::Term{smt::pos(arr[ti]), c});
    }
  }
}

std::string_view threshold_name(ThresholdKind kind) {
  switch (kind) {
    case ThresholdKind::kIsolation:
      return "isolation";
    case ThresholdKind::kUsability:
      return "usability";
    case ThresholdKind::kCost:
      return "cost";
  }
  return "?";
}

smt::Lit Encoding::isolation_guard(util::Fixed threshold) {
  const smt::Lit guard = smt::pos(backend_.new_bool("g_iso"));
  // Σ iso_terms + iso_const ≥ threshold.raw × |Q|   (all in Fixed raw).
  const std::int64_t bound = threshold.raw() * iso_pairs_ - iso_const_;
  backend_.add_guarded_linear_ge(guard, iso_terms_, bound);
  ++stats_.linear_constraints;
  return guard;
}

smt::Lit Encoding::usability_guard(util::Fixed threshold) {
  const smt::Lit guard = smt::pos(backend_.new_bool("g_usab"));
  // 10·(A − Σ penalties) ≥ Th·A  ⇔  Σ penalties ≤ A·(10 − Th)/10.
  // The left side is an integer, so flooring the right side is exact.
  const std::int64_t bound =
      usab_total_rank_raw_ * (model::kSliderMax.raw() - threshold.raw()) /
      model::kSliderMax.raw();
  backend_.add_guarded_linear_le(guard, usab_penalty_terms_, bound);
  ++stats_.linear_constraints;
  return guard;
}

smt::Lit Encoding::cost_guard(util::Fixed budget) {
  const smt::Lit guard = smt::pos(backend_.new_bool("g_cost"));
  backend_.add_guarded_linear_le(guard, cost_terms_, budget.raw());
  ++stats_.linear_constraints;
  return guard;
}

std::optional<smt::Lit> Encoding::add_threshold(ThresholdKind kind,
                                                util::Fixed value,
                                                ThresholdMode mode) {
  if (mode == ThresholdMode::kAssumption) {
    switch (kind) {
      case ThresholdKind::kIsolation:
        return isolation_guard(value);
      case ThresholdKind::kUsability:
        return usability_guard(value);
      case ThresholdKind::kCost:
        return cost_guard(value);
    }
  }
  // kHard: identical linear constraints, asserted unguarded (permanent).
  switch (kind) {
    case ThresholdKind::kIsolation:
      backend_.add_linear_ge(iso_terms_, value.raw() * iso_pairs_ - iso_const_);
      break;
    case ThresholdKind::kUsability:
      backend_.add_linear_le(
          usab_penalty_terms_,
          usab_total_rank_raw_ * (model::kSliderMax.raw() - value.raw()) /
              model::kSliderMax.raw());
      break;
    case ThresholdKind::kCost:
      backend_.add_linear_le(cost_terms_, value.raw());
      break;
  }
  ++stats_.linear_constraints;
  return std::nullopt;
}

SecurityDesign Encoding::decode() const {
  SecurityDesign design(spec().flows.size(), spec().network.link_count(),
                        spec().network.node_count());
  for (std::size_t f = 0; f < spec().flows.size(); ++f) {
    std::optional<model::IsolationPattern> chosen;
    for (const model::IsolationPattern k : spec().isolation.enabled()) {
      if (backend_.model_value(
              y_[f][static_cast<std::size_t>(model::pattern_index(k))])) {
        CS_ENSURE(!chosen.has_value(), "model selects two patterns (IIC1)");
        chosen = k;
      }
    }
    design.set_pattern(static_cast<model::FlowId>(f), chosen);
  }
  for (std::size_t e = 0; e < l_.size(); ++e) {
    for (const model::DeviceType d : model::kAllDevices) {
      const auto di = static_cast<std::size_t>(model::device_index(d));
      if (l_[e][di] == smt::kNoVar) continue;
      design.set_placed(static_cast<topology::LinkId>(e), d,
                        backend_.model_value(l_[e][di]));
    }
  }
  if (spec().host_patterns.any()) {
    for (const topology::NodeId j : spec().network.hosts()) {
      std::optional<model::HostPattern> chosen;
      for (const model::HostPattern t : spec().host_patterns.enabled()) {
        if (backend_.model_value(
                hp_[static_cast<std::size_t>(j)]
                   [static_cast<std::size_t>(
                       model::host_pattern_index(t))])) {
          CS_ENSURE(!chosen.has_value(),
                    "model deploys two host patterns on one host");
          chosen = t;
        }
      }
      design.set_host_pattern(j, chosen);
    }
  }
  for (const auto& [endpoint, arr] : ap_) {
    std::optional<model::AppPattern> chosen;
    for (const model::AppPattern t : spec().app_patterns.enabled()) {
      const auto ti = static_cast<std::size_t>(model::app_pattern_index(t));
      if (arr[ti] != smt::kNoVar && backend_.model_value(arr[ti])) {
        CS_ENSURE(!chosen.has_value(),
                  "model deploys two app patterns on one endpoint");
        chosen = t;
      }
    }
    design.set_app_pattern(endpoint.first, endpoint.second, chosen);
  }
  return design;
}

smt::BoolVar Encoding::y_var(model::FlowId f,
                             model::IsolationPattern k) const {
  CS_ENSURE(f >= 0 && static_cast<std::size_t>(f) < y_.size(),
            "y_var: bad flow");
  return y_[static_cast<std::size_t>(f)]
           [static_cast<std::size_t>(model::pattern_index(k))];
}

smt::BoolVar Encoding::l_var(topology::LinkId link,
                             model::DeviceType d) const {
  CS_ENSURE(link >= 0 && static_cast<std::size_t>(link) < l_.size(),
            "l_var: bad link");
  return l_[static_cast<std::size_t>(link)]
           [static_cast<std::size_t>(model::device_index(d))];
}

}  // namespace cs::synth
