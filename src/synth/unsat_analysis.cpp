#include "synth/unsat_analysis.h"

#include <algorithm>
#include <sstream>

namespace cs::synth {

std::string UnsatReport::to_string() const {
  std::ostringstream out;
  if (!was_unsat) {
    out << "constraints are satisfiable; no relaxation needed\n";
    return out.str();
  }
  out << "UNSAT. Conflicting threshold constraints:";
  for (const ThresholdKind k : core) out << " " << threshold_name(k);
  out << "\n";
  for (const Relaxation& r : relaxations) {
    out << "  relax {";
    for (std::size_t i = 0; i < r.dropped.size(); ++i)
      out << (i ? ", " : " ") << threshold_name(r.dropped[i]);
    out << " } -> achievable: isolation=" << r.achievable.isolation
        << " usability=" << r.achievable.usability
        << " cost=" << r.achievable.cost << "\n";
  }
  if (relaxations.empty())
    out << "  no relaxation of the threshold constraints suffices (hard "
           "constraints conflict)\n";
  return out.str();
}

UnsatReport analyze_unsat(Synthesizer& synth,
                          const model::ProblemSpec& spec) {
  UnsatReport report;
  const SynthesisResult base = synth.synthesize();
  if (base.status == smt::CheckResult::kSat) return report;

  report.was_unsat = true;
  report.core = base.conflicting;

  // Enumerate non-empty subsets of the core, smallest first (Algorithm 1
  // takes 1, 2, ..., |U| assumptions at a time).
  std::vector<std::vector<ThresholdKind>> subsets;
  const std::size_t n = report.core.size();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<ThresholdKind> subset;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) subset.push_back(report.core[i]);
    subsets.push_back(std::move(subset));
  }
  std::stable_sort(subsets.begin(), subsets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });

  for (const std::vector<ThresholdKind>& drop : subsets) {
    const auto dropped = [&](ThresholdKind k) {
      return std::find(drop.begin(), drop.end(), k) != drop.end();
    };
    std::optional<util::Fixed> iso = spec.sliders.isolation;
    std::optional<util::Fixed> usab = spec.sliders.usability;
    std::optional<util::Fixed> cost = spec.sliders.budget;
    if (dropped(ThresholdKind::kIsolation)) iso.reset();
    if (dropped(ThresholdKind::kUsability)) usab.reset();
    if (dropped(ThresholdKind::kCost)) cost.reset();

    const SynthesisResult r = synth.synthesize_partial(iso, usab, cost);
    if (r.status == smt::CheckResult::kSat) {
      report.relaxations.push_back(
          Relaxation{drop, compute_metrics(spec, *r.design)});
    }
  }
  return report;
}

}  // namespace cs::synth
