#include "synth/metrics.h"

#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace cs::synth {

namespace {

using topology::NodeId;

std::uint64_t key_of(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

DesignMetrics compute_metrics(const model::ProblemSpec& spec,
                              const SecurityDesign& design) {
  CS_REQUIRE(design.flow_count() == spec.flows.size(),
             "design/spec flow count mismatch");
  CS_REQUIRE(design.link_count() == spec.network.link_count(),
             "design/spec link count mismatch");

  DesignMetrics out;

  // Per-flow raw score with the §VII precedence chain: the network
  // pattern's L_k, else a host-level pattern at the destination, else an
  // application-level pattern at the (destination, service) endpoint,
  // else 0.
  const auto flow_score_raw = [&](model::FlowId id) -> std::int64_t {
    if (const auto k = design.pattern(id); k.has_value())
      return spec.isolation.score(*k).raw();
    const model::Flow& flow = spec.flows.flow(id);
    if (const auto t = design.host_pattern(flow.dst);
        t.has_value() && spec.host_patterns.is_enabled(*t))
      return spec.host_patterns.score(*t).raw();
    if (const auto t = design.app_pattern(flow.dst, flow.service);
        t.has_value() && spec.app_patterns.applicable(*t, flow.service))
      return spec.app_patterns.score(*t).raw();
    return 0;
  };

  // --- per-direction isolation Ī_{i,j} (raw 0..10000) --------------------
  // Same rounding as the encoder: each flow contributes
  // round_div(score.raw, |G_ij|); a direction with no flows scores 10.
  std::unordered_map<std::uint64_t, std::int64_t> dir_raw;
  std::unordered_set<std::uint64_t> pairs;  // unordered pair keys (a<b)
  for (const model::Flow& f : spec.flows.all()) {
    const auto group = static_cast<std::int64_t>(
        spec.flows.directed(f.src, f.dst).size());
    const auto id = *spec.flows.find(f);
    dir_raw[key_of(f.src, f.dst)] +=
        util::round_div(flow_score_raw(id), group);
    pairs.insert(f.src < f.dst ? key_of(f.src, f.dst)
                               : key_of(f.dst, f.src));
  }

  const auto dir_isolation = [&](NodeId i, NodeId j) -> std::int64_t {
    if (spec.flows.directed(i, j).empty()) return model::kSliderMax.raw();
    return dir_raw[key_of(i, j)];
  };

  // --- network isolation I (eq. 4) ---------------------------------------
  // Sum over ordered flow-bearing pairs; α cancels (see encoder.cpp).
  std::int64_t iso_total = 0;
  const auto q = static_cast<std::int64_t>(2 * pairs.size());
  for (const std::uint64_t key : pairs) {
    const auto a = static_cast<NodeId>(key >> 32);
    const auto b = static_cast<NodeId>(key & 0xffffffffu);
    iso_total += dir_isolation(a, b) + dir_isolation(b, a);
  }
  out.isolation =
      q == 0 ? model::kSliderMax
             : util::Fixed::from_raw(util::round_div(iso_total, q));

  // --- per-host isolation I_j (eqs. 2-3), α-weighted ----------------------
  // The α weighting is applied per flow with the same rounding the RMC
  // encoder uses (synth/encoder.cpp), so host requirements decided by the
  // solver always verify here.
  const std::int64_t alpha_raw = spec.alpha.raw();
  const std::int64_t one_raw = util::Fixed::from_int(1).raw();
  const auto weighted_dir = [&](NodeId src, NodeId dst,
                                std::int64_t weight) -> std::int64_t {
    const auto& group = spec.flows.directed(src, dst);
    if (group.empty())
      return util::round_div(weight * model::kSliderMax.raw(), one_raw);
    std::int64_t sum = 0;
    for (const model::FlowId f : group) {
      const std::int64_t contrib = util::round_div(
          flow_score_raw(f), static_cast<std::int64_t>(group.size()));
      sum += util::round_div(weight * contrib, one_raw);
    }
    return sum;
  };
  out.host_isolation.reserve(spec.network.hosts().size());
  for (const NodeId j : spec.network.hosts()) {
    std::int64_t total = 0;
    std::int64_t counted = 0;
    for (const NodeId i : spec.network.hosts()) {
      if (i == j) continue;
      if (spec.flows.directed(i, j).empty() &&
          spec.flows.directed(j, i).empty())
        continue;
      // I_{i,j} = α·Ī_{i,j} + (1−α)·Ī_{j,i} with j the protected host:
      // incoming traffic is i→j.
      total += weighted_dir(i, j, alpha_raw) +
               weighted_dir(j, i, one_raw - alpha_raw);
      ++counted;
    }
    out.host_isolation.push_back(
        counted == 0 ? model::kSliderMax
                     : util::Fixed::from_raw(util::round_div(total, counted)));
  }

  // --- network usability U (eqs. 5-6) -------------------------------------
  // Same penalty arithmetic as the encoder.
  const std::int64_t total_rank = spec.ranks.total().raw();
  std::int64_t penalties = 0;
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const auto id = static_cast<model::FlowId>(f);
    const auto k = design.pattern(id);
    if (!k.has_value()) continue;
    const model::Flow& flow = spec.flows.flow(id);
    const util::Fixed rank = spec.ranks.rank(id);
    const util::Fixed kept = rank * spec.isolation.usability(*k, flow.service);
    penalties += rank.raw() - kept.raw();
  }
  out.usability =
      total_rank == 0
          ? model::kSliderMax
          : util::Fixed::from_raw(util::round_div(
                (total_rank - penalties) * model::kSliderMax.raw(),
                total_rank));

  // --- deployment cost C (eq. 8, plus per-host pattern costs) -------------
  util::Fixed cost;
  for (std::size_t e = 0; e < design.link_count(); ++e)
    for (const model::DeviceType d : model::kAllDevices)
      if (design.placed(static_cast<topology::LinkId>(e), d))
        cost += spec.device_costs.cost(d);
  for (const NodeId j : spec.network.hosts()) {
    if (const auto t = design.host_pattern(j);
        t.has_value() && spec.host_patterns.is_enabled(*t))
      cost += spec.host_patterns.cost(*t);
  }
  for (const auto& [host, service, t] : design.app_patterns()) {
    (void)host;
    if (spec.app_patterns.applicable(t, service))
      cost += spec.app_patterns.cost(t);
  }
  out.cost = cost;

  return out;
}

}  // namespace cs::synth
