// SMT encoding of the security design synthesis problem (paper §III–§IV).
//
// `Encoding` lowers a validated ProblemSpec onto a smt::Backend:
//
//   Decision variables
//     y[f][k]  flow f uses isolation pattern k            (paper y^k_{i,j}(g))
//     x[p][d]  device type d is required between pair p   (paper x^d_{i,j})
//     l[e][d]  device type d is deployed on link e        (paper l^d)
//
//   Structural constraints (hard clauses)
//     IIC1     at most one pattern per flow                        (eq. 10)
//     CR/IIC2  connectivity-required flows are never denied     (eqs. 5,10)
//     eq. 1    y[f][k] ⇒ x[pair(f)][d] for each device of pattern k
//     eq. 7    x[p][d] ⇒ every flow route of p carries d on some link
//     IPSec    both tunnel endpoints within T hops of the end hosts on
//              every route; pairs with any route shorter than 2T+1 links
//              cannot use trusted communication                    (§III-C)
//     UIC      user-defined policy constraints                    (eq. 11)
//
//   Threshold constraints (eq. 9) are *guarded*: each call mints a fresh
//   guard literal and adds guard ⇒ (metric within threshold), so the
//   synthesizer can probe different slider values incrementally and ask
//   for unsat cores over the guards (paper Algorithm 1).
//
// All metric arithmetic is integer (util::Fixed raw units); the identical
// rounding is used by analysis::compute_metrics, so the independent checker
// and this encoding agree exactly.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/spec.h"
#include "smt/ir.h"
#include "synth/design.h"
#include "topology/routes.h"

namespace cs::synth {

/// The three slider thresholds of eq. 9.
enum class ThresholdKind { kIsolation, kUsability, kCost };

/// Short lowercase name ("isolation", "usability", "cost").
std::string_view threshold_name(ThresholdKind kind);

/// How threshold constraints enter the encoding.
///
///   * kAssumption — each distinct threshold value mints a selector
///     literal `sel` and asserts `sel ⇒ (metric within threshold)`; the
///     check assumes the selectors it wants. Thresholds become
///     retractable, so one solver instance re-solves the whole slider
///     grid (warm sweeps) and UNSAT cores over the selectors name the
///     conflicting thresholds (Algorithm 1).
///   * kHard — the constraint is asserted unguarded and is permanent:
///     no selector variable, no retraction, no threshold unsat core.
///     Only for single-shot solves where the three values never change.
enum class ThresholdMode { kHard, kAssumption };

struct EncodingStats {
  std::size_t flow_vars = 0;        // y
  std::size_t pair_device_vars = 0; // x
  std::size_t placement_vars = 0;   // l
  std::size_t host_pattern_vars = 0;  // hp + z (§VII extension)
  std::size_t app_pattern_vars = 0;   // ap + w (§VII extension)
  std::size_t clauses = 0;
  std::size_t linear_constraints = 0;
  /// Ordered host pairs carrying flows in either direction (|Q|).
  std::size_t directed_pairs = 0;
};

class Encoding {
 public:
  /// Builds all structural constraints into `backend`. The spec must be
  /// validated; `routes` must wrap the same network.
  ///
  /// With `retractable_sections` the UIC and RMC sections are emitted
  /// under per-section guard literals (clauses become guard ⇒ clause;
  /// linear constraints use the backend's guarded form), and every
  /// check must assume `section_assumptions()`. The sections can then
  /// be retired and re-emitted against an updated spec without touching
  /// the structural core — the incremental path of
  /// `Synthesizer::apply_delta` (docs/DELTAS.md). Off by default: an
  /// unguarded section propagates units at level zero, which guarded
  /// clauses cannot.
  Encoding(const model::ProblemSpec& spec, topology::RouteTable& routes,
           smt::Backend& backend, bool retractable_sections = false);

  Encoding(const Encoding&) = delete;
  Encoding& operator=(const Encoding&) = delete;

  /// Adds guard ⇒ (network isolation ≥ threshold); returns the guard.
  smt::Lit isolation_guard(util::Fixed threshold);

  /// Adds guard ⇒ (network usability ≥ threshold); returns the guard.
  smt::Lit usability_guard(util::Fixed threshold);

  /// Adds guard ⇒ (deployment cost ≤ budget); returns the guard.
  smt::Lit cost_guard(util::Fixed budget);

  /// Asserts the threshold constraint for `kind` at `value` per `mode`:
  /// kAssumption mints and returns a fresh selector literal (the
  /// ThresholdMode::kAssumption path above), kHard asserts the constraint
  /// permanently and returns nullopt. The caller owns selector caching —
  /// every call emits a new constraint.
  std::optional<smt::Lit> add_threshold(ThresholdKind kind, util::Fixed value,
                                        ThresholdMode mode);

  /// Reads the backend model into a SecurityDesign (after kSat).
  SecurityDesign decode() const;

  /// Re-seats the spec reference onto `spec`, which must have the same
  /// encoding shape as the current one (same flow/node/link/service
  /// universe — e.g. the post-delta spec of a retune or UIC-only delta;
  /// checked by counts). Threshold guards minted afterwards and
  /// `reemit_policy_sections` read the new spec.
  void rebind_spec(const model::ProblemSpec& spec);

  /// Assumption literals that enable the currently-active guarded
  /// sections; empty unless constructed with retractable sections.
  /// Append to every check's assumptions.
  std::vector<smt::Lit> section_assumptions() const;

  /// Retires the current UIC + RMC sections (asserts the negated
  /// guards) and re-emits both from the current spec under fresh
  /// guards. Requires retractable sections; flows/network must be
  /// unchanged since construction (rebind_spec enforces that).
  void reemit_policy_sections();

  bool retractable_sections() const { return retractable_; }

  const EncodingStats& stats() const { return stats_; }

  /// Decision-variable accessors (kNoVar when the pattern/device is not
  /// part of the encoding). Exposed for white-box tests.
  smt::BoolVar y_var(model::FlowId f, model::IsolationPattern k) const;
  smt::BoolVar l_var(topology::LinkId link, model::DeviceType d) const;

 private:
  using DeviceArray = std::array<smt::BoolVar, model::kDeviceCount>;

  static std::uint64_t pair_key(topology::NodeId a, topology::NodeId b);

  void create_flow_vars();
  void create_pair_and_link_vars();
  void create_host_pattern_vars();      // hp/z vars + linking clauses
  void create_app_pattern_vars();       // ap/w vars + linking clauses
  void create_score_ladders();          // order-encoded per-flow scores
  void add_pattern_constraints();       // IIC1, eq. 1, CR/IIC2
  void add_placement_constraints();     // eq. 7 + IPSec rules
  void add_user_constraints();          // UIC
  void add_host_requirements();         // RMC: per-host minimum isolation
  void build_metric_terms();            // isolation & usability coefficients

  void counted_clause(const std::vector<smt::Lit>& lits);
  void counted_unit(smt::Lit l);
  /// Like counted_clause/add_linear_ge, but guarded by the active
  /// section guard when sections are retractable.
  void section_clause(std::vector<smt::Lit> lits);
  void section_linear_ge(const std::vector<smt::Term>& terms,
                         std::int64_t bound);

  const model::ProblemSpec& spec() const { return *spec_; }

  const model::ProblemSpec* spec_;
  topology::RouteTable& routes_;
  smt::Backend& backend_;

  /// Retractable-section state: the guard of the currently-active UIC +
  /// RMC emission round (kNoVar when sections are hard).
  bool retractable_ = false;
  smt::Lit section_guard_{};
  std::uint64_t section_round_ = 0;

  std::vector<std::array<smt::BoolVar, model::kPatternCount>> y_;
  std::unordered_map<std::uint64_t, DeviceArray> x_;
  std::vector<DeviceArray> l_;
  std::array<bool, model::kDeviceCount> device_used_{};
  /// Host-level extension: hp_[node][t] deploys pattern t at a host;
  /// z_[flow][t] = hp at the flow's destination ∧ no network pattern.
  std::vector<std::array<smt::BoolVar, model::kHostPatternCount>> hp_;
  std::vector<std::array<smt::BoolVar, model::kHostPatternCount>> z_;
  /// Application-level extension: ap_[(dst, service)][t] deploys pattern t
  /// at an endpoint; w_[flow][t] = ap at the flow's endpoint ∧ no network
  /// pattern ∧ no host-level coverage (precedence network > host > app).
  std::map<std::pair<topology::NodeId, model::ServiceId>,
           std::array<smt::BoolVar, model::kAppPatternCount>>
      ap_;
  std::vector<std::array<smt::BoolVar, model::kAppPatternCount>> w_;

  /// Order encoding of each flow's isolation score: for the ascending
  /// distinct score levels ℓ1 < ℓ2 < ... of the flow's possible
  /// protections, u_j ⇔ (selected score ≥ ℓj). Summing the level
  /// *increments* over the u variables yields the flow's exact score, so
  /// the PB counter bound equals the true per-flow maximum — without this,
  /// the counter admits the sum over all mutually-exclusive patterns and
  /// near-maximum isolation thresholds need exponential refutations.
  struct LadderStep {
    std::int64_t level_raw = 0;  // ℓj in Fixed raw units
    smt::BoolVar var = smt::kNoVar;
  };
  std::vector<std::vector<LadderStep>> ladder_;  // indexed by flow

  std::vector<smt::Term> iso_terms_;
  std::int64_t iso_const_ = 0;   // contribution of flow-less directions
  std::int64_t iso_pairs_ = 0;   // |Q|
  std::vector<smt::Term> usab_penalty_terms_;
  std::int64_t usab_total_rank_raw_ = 0;  // Σ a_f in raw units
  std::vector<smt::Term> cost_terms_;

  EncodingStats stats_;
};

}  // namespace cs::synth
