#include "synth/baseline.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/timer.h"

namespace cs::synth {

namespace {

using topology::LinkId;
using topology::NodeId;
using topology::Route;

class GreedyState {
 public:
  GreedyState(const model::ProblemSpec& spec, topology::RouteTable& routes)
      : spec_(spec),
        routes_(routes),
        design_(spec.flows.size(), spec.network.link_count()) {
    // Usability-penalty budget, same floor arithmetic as the encoder.
    const std::int64_t total_rank = spec.ranks.total().raw();
    pen_budget_ = total_rank *
                  (model::kSliderMax.raw() - spec.sliders.usability.raw()) /
                  model::kSliderMax.raw();
    cost_budget_ = spec.sliders.budget.raw();
  }

  /// Attempts to protect flow `f` with pattern `k`; commits and returns
  /// true when all local checks pass.
  bool try_assign(model::FlowId f, model::IsolationPattern k) {
    if (design_.pattern(f).has_value()) return false;
    if (!legal(f, k)) return false;

    const model::Flow& flow = spec_.flows.flow(f);
    const util::Fixed rank = spec_.ranks.rank(f);
    const util::Fixed kept =
        rank * spec_.isolation.usability(k, flow.service);
    const std::int64_t penalty = rank.raw() - kept.raw();
    if (pen_used_ + penalty > pen_budget_) return false;

    // Work out the incremental placements the pattern needs.
    std::vector<std::pair<LinkId, model::DeviceType>> additions;
    std::int64_t added_cost = 0;
    for (const model::DeviceType d : model::devices_for(k)) {
      if (!plan_placement(flow.src, flow.dst, d, additions, added_cost))
        return false;  // e.g. IPSec on a too-short route
    }
    if (cost_used_ + added_cost > cost_budget_) return false;

    for (const auto& [link, d] : additions) design_.set_placed(link, d, true);
    cost_used_ += added_cost;
    pen_used_ += penalty;
    design_.set_pattern(f, k);
    return true;
  }

  /// Post-pass for DenyOneOf constraints: if neither side is denied, deny
  /// the guard flow (or the open flow) when legal.
  void settle_deny_one_of() {
    if (!spec_.isolation.is_enabled(model::IsolationPattern::kAccessDeny))
      return;
    for (const model::UserConstraint& uc : spec_.user_constraints) {
      const auto* dn = std::get_if<model::DenyOneOf>(&uc);
      if (dn == nullptr) continue;
      const model::FlowId open = *spec_.flows.find(dn->open_flow);
      const model::FlowId guard = *spec_.flows.find(dn->guard_flow);
      const auto denied = [&](model::FlowId f) {
        return design_.pattern(f) == model::IsolationPattern::kAccessDeny;
      };
      if (denied(open) || denied(guard)) continue;
      if (design_.pattern(guard).has_value() ||
          !try_assign(guard, model::IsolationPattern::kAccessDeny)) {
        // Fall back to denying the open flow; may fail, leaving the
        // constraint violated (reported via meets_thresholds=false).
        if (!design_.pattern(open).has_value())
          try_assign(open, model::IsolationPattern::kAccessDeny);
      }
    }
  }

  SecurityDesign take_design() { return std::move(design_); }

 private:
  bool legal(model::FlowId f, model::IsolationPattern k) const {
    const model::Flow& flow = spec_.flows.flow(f);
    if (model::denies_flow(k) && spec_.connectivity.required(f))
      return false;
    for (const model::UserConstraint& uc : spec_.user_constraints) {
      if (const auto* fs =
              std::get_if<model::ForbidPatternForService>(&uc)) {
        if (fs->service == flow.service && fs->pattern == k) return false;
      } else if (const auto* ff =
                     std::get_if<model::ForbidPatternForFlow>(&uc)) {
        if (ff->pattern == k && spec_.flows.find(ff->flow) ==
                                    std::optional<model::FlowId>(f))
          return false;
      }
    }
    return true;
  }

  /// Plans the links still needed so that device d covers every route of
  /// the pair. Returns false when impossible (IPSec margin violations).
  bool plan_placement(
      NodeId src, NodeId dst, model::DeviceType d,
      std::vector<std::pair<LinkId, model::DeviceType>>& additions,
      std::int64_t& added_cost) {
    const std::vector<Route>& route_set = routes_.routes(src, dst);
    const auto has_device = [&](LinkId e) {
      if (design_.placed(e, d)) return true;
      return std::any_of(additions.begin(), additions.end(),
                         [&](const auto& a) {
                           return a.first == e && a.second == d;
                         });
    };
    const auto add = [&](LinkId e) {
      additions.emplace_back(e, d);
      added_cost += spec_.device_costs.cost(d).raw();
    };

    if (d == model::DeviceType::kIpsec) {
      const auto margin =
          static_cast<std::size_t>(spec_.isolation.tunnel_margin());
      for (const Route& r : route_set) {
        if (r.length() < 2 * margin + 1) return false;
        const auto covered = [&](std::size_t from, std::size_t count) {
          for (std::size_t t = from; t < from + count; ++t)
            if (has_device(r.links[t])) return true;
          return false;
        };
        if (!covered(0, margin)) add(r.links[0]);
        if (!covered(r.length() - margin, margin))
          add(r.links[r.length() - 1]);
      }
      return true;
    }

    // Greedy set cover: repeatedly place on the link shared by the most
    // still-uncovered routes.
    std::vector<const Route*> uncovered;
    for (const Route& r : route_set) {
      const bool ok = std::any_of(r.links.begin(), r.links.end(),
                                  [&](LinkId e) { return has_device(e); });
      if (!ok) uncovered.push_back(&r);
    }
    while (!uncovered.empty()) {
      std::unordered_map<LinkId, int> tally;
      for (const Route* r : uncovered)
        for (const LinkId e : r->links) ++tally[e];
      LinkId best = uncovered.front()->links.front();
      int best_count = -1;
      for (const auto& [e, count] : tally) {
        if (count > best_count || (count == best_count && e < best)) {
          best = e;
          best_count = count;
        }
      }
      add(best);
      std::erase_if(uncovered, [&](const Route* r) {
        return std::find(r->links.begin(), r->links.end(), best) !=
               r->links.end();
      });
    }
    return true;
  }

  const model::ProblemSpec& spec_;
  topology::RouteTable& routes_;
  SecurityDesign design_;
  std::int64_t pen_budget_ = 0;
  std::int64_t pen_used_ = 0;
  std::int64_t cost_budget_ = 0;
  std::int64_t cost_used_ = 0;
};

}  // namespace

BaselineResult greedy_baseline(const model::ProblemSpec& spec) {
  util::Stopwatch watch;
  topology::RouteTable routes(spec.network, spec.route_options);
  GreedyState state(spec, routes);

  // Honor pinned patterns first.
  for (const model::UserConstraint& uc : spec.user_constraints) {
    if (const auto* rf = std::get_if<model::RequirePatternForFlow>(&uc))
      state.try_assign(*spec.flows.find(rf->flow), rf->pattern);
  }

  // Patterns from the strongest isolation score downward.
  std::vector<model::IsolationPattern> order = spec.isolation.enabled();
  std::sort(order.begin(), order.end(),
            [&](model::IsolationPattern a, model::IsolationPattern b) {
              return spec.isolation.score(a) > spec.isolation.score(b);
            });
  for (const model::IsolationPattern k : order) {
    for (std::size_t f = 0; f < spec.flows.size(); ++f)
      state.try_assign(static_cast<model::FlowId>(f), k);
  }
  state.settle_deny_one_of();

  BaselineResult result;
  result.design = state.take_design();
  result.metrics = compute_metrics(spec, result.design);
  result.meets_thresholds =
      result.metrics.isolation >= spec.sliders.isolation &&
      result.metrics.usability >= spec.sliders.usability &&
      result.metrics.cost <= spec.sliders.budget;
  // The greedy pass has no per-host targeting, so RMCs (which the SMT
  // encoding satisfies by construction) may fail here — part of the
  // bottom-up gap the ablation measures.
  for (const model::HostIsolationRequirement& req : spec.host_requirements) {
    const auto& hosts = spec.network.hosts();
    const auto pos = static_cast<std::size_t>(
        std::find(hosts.begin(), hosts.end(), req.host) - hosts.begin());
    if (pos < hosts.size() &&
        result.metrics.host_isolation[pos] < req.min_isolation)
      result.meets_thresholds = false;
  }
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace cs::synth
