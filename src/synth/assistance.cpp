#include "synth/assistance.h"

#include "synth/design.h"
#include "synth/metrics.h"
#include "util/table.h"

namespace cs::synth {

namespace {

/// Assigns `pattern` to the first ⌈fraction·flows⌉ flows that are neither
/// connectivity requirements (when the pattern denies) nor already set.
void assign_fraction(const model::ProblemSpec& spec, SecurityDesign& design,
                     model::IsolationPattern pattern, double fraction) {
  const auto target = static_cast<std::size_t>(
      fraction * static_cast<double>(spec.flows.size()) + 0.5);
  std::size_t assigned = 0;
  for (std::size_t f = 0; f < spec.flows.size() && assigned < target; ++f) {
    const auto id = static_cast<model::FlowId>(f);
    if (design.pattern(id).has_value()) continue;
    if (model::denies_flow(pattern) && spec.connectivity.required(id))
      continue;
    design.set_pattern(id, pattern);
    ++assigned;
  }
}

}  // namespace

std::vector<SliderChoice> slider_assistance(const model::ProblemSpec& spec) {
  std::vector<SliderChoice> rows;
  const auto measure = [&](const SecurityDesign& d) {
    return compute_metrics(spec, d);
  };
  const std::size_t flows = spec.flows.size();
  const std::size_t links = spec.network.link_count();
  const bool deny_enabled =
      spec.isolation.is_enabled(model::IsolationPattern::kAccessDeny);
  const bool trusted_enabled =
      spec.isolation.is_enabled(model::IsolationPattern::kTrustedComm);

  {
    // Every flow denied — each host fully isolated (ignores CRs; this row
    // shows the top of the scale, as in the paper).
    SecurityDesign d(flows, links);
    if (deny_enabled) {
      for (std::size_t f = 0; f < flows; ++f)
        d.set_pattern(static_cast<model::FlowId>(f),
                      model::IsolationPattern::kAccessDeny);
    }
    const DesignMetrics m = measure(d);
    rows.push_back(SliderChoice{
        "No flow is allowed to communicate. Each host is isolated from "
        "other hosts.",
        m.isolation, m.usability});
  }
  {
    // No isolation at all.
    const SecurityDesign d(flows, links);
    const DesignMetrics m = measure(d);
    rows.push_back(SliderChoice{
        "No isolation measure is taken on any flow.", m.isolation,
        m.usability});
  }
  if (deny_enabled) {
    // Deny everything except the connectivity requirements.
    SecurityDesign d(flows, links);
    for (std::size_t f = 0; f < flows; ++f) {
      const auto id = static_cast<model::FlowId>(f);
      if (!spec.connectivity.required(id))
        d.set_pattern(id, model::IsolationPattern::kAccessDeny);
    }
    const DesignMetrics m = measure(d);
    rows.push_back(SliderChoice{
        "Each flow is protected by access deny except connectivity "
        "requirements.",
        m.isolation, m.usability});
  }
  if (deny_enabled) {
    SecurityDesign d(flows, links);
    assign_fraction(spec, d, model::IsolationPattern::kAccessDeny, 0.5);
    const DesignMetrics m = measure(d);
    rows.push_back(SliderChoice{
        "1/2 of the flows (50%) are protected by access deny.", m.isolation,
        m.usability});
  }
  if (deny_enabled && trusted_enabled) {
    SecurityDesign d(flows, links);
    assign_fraction(spec, d, model::IsolationPattern::kAccessDeny, 0.25);
    assign_fraction(spec, d, model::IsolationPattern::kTrustedComm, 0.25);
    const DesignMetrics m = measure(d);
    rows.push_back(SliderChoice{
        "1/4 of the flows (25%) are protected by access deny, 1/4 of the "
        "flows (25%) are protected by trusted communication.",
        m.isolation, m.usability});
  }
  return rows;
}

std::string render_assistance(const std::vector<SliderChoice>& rows) {
  util::TextTable table({"Isolation", "Usability", "Configuration"});
  for (const SliderChoice& row : rows) {
    table.add_row({row.isolation.to_string(), row.usability.to_string(),
                   row.description});
  }
  return table.render();
}

}  // namespace cs::synth
