#include "synth/optimizer.h"

#include <algorithm>

#include "util/error.h"

namespace cs::synth {

BoundSearchResult maximize_isolation(Synthesizer& synth,
                                     const model::ProblemSpec& spec,
                                     util::Fixed usability, util::Fixed budget,
                                     const OptimizeOptions& options) {
  CS_REQUIRE(options.resolution > util::Fixed{}, "resolution must be > 0");
  const std::int64_t res = options.resolution.raw();
  const std::int64_t top = model::kSliderMax.raw() / res;  // grid steps

  BoundSearchResult out;
  out.objective = ThresholdKind::kIsolation;

  const auto probe = [&](std::int64_t step) {
    ++out.probes;
    SynthesisResult r = synth.synthesize_partial(
        util::Fixed::from_raw(step * res), usability, budget);
    out.solve_seconds += r.solve_seconds;
    return r;
  };

  // Feasibility at the bottom of the scale.
  SynthesisResult base = probe(0);
  if (base.status != smt::CheckResult::kSat) {
    out.exact = base.status == smt::CheckResult::kUnsat;
    return out;
  }
  out.feasible = true;
  out.design = std::move(base.design);
  out.metrics = compute_metrics(spec, *out.design);

  // Invariant: SAT at `lo`, UNSAT at every step > `hi`.
  std::int64_t lo = std::min(out.metrics.isolation.raw() / res, top);
  std::int64_t hi = top;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    SynthesisResult r = probe(mid);
    if (r.status == smt::CheckResult::kUnknown) out.exact = false;
    if (r.status == smt::CheckResult::kSat) {
      out.design = std::move(r.design);
      out.metrics = compute_metrics(spec, *out.design);
      // The model's achieved isolation is a certificate for a (possibly
      // much) higher bound — jump instead of stepping.
      lo = std::max(mid, std::min(out.metrics.isolation.raw() / res, top));
    } else {
      hi = mid - 1;
    }
  }
  out.bound = util::Fixed::from_raw(lo * res);
  return out;
}

BoundSearchResult minimize_cost(Synthesizer& synth,
                                const model::ProblemSpec& spec,
                                util::Fixed isolation, util::Fixed usability,
                                const MinCostOptions& options) {
  CS_REQUIRE(options.resolution > util::Fixed{}, "resolution must be > 0");
  CS_REQUIRE(options.max_budget >= util::Fixed{}, "negative max budget");
  const std::int64_t res = options.resolution.raw();
  const std::int64_t top = options.max_budget.raw() / res;

  BoundSearchResult out;
  out.objective = ThresholdKind::kCost;
  const auto probe = [&](std::int64_t step) {
    ++out.probes;
    SynthesisResult r = synth.synthesize_partial(
        isolation, usability, util::Fixed::from_raw(step * res));
    out.solve_seconds += r.solve_seconds;
    return r;
  };

  SynthesisResult roof = probe(top);
  if (roof.status != smt::CheckResult::kSat) {
    out.exact = roof.status == smt::CheckResult::kUnsat;
    return out;
  }
  out.feasible = true;
  out.design = std::move(roof.design);
  out.metrics = compute_metrics(spec, *out.design);

  // Invariant: SAT at `hi`, UNSAT/unknown below `lo`.
  std::int64_t lo = 0;
  // Jump down to the witnessing design's actual cost (rounded up to grid).
  std::int64_t hi = (out.metrics.cost.raw() + res - 1) / res;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    SynthesisResult r = probe(mid);
    if (r.status == smt::CheckResult::kUnknown) out.exact = false;
    if (r.status == smt::CheckResult::kSat) {
      out.design = std::move(r.design);
      out.metrics = compute_metrics(spec, *out.design);
      hi = std::min(mid, (out.metrics.cost.raw() + res - 1) / res);
    } else {
      lo = mid + 1;
    }
  }
  out.bound = util::Fixed::from_raw(hi * res);
  return out;
}

}  // namespace cs::synth
