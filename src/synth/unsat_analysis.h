// Systematic analysis of UNSAT results (paper §IV-B, Algorithm 1).
//
// When the slider thresholds conflict, the backend's unsat core names the
// threshold assumptions involved. Algorithm 1 then enumerates subsets of
// the core (smallest first), re-solves with those assumptions dropped, and
// for each satisfiable combination reports the threshold values the found
// model actually achieves — the "satisfiable choices" ConfigSynth shows
// the administrator.
#pragma once

#include <string>
#include <vector>

#include "synth/metrics.h"
#include "synth/synthesizer.h"

namespace cs::synth {

struct Relaxation {
  /// Threshold assumptions dropped from the query.
  std::vector<ThresholdKind> dropped;
  /// Metrics achieved by the satisfying model found after the drop —
  /// suggested new values for the dropped sliders.
  DesignMetrics achievable;
};

struct UnsatReport {
  /// False when the original sliders were already satisfiable (the report
  /// then carries no core or relaxations).
  bool was_unsat = false;
  /// The threshold assumptions in the solver's unsat core.
  std::vector<ThresholdKind> core;
  std::vector<Relaxation> relaxations;

  std::string to_string() const;
};

/// Runs Algorithm 1 against the spec's slider values.
UnsatReport analyze_unsat(Synthesizer& synth, const model::ProblemSpec& spec);

}  // namespace cs::synth
