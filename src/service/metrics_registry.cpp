#include "service/metrics_registry.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/csv.h"
#include "util/table.h"

namespace cs::service {

namespace {

std::string fmt_ms(double ms) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << ms;
  return os.str();
}

}  // namespace

const std::vector<double>& Histogram::bucket_bounds() {
  static const std::vector<double> kBounds = {1,   2,    5,    10,   20,
                                              50,  100,  200,  500,  1000,
                                              2000, 5000, 10000};
  return kBounds;
}

Histogram::Histogram() : buckets_(bucket_bounds().size() + 1, 0) {}

void Histogram::observe(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& bounds = bucket_bounds();
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), ms) - bounds.begin());
  ++buckets_[i];
  ++count_;
  sum_ += ms;
  min_ = count_ == 1 ? ms : std::min(min_, ms);
  max_ = std::max(max_, ms);
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}
double Histogram::sum_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}
double Histogram::min_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}
double Histogram::max_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}
double Histogram::mean_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}
std::vector<std::int64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, c] : counters_)
    if (n == name) return c;
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return counters_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, h] : histograms_)
    if (n == name) return h;
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return histograms_.back().second;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [n, c] : counters_)
    if (n == name) return c.value();
  return 0;
}

std::string MetricsRegistry::render() const {
  std::vector<std::pair<std::string, std::int64_t>> counter_rows;
  std::vector<std::string> histo_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [n, c] : counters_) counter_rows.emplace_back(n, c.value());
    for (const auto& [n, h] : histograms_) histo_names.push_back(n);
  }
  std::sort(counter_rows.begin(), counter_rows.end());
  std::sort(histo_names.begin(), histo_names.end());

  std::string out = "=== Service metrics ===\n";
  util::TextTable counters({"counter", "value"});
  for (const auto& [n, v] : counter_rows)
    counters.add_row({n, std::to_string(v)});
  out += counters.render();

  util::TextTable histos(
      {"histogram", "count", "mean ms", "min ms", "max ms"});
  for (const std::string& n : histo_names) {
    // histogram() never creates here: the name came from the registry.
    const Histogram& h = const_cast<MetricsRegistry*>(this)->histogram(n);
    histos.add_row({n, std::to_string(h.count()), fmt_ms(h.mean_ms()),
                    fmt_ms(h.min_ms()), fmt_ms(h.max_ms())});
  }
  if (!histo_names.empty()) {
    out += "\n";
    out += histos.render();
  }
  return out;
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::vector<std::pair<std::string, std::int64_t>> counter_rows;
  std::vector<std::string> histo_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [n, c] : counters_) counter_rows.emplace_back(n, c.value());
    for (const auto& [n, h] : histograms_) histo_names.push_back(n);
  }
  std::sort(counter_rows.begin(), counter_rows.end());
  std::sort(histo_names.begin(), histo_names.end());

  util::CsvWriter csv(path, {"kind", "name", "field", "value"});
  for (const auto& [n, v] : counter_rows)
    csv.add_row({"counter", n, "value", std::to_string(v)});
  for (const std::string& n : histo_names) {
    const Histogram& h = const_cast<MetricsRegistry*>(this)->histogram(n);
    csv.add_row({"histogram", n, "count", std::to_string(h.count())});
    csv.add_row({"histogram", n, "sum_ms", fmt_ms(h.sum_ms())});
    csv.add_row({"histogram", n, "min_ms", fmt_ms(h.min_ms())});
    csv.add_row({"histogram", n, "max_ms", fmt_ms(h.max_ms())});
    const auto counts = h.buckets();
    const auto& bounds = Histogram::bucket_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::string le =
          i < bounds.size() ? fmt_ms(bounds[i]) : "inf";
      csv.add_row({"histogram", n, "le_" + le, std::to_string(counts[i])});
    }
  }
}

}  // namespace cs::service
