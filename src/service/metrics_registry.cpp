#include "service/metrics_registry.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/csv.h"
#include "util/table.h"

namespace cs::service {

namespace {

std::string fmt_ms(double ms) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << ms;
  return os.str();
}

}  // namespace

const std::vector<double>& Histogram::bucket_bounds() {
  static const std::vector<double> kBounds = {1,   2,    5,    10,   20,
                                              50,  100,  200,  500,  1000,
                                              2000, 5000, 10000};
  return kBounds;
}

Histogram::Histogram() : buckets_(bucket_bounds().size() + 1, 0) {}

void Histogram::observe(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& bounds = bucket_bounds();
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), ms) - bounds.begin());
  ++buckets_[i];
  ++count_;
  sum_ += ms;
  min_ = count_ == 1 ? ms : std::min(min_, ms);
  max_ = std::max(max_, ms);
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}
double Histogram::sum_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}
double Histogram::min_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}
double Histogram::max_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}
double Histogram::mean_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}
std::vector<std::int64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

double Histogram::percentile_ms(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  const auto& bounds = bucket_bounds();
  double cumulative = 0;
  double value = max_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      // Interpolate linearly inside [lo, hi); the overflow bucket's upper
      // edge is the observed maximum (the only bound we have for it).
      const double lo = i == 0 ? 0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max_;
      const double fraction = (target - cumulative) / in_bucket;
      value = lo + fraction * (hi - lo);
      break;
    }
    cumulative += in_bucket;
  }
  // The bucket edges overshoot what was actually seen; the true order
  // statistics always lie inside the observed range.
  return std::clamp(value, min_, max_);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, c] : counters_)
    if (n == name) return c;
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return counters_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, h] : histograms_)
    if (n == name) return h;
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return histograms_.back().second;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [n, c] : counters_)
    if (n == name) return c.value();
  return 0;
}

std::string MetricsRegistry::render() const {
  std::vector<std::pair<std::string, std::int64_t>> counter_rows;
  std::vector<std::string> histo_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [n, c] : counters_) counter_rows.emplace_back(n, c.value());
    for (const auto& [n, h] : histograms_) histo_names.push_back(n);
  }
  std::sort(counter_rows.begin(), counter_rows.end());
  std::sort(histo_names.begin(), histo_names.end());

  std::string out = "=== Service metrics ===\n";
  util::TextTable counters({"counter", "value"});
  for (const auto& [n, v] : counter_rows)
    counters.add_row({n, std::to_string(v)});
  out += counters.render();

  util::TextTable histos({"histogram", "count", "mean ms", "p50 ms",
                          "p90 ms", "p99 ms", "min ms", "max ms"});
  for (const std::string& n : histo_names) {
    // histogram() never creates here: the name came from the registry.
    const Histogram& h = const_cast<MetricsRegistry*>(this)->histogram(n);
    histos.add_row({n, std::to_string(h.count()), fmt_ms(h.mean_ms()),
                    fmt_ms(h.percentile_ms(0.50)),
                    fmt_ms(h.percentile_ms(0.90)),
                    fmt_ms(h.percentile_ms(0.99)), fmt_ms(h.min_ms()),
                    fmt_ms(h.max_ms())});
  }
  if (!histo_names.empty()) {
    out += "\n";
    out += histos.render();
  }
  return out;
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*; everything
/// else becomes '_'. The "configsynth_" prefix keeps the leading
/// character legal even for names starting with a digit.
std::string prom_name(const std::string& name) {
  std::string out = "configsynth_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Bucket bound as Prometheus renders it: shortest exact decimal ("1",
/// "2", "0.5"), no trailing zeros.
std::string prom_le(double bound) {
  std::ostringstream os;
  os << bound;
  return os.str();
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  std::vector<std::pair<std::string, std::int64_t>> counter_rows;
  std::vector<std::string> histo_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [n, c] : counters_) counter_rows.emplace_back(n, c.value());
    for (const auto& [n, h] : histograms_) histo_names.push_back(n);
  }
  std::sort(counter_rows.begin(), counter_rows.end());
  std::sort(histo_names.begin(), histo_names.end());

  std::string out;
  for (const auto& [n, v] : counter_rows) {
    const std::string name = prom_name(n);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const std::string& n : histo_names) {
    const Histogram& h = const_cast<MetricsRegistry*>(this)->histogram(n);
    const std::string name = prom_name(n);
    out += "# TYPE " + name + " histogram\n";
    const auto counts = h.buckets();
    const auto& bounds = Histogram::bucket_bounds();
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += name + "_bucket{le=\"" + prom_le(bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += name + "_sum " + fmt_ms(h.sum_ms()) + "\n";
    out += name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::vector<std::pair<std::string, std::int64_t>> counter_rows;
  std::vector<std::string> histo_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [n, c] : counters_) counter_rows.emplace_back(n, c.value());
    for (const auto& [n, h] : histograms_) histo_names.push_back(n);
  }
  std::sort(counter_rows.begin(), counter_rows.end());
  std::sort(histo_names.begin(), histo_names.end());

  util::CsvWriter csv(path, {"kind", "name", "field", "value"});
  for (const auto& [n, v] : counter_rows)
    csv.add_row({"counter", n, "value", std::to_string(v)});
  for (const std::string& n : histo_names) {
    const Histogram& h = const_cast<MetricsRegistry*>(this)->histogram(n);
    csv.add_row({"histogram", n, "count", std::to_string(h.count())});
    csv.add_row({"histogram", n, "sum_ms", fmt_ms(h.sum_ms())});
    csv.add_row({"histogram", n, "min_ms", fmt_ms(h.min_ms())});
    csv.add_row({"histogram", n, "max_ms", fmt_ms(h.max_ms())});
    csv.add_row({"histogram", n, "p50_ms", fmt_ms(h.percentile_ms(0.50))});
    csv.add_row({"histogram", n, "p90_ms", fmt_ms(h.percentile_ms(0.90))});
    csv.add_row({"histogram", n, "p99_ms", fmt_ms(h.percentile_ms(0.99))});
    const auto counts = h.buckets();
    const auto& bounds = Histogram::bucket_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::string le =
          i < bounds.size() ? fmt_ms(bounds[i]) : "inf";
      csv.add_row({"histogram", n, "le_" + le, std::to_string(counts[i])});
    }
  }
}

}  // namespace cs::service
