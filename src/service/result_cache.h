// Thread-safe LRU cache of synthesis outcomes, keyed by spec fingerprint.
//
// The service layer's memory: a bounded least-recently-used map from a
// request fingerprint (model/fingerprint.h — canonical spec digest mixed
// with the request's objective and solver options) to the full
// SweepPointResult that request produced. Positive entries carry the
// witnessing design and its metrics; *negative* entries — UNSAT verdicts
// — are cached too, together with the threshold unsat core
// (SweepPointResult::conflicting), so an operator re-submitting an
// infeasible slider triple gets the explanation back without a solver
// call. Entries are immutable once inserted: a hit returns a copy, so
// callers can never mutate the cached value.
//
// Each entry also records the spec's per-section sub-digests
// (model::SpecDigests) when the caller provides them. A full-key miss
// whose encoding *shape* (topology+flows+uics, excluding the
// threshold/budget query point) matches some cached entry is counted as
// a partial hit: the result must be recomputed, but a warm synthesizer
// for the same formula exists somewhere (the warm pool is keyed on the
// same shape digest), so the miss costs a resolve(), not a cold encode.
// The service exports this as `cache_partial_hits` — the signature of a
// thresholds-only delta stream.
//
// All operations take one internal mutex; the expensive part of a
// request (solving) never runs under it.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "model/fingerprint.h"
#include "synth/sweep.h"

namespace cs::service {

/// Monotonic cache counters, snapshotted by `ResultCache::stats()`.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  /// Hits whose cached verdict was kUnsat (negative-result cache).
  std::int64_t negative_hits = 0;
  /// Full-key misses whose encoding shape matched a cached entry
  /// (thresholds-only divergence — servable via a warm resolve).
  std::int64_t partial_hits = 0;
};

/// The bounded LRU map described in the header comment. All methods are
/// safe to call concurrently.
class ResultCache {
 public:
  /// `capacity` = maximum number of entries (≥ 1).
  explicit ResultCache(std::size_t capacity);

  /// Returns a copy of the cached outcome and marks the entry
  /// most-recently-used; nullopt on miss. When `digests` is given, a
  /// miss additionally probes the shape index and counts a partial hit
  /// on a match (see header comment); `partial` (optional) is set to
  /// whether this lookup was one, so callers can feed their own
  /// metrics without re-querying stats().
  std::optional<synth::SweepPointResult> lookup(
      const model::Fingerprint& key,
      const model::SpecDigests* digests = nullptr, bool* partial = nullptr);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// one when full. Skipped results are not worth remembering — the
  /// caller should not insert them. `digests` (optional) feeds the
  /// shape index used for partial-hit accounting.
  void insert(const model::Fingerprint& key,
              const synth::SweepPointResult& value,
              const model::SpecDigests* digests = nullptr);

  /// Sub-digests recorded with an entry (nullopt on miss or when the
  /// entry was inserted without them). Does not touch LRU order.
  std::optional<model::SpecDigests> digests(
      const model::Fingerprint& key) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;

 private:
  struct Entry {
    model::Fingerprint key;
    synth::SweepPointResult value;
    std::optional<model::SpecDigests> digests;
  };

  void shape_erase(const std::optional<model::SpecDigests>& digests);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<model::Fingerprint, std::list<Entry>::iterator,
                     model::FingerprintHash>
      index_;
  /// shape digest → number of live entries with that shape.
  std::unordered_map<model::Fingerprint, std::size_t,
                     model::FingerprintHash>
      shapes_;
  CacheStats stats_;
};

}  // namespace cs::service
