// Operational metrics for the synthesis service (counters + histograms).
//
// A `MetricsRegistry` is the service's single observability surface:
// named monotonic counters (requests, cache hits, per-backend probe
// counts, rejections) and latency histograms (enqueue→start wait, solve
// wall time) with fixed exponential millisecond buckets. Rendering uses
// the same util::table / util::csv substrate as the bench binaries, so a
// metrics dump reads like every other table in the repo; SynthService
// dumps it on shutdown and on demand.
//
// Thread-safety: counter increments are lock-free atomics; histogram
// observations take a per-histogram mutex (observations are request-rate
// events, far from any hot loop). Creating a metric takes the registry
// mutex once; the returned reference stays valid for the registry's
// lifetime (std::deque storage — no reallocation moves).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace cs::service {

/// Monotonic counter. Increments are relaxed atomics: counts are
/// monitoring data, not synchronization.
class Counter {
 public:
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency histogram over fixed exponential millisecond buckets
/// (1, 2, 5, 10, ... 10000, +inf) plus count/sum/min/max.
class Histogram {
 public:
  Histogram();

  /// Records one latency sample (milliseconds).
  void observe(double ms);

  std::int64_t count() const;
  double sum_ms() const;
  double min_ms() const;  // 0 when empty
  double max_ms() const;
  double mean_ms() const;
  /// Quantile estimate (q in [0,1]) interpolated linearly inside the
  /// exponential buckets and clamped to the observed [min, max], so a
  /// single-sample histogram reports that sample for every quantile.
  /// 0 when empty.
  double percentile_ms(double q) const;
  /// Upper bound of each finite bucket, shared by all histograms.
  static const std::vector<double>& bucket_bounds();
  /// Observation count per bucket (bucket_bounds().size() + 1 entries;
  /// the last is the overflow bucket).
  std::vector<std::int64_t> buckets() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Name → metric registry. Metric creation is idempotent: asking for an
/// existing name returns the same instance.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Counter value, 0 when the counter was never created (convenient for
  /// tests asserting on metrics that may not have fired).
  std::int64_t counter_value(const std::string& name) const;

  /// Aligned text tables (counters, then histograms), names sorted.
  std::string render() const;

  /// Prometheus text exposition format (version 0.0.4): counters as
  /// `configsynth_<name>`, histograms as the standard `_bucket{le=...}`
  /// cumulative series plus `_sum`/`_count`. Names are sanitized to the
  /// Prometheus charset.
  std::string render_prometheus() const;

  /// Writes one long-form CSV: kind,name,field,value rows (counters have
  /// one row; histograms one row per summary field and bucket).
  void write_csv(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  // deque: stable addresses for the references handed out above.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace cs::service
