#include "service/result_cache.h"

#include "util/error.h"

namespace cs::service {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  CS_REQUIRE(capacity >= 1, "cache capacity must be >= 1");
}

std::optional<synth::SweepPointResult> ResultCache::lookup(
    const model::Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++stats_.hits;
  if (it->second->second.status == smt::CheckResult::kUnsat)
    ++stats_.negative_hits;
  return it->second->second;
}

void ResultCache::insert(const model::Fingerprint& key,
                         const synth::SweepPointResult& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Refresh: identical fingerprints mean identical problems, so the
    // value can only differ in timings; keep the newer one.
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, value);
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cs::service
