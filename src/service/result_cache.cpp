#include "service/result_cache.h"

#include "util/error.h"

namespace cs::service {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  CS_REQUIRE(capacity >= 1, "cache capacity must be >= 1");
}

std::optional<synth::SweepPointResult> ResultCache::lookup(
    const model::Fingerprint& key, const model::SpecDigests* digests,
    bool* partial) {
  if (partial != nullptr) *partial = false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (digests != nullptr && shapes_.contains(digests->shape())) {
      ++stats_.partial_hits;
      if (partial != nullptr) *partial = true;
    }
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++stats_.hits;
  if (it->second->value.status == smt::CheckResult::kUnsat)
    ++stats_.negative_hits;
  return it->second->value;
}

void ResultCache::shape_erase(
    const std::optional<model::SpecDigests>& digests) {
  if (!digests) return;
  const auto it = shapes_.find(digests->shape());
  if (it == shapes_.end()) return;
  if (--it->second == 0) shapes_.erase(it);
}

void ResultCache::insert(const model::Fingerprint& key,
                         const synth::SweepPointResult& value,
                         const model::SpecDigests* digests) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Refresh: identical fingerprints mean identical problems, so the
    // value can only differ in timings; keep the newer one.
    it->second->value = value;
    if (digests != nullptr && !it->second->digests) {
      it->second->digests = *digests;
      ++shapes_[digests->shape()];
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    shape_erase(lru_.back().digests);
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(Entry{key, value,
                           digests != nullptr
                               ? std::optional<model::SpecDigests>(*digests)
                               : std::nullopt});
  index_.emplace(key, lru_.begin());
  if (digests != nullptr) ++shapes_[digests->shape()];
  ++stats_.insertions;
}

std::optional<model::SpecDigests> ResultCache::digests(
    const model::Fingerprint& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second->digests;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cs::service
