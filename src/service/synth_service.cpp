#include "service/synth_service.h"

#include <iterator>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "shard/sharded.h"
#include "util/error.h"
#include "util/timer.h"

namespace cs::service {

namespace {

/// Counter name for one backend's probe count.
const char* probe_counter_name(smt::BackendKind kind) {
  switch (kind) {
    case smt::BackendKind::kZ3:
      return "probes_z3";
    case smt::BackendKind::kMiniPb:
      return "probes_minipb";
    case smt::BackendKind::kRace:
      return "probes_race";
  }
  return "probes_unknown";
}

/// Trace-span tag for a backend.
const char* backend_tag(smt::BackendKind kind) {
  switch (kind) {
    case smt::BackendKind::kZ3:
      return "z3";
    case smt::BackendKind::kMiniPb:
      return "minipb";
    case smt::BackendKind::kRace:
      return "race";
  }
  return "unknown";
}

}  // namespace

std::string_view reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kDeadlineExpired:
      return "deadline-expired";
    case RejectReason::kCancelled:
      return "cancelled";
  }
  return "";
}

void SynthService::record_solver_effort(const synth::SweepPointResult& r,
                                        smt::BackendKind backend) {
  metrics_.counter("solver_probes_total").add(r.search.probes);
  metrics_.counter(probe_counter_name(backend)).add(r.search.probes);
  metrics_.counter("solver_conflicts_total").add(r.solver.conflicts);
  metrics_.counter("solver_propagations_total").add(r.solver.propagations);
  metrics_.counter("solver_decisions_total").add(r.solver.decisions);
  metrics_.counter("solver_restarts_total").add(r.solver.restarts);
  // Clause-DB composition (MiniPB only; zero deltas on Z3 requests).
  metrics_.counter("solver_lbd_core_total").add(r.solver.lbd_core);
  metrics_.counter("solver_lbd_tier2_total").add(r.solver.lbd_tier2);
  metrics_.counter("solver_lbd_local_total").add(r.solver.lbd_local);
  metrics_.counter("solver_db_simplify_rounds_total")
      .add(r.solver.db_simplify_rounds);
  // Search-heuristic activity (MiniPB only; zero deltas on Z3 requests).
  metrics_.counter("solver_glucose_restarts_total")
      .add(r.solver.glucose_restarts);
  metrics_.counter("solver_rephases_total").add(r.solver.rephases);
  metrics_.counter("solver_minimized_literals_total")
      .add(r.solver.minimized_literals);
  // Portfolio racing (race backend only): rounds run and first-decider
  // wins per inner backend.
  metrics_.counter("race_rounds_total").add(r.solver.race_rounds);
  metrics_.counter("race_wins_minipb_total").add(r.solver.race_wins_minipb);
  metrics_.counter("race_wins_z3_total").add(r.solver.race_wins_z3);
}

SynthService::SynthService(ServiceConfig config)
    : config_(std::move(config)),
      workers_(config_.workers == 0
                   ? static_cast<int>(util::ThreadPool::hardware_jobs())
                   : config_.workers),
      cache_(config_.cache_capacity) {
  CS_REQUIRE(config_.workers >= 0, "service workers must be >= 0");
  CS_REQUIRE(config_.retry_cap_factor >= 0,
             "retry_cap_factor must be >= 0");
  pool_ = std::make_unique<util::ThreadPool>(
      static_cast<std::size_t>(workers_));
}

SynthService::~SynthService() = default;

model::Fingerprint SynthService::request_fingerprint(
    const ServiceRequest& request) {
  CS_REQUIRE(request.spec != nullptr, "request needs a spec");
  const model::Fingerprint spec_fp = model::fingerprint_spec(*request.spec);
  model::FingerprintHasher h;
  h.mix_digest(spec_fp);
  h.mix_string("cs-req-v1");
  h.mix_i64(static_cast<std::int64_t>(request.point.objective));
  h.mix_fixed(request.point.isolation);
  h.mix_fixed(request.point.usability);
  h.mix_fixed(request.point.budget);
  h.mix_i64(static_cast<std::int64_t>(request.synthesis.backend));
  h.mix_i64(request.synthesis.check_time_limit_ms);
  h.mix_i64(request.synthesis.check_conflict_limit);
  h.mix_i64(static_cast<std::int64_t>(request.synthesis.threshold_mode));
  h.mix_fixed(request.optimize.resolution);
  h.mix_fixed(request.min_cost.resolution);
  h.mix_fixed(request.min_cost.max_budget);
  return h.digest();
}

model::Fingerprint SynthService::warm_fingerprint(
    const ServiceRequest& request) {
  CS_REQUIRE(request.spec != nullptr, "request needs a spec");
  model::FingerprintHasher h;
  // Shape digest, not the full spec digest: the encoding depends only on
  // topology + flows + UICs, so a thresholds/budget retune of a spec the
  // pool has seen still checks out a warm solver (the point carries the
  // query thresholds; spec.sliders never reach the formula).
  h.mix_digest(model::fingerprint_sections(*request.spec).shape());
  h.mix_string("cs-warm-v2");
  h.mix_i64(static_cast<std::int64_t>(request.synthesis.backend));
  h.mix_i64(request.synthesis.check_time_limit_ms);
  h.mix_i64(request.synthesis.check_conflict_limit);
  h.mix_i64(static_cast<std::int64_t>(request.synthesis.threshold_mode));
  return h.digest();
}

SynthService::WarmEntry SynthService::warm_checkout(
    const model::Fingerprint& key) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  const auto it = warm_pool_.find(key);
  if (it == warm_pool_.end() || it->second.empty()) return {};
  WarmEntry entry = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) warm_pool_.erase(it);
  // Drop one matching ticket from the eviction queue (newest first, to
  // pair with the LIFO checkout above).
  for (auto rit = warm_order_.rbegin(); rit != warm_order_.rend(); ++rit) {
    if (*rit == key) {
      warm_order_.erase(std::next(rit).base());
      break;
    }
  }
  return entry;
}

void SynthService::warm_checkin(const model::Fingerprint& key,
                                WarmEntry entry) {
  if (config_.warm_pool_limit == 0) return;
  std::lock_guard<std::mutex> lock(warm_mutex_);
  while (warm_order_.size() >= config_.warm_pool_limit) {
    const model::Fingerprint victim = warm_order_.front();
    warm_order_.erase(warm_order_.begin());
    const auto it = warm_pool_.find(victim);
    if (it != warm_pool_.end() && !it->second.empty()) {
      it->second.erase(it->second.begin());  // oldest entry of that key
      if (it->second.empty()) warm_pool_.erase(it);
      metrics_.counter("warm_evictions").inc();
    }
  }
  warm_pool_[key].push_back(std::move(entry));
  warm_order_.push_back(key);
}

std::size_t SynthService::warm_pool_size() const {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  return warm_order_.size();
}

std::future<ServiceOutcome> SynthService::submit(ServiceRequest request) {
  auto promise = std::make_shared<std::promise<ServiceOutcome>>();
  std::future<ServiceOutcome> future = promise->get_future();
  submit(std::move(request),
         [promise](ServiceOutcome outcome, std::exception_ptr error) {
           if (error)
             promise->set_exception(error);
           else
             promise->set_value(std::move(outcome));
         });
  return future;
}

void SynthService::submit(ServiceRequest request, Completion done) {
  metrics_.counter("requests_total").inc();

  // Admission control: bounded queue, explicit rejection. Checked and
  // reserved under the mutex so concurrent submitters can never
  // collectively exceed the limit.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queued_ >= config_.queue_limit) {
      metrics_.counter("rejected").inc();
      metrics_.counter("rejected_queue_full").inc();
      ServiceOutcome out;
      out.rejected = true;
      out.reject_reason = RejectReason::kQueueFull;
      done(std::move(out), nullptr);
      return;
    }
    ++queued_;
  }

  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  util::Stopwatch watch;  // request clock: starts at enqueue
  auto task = [this, done = std::move(done), request = std::move(request),
               request_id, watch]() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --queued_;
    }
    const double queue_ms = watch.elapsed_ms();
    metrics_.histogram("queue_ms").observe(queue_ms);
    if (obs::TraceSession::enabled()) {
      // The wait is only known once the request starts, so it is recorded
      // backdated to the enqueue instant — as an async span, because it
      // overlaps earlier requests' spans on this worker's track.
      obs::set_thread_name("service-worker");
      obs::session().record_async_span(
          "service", "service/queue_wait",
          obs::session().now_us() - queue_ms * 1000.0, queue_ms * 1000.0,
          static_cast<std::int64_t>(request_id),
          {{"req", std::to_string(request_id)}});
    }
    if (config_.on_start) config_.on_start(request);
    try {
      done(execute(request, request_id, queue_ms, watch), nullptr);
    } catch (...) {
      done(ServiceOutcome{}, std::current_exception());
    }
  };
  pool_->submit(std::move(task));
}

ServiceOutcome SynthService::execute(const ServiceRequest& request,
                                     std::uint64_t request_id,
                                     double queue_ms,
                                     util::Stopwatch watch) {
  const std::string rid = std::to_string(request_id);
  ServiceOutcome out;
  out.queue_ms = queue_ms;
  out.fingerprint = request_fingerprint(request);
  // Per-section sub-digests travel with every cache probe/insert so the
  // cache can classify misses (partial hit = same encoding shape cached
  // under other thresholds — the warm-resolve signature).
  const model::SpecDigests digests =
      model::fingerprint_sections(*request.spec);

  const auto finish = [&]() -> ServiceOutcome& {
    out.total_ms = watch.elapsed_ms();
    return out;
  };
  const auto expired = [&]() {
    return request.deadline_ms < 0 ||
           (request.deadline_ms > 0 &&
            watch.elapsed_ms() >= static_cast<double>(request.deadline_ms));
  };
  const auto cancelled = [&]() {
    return cancel_all_.load(std::memory_order_relaxed) ||
           (request.cancel != nullptr &&
            request.cancel->load(std::memory_order_relaxed));
  };
  const auto skip = [&](RejectReason reason) -> ServiceOutcome& {
    metrics_.counter("skipped").inc();
    metrics_
        .counter(reason == RejectReason::kCancelled ? "skipped_cancelled"
                                                    : "skipped_deadline")
        .inc();
    out.reject_reason = reason;
    out.result.point = request.point;
    out.result.skipped = true;
    out.result.search.exact = false;
    return finish();
  };

  if (expired())
    return skip(RejectReason::kDeadlineExpired);
  if (cancelled()) return skip(RejectReason::kCancelled);

  // Single-flight loop: serve from cache, else wait for an identical
  // in-flight request, else solve and publish. A waiter re-checks the
  // cache after the primary finishes; if the primary skipped or threw
  // (nothing was published), the waiter solves itself — at most one
  // wait per outcome, so the loop terminates.
  std::shared_future<void> wait_for;
  std::shared_ptr<std::promise<void>> publish;
  const auto traced_lookup = [&] {
    obs::Span span("service", "service/cache_lookup");
    span.arg("req", rid);
    bool partial = false;
    auto hit = cache_.lookup(out.fingerprint, &digests, &partial);
    if (partial) metrics_.counter("cache_partial_hits").inc();
    return hit;
  };
  for (bool waited = false;;) {
    if (auto hit = traced_lookup()) {
      metrics_.counter("cache_hits").inc();
      out.cache_hit = true;
      out.coalesced = waited;
      out.result = std::move(*hit);
      return finish();
    }
    if (waited) break;  // primary published nothing; solve ourselves
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = inflight_.find(out.fingerprint);
      if (it == inflight_.end()) {
        publish = std::make_shared<std::promise<void>>();
        inflight_.emplace(out.fingerprint, publish->get_future().share());
        break;  // we are the primary
      }
      wait_for = it->second;
    }
    metrics_.counter("coalesced_waits").inc();
    wait_for.wait();  // the primary never waits, so this cannot cycle
    waited = true;
  }
  metrics_.counter("cache_misses").inc();

  // Publish-and-release guard so coalesced waiters wake even if the
  // solve throws.
  struct Release {
    SynthService* self;
    const model::Fingerprint& fp;
    std::shared_ptr<std::promise<void>> publish;
    ~Release() {
      if (!publish) return;
      {
        std::lock_guard<std::mutex> lock(self->mutex_);
        self->inflight_.erase(fp);
      }
      publish->set_value();
    }
  } release{this, out.fingerprint, publish};

  // Solve on a Synthesizer owned exclusively by this worker, exactly as
  // a sweep grid point would be — warm from the pool when an encoded
  // solver for this spec/backend/caps is parked, cold otherwise.
  synth::SweepRequest sweep;
  sweep.synthesis = request.synthesis;
  sweep.optimize = request.optimize;
  sweep.min_cost = request.min_cost;
  const auto remaining = [&]() -> std::int64_t {
    if (request.deadline_ms <= 0) return 0;
    const std::int64_t left =
        request.deadline_ms -
        static_cast<std::int64_t>(watch.elapsed_ms());
    return left > 0 ? left : -1;
  };
  std::int64_t left = remaining();
  if (request.deadline_ms != 0 && left < 0)
    return skip(RejectReason::kDeadlineExpired);

  // Sharded path: feasibility points solve through shard::ShardedSynthesizer
  // when the service was configured for it. The sharded pipeline owns its
  // own solvers (fresh per region) and re-validates against the point's
  // thresholds, so it bypasses the warm pool entirely.
  const bool shard_requested =
      config_.shard_regions != 0 &&
      request.point.objective == synth::SweepObjective::kFeasibility;
  if (shard_requested) {
    obs::Span span("service", "service/shard_solve");
    span.arg("req", rid);
    span.arg("backend", backend_tag(request.synthesis.backend));
    util::Stopwatch shard_watch;
    // The sharded synthesizer reads the spec's own sliders; materialize
    // the point's thresholds into a spec copy when they differ.
    std::shared_ptr<const model::ProblemSpec> spec = request.spec;
    const model::Sliders want{request.point.isolation,
                              request.point.usability, request.point.budget};
    if (spec->sliders.isolation != want.isolation ||
        spec->sliders.usability != want.usability ||
        spec->sliders.budget != want.budget) {
      auto copy = std::make_shared<model::ProblemSpec>(*spec);
      copy->sliders = want;
      spec = copy;
    }
    shard::ShardOptions shard_options;
    shard_options.synthesis = request.synthesis;
    shard_options.regions = config_.shard_regions < 0 ? 0
                                                      : config_.shard_regions;
    shard_options.jobs = 1;
    shard::ShardedOutcome sharded =
        shard::ShardedSynthesizer(*spec, shard_options).synthesize();
    metrics_.counter("shard_solves").inc();
    if (sharded.used_fallback) {
      metrics_.counter("shard_fallbacks").inc();
      span.arg("fallback", sharded.fallback_reason);
    }
    span.arg("regions", std::to_string(sharded.regions));
    out.result.point = request.point;
    out.result.status = sharded.status;
    out.result.conflicting = std::move(sharded.conflicting);
    out.result.search.feasible = sharded.status == smt::CheckResult::kSat;
    out.result.search.exact = sharded.status != smt::CheckResult::kUnknown;
    out.result.search.probes = sharded.regions + (sharded.used_fallback ? 1 : 0);
    if (sharded.design.has_value()) {
      out.result.search.metrics = synth::compute_metrics(*spec,
                                                         *sharded.design);
      out.result.search.design = std::move(sharded.design);
    }
    out.result.wall_seconds = shard_watch.elapsed_seconds();
    metrics_.counter(probe_counter_name(request.synthesis.backend))
        .add(out.result.search.probes);
    metrics_.histogram("solve_ms").observe(out.result.wall_seconds * 1000.0);
    cache_.insert(out.fingerprint, out.result, &digests);
    return finish();
  }

  const bool warm_eligible =
      config_.warm_pool_limit > 0 &&
      request.synthesis.threshold_mode == synth::ThresholdMode::kAssumption;
  model::Fingerprint warm_key;
  WarmEntry entry;
  if (warm_eligible) {
    obs::Span span("service", "service/warm_checkout");
    span.arg("req", rid);
    warm_key = warm_fingerprint(request);
    entry = warm_checkout(warm_key);
    span.arg("hit", entry.synth != nullptr ? "1" : "0");
  }
  {
    obs::Span span("service", "service/solve");
    span.arg("req", rid);
    span.arg("backend", backend_tag(request.synthesis.backend));
    span.arg("warm", entry.synth != nullptr ? "1" : "0");
    if (entry.synth != nullptr) {
      metrics_.counter("warm_hits").inc();
      out.result = synth::solve_sweep_point_on(*entry.synth, *entry.spec,
                                               sweep, request.point, left,
                                               /*charge_encode=*/false);
    } else if (warm_eligible) {
      metrics_.counter("warm_misses").inc();
      util::Stopwatch encode_watch;
      entry.spec = request.spec;
      entry.synth = std::make_unique<synth::Synthesizer>(*request.spec,
                                                         request.synthesis);
      out.result = synth::solve_sweep_point_on(*entry.synth, *entry.spec,
                                               sweep, request.point, left,
                                               /*charge_encode=*/true);
      // Like a cold sweep point, the first solve's wall clock includes the
      // encode it paid for.
      out.result.wall_seconds = encode_watch.elapsed_seconds();
    } else {
      out.result =
          synth::solve_sweep_point(*request.spec, sweep, request.point, left);
    }
  }
  if (entry.synth != nullptr) warm_checkin(warm_key, std::move(entry));
  record_solver_effort(out.result, request.synthesis.backend);

  // Retry policy: a conflict-capped probe that came back unknown gets
  // one more attempt with a raised cap before we report a mere bound.
  // The retry always solves cold: its raised cap no longer matches the
  // warm-pool key's caps.
  if (out.result.status == smt::CheckResult::kUnknown &&
      request.synthesis.check_conflict_limit > 0 &&
      config_.retry_cap_factor > 0 && !cancelled()) {
    left = remaining();
    if (request.deadline_ms == 0 || left > 0) {
      metrics_.counter("retries").inc();
      out.retries = 1;
      sweep.synthesis.check_conflict_limit *= config_.retry_cap_factor;
      obs::Span span("service", "service/retry");
      span.arg("req", rid);
      span.arg("conflict_limit",
               std::to_string(sweep.synthesis.check_conflict_limit));
      synth::SweepPointResult retried =
          synth::solve_sweep_point(*request.spec, sweep, request.point, left);
      record_solver_effort(retried, request.synthesis.backend);
      retried.wall_seconds += out.result.wall_seconds;
      out.result = std::move(retried);
    }
  }

  metrics_.histogram("solve_ms").observe(out.result.wall_seconds * 1000.0);
  cache_.insert(out.fingerprint, out.result, &digests);
  return finish();
}

}  // namespace cs::service
