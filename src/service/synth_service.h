// SynthService — an in-process synthesis request service.
//
// Sits above synth::Synthesizer / synth::solve_sweep_point and below the
// CLIs: callers submit independent synthesis requests (a spec plus one
// objective point) and get a future for the outcome. The service adds
// what ad-hoc Synthesizer construction cannot:
//
//   * result caching — requests are keyed by canonical spec fingerprint
//     (model/fingerprint.h) mixed with the objective and solver options;
//     a repeat of an already-answered request is served from the LRU
//     ResultCache with zero solver probes, including *negative* answers
//     (UNSAT verdicts with their threshold cores). Identical requests
//     in flight at the same time are coalesced: duplicates wait for the
//     first solve instead of re-solving (single-flight).
//   * admission control — a bounded queue: submissions beyond
//     `queue_limit` queued-but-not-started requests are rejected
//     immediately and deterministically (never blocked), so overload
//     sheds load instead of growing latency without bound. Per-request
//     deadlines and cancellation tokens are honored cooperatively, the
//     same way SweepEngine handles them.
//   * retry policy — a conflict-limit-capped probe that came back
//     kUnknown is re-run once with the cap raised by
//     `retry_cap_factor` before the lower bound is reported.
//   * warm synthesizer pool — encoded solvers are kept after a solve,
//     keyed by (spec *shape* digest, backend, caps, threshold mode). A
//     repeat of the same encoding shape at *different* thresholds (a
//     cache miss — including a spec retuned by a thresholds-only
//     cs-delta-v1 delta) checks one out and re-solves by swapping
//     threshold assumptions (synth::Synthesizer::resolve), skipping the
//     encode entirely.
//     Checkout removes the entry from the pool, so a warm synthesizer is
//     never shared between workers; the per-request caps are re-applied
//     on every checkout (Synthesizer::set_check_budget). Requests with
//     ThresholdMode::kHard or a raised retry cap bypass the pool and
//     solve cold.
//   * metrics — every request feeds the MetricsRegistry (request/hit/
//     rejection counters, per-backend probe counts, warm-pool hits and
//     misses, cumulative solver-effort counters, queue-wait and
//     solve-time histograms).
//
// Threading model: a fixed util::ThreadPool; each request solves on a
// Synthesizer owned exclusively by its worker for the duration of the
// solve (the SweepEngine discipline), so results are independent of
// worker count and identical to a direct solve. The destructor drains
// queued requests, then joins.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/fingerprint.h"
#include "service/metrics_registry.h"
#include "service/result_cache.h"
#include "synth/sweep.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cs::service {

/// One synthesis request: a shared read-only spec plus one objective
/// point and the solver options to answer it with. The spec travels by
/// shared_ptr so it outlives the caller for as long as workers need it.
struct ServiceRequest {
  std::shared_ptr<const model::ProblemSpec> spec;
  /// Objective and thresholds (same vocabulary as a sweep grid point).
  synth::SweepPoint point;
  synth::SynthesisOptions synthesis;
  synth::OptimizeOptions optimize;
  synth::MinCostOptions min_cost;
  /// Wall-clock budget from submission in ms (0 = none; negative =
  /// already expired: the request is skipped, never solved).
  std::int64_t deadline_ms = 0;
  /// Optional cancellation token: raise it to skip the request if it has
  /// not started solving yet.
  const std::atomic<bool>* cancel = nullptr;
};

/// Machine-readable reason a request was turned away without a solve.
/// kQueueFull accompanies `rejected`; kDeadlineExpired / kCancelled
/// accompany `result.skipped`. Wire responses (net/request_codec.h) and
/// the per-reason metrics counters carry these names verbatim.
enum class RejectReason {
  kNone,
  kQueueFull,
  kDeadlineExpired,
  kCancelled,
};

/// Stable wire spelling ("queue-full", "deadline-expired", "cancelled";
/// empty for kNone).
std::string_view reject_reason_name(RejectReason reason);

/// Outcome of one request. `result` is a full sweep-point result (bound
/// search or feasibility verdict, metrics, design, UNSAT core); the
/// flags tell how it was obtained.
struct ServiceOutcome {
  /// True when admission control rejected the request (queue full). No
  /// solving happened; `result` is empty with kUnknown status.
  bool rejected = false;
  /// Why the request produced no solve: kQueueFull when `rejected`,
  /// kDeadlineExpired / kCancelled when `result.skipped`, kNone for
  /// answered requests.
  RejectReason reject_reason = RejectReason::kNone;
  /// True when the result came from the cache (zero solver probes).
  bool cache_hit = false;
  /// True when an identical request was already in flight and this one
  /// waited for it instead of solving (counts as a cache hit too).
  bool coalesced = false;
  /// Conflict-cap retries spent on this request (0 or 1).
  int retries = 0;
  model::Fingerprint fingerprint;
  synth::SweepPointResult result;
  /// Enqueue → start wait.
  double queue_ms = 0;
  /// Enqueue → completion.
  double total_ms = 0;
};

/// Tuning knobs fixed at service construction.
struct ServiceConfig {
  /// Worker threads; 0 = one per hardware thread.
  int workers = 1;
  /// Maximum queued-but-not-started requests; submissions beyond it are
  /// rejected immediately (running requests don't count).
  std::size_t queue_limit = 64;
  /// ResultCache entries.
  std::size_t cache_capacity = 256;
  /// Factor by which a conflict-limit-capped kUnknown probe's cap is
  /// raised for its single retry; 0 disables the retry policy.
  int retry_cap_factor = 4;
  /// Maximum encoded synthesizers kept across requests for warm re-solves
  /// (FIFO eviction across all keys); 0 disables the warm pool and every
  /// request solves cold.
  std::size_t warm_pool_limit = 8;
  /// Sharded synthesis (src/shard) for kFeasibility points: 0 = off
  /// (monolithic solves), -1 = on with the automatic region count,
  /// >= 2 = on with that many regions. Verdicts are identical to the
  /// monolithic path by construction (shard/sharded.h); each request's
  /// region solves run serially on its own worker, so service-level
  /// parallelism stays with the worker pool. Sharded solves bypass the
  /// warm pool and are recorded in the `shard_solves` /
  /// `shard_fallbacks` counters.
  int shard_regions = 0;
  /// Observability hook: called on the worker thread when a request
  /// starts executing (after dequeue, before the cache lookup). Used by
  /// tests to control scheduling and by servers for request logging.
  std::function<void(const ServiceRequest&)> on_start;
};

/// The request service (see the header comment for the full contract):
/// bounded-queue admission, result cache with single-flight coalescing,
/// warm synthesizer pool, capped-probe retry, metrics.
class SynthService {
 public:
  explicit SynthService(ServiceConfig config = {});

  /// Drains queued requests, then joins the workers.
  ~SynthService();

  SynthService(const SynthService&) = delete;
  SynthService& operator=(const SynthService&) = delete;

  /// Submits a request. Never blocks on solving: over-limit submissions
  /// resolve immediately with `rejected = true`. The future rethrows
  /// util::Error for malformed requests (bad options), mirroring
  /// SweepEngine::run.
  std::future<ServiceOutcome> submit(ServiceRequest request);

  /// A request completion: the outcome, or the exception the solve threw
  /// (exactly one is meaningful — `error` is null on success).
  using Completion =
      std::function<void(ServiceOutcome outcome, std::exception_ptr error)>;

  /// Callback flavor of submit for event-driven callers (the TCP
  /// front-end): `done` is invoked exactly once — on the worker thread
  /// that executed the request, or on the submitting thread when
  /// admission control rejects it immediately. The callback must not
  /// block the worker; post to your own loop and return.
  void submit(ServiceRequest request, Completion done);

  /// Convenience: submit and wait.
  ServiceOutcome solve(ServiceRequest request) {
    return submit(std::move(request)).get();
  }

  /// Marks every queued-but-not-started request as skipped (running
  /// requests finish normally).
  void cancel_pending() {
    cancel_all_.store(true, std::memory_order_relaxed);
  }

  /// Cache key of a request: canonical spec digest mixed with the
  /// objective point and the result-affecting solver options.
  static model::Fingerprint request_fingerprint(
      const ServiceRequest& request);

  /// Warm-pool key of a request: the spec's *shape* digest
  /// (model::SpecDigests::shape() — topology + flows + UICs, excluding
  /// the threshold/budget sub-digests) mixed with the backend, caps and
  /// threshold mode — everything a synthesizer bakes in at construction.
  /// The point's thresholds and the spec's own sliders are deliberately
  /// absent: same-shape requests at different thresholds — including
  /// specs that differ only by a `retune` delta — share warm solvers.
  static model::Fingerprint warm_fingerprint(const ServiceRequest& request);

  const ResultCache& cache() const { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  int workers() const { return workers_; }
  /// Encoded synthesizers currently parked in the warm pool.
  std::size_t warm_pool_size() const;

 private:
  /// One parked encoded solver. Holds the spec alive: the synthesizer
  /// references it, and it may outlive the submitting caller.
  struct WarmEntry {
    std::shared_ptr<const model::ProblemSpec> spec;
    std::unique_ptr<synth::Synthesizer> synth;
  };

  ServiceOutcome execute(const ServiceRequest& request,
                         std::uint64_t request_id, double queued_ms_at_start,
                         util::Stopwatch watch);
  /// Removes and returns a parked synthesizer for `key` (empty entry on
  /// miss). Checkout transfers ownership, so entries are never shared.
  WarmEntry warm_checkout(const model::Fingerprint& key);
  /// Parks a synthesizer for reuse, evicting FIFO past the pool limit.
  void warm_checkin(const model::Fingerprint& key, WarmEntry entry);
  /// Feeds a solved point's probe count and solver-effort deltas into the
  /// metrics counters.
  void record_solver_effort(const synth::SweepPointResult& result,
                            smt::BackendKind backend);

  ServiceConfig config_;
  int workers_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  std::atomic<bool> cancel_all_{false};
  /// Monotone request ids linking one request's trace spans (queue wait →
  /// cache lookup → solve → retry) across its lifecycle.
  std::atomic<std::uint64_t> next_request_id_{1};

  mutable std::mutex warm_mutex_;  // guards warm_pool_ and warm_order_
  std::unordered_map<model::Fingerprint, std::vector<WarmEntry>,
                     model::FingerprintHash>
      warm_pool_;
  /// Check-in order of parked entries (FIFO eviction queue).
  std::vector<model::Fingerprint> warm_order_;

  std::mutex mutex_;  // guards queued_ and inflight_
  std::size_t queued_ = 0;
  /// Single-flight table: fingerprint → completion signal of the request
  /// currently solving it.
  std::unordered_map<model::Fingerprint, std::shared_future<void>,
                     model::FingerprintHash>
      inflight_;

  /// Last member: destroyed first, so workers drain while the members
  /// above are still alive.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace cs::service
