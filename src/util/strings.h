// Small string helpers used by the input-file parser and report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cs::util {

/// Splits on a delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Strips leading/trailing whitespace.
std::string trim(std::string_view text);

/// Joins the elements with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a signed integer; throws SpecError with context on failure.
long long parse_int(std::string_view text, std::string_view context);

/// Parses a double; throws SpecError with context on failure.
double parse_double(std::string_view text, std::string_view context);

}  // namespace cs::util
