#include "util/csv.h"

#include "util/error.h"

namespace cs::util {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (out_) write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  CS_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  if (out_) write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace cs::util
