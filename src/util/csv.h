// CSV writer for bench results.
//
// Each bench binary writes `<name>.csv` beside its text output so the
// figures can be re-plotted without re-running the sweep.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cs::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must match the header width.
  void add_row(const std::vector<std::string>& cells);

  /// True if the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_;
};

/// Quotes a CSV field if needed (commas, quotes, newlines).
std::string csv_escape(const std::string& field);

}  // namespace cs::util
