// Fixed-size worker pool for CPU-bound sweep workloads.
//
// A deliberately small pool: std::thread workers draining one FIFO queue
// under a mutex/condition-variable pair — no work stealing, no external
// dependencies. That is exactly what the sweep engine (synth/sweep.h)
// needs: a handful of long-running, independent solver probes per task,
// where queue contention is measured in nanoseconds and probe time in
// seconds.
//
// Guarantees:
//   * `submit` is safe from any thread, including pool workers, and never
//     blocks on task execution (so tasks may enqueue follow-up work).
//   * Exceptions thrown by a task are captured in the returned future and
//     rethrown from `future::get()`; they never terminate a worker.
//   * Destruction drains the queue: every task submitted before the
//     destructor ran is executed, then workers are joined. Submitting
//     after shutdown began throws Error.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cs::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it ran (or rethrows what it
  /// threw). Callable from pool workers.
  std::future<void> submit(std::function<void()> task);

  /// `std::thread::hardware_concurrency()` with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static unsigned hardware_jobs();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cs::util
