#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace cs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CS_REQUIRE(!stopping_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(wrapped));
  }
  wake_.notify_one();
  return future;
}

unsigned ThreadPool::hardware_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace cs::util
