// Deterministic random number generation.
//
// All randomized components (topology generator, workload generator, solver
// tie-breaking) take an explicit `Rng&`, never a global source, so every
// experiment in bench/ is reproducible from its printed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace cs::util {

/// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
/// workload generation; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the four lanes.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    CS_ENSURE(lo <= hi, "Rng::uniform: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    // Debiased modulo (Lemire-style rejection).
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t r;
    do {
      r = next();
    } while (r >= limit);
    return lo + static_cast<std::int64_t>(r % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    CS_ENSURE(!v.empty(), "Rng::pick: empty vector");
    return v[static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace cs::util
