// Minimal leveled logger.
//
// The library itself logs nothing above `debug` in hot paths; examples and
// benches raise the level for progress reporting. Output goes to stderr so
// it never pollutes the machine-readable stdout of bench binaries.
#pragma once

#include <sstream>
#include <string>

namespace cs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr (thread-safe).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    if (level_ >= log_level()) log_line(level_, out_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace cs::util
