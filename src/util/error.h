// Error handling primitives shared by all ConfigSynth modules.
//
// The library reports programming errors and malformed inputs through
// exceptions derived from `cs::util::Error`; recoverable "no answer"
// situations (e.g. UNSAT) are ordinary return values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace cs::util {

/// Base class for all errors raised by ConfigSynth.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input file or specification is malformed.
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error("spec error: " + what) {}
};

/// Raised when an internal invariant is violated (a bug in this library).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

}  // namespace cs::util

/// Validates a user-facing precondition; throws SpecError on failure.
#define CS_REQUIRE(cond, msg)                      \
  do {                                             \
    if (!(cond)) throw ::cs::util::SpecError(msg); \
  } while (0)

/// Validates an internal invariant; throws InternalError on failure.
#define CS_ENSURE(cond, msg)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      throw ::cs::util::InternalError(std::string(msg) + " at " __FILE__ \
                                      ":" + std::to_string(__LINE__));    \
  } while (0)
