#include "util/strings.h"

#include <cctype>
#include <charconv>

#include "util/error.h"

namespace cs::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

long long parse_int(std::string_view text, std::string_view context) {
  long long value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  CS_REQUIRE(ec == std::errc() && ptr == end,
             std::string("expected integer for ") + std::string(context) +
                 ", got '" + std::string(text) + "'");
  return value;
}

double parse_double(std::string_view text, std::string_view context) {
  // std::from_chars<double> is available in libstdc++ 12.
  double value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  CS_REQUIRE(ec == std::errc() && ptr == end,
             std::string("expected number for ") + std::string(context) +
                 ", got '" + std::string(text) + "'");
  return value;
}

}  // namespace cs::util
