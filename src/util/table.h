// Plain-text table renderer.
//
// Every bench binary prints its figure/table as an aligned text table (the
// same rows the paper reports) before writing CSV, so results are readable
// straight off the terminal.
#pragma once

#include <string>
#include <vector>

namespace cs::util {

class TextTable {
 public:
  /// Column headers; fixes the column count for subsequent rows.
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header separator and column padding.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cs::util
