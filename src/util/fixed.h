// Fixed-point arithmetic for isolation/usability scores.
//
// The paper (§IV-A) normalizes real-valued scores into integers so the whole
// synthesis problem stays in integer linear arithmetic. `Fixed` is that
// normalization: a value x is stored as round(x * kScale) in an int64.
// All score math in the encoder, the checker and the optimizer uses Fixed,
// which guarantees the independent checker and the SMT encoding agree bit
// for bit.
//
// All Fixed operators saturate at the int64 rails instead of wrapping:
// giant-topology cost sums are accumulated through these operators, and a
// silent two's-complement wraparound would flip a score's sign and corrupt
// the synthesized verdict without any error surfacing. Saturation keeps
// comparisons monotone (a clamped sum still compares as "very large"),
// which is the property the optimizer's binary search actually relies on.
// In-range arithmetic is bit-identical to the previous raw operators.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <string>

namespace cs::util {

/// a + b clamped to the int64 range instead of wrapping.
inline constexpr std::int64_t sat_add_i64(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  return out;
}

/// a - b clamped to the int64 range instead of wrapping.
inline constexpr std::int64_t sat_sub_i64(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out))
    return b < 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  return out;
}

/// a * b clamped to the int64 range instead of wrapping.
inline constexpr std::int64_t sat_mul_i64(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    return (a < 0) == (b < 0) ? std::numeric_limits<std::int64_t>::max()
                              : std::numeric_limits<std::int64_t>::min();
  return out;
}

/// Euclidean division: quotient rounds toward negative infinity and the
/// remainder is always non-negative (euclidean_mod). Signed `/` in C++
/// truncates toward zero, which breaks modular bucketing for negative
/// scores; this is the standard branch-free correction (Halide's codegen
/// uses the same trick). b == 0 yields 0, matching Halide's total
/// semantics rather than trapping.
inline constexpr std::int64_t euclidean_div(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  const std::int64_t q = a / b;
  const std::int64_t r = a - q * b;
  const std::int64_t bs = b >> 63;
  const std::int64_t rs = r >> 63;
  return q - (rs & bs) + (rs & ~bs);
}

/// Euclidean remainder: in [0, |b|); 0 when b == 0. See euclidean_div.
inline constexpr std::int64_t euclidean_mod(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  const std::int64_t r = a % b;
  const std::int64_t sign_mask = r >> 63;
  return r + (sign_mask & (b < 0 ? -b : b));
}

class Fixed {
 public:
  /// Number of fixed-point units per 1.0.
  static constexpr std::int64_t kScale = 1000;

  constexpr Fixed() = default;

  /// Constructs from a raw count of fixed-point units.
  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Constructs from an integer value (exact).
  static constexpr Fixed from_int(std::int64_t v) {
    return from_raw(v * kScale);
  }

  /// Constructs from a double (rounded to the nearest unit).
  static Fixed from_double(double v) {
    const double scaled = v * static_cast<double>(kScale);
    return from_raw(static_cast<std::int64_t>(scaled < 0 ? scaled - 0.5
                                                         : scaled + 0.5));
  }

  constexpr std::int64_t raw() const { return raw_; }
  double to_double() const { return static_cast<double>(raw_) / kScale; }

  constexpr Fixed operator+(Fixed o) const {
    return from_raw(sat_add_i64(raw_, o.raw_));
  }
  constexpr Fixed operator-(Fixed o) const {
    return from_raw(sat_sub_i64(raw_, o.raw_));
  }
  constexpr Fixed operator-() const {
    return from_raw(sat_sub_i64(0, raw_));
  }

  /// Multiplication by a plain integer is exact (saturating at the rails).
  constexpr Fixed operator*(std::int64_t k) const {
    return from_raw(sat_mul_i64(raw_, k));
  }

  /// Fixed*Fixed rounds to the nearest unit (round half away from zero);
  /// a product past the int64 rails clamps to the rail.
  constexpr Fixed operator*(Fixed o) const {
    std::int64_t prod = 0;
    if (__builtin_mul_overflow(raw_, o.raw_, &prod))
      return from_raw((raw_ < 0) == (o.raw_ < 0)
                          ? std::numeric_limits<std::int64_t>::max()
                          : std::numeric_limits<std::int64_t>::min());
    const std::int64_t half = kScale / 2;
    return from_raw(prod >= 0 ? sat_add_i64(prod, half) / kScale
                              : sat_sub_i64(prod, half) / kScale);
  }

  /// Division by a plain integer rounds to the nearest unit.
  constexpr Fixed operator/(std::int64_t k) const {
    const std::int64_t half = (k >= 0 ? k : -k) / 2;
    return from_raw(raw_ >= 0 ? (raw_ + half) / k : (raw_ - half) / k);
  }

  Fixed& operator+=(Fixed o) {
    raw_ = sat_add_i64(raw_, o.raw_);
    return *this;
  }
  Fixed& operator-=(Fixed o) {
    raw_ = sat_sub_i64(raw_, o.raw_);
    return *this;
  }

  constexpr auto operator<=>(const Fixed&) const = default;

  /// Renders with up to three decimals, trailing zeros trimmed ("2.5", "4").
  std::string to_string() const {
    const std::int64_t whole = raw_ / kScale;
    std::int64_t frac = raw_ % kScale;
    if (frac == 0) return std::to_string(whole);
    if (frac < 0) frac = -frac;
    std::string s = (raw_ < 0 && whole == 0) ? "-0" : std::to_string(whole);
    std::string f = std::to_string(frac);
    f.insert(0, 3 - f.size(), '0');
    while (!f.empty() && f.back() == '0') f.pop_back();
    return s + "." + f;
  }

 private:
  std::int64_t raw_ = 0;
};

inline constexpr Fixed operator*(std::int64_t k, Fixed f) { return f * k; }

/// Rounded division for non-negative operands; shared by the SMT encoder
/// and the independent metric computation so both round identically.
inline constexpr std::int64_t round_div(std::int64_t num, std::int64_t den) {
  return (num + den / 2) / den;
}

inline std::ostream& operator<<(std::ostream& os, Fixed f) {
  return os << f.to_string();
}

}  // namespace cs::util
