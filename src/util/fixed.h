// Fixed-point arithmetic for isolation/usability scores.
//
// The paper (§IV-A) normalizes real-valued scores into integers so the whole
// synthesis problem stays in integer linear arithmetic. `Fixed` is that
// normalization: a value x is stored as round(x * kScale) in an int64.
// All score math in the encoder, the checker and the optimizer uses Fixed,
// which guarantees the independent checker and the SMT encoding agree bit
// for bit.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <string>

namespace cs::util {

class Fixed {
 public:
  /// Number of fixed-point units per 1.0.
  static constexpr std::int64_t kScale = 1000;

  constexpr Fixed() = default;

  /// Constructs from a raw count of fixed-point units.
  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Constructs from an integer value (exact).
  static constexpr Fixed from_int(std::int64_t v) {
    return from_raw(v * kScale);
  }

  /// Constructs from a double (rounded to the nearest unit).
  static Fixed from_double(double v) {
    const double scaled = v * static_cast<double>(kScale);
    return from_raw(static_cast<std::int64_t>(scaled < 0 ? scaled - 0.5
                                                         : scaled + 0.5));
  }

  constexpr std::int64_t raw() const { return raw_; }
  double to_double() const { return static_cast<double>(raw_) / kScale; }

  constexpr Fixed operator+(Fixed o) const { return from_raw(raw_ + o.raw_); }
  constexpr Fixed operator-(Fixed o) const { return from_raw(raw_ - o.raw_); }
  constexpr Fixed operator-() const { return from_raw(-raw_); }

  /// Multiplication by a plain integer is exact.
  constexpr Fixed operator*(std::int64_t k) const {
    return from_raw(raw_ * k);
  }

  /// Fixed*Fixed rounds to the nearest unit (round half away from zero).
  constexpr Fixed operator*(Fixed o) const {
    const std::int64_t prod = raw_ * o.raw_;
    const std::int64_t half = kScale / 2;
    return from_raw(prod >= 0 ? (prod + half) / kScale
                              : (prod - half) / kScale);
  }

  /// Division by a plain integer rounds to the nearest unit.
  constexpr Fixed operator/(std::int64_t k) const {
    const std::int64_t half = (k >= 0 ? k : -k) / 2;
    return from_raw(raw_ >= 0 ? (raw_ + half) / k : (raw_ - half) / k);
  }

  Fixed& operator+=(Fixed o) {
    raw_ += o.raw_;
    return *this;
  }
  Fixed& operator-=(Fixed o) {
    raw_ -= o.raw_;
    return *this;
  }

  constexpr auto operator<=>(const Fixed&) const = default;

  /// Renders with up to three decimals, trailing zeros trimmed ("2.5", "4").
  std::string to_string() const {
    const std::int64_t whole = raw_ / kScale;
    std::int64_t frac = raw_ % kScale;
    if (frac == 0) return std::to_string(whole);
    if (frac < 0) frac = -frac;
    std::string s = (raw_ < 0 && whole == 0) ? "-0" : std::to_string(whole);
    std::string f = std::to_string(frac);
    f.insert(0, 3 - f.size(), '0');
    while (!f.empty() && f.back() == '0') f.pop_back();
    return s + "." + f;
  }

 private:
  std::int64_t raw_ = 0;
};

inline constexpr Fixed operator*(std::int64_t k, Fixed f) { return f * k; }

/// Rounded division for non-negative operands; shared by the SMT encoder
/// and the independent metric computation so both round identically.
inline constexpr std::int64_t round_div(std::int64_t num, std::int64_t den) {
  return (num + den / 2) / den;
}

inline std::ostream& operator<<(std::ostream& os, Fixed f) {
  return os << f.to_string();
}

}  // namespace cs::util
