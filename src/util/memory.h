// Process-memory probe for the Table VI experiment.
//
// The paper reports the solver's memory footprint per problem size; we read
// the same quantity from /proc/self/status (Linux) as resident-set size.
//
// Thread-safety (audited for the sweep engine's worker threads): both
// probes open, parse and close the proc file per call and keep no shared
// mutable state, so they are safe to call concurrently. Note that the
// values are process-wide: under a parallel sweep, per-worker solver
// footprints must be aggregated as a maximum, not summed on top of RSS
// (see SweepResult::peak_solver_memory_bytes).
#pragma once

#include <cstdint>

namespace cs::util {

/// Current resident set size in bytes; 0 if unavailable.
std::int64_t current_rss_bytes();

/// Peak resident set size in bytes; 0 if unavailable.
std::int64_t peak_rss_bytes();

}  // namespace cs::util
