// Process-memory probe for the Table VI experiment.
//
// The paper reports the solver's memory footprint per problem size; we read
// the same quantity from /proc/self/status (Linux) as resident-set size.
#pragma once

#include <cstdint>

namespace cs::util {

/// Current resident set size in bytes; 0 if unavailable.
std::int64_t current_rss_bytes();

/// Peak resident set size in bytes; 0 if unavailable.
std::int64_t peak_rss_bytes();

}  // namespace cs::util
