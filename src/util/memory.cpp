#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace cs::util {

namespace {

std::int64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, " %lld", static_cast<long long*>(
                                               static_cast<void*>(&kb)));
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

std::int64_t current_rss_bytes() { return read_status_kb("VmRSS:"); }

std::int64_t peak_rss_bytes() { return read_status_kb("VmHWM:"); }

}  // namespace cs::util
