// Wall-clock stopwatch used by the synthesis driver and every bench binary.
//
// Thread-safety (audited for the sweep engine's worker threads): a
// Stopwatch holds no shared or static state — only its own start point —
// and steady_clock::now() is thread-safe, so distinct instances may be
// used concurrently without synchronization. One instance read from a
// thread other than the one that constructed/reset it is safe as long as
// the construction happened-before the read (e.g. created before workers
// start); concurrent reset() and elapsed_*() on the same instance is the
// caller's race to avoid.
#pragma once

#include <chrono>

namespace cs::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cs::util
