// Wall-clock stopwatch used by the synthesis driver and every bench binary.
#pragma once

#include <chrono>

namespace cs::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cs::util
