#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace cs::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CS_REQUIRE(!headers_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CS_REQUIRE(cells.size() == headers_.size(),
             "TextTable row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace cs::util
