#include "analysis/report.h"

#include <sstream>

namespace cs::analysis {

std::string render_report(const model::ProblemSpec& spec,
                          const synth::SynthesisResult& result) {
  std::ostringstream out;
  out << "=== ConfigSynth synthesis report ===\n";
  out << "flows: " << spec.flows.size()
      << "  hosts: " << spec.network.host_count()
      << "  routers: " << spec.network.router_count()
      << "  links: " << spec.network.link_count() << "\n";
  out << "encoding: " << result.encoding.flow_vars << " y-vars, "
      << result.encoding.pair_device_vars << " x-vars, "
      << result.encoding.placement_vars << " l-vars, "
      << result.encoding.clauses << " clauses, "
      << result.encoding.linear_constraints << " linear constraints\n";
  out << "time: encode " << result.encode_seconds << "s, solve "
      << result.solve_seconds << "s\n";

  switch (result.status) {
    case smt::CheckResult::kSat: {
      out << "status: SAT\n";
      const CheckReport check = check_design(spec, *result.design);
      out << check.to_string();
      const auto hist = result.design->pattern_histogram();
      out << "pattern histogram:";
      for (const model::IsolationPattern p : model::kAllPatterns) {
        if (!spec.isolation.is_enabled(p)) continue;
        out << "  " << model::pattern_name(p) << "="
            << hist[static_cast<std::size_t>(model::pattern_index(p))];
      }
      out << "  none=" << hist[model::kPatternCount] << "\n";
      out << "devices deployed: " << result.design->device_count() << "\n";
      break;
    }
    case smt::CheckResult::kUnsat: {
      out << "status: UNSAT; conflicting thresholds:";
      for (const synth::ThresholdKind k : result.conflicting)
        out << " " << synth::threshold_name(k);
      out << "\n";
      break;
    }
    case smt::CheckResult::kUnknown:
      out << "status: UNKNOWN (budget exhausted)\n";
      break;
  }
  return out.str();
}

std::size_t minimize_placements(const model::ProblemSpec& spec,
                                synth::SecurityDesign& design) {
  std::size_t removed = 0;
  for (std::size_t e = 0; e < design.link_count(); ++e) {
    for (const model::DeviceType d : model::kAllDevices) {
      const auto link = static_cast<topology::LinkId>(e);
      if (!design.placed(link, d)) continue;
      design.set_placed(link, d, false);
      // Threshold check excluded: removing devices only lowers cost; the
      // structural constraints are what could break.
      if (check_design(spec, design, /*check_thresholds=*/false).ok()) {
        ++removed;
      } else {
        design.set_placed(link, d, true);
      }
    }
  }
  return removed;
}

}  // namespace cs::analysis
