// Per-host exposure reporting — the decision-support view of a design.
//
// Administrators read a synthesized design by asking "what can still reach
// this host, and through what protection?". The exposure report classifies
// every host's incoming flows by their protection (denied / trusted /
// inspected / proxied / host-level / open) and flags hosts that remain
// reachable from the Internet without any protection.
#pragma once

#include <string>
#include <vector>

#include "model/spec.h"
#include "synth/design.h"

namespace cs::analysis {

struct HostExposure {
  topology::NodeId host = topology::kInvalidNode;
  std::string name;
  std::size_t incoming_flows = 0;
  std::size_t denied = 0;
  std::size_t trusted = 0;     // trusted comm or proxy+trusted
  std::size_t inspected = 0;   // payload inspection
  std::size_t proxied = 0;     // plain proxy forwarding
  std::size_t host_protected = 0;  // covered only by a host-level pattern
  std::size_t app_protected = 0;   // covered only by an app-level pattern
  std::size_t open = 0;        // no protection at all
  /// True when an Internet-sourced flow reaches this host unprotected.
  bool internet_exposed = false;

  /// open / incoming (0 when the host receives nothing).
  double open_fraction() const {
    return incoming_flows == 0
               ? 0.0
               : static_cast<double>(open) /
                     static_cast<double>(incoming_flows);
  }
};

/// Computes exposure for every host, ordered as network.hosts().
std::vector<HostExposure> compute_exposure(
    const model::ProblemSpec& spec, const synth::SecurityDesign& design);

/// Renders the exposure table, worst (highest open fraction) first.
std::string render_exposure(const std::vector<HostExposure>& exposure);

}  // namespace cs::analysis
