#include "analysis/exposure.h"

#include <algorithm>

#include "util/table.h"

namespace cs::analysis {

std::vector<HostExposure> compute_exposure(
    const model::ProblemSpec& spec, const synth::SecurityDesign& design) {
  std::vector<HostExposure> out;
  out.reserve(spec.network.hosts().size());
  for (const topology::NodeId j : spec.network.hosts()) {
    HostExposure e;
    e.host = j;
    e.name = spec.network.node(j).name;
    const bool host_layer =
        design.host_pattern(j).has_value() &&
        spec.host_patterns.is_enabled(*design.host_pattern(j));
    for (const topology::NodeId i : spec.network.hosts()) {
      if (i == j) continue;
      for (const model::FlowId f : spec.flows.directed(i, j)) {
        ++e.incoming_flows;
        const auto k = design.pattern(f);
        if (!k.has_value()) {
          const model::Flow& flow = spec.flows.flow(f);
          const auto app = design.app_pattern(j, flow.service);
          if (host_layer) {
            ++e.host_protected;
          } else if (app.has_value() &&
                     spec.app_patterns.applicable(*app, flow.service)) {
            ++e.app_protected;
          } else {
            ++e.open;
            if (spec.network.node(i).is_internet) e.internet_exposed = true;
          }
          continue;
        }
        switch (*k) {
          case model::IsolationPattern::kAccessDeny:
            ++e.denied;
            break;
          case model::IsolationPattern::kTrustedComm:
          case model::IsolationPattern::kProxyTrusted:
            ++e.trusted;
            break;
          case model::IsolationPattern::kPayloadInspection:
            ++e.inspected;
            break;
          case model::IsolationPattern::kProxy:
            ++e.proxied;
            break;
        }
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string render_exposure(const std::vector<HostExposure>& exposure) {
  std::vector<HostExposure> sorted = exposure;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const HostExposure& a, const HostExposure& b) {
                     return a.open_fraction() > b.open_fraction();
                   });
  util::TextTable table({"host", "incoming", "denied", "trusted",
                         "inspected", "proxied", "host-level", "app-level",
                         "open", "internet-exposed"});
  for (const HostExposure& e : sorted) {
    table.add_row({e.name, std::to_string(e.incoming_flows),
                   std::to_string(e.denied), std::to_string(e.trusted),
                   std::to_string(e.inspected), std::to_string(e.proxied),
                   std::to_string(e.host_protected),
                   std::to_string(e.app_protected), std::to_string(e.open),
                   e.internet_exposed ? "YES" : "no"});
  }
  return table.render();
}

}  // namespace cs::analysis
