#include "analysis/design_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace cs::analysis {

void save_design(std::ostream& out, const synth::SecurityDesign& design) {
  out << "configsynth-design 1\n";
  out << "flows " << design.flow_count() << "\n";
  for (std::size_t f = 0; f < design.flow_count(); ++f) {
    const auto p = design.pattern(static_cast<model::FlowId>(f));
    out << f << " " << (p.has_value() ? model::paper_id(*p) : 0) << "\n";
  }

  std::size_t placed_links = 0;
  for (std::size_t e = 0; e < design.link_count(); ++e) {
    bool any = false;
    for (const model::DeviceType d : model::kAllDevices)
      any = any || design.placed(static_cast<topology::LinkId>(e), d);
    placed_links += any ? 1 : 0;
  }
  out << "links " << design.link_count() << " placed " << placed_links
      << "\n";
  for (std::size_t e = 0; e < design.link_count(); ++e) {
    std::string devices;
    for (const model::DeviceType d : model::kAllDevices) {
      if (design.placed(static_cast<topology::LinkId>(e), d))
        devices += " " + std::to_string(model::paper_id(d));
    }
    if (!devices.empty()) out << e << devices << "\n";
  }

  std::size_t host_count = design.host_pattern_count();
  out << "host-patterns " << design.node_count() << " placed " << host_count
      << "\n";
  for (topology::NodeId n = 0;
       host_count > 0 &&
       n < static_cast<topology::NodeId>(design.node_count());
       ++n) {
    if (const auto t = design.host_pattern(n); t.has_value()) {
      out << n << " " << (model::host_pattern_index(*t) + 1) << "\n";
      --host_count;
    }
  }

  const auto app = design.app_patterns();
  out << "app-patterns " << app.size() << "\n";
  for (const auto& [host, service, t] : app)
    out << host << " " << service << " " << (model::app_pattern_index(t) + 1)
        << "\n";
  out << "end\n";
}

std::string design_to_text(const synth::SecurityDesign& design) {
  std::ostringstream out;
  save_design(out, design);
  return out.str();
}

namespace {

std::vector<std::string> read_line(std::istream& in,
                                   std::string_view context) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = util::trim(line);
    if (!trimmed.empty()) return util::split_ws(trimmed);
  }
  throw util::SpecError("design file ended while reading " +
                        std::string(context));
}

}  // namespace

synth::SecurityDesign load_design(std::istream& in) {
  std::vector<std::string> tok = read_line(in, "header");
  CS_REQUIRE(tok.size() == 2 && tok[0] == "configsynth-design" &&
                 tok[1] == "1",
             "not a configsynth-design v1 file");

  tok = read_line(in, "flows header");
  CS_REQUIRE(tok.size() == 2 && tok[0] == "flows", "expected 'flows <n>'");
  const auto flow_count = static_cast<std::size_t>(
      util::parse_int(tok[1], "flow count"));

  // Link/node counts are discovered from the body; flow lines are dense.
  synth::SecurityDesign design(flow_count, 0, 0);
  for (std::size_t f = 0; f < flow_count; ++f) {
    tok = read_line(in, "flow row");
    CS_REQUIRE(tok.size() == 2, "flow row needs '<index> <pattern>'");
    const auto idx = static_cast<std::size_t>(
        util::parse_int(tok[0], "flow index"));
    CS_REQUIRE(idx == f, "flow rows must be dense and ordered");
    const long long pid = util::parse_int(tok[1], "pattern id");
    CS_REQUIRE(pid >= 0 && pid <= model::kPatternCount,
               "pattern id out of range");
    if (pid != 0)
      design.set_pattern(static_cast<model::FlowId>(f),
                         static_cast<model::IsolationPattern>(pid - 1));
  }

  tok = read_line(in, "links header");
  CS_REQUIRE(tok.size() == 4 && tok[0] == "links" && tok[2] == "placed",
             "expected 'links <total> placed <rows>'");
  const auto link_total = static_cast<std::size_t>(
      util::parse_int(tok[1], "link total"));
  const auto link_rows = static_cast<std::size_t>(
      util::parse_int(tok[3], "placed link count"));
  std::vector<std::pair<topology::LinkId, model::DeviceType>> placements;
  for (std::size_t r = 0; r < link_rows; ++r) {
    tok = read_line(in, "link row");
    CS_REQUIRE(tok.size() >= 2, "link row needs '<index> <devices...>'");
    const auto link = static_cast<topology::LinkId>(
        util::parse_int(tok[0], "link index"));
    CS_REQUIRE(link >= 0 && static_cast<std::size_t>(link) < link_total,
               "link index out of range");
    for (std::size_t i = 1; i < tok.size(); ++i) {
      const long long did = util::parse_int(tok[i], "device id");
      CS_REQUIRE(did >= 1 && did <= model::kDeviceCount,
                 "device id out of range");
      placements.emplace_back(
          link, static_cast<model::DeviceType>(did - 1));
    }
  }

  tok = read_line(in, "host-patterns header");
  CS_REQUIRE(tok.size() == 4 && tok[0] == "host-patterns" &&
                 tok[2] == "placed",
             "expected 'host-patterns <total> placed <rows>'");
  const auto node_total = static_cast<std::size_t>(
      util::parse_int(tok[1], "node total"));
  const auto hp_rows = static_cast<std::size_t>(
      util::parse_int(tok[3], "host pattern count"));
  std::vector<std::pair<topology::NodeId, model::HostPattern>> hps;
  for (std::size_t r = 0; r < hp_rows; ++r) {
    tok = read_line(in, "host pattern row");
    CS_REQUIRE(tok.size() == 2, "host pattern row needs '<node> <pattern>'");
    const auto node = static_cast<topology::NodeId>(
        util::parse_int(tok[0], "node index"));
    const long long tid = util::parse_int(tok[1], "host pattern id");
    CS_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < node_total,
               "node index out of range");
    CS_REQUIRE(tid >= 1 && tid <= model::kHostPatternCount,
               "host pattern id out of range");
    hps.emplace_back(node, static_cast<model::HostPattern>(tid - 1));
  }

  tok = read_line(in, "app-patterns header");
  CS_REQUIRE(tok.size() == 2 && tok[0] == "app-patterns",
             "expected 'app-patterns <rows>'");
  const auto app_rows = static_cast<std::size_t>(
      util::parse_int(tok[1], "app pattern count"));
  std::vector<std::tuple<topology::NodeId, model::ServiceId,
                         model::AppPattern>>
      aps;
  for (std::size_t r = 0; r < app_rows; ++r) {
    tok = read_line(in, "app pattern row");
    CS_REQUIRE(tok.size() == 3,
               "app pattern row needs '<node> <service> <pattern>'");
    const auto node = static_cast<topology::NodeId>(
        util::parse_int(tok[0], "node index"));
    const auto service = static_cast<model::ServiceId>(
        util::parse_int(tok[1], "service index"));
    const long long tid = util::parse_int(tok[2], "app pattern id");
    CS_REQUIRE(node >= 0 && service >= 0, "negative endpoint index");
    CS_REQUIRE(tid >= 1 && tid <= model::kAppPatternCount,
               "app pattern id out of range");
    aps.emplace_back(node, service,
                     static_cast<model::AppPattern>(tid - 1));
  }

  tok = read_line(in, "trailer");
  CS_REQUIRE(tok.size() == 1 && tok[0] == "end", "missing 'end' trailer");

  synth::SecurityDesign out(flow_count, link_total, node_total);
  for (std::size_t f = 0; f < flow_count; ++f)
    out.set_pattern(static_cast<model::FlowId>(f),
                    design.pattern(static_cast<model::FlowId>(f)));
  for (const auto& [link, d] : placements) out.set_placed(link, d, true);
  for (const auto& [node, t] : hps) out.set_host_pattern(node, t);
  for (const auto& [node, service, t] : aps)
    out.set_app_pattern(node, service, t);
  return out;
}

synth::SecurityDesign design_from_text(const std::string& text) {
  std::istringstream in(text);
  return load_design(in);
}

}  // namespace cs::analysis
