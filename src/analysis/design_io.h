// Plain-text persistence of synthesized designs.
//
// A deployment pipeline wants the synthesis artifact on disk: review it,
// diff it against the previous design, apply it. The format is line
// oriented and stable:
//
//   configsynth-design 1
//   flows <count>
//   <flow-index> <pattern paper id, 0 = none>        (one per flow)
//   links <total> placed <rows>
//   <link-index> <device paper ids...>               (only links with devices)
//   host-patterns <total-nodes> placed <rows>
//   <node-index> <host pattern index + 1>            (only hosts with one)
//   app-patterns <rows>
//   <node-index> <service-index> <app pattern index + 1>
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "synth/design.h"

namespace cs::analysis {

/// Serializes the design.
void save_design(std::ostream& out, const synth::SecurityDesign& design);
std::string design_to_text(const synth::SecurityDesign& design);

/// Parses a design; throws SpecError on malformed input or on counts that
/// disagree with the stream's own header.
synth::SecurityDesign load_design(std::istream& in);
synth::SecurityDesign design_from_text(const std::string& text);

}  // namespace cs::analysis
