// Human-readable synthesis reports and placement post-processing.
#pragma once

#include <string>

#include "analysis/checker.h"
#include "synth/synthesizer.h"

namespace cs::analysis {

/// Renders a full synthesis report: status, metrics, pattern histogram,
/// device placements, timings.
std::string render_report(const model::ProblemSpec& spec,
                          const synth::SynthesisResult& result);

/// Removes device placements that no selected isolation pattern needs
/// (solvers may set placement variables arbitrarily as long as the budget
/// holds). Greedy: drop each device if the design still checks without it.
/// Returns the number of placements removed.
std::size_t minimize_placements(const model::ProblemSpec& spec,
                                synth::SecurityDesign& design);

}  // namespace cs::analysis
