// Independent design checker.
//
// Re-validates a concrete SecurityDesign against a ProblemSpec without any
// solver: connectivity requirements (IIC2), device implications (eq. 1),
// route coverage (eq. 7), IPSec tunnel-endpoint rules (§III-C), user
// constraints (eq. 11) and — optionally — the three slider thresholds
// (eq. 9) via compute_metrics. Every SAT model produced by either backend
// must pass this checker; the integration tests enforce that, which guards
// the encoder and the solvers against each other.
#pragma once

#include <string>
#include <vector>

#include "synth/metrics.h"
#include "topology/routes.h"

namespace cs::analysis {

struct CheckReport {
  std::vector<std::string> issues;
  synth::DesignMetrics metrics;

  bool ok() const { return issues.empty(); }
  std::string to_string() const;
};

/// Validates `design`; when `check_thresholds` also compares the metrics
/// against spec.sliders.
CheckReport check_design(const model::ProblemSpec& spec,
                         const synth::SecurityDesign& design,
                         bool check_thresholds = true);

/// Same, but reuses an already-populated route table instead of
/// re-enumerating routes — the route cost dominates checking at scale,
/// so the incremental synthesizer certifies fast-path designs with the
/// table it already owns. `routes` must be built over spec.network with
/// spec.route_options.
CheckReport check_design(const model::ProblemSpec& spec,
                         const synth::SecurityDesign& design,
                         topology::RouteTable& routes,
                         bool check_thresholds = true);

}  // namespace cs::analysis
