#include "analysis/checker.h"

#include <algorithm>
#include <sstream>

namespace cs::analysis {

namespace {

using topology::LinkId;
using topology::Route;

std::string flow_text(const model::ProblemSpec& spec, model::FlowId f) {
  const model::Flow& flow = spec.flows.flow(f);
  return spec.network.node(flow.src).name + "->" +
         spec.network.node(flow.dst).name + ":" +
         spec.services.service(flow.service).name;
}

}  // namespace

std::string CheckReport::to_string() const {
  std::ostringstream out;
  out << "metrics: isolation=" << metrics.isolation
      << " usability=" << metrics.usability << " cost=" << metrics.cost
      << "\n";
  if (issues.empty()) {
    out << "design OK\n";
  } else {
    out << issues.size() << " issue(s):\n";
    for (const std::string& i : issues) out << "  - " << i << "\n";
  }
  return out.str();
}

CheckReport check_design(const model::ProblemSpec& spec,
                         const synth::SecurityDesign& design,
                         bool check_thresholds) {
  topology::RouteTable routes(spec.network, spec.route_options);
  return check_design(spec, design, routes, check_thresholds);
}

CheckReport check_design(const model::ProblemSpec& spec,
                         const synth::SecurityDesign& design,
                         topology::RouteTable& routes,
                         bool check_thresholds) {
  CheckReport report;

  const auto covered = [&](const Route& r, model::DeviceType d) {
    return std::any_of(r.links.begin(), r.links.end(), [&](LinkId e) {
      return design.placed(e, d);
    });
  };

  for (std::size_t fi = 0; fi < spec.flows.size(); ++fi) {
    const auto f = static_cast<model::FlowId>(fi);
    const auto chosen = design.pattern(f);

    // IIC2 / CR: required flows must be able to communicate.
    if (spec.connectivity.required(f) && chosen.has_value() &&
        model::denies_flow(*chosen)) {
      report.issues.push_back("connectivity requirement denied: " +
                              flow_text(spec, f));
    }
    if (!chosen.has_value()) continue;
    if (!spec.isolation.is_enabled(*chosen)) {
      report.issues.push_back("disabled pattern selected on " +
                              flow_text(spec, f));
      continue;
    }

    // eq. 1 + eq. 7: every required device covers every route.
    const model::Flow& flow = spec.flows.flow(f);
    const std::vector<Route>& route_set = routes.routes(flow.src, flow.dst);
    for (const model::DeviceType d : model::devices_for(*chosen)) {
      if (d == model::DeviceType::kIpsec) {
        const auto margin =
            static_cast<std::size_t>(spec.isolation.tunnel_margin());
        for (const Route& r : route_set) {
          if (r.length() < 2 * margin + 1) {
            report.issues.push_back(
                "trusted communication on a route shorter than 2T+1: " +
                flow_text(spec, f));
            continue;
          }
          const auto any_in = [&](std::size_t from, std::size_t count) {
            for (std::size_t t = from; t < from + count; ++t)
              if (design.placed(r.links[t], d)) return true;
            return false;
          };
          if (!any_in(0, margin))
            report.issues.push_back(
                "missing source-side IPSec gateway for " +
                flow_text(spec, f));
          if (!any_in(r.length() - margin, margin))
            report.issues.push_back(
                "missing destination-side IPSec gateway for " +
                flow_text(spec, f));
        }
      } else {
        for (const Route& r : route_set) {
          if (!covered(r, d)) {
            report.issues.push_back(
                std::string(model::device_name(d)) +
                " missing on a route of " + flow_text(spec, f));
          }
        }
      }
    }
  }

  // Host-level patterns must come from the enabled set (§VII extension).
  for (const topology::NodeId j : spec.network.hosts()) {
    if (const auto t = design.host_pattern(j); t.has_value()) {
      if (!spec.host_patterns.is_enabled(*t)) {
        report.issues.push_back("disabled host pattern deployed on " +
                                spec.network.node(j).name);
      }
    }
  }
  // Application-level patterns must be enabled and applicable to their
  // endpoint's service.
  for (const auto& [host, service, t] : design.app_patterns()) {
    if (!spec.app_patterns.applicable(t, service)) {
      report.issues.push_back(
          "inapplicable app pattern " +
          std::string(model::app_pattern_name(t)) + " deployed on " +
          spec.network.node(host).name + ":" +
          spec.services.service(service).name);
    }
  }

  // UIC (eq. 11).
  for (const model::UserConstraint& uc : spec.user_constraints) {
    if (const auto* fs = std::get_if<model::ForbidPatternForService>(&uc)) {
      for (std::size_t fi = 0; fi < spec.flows.size(); ++fi) {
        const auto f = static_cast<model::FlowId>(fi);
        if (spec.flows.flow(f).service == fs->service &&
            design.pattern(f) == fs->pattern) {
          report.issues.push_back(
              "UIC violated: " +
              model::describe(uc, spec.services, spec.network));
        }
      }
    } else if (const auto* ff =
                   std::get_if<model::ForbidPatternForFlow>(&uc)) {
      if (design.pattern(*spec.flows.find(ff->flow)) == ff->pattern)
        report.issues.push_back(
            "UIC violated: " +
            model::describe(uc, spec.services, spec.network));
    } else if (const auto* rf =
                   std::get_if<model::RequirePatternForFlow>(&uc)) {
      if (design.pattern(*spec.flows.find(rf->flow)) != rf->pattern)
        report.issues.push_back(
            "UIC violated: " +
            model::describe(uc, spec.services, spec.network));
    } else if (const auto* dn = std::get_if<model::DenyOneOf>(&uc)) {
      const auto denied = [&](const model::Flow& flow) {
        return design.pattern(*spec.flows.find(flow)) ==
               model::IsolationPattern::kAccessDeny;
      };
      if (!denied(dn->open_flow) && !denied(dn->guard_flow))
        report.issues.push_back(
            "UIC violated: " +
            model::describe(uc, spec.services, spec.network));
    }
  }

  // Thresholds (eq. 9) and RMC host requirements.
  report.metrics = synth::compute_metrics(spec, design);
  for (const model::HostIsolationRequirement& req : spec.host_requirements) {
    // host_isolation is indexed by position within network.hosts().
    const auto& hosts = spec.network.hosts();
    const auto pos = static_cast<std::size_t>(
        std::find(hosts.begin(), hosts.end(), req.host) - hosts.begin());
    CS_ENSURE(pos < hosts.size(), "requirement host disappeared");
    if (report.metrics.host_isolation[pos] < req.min_isolation) {
      report.issues.push_back(
          "host " + spec.network.node(req.host).name + " isolation " +
          report.metrics.host_isolation[pos].to_string() +
          " below required " + req.min_isolation.to_string());
    }
  }
  if (check_thresholds) {
    if (report.metrics.isolation < spec.sliders.isolation)
      report.issues.push_back(
          "isolation " + report.metrics.isolation.to_string() +
          " below threshold " + spec.sliders.isolation.to_string());
    if (report.metrics.usability < spec.sliders.usability)
      report.issues.push_back(
          "usability " + report.metrics.usability.to_string() +
          " below threshold " + spec.sliders.usability.to_string());
    if (report.metrics.cost > spec.sliders.budget)
      report.issues.push_back("cost " + report.metrics.cost.to_string() +
                              " above budget " +
                              spec.sliders.budget.to_string());
  }
  return report;
}

}  // namespace cs::analysis
