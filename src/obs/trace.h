// Span-based tracing for the synthesis stack (DESIGN.md S9).
//
// The paper's whole evaluation is about *where synthesis time goes* as
// topology size, CR count and thresholds scale; this module makes that
// timeline observable instead of inferable from totals. A `TraceSession`
// collects two event shapes from any thread:
//
//   * spans   — RAII `Span` objects bracketing a phase (encoder constraint
//     families, a solver check, one sweep grid point, a service request
//     stage), exported as Chrome trace-event "complete" events ("ph":"X")
//     so a trace opens directly in Perfetto or chrome://tracing;
//   * counter timelines — point-in-time samples of monotone counters
//     ("ph":"C"), fed by the minisolver's periodic progress callback
//     (every N conflicts) and by the Z3 backend around check calls.
//
// Cost model. Tracing is compiled in but *default-off*: every recording
// entry point starts with one atomic load of a process-wide flag and a
// branch — no allocation, no clock read, no lock when disabled. (The
// load is acquire so an enable() on one thread happens-before recording
// on threads that observe it; on x86/ARM that compiles to a plain load.)
// Enabled-path appends go to per-thread buffers, so recording threads
// never contend with each other.
//
// Thread-safety. Each thread owns a `ThreadTrack`: a chunked append-only
// buffer written only by its owner and published with a release store of
// the event count; readers (`snapshot`, `write_json`) acquire-load the
// count and read only the published prefix, so concurrent append/export
// is race-free (TSan-clean) without any per-event lock. Track
// registration takes the session mutex once per thread per session
// epoch. `clear()` invalidates and frees all tracks — it must not run
// concurrently with recording threads (quiesce workers first; every
// driver in this repo exports after its pool has drained).
//
// Timestamps are steady-clock microseconds since the session epoch
// (util::Stopwatch is the same clock), so spans from different threads
// are directly comparable and traces survive wall-clock adjustments.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace cs::obs {

/// One recorded event. Spans carry a duration; counters carry a value.
/// Async spans additionally carry an id: they are exported as paired
/// "b"/"e" events, which trace viewers group by id on their own track —
/// the shape for intervals that legitimately overlap the recording
/// thread's other spans (a service request's queue wait, recorded
/// retroactively once the request starts).
struct TraceEvent {
  enum class Kind { kSpan, kCounter, kAsync };
  Kind kind = Kind::kSpan;
  /// Event name ("encode/placement", "sweep/point", "minipb/conflicts").
  std::string name;
  /// Category string — must point at storage with static lifetime
  /// (string literals); categories group events in trace viewers.
  const char* category = "";
  double ts_us = 0;
  double dur_us = 0;          // spans and async spans
  std::int64_t value = 0;     // counters: the sample; async: the id
  /// Small key/value annotations ("warm"="1", "req"="42").
  std::vector<std::pair<std::string, std::string>> args;
};

/// Per-thread append-only event buffer (see the header comment for the
/// publication protocol). Created and owned by the TraceSession; user
/// code never touches it directly.
class ThreadTrack {
 public:
  explicit ThreadTrack(int tid) : tid_(tid) {}
  ~ThreadTrack();

  ThreadTrack(const ThreadTrack&) = delete;
  ThreadTrack& operator=(const ThreadTrack&) = delete;

  int tid() const { return tid_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Owner thread only.
  void append(TraceEvent event);

  /// Any thread: visits the published prefix in append order.
  template <typename Fn>
  void visit(Fn&& fn) const {
    const std::size_t n = published_.load(std::memory_order_acquire);
    const Chunk* chunk = &head_;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t slot = i % kChunkSize;
      if (i != 0 && slot == 0)
        chunk = chunk->next.load(std::memory_order_relaxed);
      fn(chunk->events[slot]);
    }
  }

 private:
  static constexpr std::size_t kChunkSize = 256;
  struct Chunk {
    TraceEvent events[kChunkSize];
    std::atomic<Chunk*> next{nullptr};
  };

  const int tid_;
  std::string name_;  // set before workers start or by the owner thread
  Chunk head_;
  Chunk* tail_ = &head_;
  std::size_t appended_ = 0;
  std::atomic<std::size_t> published_{0};
};

/// The process-wide trace collector. One instance (`session()`) serves
/// the whole stack so instrumentation points never need plumbing.
class TraceSession {
 public:
  /// The recording gate — the only cost paid on the disabled path.
  static bool enabled() {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Starts recording (timestamps restart from zero on the first enable
  /// after a clear).
  void enable();
  /// Stops recording; already-recorded events are kept for export.
  void disable();
  /// Drops all events and tracks. Must not race with recording threads.
  void clear();

  /// Microseconds since the session epoch.
  double now_us() const { return epoch_.elapsed_seconds() * 1e6; }

  /// Records a complete span with explicit timing. Scoped spans on one
  /// track must nest; for intervals that cannot (recorded after the
  /// fact, overlapping other work) use record_async_span instead.
  void record_span(const char* category, std::string name, double ts_us,
                   double dur_us,
                   std::vector<std::pair<std::string, std::string>> args = {});

  /// Records an async span with explicit timing, exported as a paired
  /// "b"/"e" event keyed by `id`. Use for intervals that overlap the
  /// recording thread's scoped spans — a service request's queue wait
  /// is recorded retroactively by whichever worker dequeues it, while
  /// that worker's track already holds spans for earlier requests.
  void record_async_span(
      const char* category, std::string name, double ts_us, double dur_us,
      std::int64_t id,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Records one counter-timeline sample at the current time.
  void record_counter(const char* category, std::string name,
                      std::int64_t value);

  /// Names the calling thread's track ("main", "worker"); exported as
  /// trace metadata.
  void set_thread_name(std::string name);

  /// Copy of every published event (tests; stable across concurrent
  /// appends — late events are simply not included).
  std::vector<TraceEvent> snapshot() const;

  /// Published events grouped by thread track, paired with each track's
  /// tid (tests asserting per-thread properties like span nesting).
  std::vector<std::pair<int, std::vector<TraceEvent>>> snapshot_by_track()
      const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable by
  /// Perfetto and chrome://tracing.
  std::string to_json() const;

  /// Writes to_json() to `path` (throws util::Error on I/O failure).
  void write_json(const std::string& path) const;

  /// The calling thread's track, registering it on first use.
  ThreadTrack& track();

 private:
  static std::atomic<bool> enabled_;

  util::Stopwatch epoch_;
  mutable std::mutex mutex_;  // guards tracks_ and epoch_fresh_
  std::vector<std::unique_ptr<ThreadTrack>> tracks_;
  /// Bumped by clear() so threads re-register instead of touching freed
  /// tracks.
  std::atomic<std::uint64_t> generation_{1};
  bool epoch_fresh_ = true;
};

/// The process-wide session.
TraceSession& session();

/// RAII span: records one complete event on destruction. When tracing is
/// disabled at construction the object is inert (a relaxed load and a
/// branch — nothing else).
class Span {
 public:
  /// `category` and `name` must outlive the span (string literals).
  Span(const char* category, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation (no-op when inert).
  void arg(const char* key, std::string value);

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void end();

 private:
  bool active_;
  const char* category_;
  const char* name_;
  double start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Counter-timeline sample helper: no-op when disabled.
inline void counter(const char* category, const char* name,
                    std::int64_t value) {
  if (!TraceSession::enabled()) return;
  session().record_counter(category, name, value);
}

/// Thread-name helper: no-op when disabled.
inline void set_thread_name(const char* name) {
  if (!TraceSession::enabled()) return;
  session().set_thread_name(name);
}

}  // namespace cs::obs
