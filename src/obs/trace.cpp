#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace cs::obs {

std::atomic<bool> TraceSession::enabled_{false};

TraceSession& session() {
  static TraceSession instance;
  return instance;
}

// ---- ThreadTrack -----------------------------------------------------------

ThreadTrack::~ThreadTrack() {
  Chunk* chunk = head_.next.load(std::memory_order_relaxed);
  while (chunk != nullptr) {
    Chunk* next = chunk->next.load(std::memory_order_relaxed);
    delete chunk;
    chunk = next;
  }
}

void ThreadTrack::append(TraceEvent event) {
  const std::size_t slot = appended_ % kChunkSize;
  if (appended_ != 0 && slot == 0) {
    // The release store of published_ below publishes this link too.
    Chunk* fresh = new Chunk;
    tail_->next.store(fresh, std::memory_order_relaxed);
    tail_ = fresh;
  }
  tail_->events[slot] = std::move(event);
  ++appended_;
  // Publish: readers acquire-load the count, which orders the slot (and
  // chunk-link) writes above before any read of them.
  published_.store(appended_, std::memory_order_release);
}

// ---- TraceSession ----------------------------------------------------------

void TraceSession::enable() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_fresh_) {
      epoch_.reset();
      epoch_fresh_ = false;
    }
  }
  // Release: the epoch reset (and any prior clear) happens-before
  // recording on threads that observe the flag.
  enabled_.store(true, std::memory_order_release);
}

void TraceSession::disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceSession::clear() {
  disable();
  std::lock_guard<std::mutex> lock(mutex_);
  generation_.fetch_add(1, std::memory_order_release);
  tracks_.clear();
  epoch_fresh_ = true;
}

ThreadTrack& TraceSession::track() {
  struct Cache {
    std::uint64_t generation = 0;
    ThreadTrack* track = nullptr;
  };
  thread_local Cache cache;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (cache.track != nullptr && cache.generation == generation)
    return *cache.track;
  std::lock_guard<std::mutex> lock(mutex_);
  tracks_.push_back(
      std::make_unique<ThreadTrack>(static_cast<int>(tracks_.size()) + 1));
  cache.track = tracks_.back().get();
  cache.generation = generation;
  return *cache.track;
}

void TraceSession::record_span(
    const char* category, std::string name, double ts_us, double dur_us,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  track().append(std::move(event));
}

void TraceSession::record_async_span(
    const char* category, std::string name, double ts_us, double dur_us,
    std::int64_t id, std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kAsync;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.value = id;
  event.args = std::move(args);
  track().append(std::move(event));
}

void TraceSession::record_counter(const char* category, std::string name,
                                  std::int64_t value) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = now_us();
  event.value = value;
  track().append(std::move(event));
}

void TraceSession::set_thread_name(std::string name) {
  track().set_name(std::move(name));
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& track : tracks_)
    track->visit([&](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::vector<std::pair<int, std::vector<TraceEvent>>>
TraceSession::snapshot_by_track() const {
  std::vector<std::pair<int, std::vector<TraceEvent>>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& track : tracks_) {
    out.emplace_back(track->tid(), std::vector<TraceEvent>{});
    track->visit(
        [&](const TraceEvent& e) { out.back().second.push_back(e); });
  }
  return out;
}

namespace {

/// JSON string escaping (control characters, quote, backslash).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

void append_args(std::string& out,
                 const std::vector<std::pair<std::string, std::string>>& args) {
  out += "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ",";
    first = false;
    append_json_string(out, key);
    out += ":";
    append_json_string(out, value);
  }
  out += "}";
}

}  // namespace

std::string TraceSession::to_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit_prefix = [&](const ThreadTrack& track) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"pid\":1,\"tid\":";
    out += std::to_string(track.tid());
    out += ",";
  };
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& track : tracks_) {
    if (!track->name().empty()) {
      emit_prefix(*track);
      out += "\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":";
      append_json_string(out, track->name());
      out += "}}";
    }
    track->visit([&](const TraceEvent& e) {
      if (e.kind == TraceEvent::Kind::kAsync) {
        // Paired begin/end events; viewers group them by id on an async
        // track, so they may overlap the thread's scoped spans freely.
        const auto emit_half = [&](const char* ph, double ts, bool args) {
          emit_prefix(*track);
          out += "\"ph\":\"";
          out += ph;
          out += "\",\"name\":";
          append_json_string(out, e.name);
          out += ",\"cat\":";
          append_json_string(out, e.category);
          out += ",\"id\":";
          out += std::to_string(e.value);
          out += ",\"ts\":";
          append_number(out, ts);
          if (args) {
            out += ",\"args\":";
            append_args(out, e.args);
          }
          out += "}";
        };
        emit_half("b", e.ts_us, /*args=*/true);
        emit_half("e", e.ts_us + e.dur_us, /*args=*/false);
        return;
      }
      emit_prefix(*track);
      out += "\"ph\":";
      out += e.kind == TraceEvent::Kind::kSpan ? "\"X\"" : "\"C\"";
      out += ",\"name\":";
      append_json_string(out, e.name);
      out += ",\"cat\":";
      append_json_string(out, e.category);
      out += ",\"ts\":";
      append_number(out, e.ts_us);
      if (e.kind == TraceEvent::Kind::kSpan) {
        out += ",\"dur\":";
        append_number(out, e.dur_us);
        out += ",\"args\":";
        append_args(out, e.args);
      } else {
        out += ",\"args\":{\"value\":";
        out += std::to_string(e.value);
        out += "}";
      }
      out += "}";
    });
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceSession::write_json(const std::string& path) const {
  std::ofstream out(path);
  CS_REQUIRE(static_cast<bool>(out),
             "cannot open trace output '" + path + "'");
  out << to_json();
  CS_REQUIRE(static_cast<bool>(out),
             "failed writing trace output '" + path + "'");
}

// ---- Span ------------------------------------------------------------------

Span::Span(const char* category, const char* name)
    : active_(TraceSession::enabled()), category_(category), name_(name) {
  if (!active_) return;
  start_us_ = session().now_us();
}

Span::~Span() { end(); }

void Span::arg(const char* key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  TraceSession& s = session();
  s.record_span(category_, name_, start_us_, s.now_us() - start_us_,
                std::move(args_));
}

}  // namespace cs::obs
