// Host-level isolation patterns (the paper's §VII future-work extension).
//
// Network-level patterns protect a flow on its route; host-level patterns
// protect the *destination host itself* (host firewall, antivirus/EDR).
// Semantics chosen for this extension (documented in DESIGN.md):
//
//   * at most one host-level pattern is deployed per host;
//   * a host-level pattern at host j contributes its score to every flow
//     towards j that carries NO network-level pattern (a host firewall
//     does not add isolation on top of an IPSec tunnel in this model, it
//     covers the flows the network design left open);
//   * deployment costs are per host, drawn from the same budget;
//   * usability is unaffected (host-side controls are transparent).
//
// Scores live on the same 0..10 scale as Table I and are expected to sit
// below the network patterns' scores.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/error.h"
#include "util/fixed.h"

namespace cs::model {

enum class HostPattern : std::int8_t {
  kHostFirewall = 0,
  kAntivirus = 1,
};

inline constexpr int kHostPatternCount = 2;

inline constexpr std::array<HostPattern, kHostPatternCount> kAllHostPatterns =
    {HostPattern::kHostFirewall, HostPattern::kAntivirus};

constexpr int host_pattern_index(HostPattern p) {
  return static_cast<int>(p);
}

constexpr std::string_view host_pattern_name(HostPattern p) {
  switch (p) {
    case HostPattern::kHostFirewall:
      return "Host Firewall";
    case HostPattern::kAntivirus:
      return "Antivirus";
  }
  return "?";
}

/// Configuration of the host-level extension. Disabled (no patterns
/// enabled) by default, which reproduces the paper's network-only model.
class HostPatternConfig {
 public:
  /// The extension's stock configuration: host firewall (score 2, $1K per
  /// host) and antivirus (score 1.5, $0.5K per host).
  static HostPatternConfig defaults() {
    HostPatternConfig cfg;
    cfg.enable(HostPattern::kHostFirewall, util::Fixed::from_int(2),
               util::Fixed::from_int(1));
    cfg.enable(HostPattern::kAntivirus, util::Fixed::from_double(1.5),
               util::Fixed::from_double(0.5));
    return cfg;
  }

  void enable(HostPattern p, util::Fixed score, util::Fixed cost) {
    CS_REQUIRE(score > util::Fixed{} &&
                   score <= util::Fixed::from_int(10),
               "host pattern score must lie in (0, 10]");
    CS_REQUIRE(cost >= util::Fixed{}, "host pattern cost must be >= 0");
    if (!is_enabled(p)) enabled_.push_back(p);
    score_[static_cast<std::size_t>(host_pattern_index(p))] = score;
    cost_[static_cast<std::size_t>(host_pattern_index(p))] = cost;
  }

  const std::vector<HostPattern>& enabled() const { return enabled_; }
  bool any() const { return !enabled_.empty(); }

  bool is_enabled(HostPattern p) const {
    for (const HostPattern e : enabled_)
      if (e == p) return true;
    return false;
  }

  util::Fixed score(HostPattern p) const {
    return score_[static_cast<std::size_t>(host_pattern_index(p))];
  }
  util::Fixed cost(HostPattern p) const {
    return cost_[static_cast<std::size_t>(host_pattern_index(p))];
  }

 private:
  std::vector<HostPattern> enabled_;
  std::array<util::Fixed, kHostPatternCount> score_{};
  std::array<util::Fixed, kHostPatternCount> cost_{};
};

}  // namespace cs::model
