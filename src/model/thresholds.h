// The three slider thresholds (paper §III-D, eq. 9).
//
//   isolation  Th_I : network isolation must reach at least this (0..10)
//   usability  Th_U : network usability must reach at least this (0..10)
//   budget     Th_C : total device deployment cost must not exceed this
//                     (same unit as DeviceCosts, thousand dollars)
#pragma once

#include "util/error.h"
#include "util/fixed.h"

namespace cs::model {

/// Top of the isolation/usability slider scales.
inline const util::Fixed kSliderMax = util::Fixed::from_int(10);

struct Sliders {
  util::Fixed isolation;   // Th_I in [0, 10]
  util::Fixed usability;   // Th_U in [0, 10]
  util::Fixed budget;      // Th_C >= 0, in $K

  void validate() const {
    CS_REQUIRE(isolation >= util::Fixed{} && isolation <= kSliderMax,
               "isolation slider out of [0, 10]");
    CS_REQUIRE(usability >= util::Fixed{} && usability <= kSliderMax,
               "usability slider out of [0, 10]");
    CS_REQUIRE(budget >= util::Fixed{}, "budget must be non-negative");
  }
};

}  // namespace cs::model
