#include "model/delta.h"

#include <algorithm>
#include <variant>

#include "util/error.h"
#include "util/strings.h"

namespace cs::model {

namespace {

using topology::LinkId;
using topology::Network;
using topology::NodeId;
using topology::NodeKind;

constexpr NodeId kDropped = -1;

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Names travel as single tokens of the space-free grammar, so the
/// delimiters (and whitespace, which would split the cs-req-v1 line)
/// are forbidden inside them.
void require_name(const std::string& name, std::string_view what) {
  CS_REQUIRE(!name.empty(), "cs-delta-v1: empty " + std::string(what));
  CS_REQUIRE(name.find_first_of(",;= \t") == std::string::npos,
             "cs-delta-v1: " + std::string(what) + " '" + name +
                 "' contains a delimiter");
}

NodeId resolve_node(const Network& net, const std::string& name,
                    std::string_view what) {
  NodeId found = kDropped;
  for (const topology::Node& n : net.nodes()) {
    if (n.name != name) continue;
    CS_REQUIRE(found == kDropped,
               "delta: ambiguous " + std::string(what) + " name '" + name +
                   "' (multiple nodes share it)");
    found = n.id;
  }
  CS_REQUIRE(found != kDropped,
             "delta: unknown " + std::string(what) + " '" + name + "'");
  return found;
}

ServiceId resolve_service(const ServiceCatalog& services,
                          const std::string& name) {
  const auto id = services.find(name);
  CS_REQUIRE(id.has_value(), "delta: unknown service '" + name + "'");
  return *id;
}

Flow resolve_flow(const ProblemSpec& spec, const std::string& src,
                  const std::string& dst, const std::string& service) {
  return Flow{resolve_node(spec.network, src, "flow endpoint"),
              resolve_node(spec.network, dst, "flow endpoint"),
              resolve_service(spec.services, service)};
}

UserConstraint resolve_uic(const ProblemSpec& spec,
                           const std::vector<std::string>& uic) {
  CS_REQUIRE(!uic.empty(), "delta: empty uic production");
  const std::string& form = uic[0];
  const auto arity = [&](std::size_t want) {
    CS_REQUIRE(uic.size() == want + 1,
               "delta: uic form '" + form + "' takes " +
                   std::to_string(want) + " argument(s), got " +
                   std::to_string(uic.size() - 1));
  };
  if (form == "forbid-service") {
    arity(2);
    return ForbidPatternForService{resolve_service(spec.services, uic[1]),
                                   pattern_from_token(uic[2])};
  }
  if (form == "forbid-flow") {
    arity(4);
    return ForbidPatternForFlow{resolve_flow(spec, uic[1], uic[2], uic[3]),
                                pattern_from_token(uic[4])};
  }
  if (form == "require-flow") {
    arity(4);
    return RequirePatternForFlow{resolve_flow(spec, uic[1], uic[2], uic[3]),
                                 pattern_from_token(uic[4])};
  }
  if (form == "deny-one-of") {
    arity(6);
    return DenyOneOf{resolve_flow(spec, uic[1], uic[2], uic[3]),
                     resolve_flow(spec, uic[4], uic[5], uic[6])};
  }
  throw util::SpecError("delta: unknown uic form '" + form + "'");
}

/// True when the constraint references `flow` (flow-scoped forms only).
bool references_flow(const UserConstraint& c, const Flow& flow) {
  return std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ForbidPatternForFlow> ||
                      std::is_same_v<T, RequirePatternForFlow>) {
          return v.flow == flow;
        } else if constexpr (std::is_same_v<T, DenyOneOf>) {
          return v.open_flow == flow || v.guard_flow == flow;
        } else {
          return false;
        }
      },
      c);
}

/// Remaps node ids inside a constraint; returns false (drop it) when it
/// references a removed node.
bool remap_uic(UserConstraint& c, const std::vector<NodeId>& remap) {
  const auto map_flow = [&](Flow& f) {
    if (remap[static_cast<std::size_t>(f.src)] == kDropped ||
        remap[static_cast<std::size_t>(f.dst)] == kDropped)
      return false;
    f.src = remap[static_cast<std::size_t>(f.src)];
    f.dst = remap[static_cast<std::size_t>(f.dst)];
    return true;
  };
  return std::visit(
      [&](auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ForbidPatternForFlow> ||
                      std::is_same_v<T, RequirePatternForFlow>) {
          return map_flow(v.flow);
        } else if constexpr (std::is_same_v<T, DenyOneOf>) {
          return map_flow(v.open_flow) && map_flow(v.guard_flow);
        } else {
          return true;
        }
      },
      c);
}

/// Rebuilds flows / ranks / CRs / UICs / host requirements through a
/// node-id remap (identity except removals), dropping `drop` (when
/// non-null) and everything that cascades from a removal.
void rebuild_workload(ProblemSpec& out, const std::vector<NodeId>& remap,
                      const Flow* drop) {
  const FlowSet old_flows = std::move(out.flows);
  const FlowRanks old_ranks = std::move(out.ranks);
  const ConnectivityRequirements old_crs = std::move(out.connectivity);

  out.flows = FlowSet{};
  out.connectivity = ConnectivityRequirements{};
  std::vector<FlowId> flow_map(old_flows.size(), -1);
  for (std::size_t i = 0; i < old_flows.size(); ++i) {
    const Flow& f = old_flows.flow(static_cast<FlowId>(i));
    if (drop != nullptr && f == *drop) continue;
    const NodeId src = remap[static_cast<std::size_t>(f.src)];
    const NodeId dst = remap[static_cast<std::size_t>(f.dst)];
    if (src == kDropped || dst == kDropped) continue;
    flow_map[i] = out.flows.add(Flow{src, dst, f.service});
  }
  out.ranks = FlowRanks::uniform(out.flows);
  for (std::size_t i = 0; i < old_flows.size(); ++i) {
    if (flow_map[i] != -1)
      out.ranks.set(flow_map[i], old_ranks.rank(static_cast<FlowId>(i)));
  }
  for (const FlowId id : old_crs.sorted()) {
    if (flow_map[static_cast<std::size_t>(id)] != -1)
      out.connectivity.add(flow_map[static_cast<std::size_t>(id)]);
  }

  std::vector<UserConstraint> kept;
  kept.reserve(out.user_constraints.size());
  for (UserConstraint c : out.user_constraints) {
    if (drop != nullptr && references_flow(c, *drop)) continue;
    if (remap_uic(c, remap)) kept.push_back(std::move(c));
  }
  out.user_constraints = std::move(kept);

  std::vector<HostIsolationRequirement> reqs;
  reqs.reserve(out.host_requirements.size());
  for (HostIsolationRequirement r : out.host_requirements) {
    const NodeId host = remap[static_cast<std::size_t>(r.host)];
    if (host == kDropped) continue;
    r.host = host;
    reqs.push_back(r);
  }
  out.host_requirements = std::move(reqs);
}

/// Copies `net` minus one node and/or one link, writing the old→new node
/// id map into `remap`.
Network rebuild_network(const Network& net, NodeId drop_node,
                        LinkId drop_link, std::vector<NodeId>& remap) {
  Network nn;
  remap.assign(net.node_count(), kDropped);
  for (const topology::Node& n : net.nodes()) {
    if (n.id == drop_node) continue;
    NodeId nid;
    if (n.kind == NodeKind::kRouter) {
      nid = nn.add_router(n.name);
    } else if (n.is_internet) {
      nid = nn.add_internet(n.name);
    } else {
      nid = nn.add_host(n.name, n.group_size);
    }
    remap[static_cast<std::size_t>(n.id)] = nid;
  }
  for (const topology::Link& l : net.links()) {
    if (l.id == drop_link) continue;
    if (l.a == drop_node || l.b == drop_node) continue;
    nn.add_link(remap[static_cast<std::size_t>(l.a)],
                remap[static_cast<std::size_t>(l.b)]);
  }
  return nn;
}

std::vector<NodeId> identity_remap(const Network& net) {
  std::vector<NodeId> remap(net.node_count());
  for (std::size_t i = 0; i < remap.size(); ++i)
    remap[i] = static_cast<NodeId>(i);
  return remap;
}

void apply_op(ProblemSpec& out, const DeltaOp& op) {
  switch (op.kind) {
    case DeltaOpKind::kAddHost: {
      require_name(op.a, "host name");
      for (const topology::Node& n : out.network.nodes())
        CS_REQUIRE(n.name != op.a,
                   "delta: add-host name '" + op.a + "' already in use");
      const NodeId router = resolve_node(out.network, op.b, "router");
      CS_REQUIRE(out.network.node(router).kind == NodeKind::kRouter,
                 "delta: add-host must attach to a router, '" + op.b +
                     "' is not one");
      CS_REQUIRE(op.group_size >= 1, "delta: add-host group must be >= 1");
      const NodeId host = out.network.add_host(op.a, op.group_size);
      out.network.add_link(host, router);
      return;
    }
    case DeltaOpKind::kRemoveHost: {
      const NodeId victim = resolve_node(out.network, op.a, "host");
      CS_REQUIRE(out.network.is_host(victim),
                 "delta: remove-host target '" + op.a + "' is not a host");
      std::vector<NodeId> remap;
      out.network = rebuild_network(out.network, victim, /*drop_link=*/-1,
                                    remap);
      rebuild_workload(out, remap, /*drop=*/nullptr);
      return;
    }
    case DeltaOpKind::kFailLink: {
      const NodeId a = resolve_node(out.network, op.a, "link endpoint");
      const NodeId b = resolve_node(out.network, op.b, "link endpoint");
      const auto link = out.network.find_link(a, b);
      CS_REQUIRE(link.has_value(), "delta: fail-link: no link between '" +
                                       op.a + "' and '" + op.b + "'");
      std::vector<NodeId> remap;
      Network next = rebuild_network(out.network, /*drop_node=*/-1, *link,
                                     remap);
      CS_REQUIRE(next.connected(),
                 "delta: fail-link between '" + op.a + "' and '" + op.b +
                     "' would disconnect the network");
      out.network = std::move(next);  // node ids are unchanged
      return;
    }
    case DeltaOpKind::kRestoreLink: {
      const NodeId a = resolve_node(out.network, op.a, "link endpoint");
      const NodeId b = resolve_node(out.network, op.b, "link endpoint");
      CS_REQUIRE(!out.network.has_link(a, b),
                 "delta: restore-link: link between '" + op.a + "' and '" +
                     op.b + "' already present");
      out.network.add_link(a, b);
      return;
    }
    case DeltaOpKind::kAddFlow: {
      const Flow f = resolve_flow(out, op.a, op.b, op.service);
      CS_REQUIRE(!out.flows.find(f).has_value(),
                 "delta: add-flow: flow already present");
      const FlowRanks old_ranks = std::move(out.ranks);
      const FlowId id = out.flows.add(f);
      out.ranks = FlowRanks::uniform(out.flows);  // new flow ranks 1
      for (FlowId i = 0; i < id; ++i) out.ranks.set(i, old_ranks.rank(i));
      if (op.connectivity_required) out.connectivity.add(id);
      return;
    }
    case DeltaOpKind::kRemoveFlow: {
      const Flow f = resolve_flow(out, op.a, op.b, op.service);
      CS_REQUIRE(out.flows.find(f).has_value(),
                 "delta: remove-flow: no such flow");
      rebuild_workload(out, identity_remap(out.network), &f);
      return;
    }
    case DeltaOpKind::kAddUic: {
      const UserConstraint c = resolve_uic(out, op.uic);
      const auto it = std::find(out.user_constraints.begin(),
                                out.user_constraints.end(), c);
      CS_REQUIRE(it == out.user_constraints.end(),
                 "delta: add-uic: constraint already present");
      out.user_constraints.push_back(c);
      return;
    }
    case DeltaOpKind::kRemoveUic: {
      const UserConstraint c = resolve_uic(out, op.uic);
      const auto it = std::find(out.user_constraints.begin(),
                                out.user_constraints.end(), c);
      CS_REQUIRE(it != out.user_constraints.end(),
                 "delta: remove-uic: no such constraint");
      out.user_constraints.erase(it);
      return;
    }
    case DeltaOpKind::kRetune: {
      CS_REQUIRE(op.isolation || op.usability || op.budget,
                 "delta: retune with no knobs");
      if (op.isolation) out.sliders.isolation = *op.isolation;
      if (op.usability) out.sliders.usability = *op.usability;
      if (op.budget) out.sliders.budget = *op.budget;
      return;
    }
  }
  throw util::InternalError("delta: unhandled op kind");
}

void render_op(std::string& out, const DeltaOp& op) {
  out += delta_op_name(op.kind);
  const auto arg = [&](const std::string& token, std::string_view what) {
    require_name(token, what);
    out += ',';
    out += token;
  };
  switch (op.kind) {
    case DeltaOpKind::kAddHost:
      arg(op.a, "host name");
      arg(op.b, "router name");
      if (op.group_size != 1) out += ',' + std::to_string(op.group_size);
      return;
    case DeltaOpKind::kRemoveHost:
      arg(op.a, "host name");
      return;
    case DeltaOpKind::kFailLink:
    case DeltaOpKind::kRestoreLink:
      arg(op.a, "link endpoint");
      arg(op.b, "link endpoint");
      return;
    case DeltaOpKind::kAddFlow:
    case DeltaOpKind::kRemoveFlow:
      arg(op.a, "flow source");
      arg(op.b, "flow destination");
      arg(op.service, "service name");
      if (op.kind == DeltaOpKind::kAddFlow && op.connectivity_required)
        out += ",cr";
      return;
    case DeltaOpKind::kAddUic:
    case DeltaOpKind::kRemoveUic:
      CS_REQUIRE(!op.uic.empty(), "cs-delta-v1: uic op with no production");
      for (const std::string& token : op.uic) arg(token, "uic token");
      return;
    case DeltaOpKind::kRetune:
      CS_REQUIRE(op.isolation || op.usability || op.budget,
                 "cs-delta-v1: retune with no knobs");
      if (op.isolation) out += ",iso=" + op.isolation->to_string();
      if (op.usability) out += ",usab=" + op.usability->to_string();
      if (op.budget) out += ",budget=" + op.budget->to_string();
      return;
  }
  throw util::InternalError("cs-delta-v1: unhandled op kind");
}

DeltaOp parse_op(const std::string& text) {
  const std::vector<std::string> tok = split(text, ',');
  CS_REQUIRE(!tok[0].empty(), "cs-delta-v1: empty op");
  DeltaOp op;
  const auto arity = [&](std::size_t lo, std::size_t hi) {
    CS_REQUIRE(tok.size() >= lo + 1 && tok.size() <= hi + 1,
               "cs-delta-v1: op '" + tok[0] + "' has bad arity (" +
                   std::to_string(tok.size() - 1) + " args)");
    for (const std::string& t : tok) require_name(t, "token");
  };
  if (tok[0] == "add-host") {
    op.kind = DeltaOpKind::kAddHost;
    arity(2, 3);
    op.a = tok[1];
    op.b = tok[2];
    if (tok.size() == 4) {
      op.group_size = static_cast<int>(util::parse_int(tok[3], "group"));
      CS_REQUIRE(op.group_size != 1,
                 "cs-delta-v1: explicit group of 1 is non-canonical");
    }
    return op;
  }
  if (tok[0] == "remove-host") {
    op.kind = DeltaOpKind::kRemoveHost;
    arity(1, 1);
    op.a = tok[1];
    return op;
  }
  if (tok[0] == "fail-link" || tok[0] == "restore-link") {
    op.kind = tok[0] == "fail-link" ? DeltaOpKind::kFailLink
                                    : DeltaOpKind::kRestoreLink;
    arity(2, 2);
    op.a = tok[1];
    op.b = tok[2];
    return op;
  }
  if (tok[0] == "add-flow" || tok[0] == "remove-flow") {
    const bool add = tok[0] == "add-flow";
    op.kind = add ? DeltaOpKind::kAddFlow : DeltaOpKind::kRemoveFlow;
    arity(3, add ? 4 : 3);
    op.a = tok[1];
    op.b = tok[2];
    op.service = tok[3];
    if (tok.size() == 5) {
      CS_REQUIRE(tok[4] == "cr",
                 "cs-delta-v1: add-flow trailing token must be 'cr'");
      op.connectivity_required = true;
    }
    return op;
  }
  if (tok[0] == "add-uic" || tok[0] == "remove-uic") {
    op.kind = tok[0] == "add-uic" ? DeltaOpKind::kAddUic
                                  : DeltaOpKind::kRemoveUic;
    CS_REQUIRE(tok.size() >= 2, "cs-delta-v1: uic op with no production");
    op.uic.assign(tok.begin() + 1, tok.end());
    for (const std::string& t : op.uic) require_name(t, "uic token");
    return op;
  }
  if (tok[0] == "retune") {
    op.kind = DeltaOpKind::kRetune;
    CS_REQUIRE(tok.size() >= 2, "cs-delta-v1: retune with no knobs");
    for (std::size_t i = 1; i < tok.size(); ++i) {
      const std::size_t eq = tok[i].find('=');
      CS_REQUIRE(eq != std::string::npos,
                 "cs-delta-v1: retune knob without '=': " + tok[i]);
      const std::string knob = tok[i].substr(0, eq);
      const util::Fixed value =
          util::Fixed::from_double(util::parse_double(tok[i].substr(eq + 1),
                                                      knob));
      // Canonical knob order (iso, usab, budget), each at most once.
      if (knob == "iso") {
        CS_REQUIRE(!op.isolation && !op.usability && !op.budget,
                   "cs-delta-v1: retune knobs out of canonical order");
        op.isolation = value;
      } else if (knob == "usab") {
        CS_REQUIRE(!op.usability && !op.budget,
                   "cs-delta-v1: retune knobs out of canonical order");
        op.usability = value;
      } else if (knob == "budget") {
        CS_REQUIRE(!op.budget,
                   "cs-delta-v1: retune knobs out of canonical order");
        op.budget = value;
      } else {
        throw util::SpecError("cs-delta-v1: unknown retune knob '" + knob +
                              "'");
      }
    }
    return op;
  }
  throw util::SpecError("cs-delta-v1: unknown op '" + tok[0] + "'");
}

}  // namespace

std::string_view delta_op_name(DeltaOpKind kind) {
  switch (kind) {
    case DeltaOpKind::kAddHost:
      return "add-host";
    case DeltaOpKind::kRemoveHost:
      return "remove-host";
    case DeltaOpKind::kFailLink:
      return "fail-link";
    case DeltaOpKind::kRestoreLink:
      return "restore-link";
    case DeltaOpKind::kAddFlow:
      return "add-flow";
    case DeltaOpKind::kRemoveFlow:
      return "remove-flow";
    case DeltaOpKind::kAddUic:
      return "add-uic";
    case DeltaOpKind::kRemoveUic:
      return "remove-uic";
    case DeltaOpKind::kRetune:
      return "retune";
  }
  return "?";
}

std::string_view pattern_token(IsolationPattern pattern) {
  switch (pattern) {
    case IsolationPattern::kAccessDeny:
      return "access-deny";
    case IsolationPattern::kTrustedComm:
      return "trusted-comm";
    case IsolationPattern::kPayloadInspection:
      return "payload-inspection";
    case IsolationPattern::kProxy:
      return "proxy";
    case IsolationPattern::kProxyTrusted:
      return "proxy-trusted";
  }
  return "?";
}

IsolationPattern pattern_from_token(std::string_view token) {
  for (int i = 0; i < kPatternCount; ++i) {
    const auto p = static_cast<IsolationPattern>(i);
    if (pattern_token(p) == token) return p;
  }
  throw util::SpecError("cs-delta-v1: unknown pattern token '" +
                        std::string(token) + "'");
}

std::string render_delta(const SpecDelta& delta) {
  CS_REQUIRE(!delta.ops.empty(), "cs-delta-v1: empty delta");
  std::string out;
  for (std::size_t i = 0; i < delta.ops.size(); ++i) {
    if (i > 0) out += ';';
    render_op(out, delta.ops[i]);
  }
  return out;
}

SpecDelta parse_delta(std::string_view text) {
  CS_REQUIRE(!text.empty(), "cs-delta-v1: empty delta");
  SpecDelta delta;
  for (const std::string& op_text : split(text, ';'))
    delta.ops.push_back(parse_op(op_text));
  return delta;
}

ProblemSpec apply_delta(const ProblemSpec& spec, const SpecDelta& delta) {
  CS_REQUIRE(!delta.ops.empty(), "delta: empty delta");
  ProblemSpec out = spec;
  for (const DeltaOp& op : delta.ops) apply_op(out, op);
  out.finalize();
  out.validate();
  return out;
}

bool route_preserving(const SpecDelta& delta) {
  return std::none_of(delta.ops.begin(), delta.ops.end(),
                      [](const DeltaOp& op) {
                        return op.kind == DeltaOpKind::kFailLink ||
                               op.kind == DeltaOpKind::kRestoreLink ||
                               op.kind == DeltaOpKind::kRemoveHost;
                      });
}

}  // namespace cs::model
